//! Quickstart: run one diurnal day of a latency-critical service under
//! EVOLVE and under stock Kubernetes, and compare PLO compliance and
//! utilization.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use evolve::prelude::*;

fn main() {
    let mut table = Table::new(
        ["policy", "windows", "violations", "violation rate", "alloc share", "used share"]
            .map(String::from)
            .to_vec(),
    );
    for manager in [ManagerKind::Evolve, ManagerKind::KubeStatic] {
        println!("running {} …", manager.label());
        let outcome = ExperimentRunner::new(
            RunConfig::builder(Scenario::single_diurnal(), manager).nodes(6).seed(7).build(),
        )
        .run();
        table.add_row(vec![
            outcome.manager.clone(),
            outcome.total_windows().to_string(),
            outcome.total_violations().to_string(),
            format!("{:.3}", outcome.total_violation_rate()),
            format!("{:.3}", outcome.utilization.mean_allocated()),
            format!("{:.3}", outcome.utilization.mean_used()),
        ]);
    }
    println!("\none compressed diurnal day, one service, 6 nodes\n");
    println!("{table}");
    println!("EVOLVE should show far fewer violation windows at a lower allocated share —");
    println!("it right-sizes replicas continuously instead of trusting the static request.");
}
