//! The EVOLVE pitch in one run: cloud microservices, big-data batch jobs
//! and gang-scheduled HPC jobs *sharing the same 20 nodes*, with the
//! multi-resource controller defending latency PLOs while batch and HPC
//! work harvest the slack.
//!
//! ```text
//! cargo run --release --example converged_cluster
//! ```

use evolve::prelude::*;

fn main() {
    println!("running the converged headline mix under EVOLVE …");
    let outcome = ExperimentRunner::new(
        RunConfig::builder(Scenario::headline(1.0), ManagerKind::Evolve).seed(11).build(),
    )
    .run();

    let mut per_app = Table::new(
        ["app", "world", "windows", "violations", "rate", "completions", "timeouts"]
            .map(String::from)
            .to_vec(),
    );
    for a in &outcome.apps {
        per_app.add_row(vec![
            a.name.clone(),
            a.world.to_string(),
            a.windows.to_string(),
            a.violations.to_string(),
            format!("{:.3}", a.violation_rate()),
            a.completions.to_string(),
            a.timeouts.to_string(),
        ]);
    }
    println!("\nper-application PLO compliance:\n{per_app}");

    let (hits, total) = outcome.deadline_hits();
    println!("batch/HPC deadlines met: {hits}/{total}");
    for job in &outcome.jobs {
        match job.makespan_s() {
            Some(m) => println!(
                "  {}: finished in {m:.0}s ({})",
                job.job,
                if job.met_deadline() { "on time" } else { "LATE" }
            ),
            None => println!("  {}: did not finish within the horizon", job.job),
        }
    }
    println!(
        "\ncluster utilization: allocated {:.2}, used {:.2} (of capacity), \
         {} preemptions, {} bindings",
        outcome.utilization.mean_allocated(),
        outcome.utilization.mean_used(),
        outcome.preemptions,
        outcome.bindings,
    );
}
