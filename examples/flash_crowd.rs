//! Flash-crowd response: a steady service is hit by a 5× request spike.
//! Watch, tick by tick, how each autoscaler reacts — replicas, per-replica
//! CPU, and p99 latency against the 100 ms PLO.
//!
//! ```text
//! cargo run --release --example flash_crowd
//! ```

use evolve::prelude::*;

fn main() {
    for manager in [ManagerKind::Evolve, ManagerKind::Hpa { target_utilization: 0.6 }] {
        let outcome = ExperimentRunner::new(
            RunConfig::builder(Scenario::flash_crowd(5.0), manager.clone())
                .nodes(8)
                .seed(3)
                .build(),
        )
        .run();
        println!("\n=== {} through a 5× flash crowd (spike at t=120 s) ===", outcome.manager);
        println!("{:>8} {:>10} {:>10} {:>12}", "t (s)", "rate rps", "replicas", "p99 ms");
        let rate = outcome.registry.series("app0/rate_rps");
        let replicas = outcome.registry.series("app0/replicas");
        let p99 = outcome.registry.series("app0/p99_ms");
        if let (Some(rate), Some(replicas), Some(p99)) = (rate, replicas, p99) {
            let p99_points = p99.to_points();
            for (i, ((t, r), (_, n))) in
                rate.to_points().iter().zip(replicas.to_points()).enumerate()
            {
                // Print every 4th tick to keep the trace readable.
                if i % 4 == 0 {
                    let lat = p99_points
                        .iter()
                        .find(|(pt, _)| (pt - t).abs() < 1e-6)
                        .map_or("-".to_string(), |(_, v)| format!("{v:.1}"));
                    println!("{t:>8.0} {r:>10.1} {n:>10.0} {lat:>12}");
                }
            }
        }
        println!(
            "violation windows: {} of {}",
            outcome.total_violations(),
            outcome.total_windows()
        );
    }
    println!("\nEVOLVE reacts within a few control periods (vertical resize is immediate,");
    println!("replicas follow); the HPA waits on CPU-utilization averages and scales later.");
}
