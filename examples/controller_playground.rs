//! Controller playground: drive the multi-resource adaptive PID against a
//! synthetic multi-resource plant — no cluster, just the control loop —
//! and watch it discover which resource binds.
//!
//! The plant: latency = bottleneck drain time across four resources, with
//! the true demand vector hidden from the controller. Half way through,
//! the bottleneck jumps from CPU to network, as when a service's traffic
//! mix shifts.
//!
//! ```text
//! cargo run --release --example controller_playground
//! ```

use evolve::control::{MultiResourceConfig, MultiResourceController};
use evolve::types::{Resource, ResourceVec};

fn latency_of(demand: &ResourceVec, alloc: &ResourceVec) -> f64 {
    Resource::ALL
        .iter()
        .filter(|r| demand[**r] > 0.0)
        .map(|r| demand[*r] / alloc[*r].max(1e-9))
        .fold(0.0_f64, f64::max)
}

fn main() {
    let target_latency = 1.0; // seconds
    let mut controller = MultiResourceController::new(MultiResourceConfig::new(
        ResourceVec::splat(10.0),
        ResourceVec::splat(100_000.0),
    ));
    let mut alloc = ResourceVec::splat(50.0);

    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "step", "cpu", "mem", "disk", "net", "latency", "attribution"
    );
    for step in 0..60 {
        // The hidden demand: CPU-bound first, then network-bound.
        let demand = if step < 30 {
            ResourceVec::new(400.0, 100.0, 20.0, 30.0)
        } else {
            ResourceVec::new(100.0, 100.0, 20.0, 600.0)
        };
        let latency = latency_of(&demand, &alloc);
        let error = (latency - target_latency) / target_latency;
        let usage = demand.min(&alloc);
        let decision = controller.step(alloc, usage, error, 1.0);
        alloc = decision.target;
        if step % 3 == 0 {
            let attr = decision.attribution;
            let (dominant, share) = attr.dominant(&ResourceVec::splat(1.0));
            println!(
                "{step:>5} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {latency:>10.2} {:>7} {:>4.0}%",
                alloc[Resource::Cpu],
                alloc[Resource::Memory],
                alloc[Resource::DiskIo],
                alloc[Resource::NetIo],
                dominant,
                share * 100.0,
            );
        }
    }
    let final_latency = latency_of(&ResourceVec::new(100.0, 100.0, 20.0, 600.0), &alloc);
    println!(
        "\nfinal latency {final_latency:.2}s against a 1.00s objective; \
         gain adaptations: {}",
        controller.adaptations()
    );
    println!("the attribution column shows the controller re-identifying the bottleneck");
    println!("when the workload flips from CPU-bound to network-bound at step 30.");
}
