//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the *small API subset* it actually uses:
//! [`RngCore`], [`SeedableRng`] (with `seed_from_u64`), and [`Rng::gen`]
//! for the standard distributions of the primitive types. Semantics match
//! `rand 0.8` closely enough for the simulator's purposes — uniform
//! floats in `[0, 1)` built from the high 53 bits of `next_u64` — but the
//! byte streams are **not** guaranteed to be identical to the upstream
//! crate. Everything in this workspace only relies on determinism per
//! seed, never on a specific stream.

#![forbid(unsafe_code)]

/// A source of random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A deterministic generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (same approach as upstream `rand`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types sampleable from the "standard" distribution of an RNG:
/// uniform `[0, 1)` for floats, uniform over the full range for integers,
/// a fair coin for `bool`.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {
        $(impl StandardSample for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        })+
    };
}

impl_standard_int!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `[low, high)`.
    fn gen_range_f64(&mut self, low: f64, high: f64) -> f64 {
        low + self.gen::<f64>() * (high - low)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` — only the pieces the workspace references.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state would be degenerate for xoshiro.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut r = SmallRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
