//! Offline vendored stand-in for `serde`.
//!
//! The workspace tags its data types with `#[derive(Serialize,
//! Deserialize)]` for forward compatibility, but no serialization format
//! crate is present in the offline build environment, so nothing ever
//! calls these traits. This stand-in supplies marker traits and (behind
//! the `derive` feature) no-op derive macros so the annotations compile.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
