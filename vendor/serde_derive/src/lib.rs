//! Offline vendored no-op derive macros for the `serde` stand-in.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never actually serializes anything (no format crate is in the tree),
//! so the derives expand to nothing. They accept and ignore the common
//! `#[serde(...)]` helper attribute.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
