//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates values of `Value` from a deterministic RNG.
///
/// Unlike the real `proptest`, a strategy here is just a generator — no
/// value trees, no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics when `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// Strategy over all values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {
        $(impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (start as i128 + offset) as $t
                }
            }
        )+
    };
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
        )+
    };
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut r = rng();
        for _ in 0..1_000 {
            let v = (3u32..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let w = (-5i32..5).generate(&mut r);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut r = rng();
        for _ in 0..1_000 {
            let v = (0.25f64..0.75).generate(&mut r);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn tuple_and_map_compose() {
        let mut r = rng();
        let s = (0u32..10, 0.0..1.0f64).prop_map(|(a, b)| (b, a));
        let (b, a) = s.generate(&mut r);
        assert!(a < 10 && (0.0..1.0).contains(&b));
    }

    #[test]
    fn union_draws_all_options() {
        let mut r = rng();
        let s = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut seen = [false, false];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize - 1] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn vec_strategy_obeys_size() {
        let mut r = rng();
        for _ in 0..100 {
            let v = crate::collection::vec(0u8..10, 2..6).generate(&mut r);
            assert!((2..6).contains(&v.len()));
        }
    }
}
