//! Offline vendored mini property-testing harness.
//!
//! Implements the subset of the `proptest` API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! range and tuple strategies, `any::<T>()`, `Just`, `prop_oneof!`,
//! `Strategy::prop_map` and `prop::collection::vec`. Generation is
//! deterministic per test case index; there is **no shrinking** — a
//! failing case reports its inputs and the case number instead.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `prop::collection` — containers of strategy-generated values.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each argument is drawn from its strategy for
/// `ProptestConfig::cases` deterministic cases; a failing case panics with
/// the case number and the generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        u64::from(__case),
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__message) = __outcome {
                        panic!(
                            "property failed at case {}/{}: {}\n    inputs: {}",
                            __case + 1,
                            __config.cases,
                            __message,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// its inputs reported) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::Union::new(__options)
    }};
}
