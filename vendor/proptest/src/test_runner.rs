//! Test configuration and the deterministic case RNG.

/// Per-test configuration, consumed by the [`proptest!`](crate::proptest)
/// macro. Supports struct-update syntax:
/// `ProptestConfig { cases: 24, ..ProptestConfig::default() }`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32, max_shrink_iters: 0 }
    }
}

/// Deterministic generator RNG: SplitMix64 seeded from the test name and
/// case index, so every case is reproducible run-to-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the named test.
    #[must_use]
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng { state: hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) };
        // One warm-up step decorrelates adjacent case indices.
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[allow(clippy::cast_precision_loss)]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_is_reproducible() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_diverge() {
        let mut a = TestRng::for_case("x::y", 0);
        let mut b = TestRng::for_case("x::y", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::for_case("unit", 0);
        for _ in 0..1_000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
