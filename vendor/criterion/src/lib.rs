//! Offline vendored stand-in for `criterion`.
//!
//! Provides the subset of the API this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is timed with
//! `std::time::Instant` over a fixed batch of iterations and the mean
//! per-iteration time is printed; there is no statistical analysis,
//! outlier detection, or HTML report.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations timed per sample batch.
const BATCH_ITERS: u32 = 64;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Opens a named group; the group prefixes its benchmark ids.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_owned(), sample_size: 10 }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Function + parameter label for `bench_with_input`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` batched samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..BATCH_ITERS {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    let iters = bencher.samples.len() as u32 * BATCH_ITERS;
    if iters == 0 {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / iters;
    let best = *bencher.samples.iter().min().expect("non-empty samples") / BATCH_ITERS;
    println!("{name:<40} mean {mean:>12.2?}/iter   best {best:>12.2?}/iter");
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut hits = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| b.iter(|| hits += n));
        group.finish();
        assert!(hits > 0);
    }
}
