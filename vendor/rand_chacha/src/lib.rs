//! Offline vendored stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha keystream generator (Bernstein's ChaCha
//! with 8 double-round-pairs reduced to 8 rounds for [`ChaCha8Rng`]) over
//! the [`rand`] stand-in's traits. The keystream is a faithful ChaCha8
//! permutation but the word-to-output mapping is not guaranteed to be
//! bit-identical to the upstream `rand_chacha` crate; the workspace only
//! relies on determinism per seed and statistical quality.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A deterministic ChaCha RNG with `R` rounds.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const R: usize> {
    /// The 16-word input block: constants, 8-word key, 2-word counter,
    /// 2-word stream id.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    cursor: usize,
}

/// ChaCha with 8 rounds — the variant the simulator seeds everywhere.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const R: usize> ChaChaRng<R> {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..(R / 2) {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (b, (w, s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *b = w.wrapping_add(*s);
        }
        self.cursor = 0;
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }

    /// The stream id (words 14–15), settable for independent substreams.
    pub fn set_stream(&mut self, stream: u64) {
        self.state[14] = (stream & 0xFFFF_FFFF) as u32;
        self.state[15] = (stream >> 32) as u32;
        self.cursor = 16; // force refill with the new stream
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and stream id start at zero.
        ChaChaRng { state, block: [0; 16], cursor: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_mean_and_range() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        b.set_stream(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should differ, {same}/64 equal words");
    }
}
