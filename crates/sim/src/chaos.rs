//! FoundationDB-style chaos harness: a global invariant battery
//! ([`ChaosOracle`]), automatic fault-schedule shrinking ([`shrink_events`],
//! ddmin), and deterministic JSON reproducers ([`Reproducer`]).
//!
//! The oracle is *observational*: it reads the simulation, the cluster and
//! the decision trace between ticks and records violations instead of
//! panicking, so a fuzz driver can harvest a failing schedule, shrink it
//! to a minimal reproducer and write the reproducer to disk. All checks
//! are off unless a runner opts in, so the oracle costs nothing on the
//! headline path.

use std::collections::BTreeMap;

use evolve_telemetry::trace::{ActuationOutcome, TraceEvent, TraceRing, TraceSignal};
use evolve_types::{
    AppId, Error, JobId, NodeId, PodId, PriorityClass, ResourceVec, SimDuration, SimTime,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::engine::Simulation;
use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::pod::PodKind;

/// At most this many violations are stored verbatim; the rest only count.
const MAX_RECORDED: usize = 64;

/// Ticks an app may spend consecutively shed or below its grant floor
/// before [`ChaosOracle::check_arbitration`] flags unbounded starvation.
/// Chosen above any transient the fault battery can cause (node-crash
/// downtimes span tens of ticks; slew-limited ramp-back a handful) so a
/// firing means the arbiter genuinely wedged an app, not that overload
/// lasted a while.
const STARVATION_BOUND: u32 = 128;

/// One app's slice of an arbitration round, flattened to plain data so the
/// oracle never depends on control-crate types. Produced by the runner
/// from the capacity arbiter's outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArbitrationCheck {
    /// The application.
    pub app: AppId,
    /// Its overload priority class.
    pub class: PriorityClass,
    /// Total allocation the app's controller requested.
    pub requested: ResourceVec,
    /// What the arbiter granted.
    pub granted: ResourceVec,
    /// `true` when the app was shed outright (no actuation).
    pub shed: bool,
    /// `true` when the grant was reduced only by the recovery slew limit,
    /// not by capacity pressure.
    pub slew_limited: bool,
    /// `true` when the grant sits below the starvation floor
    /// (`floor_fraction × requested`).
    pub below_floor: bool,
    /// Consecutive arbitrations spent shed or below the floor.
    pub starvation_age: u32,
}

/// One invariant violation observed by the oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleViolation {
    /// Simulated time of the observation.
    pub at: SimTime,
    /// Stable name of the violated check (e.g. `"gang_atomicity"`).
    pub check: String,
    /// Human-readable description of what was observed.
    pub detail: String,
}

/// The oracle's verdict for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OracleReport {
    /// The first [`MAX_RECORDED`] violations, in observation order.
    pub violations: Vec<OracleViolation>,
    /// Total violations observed (may exceed `violations.len()`).
    pub total_violations: u64,
    /// How many per-tick check batteries ran.
    pub ticks_checked: u64,
}

impl OracleReport {
    /// `true` when no invariant was violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// The distinct check names that fired, sorted and deduplicated.
    #[must_use]
    pub fn failed_checks(&self) -> Vec<String> {
        let mut names: Vec<String> = self.violations.iter().map(|v| v.check.clone()).collect();
        names.sort();
        names.dedup();
        names
    }
}

/// The invariant battery, checked between control ticks and at end of
/// run. Cluster-side checks read the simulation directly; controller-side
/// checks (PID freeze, checkpoint equivalence) are fed by the runner via
/// [`ChaosOracle::scan_trace`] and [`ChaosOracle::record_violation`].
#[derive(Debug, Default)]
pub struct ChaosOracle {
    report: OracleReport,
    last_now: SimTime,
    /// First-seen rank set per gang job: the conservation baseline.
    gangs: BTreeMap<JobId, Vec<u32>>,
    /// `len + dropped` watermark of the trace ring at the last scan.
    trace_seen: u64,
    /// Scratch: non-terminal ranks per job, rebuilt each tick.
    live_ranks: BTreeMap<JobId, Vec<u32>>,
}

impl ChaosOracle {
    /// A fresh oracle with no observations.
    #[must_use]
    pub fn new() -> Self {
        ChaosOracle::default()
    }

    /// Records a violation found by an external check (runner-side
    /// batteries such as checkpoint→restore equivalence).
    pub fn record_violation(&mut self, at: SimTime, check: &str, detail: String) {
        self.report.total_violations += 1;
        if self.report.violations.len() < MAX_RECORDED {
            self.report.violations.push(OracleViolation { at, check: check.to_string(), detail });
        }
    }

    /// Runs the cluster-side battery: monotone time, per-node capacity
    /// conservation, no pods on unready nodes, and gang-pod conservation
    /// across evict+requeue cycles.
    pub fn check_tick(&mut self, sim: &Simulation) {
        let now = sim.now();
        self.report.ticks_checked += 1;
        if now < self.last_now {
            self.record_violation(
                now,
                "monotone_time",
                format!(
                    "time went backwards: {} -> {}",
                    self.last_now.as_secs_f64(),
                    now.as_secs_f64()
                ),
            );
        }
        self.last_now = now;
        for v in sim.cluster().invariant_violations() {
            self.record_violation(now, "capacity_conservation", v);
        }
        for node in sim.cluster().nodes() {
            if !node.is_ready() && !node.pods().is_empty() {
                self.record_violation(
                    now,
                    "unready_node_hosts_pods",
                    format!("unready node {} still hosts {} pods", node.id(), node.pods().len()),
                );
            }
        }
        self.check_gang_conservation(sim, now);
    }

    /// No rank pod may be lost or duplicated across evict+requeue: an
    /// unfinished gang's non-terminal rank set must equal the set seen
    /// when the gang was created; a finished gang's must be empty.
    fn check_gang_conservation(&mut self, sim: &Simulation, now: SimTime) {
        self.live_ranks.clear();
        let mut live = std::mem::take(&mut self.live_ranks);
        for pod in sim.cluster().pods() {
            if let PodKind::HpcRank { job, rank, .. } = pod.spec.kind {
                if !pod.phase.is_terminal() {
                    live.entry(job).or_default().push(rank);
                }
            }
        }
        for ranks in live.values_mut() {
            ranks.sort_unstable();
        }
        for (&job, ranks) in &live {
            if ranks.windows(2).any(|w| w[0] == w[1]) {
                self.record_violation(
                    now,
                    "gang_pod_duplicated",
                    format!("job {job:?} has duplicate live rank pods: {ranks:?}"),
                );
            }
            match self.gangs.get(&job) {
                None => {
                    self.gangs.insert(job, ranks.clone());
                }
                Some(expected) if expected != ranks => {
                    let detail = format!(
                        "job {job:?} live ranks {ranks:?} != expected {expected:?} (pod lost or leaked)"
                    );
                    self.record_violation(now, "gang_pod_conservation", detail);
                }
                Some(_) => {}
            }
        }
        self.live_ranks = live;
    }

    /// Gang atomicity: if the scheduler bound at least one member of a
    /// gang this cycle, no member of that gang may be left pending — a
    /// rollback must undo the whole placement or none of it.
    pub fn check_gang_atomicity(&mut self, sim: &Simulation, newly_bound: &[PodId]) {
        if newly_bound.is_empty() {
            return;
        }
        let now = sim.now();
        let mut touched: Vec<JobId> = Vec::new();
        for &pod in newly_bound {
            if let Ok(p) = sim.cluster().pod(pod) {
                if let PodKind::HpcRank { job, .. } = p.spec.kind {
                    if !touched.contains(&job) {
                        touched.push(job);
                    }
                }
            }
        }
        if touched.is_empty() {
            return;
        }
        for pod in sim.cluster().pods() {
            if let PodKind::HpcRank { job, rank, .. } = pod.spec.kind {
                if pod.is_pending() && touched.contains(&job) {
                    self.record_violation(
                        now,
                        "gang_atomicity",
                        format!("job {job:?} rank {rank} left pending after a cycle that bound gang members"),
                    );
                }
            }
        }
    }

    /// Scans trace events appended since the last scan for controller
    /// discipline: a decision must never be `Applied` on a stale or
    /// missing signal (the PID must freeze / hold instead).
    pub fn scan_trace(&mut self, trace: &TraceRing) {
        let total = trace.len() as u64 + trace.dropped();
        let new = usize::try_from(total - self.trace_seen).unwrap_or(usize::MAX).min(trace.len());
        self.trace_seen = total;
        for ev in trace.events().skip(trace.len() - new) {
            if let TraceEvent::Control(c) = ev {
                if c.signal != TraceSignal::Fresh && c.outcome == ActuationOutcome::Applied {
                    self.record_violation(
                        c.at,
                        "pid_freeze",
                        format!(
                            "app {:?} applied a decision on a {} signal at tick {}",
                            c.app,
                            c.signal.as_str(),
                            c.tick
                        ),
                    );
                }
            }
        }
    }

    /// Runs the arbitration battery over one round of grant outcomes:
    ///
    /// * **Capacity conservation** — the sum of all grants must fit
    ///   within ready capacity; the arbiter must never promise resources
    ///   the cluster does not have.
    /// * **No priority inversion** — a `Preemptible` app must not hold a
    ///   non-zero grant while any `Critical` app sits below its floor for
    ///   capacity reasons (a `Critical` app ramping back through the slew
    ///   limiter is self-inflicted and excluded).
    /// * **Bounded starvation** — no `Critical` app may stay shed or
    ///   below its floor for more than [`STARVATION_BOUND`] consecutive
    ///   arbitrations.
    pub fn check_arbitration(
        &mut self,
        at: SimTime,
        entries: &[ArbitrationCheck],
        ready_capacity: ResourceVec,
    ) {
        let granted_total: ResourceVec = entries.iter().map(|e| e.granted).sum();
        if !granted_total.fits_within(&ready_capacity) {
            self.record_violation(
                at,
                "arbiter_capacity_conservation",
                format!(
                    "granted total {granted_total:?} exceeds ready capacity {ready_capacity:?}"
                ),
            );
        }
        let critical_starved: Vec<&ArbitrationCheck> = entries
            .iter()
            .filter(|e| {
                e.class == PriorityClass::Critical && e.below_floor && !e.slew_limited && !e.shed
            })
            .collect();
        if !critical_starved.is_empty() {
            for e in entries {
                if e.class == PriorityClass::Preemptible
                    && !e.shed
                    && e.granted != ResourceVec::ZERO
                {
                    self.record_violation(
                        at,
                        "arbiter_priority_inversion",
                        format!(
                            "preemptible app {:?} holds a grant while critical app {:?} is below its floor",
                            e.app, critical_starved[0].app
                        ),
                    );
                }
            }
        }
        for e in entries {
            if e.class == PriorityClass::Critical && e.starvation_age > STARVATION_BOUND {
                self.record_violation(
                    at,
                    "arbiter_bounded_starvation",
                    format!(
                        "critical app {:?} starved for {} consecutive arbitrations (bound {})",
                        e.app, e.starvation_age, STARVATION_BOUND
                    ),
                );
            }
        }
    }

    /// Final battery: one last tick check plus the remaining trace
    /// suffix, then the report.
    #[must_use]
    pub fn finish(mut self, sim: &Simulation, trace: &TraceRing) -> OracleReport {
        self.check_tick(sim);
        self.scan_trace(trace);
        self.report
    }

    /// The report accumulated so far (the run keeps going).
    #[must_use]
    pub fn report(&self) -> &OracleReport {
        &self.report
    }
}

// ---------------------------------------------------------------------
// Fault-schedule shrinking (ddmin)
// ---------------------------------------------------------------------

/// Delta-debugs a failing fault schedule to a locally minimal one:
/// removes event chunks (halves first, then single events), then
/// repeatedly halves durations/lags/cycles. `still_fails` must return
/// `true` when the candidate schedule still reproduces the violation; it
/// is never called with an empty schedule.
pub fn shrink_events<F>(events: &[FaultEvent], mut still_fails: F) -> Vec<FaultEvent>
where
    F: FnMut(&[FaultEvent]) -> bool,
{
    let mut cur: Vec<FaultEvent> = events.to_vec();
    if cur.is_empty() {
        return cur;
    }
    // Phase 1+2: ddmin chunk removal, from halves down to single events.
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut removed = false;
        let mut start = 0;
        while start < cur.len() && cur.len() > 1 {
            let end = (start + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - start));
            cand.extend_from_slice(&cur[..start]);
            cand.extend_from_slice(&cur[end..]);
            if !cand.is_empty() && still_fails(&cand) {
                cur = cand;
                removed = true;
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !removed {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    // Phase 3: shorten durations (and lags / flap cycles) greedily.
    for i in 0..cur.len() {
        for _ in 0..32 {
            let Some(smaller) = halved_kind(&cur[i].kind) else {
                break;
            };
            let prev = std::mem::replace(&mut cur[i].kind, smaller);
            if !still_fails(&cur) {
                cur[i].kind = prev;
                break;
            }
        }
    }
    cur
}

/// The next smaller version of a fault, or `None` when it is already at
/// its floor (1 s durations, 1 flap cycle).
fn halved_kind(kind: &FaultKind) -> Option<FaultKind> {
    const FLOOR: SimDuration = SimDuration::from_secs(1);
    let halve = |d: SimDuration| -> Option<SimDuration> { (d > FLOOR).then(|| (d / 2).max(FLOOR)) };
    match *kind {
        FaultKind::NodeCrash { node, downtime: Some(d) } => {
            halve(d).map(|d| FaultKind::NodeCrash { node, downtime: Some(d) })
        }
        FaultKind::NodeCrash { .. } | FaultKind::ControllerCrash => None,
        FaultKind::ScrapeBlackout { app, duration } => {
            halve(duration).map(|duration| FaultKind::ScrapeBlackout { app, duration })
        }
        FaultKind::MetricNoise { app, duration, cv } => {
            halve(duration).map(|duration| FaultKind::MetricNoise { app, duration, cv })
        }
        FaultKind::ControlStall { duration } => {
            halve(duration).map(|duration| FaultKind::ControlStall { duration })
        }
        FaultKind::ActuationDrop { duration } => {
            halve(duration).map(|duration| FaultKind::ActuationDrop { duration })
        }
        FaultKind::ActuationDelay { duration, lag } => halve(duration)
            .map(|duration| FaultKind::ActuationDelay { duration, lag })
            .or_else(|| halve(lag).map(|lag| FaultKind::ActuationDelay { duration, lag })),
        FaultKind::ActuationPartial { duration, fraction } => {
            halve(duration).map(|duration| FaultKind::ActuationPartial { duration, fraction })
        }
        FaultKind::NodeFlap { node, cycles, period } => (cycles > 1)
            .then(|| FaultKind::NodeFlap { node, cycles: (cycles / 2).max(1), period })
            .or_else(|| halve(period).map(|period| FaultKind::NodeFlap { node, cycles, period })),
    }
}

/// Builds a scheduled-only plan from an event list (the shrinker and the
/// replay path both work on plain event lists).
///
/// # Panics
///
/// Panics when an event fails [`FaultKind::validate`]; shrunk events stay
/// valid by construction.
#[must_use]
pub fn plan_from_events(events: &[FaultEvent]) -> FaultPlan {
    events.iter().fold(FaultPlan::new(), |p, ev| p.with_event(ev.at, ev.kind.clone()))
}

// ---------------------------------------------------------------------
// Random fault-plan generation
// ---------------------------------------------------------------------

/// Draws a seeded random scheduled-only fault schedule over `[0,
/// horizon)`: every fault class including the actuation-path kinds, with
/// parameters scaled to the horizon. Deterministic in `seed`.
#[must_use]
pub fn random_fault_events(
    seed: u64,
    horizon: SimDuration,
    nodes: usize,
    apps: usize,
    max_events: usize,
) -> Vec<FaultEvent> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc4a0_5bad);
    let horizon_s = horizon.as_secs_f64().max(10.0) as u64;
    // The vendored rand stub exposes only `gen::<f64>()`/`gen_range_f64`;
    // integer ranges are derived from the uniform f64 draw.
    let uniform = |rng: &mut ChaCha8Rng, lo: u64, hi: u64| -> u64 {
        let hi = hi.max(lo + 1);
        (lo + (rng.gen::<f64>() * (hi - lo) as f64) as u64).min(hi - 1)
    };
    let count = uniform(&mut rng, 1, max_events.max(1) as u64 + 1) as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let at = SimTime::from_secs(uniform(&mut rng, 1, horizon_s));
        let dur = SimDuration::from_secs(uniform(&mut rng, 5, (horizon_s / 3).max(6)));
        let kind = match uniform(&mut rng, 0, 9) {
            0 => FaultKind::NodeCrash {
                node: NodeId::new(uniform(&mut rng, 0, nodes.max(1) as u64) as u32),
                downtime: if rng.gen_bool(0.8) { Some(dur) } else { None },
            },
            1 => FaultKind::ScrapeBlackout { app: None, duration: dur },
            2 => FaultKind::ScrapeBlackout {
                app: Some(AppId::new(uniform(&mut rng, 0, apps.max(1) as u64) as u32)),
                duration: dur,
            },
            3 => FaultKind::MetricNoise {
                app: None,
                duration: dur,
                cv: rng.gen_range_f64(0.05, 0.8),
            },
            4 => FaultKind::ControlStall { duration: dur },
            5 => FaultKind::ActuationDrop { duration: dur },
            6 => FaultKind::ActuationDelay {
                duration: dur,
                lag: SimDuration::from_secs(uniform(&mut rng, 1, 30)),
            },
            7 => {
                FaultKind::ActuationPartial { duration: dur, fraction: rng.gen_range_f64(0.1, 1.0) }
            }
            _ => FaultKind::NodeFlap {
                node: NodeId::new(uniform(&mut rng, 0, nodes.max(1) as u64) as u32),
                cycles: uniform(&mut rng, 1, 6) as u32,
                period: SimDuration::from_secs(uniform(&mut rng, 4, 40)),
            },
        };
        out.push(FaultEvent { at, kind });
    }
    out.sort_by_key(|ev| ev.at);
    out
}

// ---------------------------------------------------------------------
// Deterministic JSON reproducer
// ---------------------------------------------------------------------

/// A self-contained, replayable description of one failing fuzz case:
/// run the named profile with this seed and this fault schedule and the
/// named check fires.
#[derive(Debug, Clone, PartialEq)]
pub struct Reproducer {
    /// Run seed.
    pub seed: u64,
    /// Workload-profile name understood by the fuzz driver.
    pub profile: String,
    /// Run horizon.
    pub horizon: SimDuration,
    /// Cluster node count.
    pub nodes: u32,
    /// The (minimized) fault schedule.
    pub events: Vec<FaultEvent>,
    /// The check that fired (first failed check).
    pub violation: String,
}

impl Reproducer {
    /// Serializes to deterministic JSON: fixed key order, integral
    /// microsecond timestamps, no whitespace variance.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.events.len() * 96);
        s.push_str("{\"version\":1,\"seed\":");
        s.push_str(&self.seed.to_string());
        s.push_str(",\"profile\":\"");
        push_escaped(&mut s, &self.profile);
        s.push_str("\",\"horizon_us\":");
        s.push_str(&self.horizon.as_micros().to_string());
        s.push_str(",\"nodes\":");
        s.push_str(&self.nodes.to_string());
        s.push_str(",\"violation\":\"");
        push_escaped(&mut s, &self.violation);
        s.push_str("\",\"events\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_event(&mut s, ev);
        }
        s.push_str("]}");
        s
    }

    /// Parses a reproducer previously written by [`Reproducer::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on malformed JSON, an unsupported
    /// version, or an unknown fault kind.
    pub fn from_json(text: &str) -> Result<Self, Error> {
        let root = parse_json(text)?;
        let obj = root.as_obj("reproducer")?;
        if get_u64(obj, "version")? != 1 {
            return Err(Error::InvalidConfig("unsupported reproducer version".into()));
        }
        let events_json = get(obj, "events")?.as_arr("events")?;
        let mut events = Vec::with_capacity(events_json.len());
        for ev in events_json {
            events.push(parse_event(ev.as_obj("event")?)?);
        }
        Ok(Reproducer {
            seed: get_u64(obj, "seed")?,
            profile: get(obj, "profile")?.as_str("profile")?.to_string(),
            horizon: SimDuration::from_micros(get_u64(obj, "horizon_us")?),
            nodes: u32::try_from(get_u64(obj, "nodes")?)
                .map_err(|_| Error::InvalidConfig("nodes out of range".into()))?,
            events,
            violation: get(obj, "violation")?.as_str("violation")?.to_string(),
        })
    }
}

fn write_event(s: &mut String, ev: &FaultEvent) {
    use std::fmt::Write;
    let _ = write!(s, "{{\"at_us\":{},\"kind\":\"{}\"", ev.at.as_micros(), ev.kind.label());
    match &ev.kind {
        FaultKind::NodeCrash { node, downtime } => {
            let _ = write!(s, ",\"node\":{}", node.as_usize());
            match downtime {
                Some(d) => {
                    let _ = write!(s, ",\"downtime_us\":{}", d.as_micros());
                }
                None => s.push_str(",\"downtime_us\":null"),
            }
        }
        FaultKind::ScrapeBlackout { app, duration } => {
            write_app(s, *app);
            let _ = write!(s, ",\"duration_us\":{}", duration.as_micros());
        }
        FaultKind::MetricNoise { app, duration, cv } => {
            write_app(s, *app);
            let _ = write!(s, ",\"duration_us\":{},\"cv\":{cv}", duration.as_micros());
        }
        FaultKind::ControlStall { duration } | FaultKind::ActuationDrop { duration } => {
            let _ = write!(s, ",\"duration_us\":{}", duration.as_micros());
        }
        FaultKind::ControllerCrash => {}
        FaultKind::ActuationDelay { duration, lag } => {
            let _ = write!(
                s,
                ",\"duration_us\":{},\"lag_us\":{}",
                duration.as_micros(),
                lag.as_micros()
            );
        }
        FaultKind::ActuationPartial { duration, fraction } => {
            let _ = write!(s, ",\"duration_us\":{},\"fraction\":{fraction}", duration.as_micros());
        }
        FaultKind::NodeFlap { node, cycles, period } => {
            let _ = write!(
                s,
                ",\"node\":{},\"cycles\":{cycles},\"period_us\":{}",
                node.as_usize(),
                period.as_micros()
            );
        }
    }
    s.push('}');
}

fn write_app(s: &mut String, app: Option<AppId>) {
    use std::fmt::Write;
    match app {
        Some(a) => {
            let _ = write!(s, ",\"app\":{}", a.as_usize());
        }
        None => s.push_str(",\"app\":null"),
    }
}

fn parse_event(obj: &[(String, Json)]) -> Result<FaultEvent, Error> {
    let at = SimTime::ZERO + SimDuration::from_micros(get_u64(obj, "at_us")?);
    let kind_name = get(obj, "kind")?.as_str("kind")?;
    let dur = |key: &str| -> Result<SimDuration, Error> {
        Ok(SimDuration::from_micros(get_u64(obj, key)?))
    };
    let kind = match kind_name {
        "node_crash" => FaultKind::NodeCrash {
            node: NodeId::new(
                u32::try_from(get_u64(obj, "node")?)
                    .map_err(|_| Error::InvalidConfig("node id out of range".into()))?,
            ),
            downtime: match get(obj, "downtime_us")? {
                Json::Null => None,
                v => Some(SimDuration::from_micros(v.as_u64("downtime_us")?)),
            },
        },
        "scrape_blackout" => {
            FaultKind::ScrapeBlackout { app: parse_app(obj)?, duration: dur("duration_us")? }
        }
        "metric_noise" => FaultKind::MetricNoise {
            app: parse_app(obj)?,
            duration: dur("duration_us")?,
            cv: get(obj, "cv")?.as_f64("cv")?,
        },
        "control_stall" => FaultKind::ControlStall { duration: dur("duration_us")? },
        "controller_crash" => FaultKind::ControllerCrash,
        "actuation_drop" => FaultKind::ActuationDrop { duration: dur("duration_us")? },
        "actuation_delay" => {
            FaultKind::ActuationDelay { duration: dur("duration_us")?, lag: dur("lag_us")? }
        }
        "actuation_partial" => FaultKind::ActuationPartial {
            duration: dur("duration_us")?,
            fraction: get(obj, "fraction")?.as_f64("fraction")?,
        },
        "node_flap" => FaultKind::NodeFlap {
            node: NodeId::new(
                u32::try_from(get_u64(obj, "node")?)
                    .map_err(|_| Error::InvalidConfig("node id out of range".into()))?,
            ),
            cycles: u32::try_from(get_u64(obj, "cycles")?)
                .map_err(|_| Error::InvalidConfig("cycles out of range".into()))?,
            period: dur("period_us")?,
        },
        other => {
            return Err(Error::InvalidConfig(format!("unknown fault kind {other:?}")));
        }
    };
    kind.validate()?;
    Ok(FaultEvent { at, kind })
}

fn parse_app(obj: &[(String, Json)]) -> Result<Option<AppId>, Error> {
    match get(obj, "app")? {
        Json::Null => Ok(None),
        v => Ok(Some(AppId::new(
            u32::try_from(v.as_u64("app")?)
                .map_err(|_| Error::InvalidConfig("app id out of range".into()))?,
        ))),
    }
}

// ---------------------------------------------------------------------
// Minimal JSON (vendored serde is a stub, so the reproducer format is
// read and written by hand; deterministic output needs that anyway).
// ---------------------------------------------------------------------

/// A parsed JSON value (reproducer subset: no exponent-heavy floats
/// beyond what `f64::from_str` accepts, escapes limited to `\"`, `\\`,
/// `\n`, `\t`).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self, what: &str) -> Result<&[(String, Json)], Error> {
        match self {
            Json::Obj(fields) => Ok(fields),
            _ => Err(Error::InvalidConfig(format!("{what} must be a JSON object"))),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], Error> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(Error::InvalidConfig(format!("{what} must be a JSON array"))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, Error> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(Error::InvalidConfig(format!("{what} must be a JSON string"))),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, Error> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(Error::InvalidConfig(format!("{what} must be a JSON number"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, Error> {
        let n = self.as_f64(what)?;
        if n < 0.0 || n.fract() != 0.0 || n > 9.0e15 {
            return Err(Error::InvalidConfig(format!("{what} must be a non-negative integer")));
        }
        Ok(n as u64)
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, Error> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::InvalidConfig(format!("missing field {key:?}")))
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, Error> {
    get(obj, key)?.as_u64(key)
}

fn parse_json(text: &str) -> Result<Json, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::InvalidConfig(format!("trailing bytes at offset {pos}")));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), Error> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::InvalidConfig(format!("expected {:?} at offset {}", ch as char, *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => {
                        return Err(Error::InvalidConfig(format!("bad object at offset {}", *pos)))
                    }
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(Error::InvalidConfig(format!("bad array at offset {}", *pos))),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos])
                .map_err(|_| Error::InvalidConfig("non-utf8 number".into()))?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| Error::InvalidConfig(format!("bad number {text:?}")))
        }
        None => Err(Error::InvalidConfig("unexpected end of input".into())),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    _ => {
                        return Err(Error::InvalidConfig(format!(
                            "unsupported escape at offset {}",
                            *pos
                        )))
                    }
                }
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through unchanged.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let end = (*pos + len).min(b.len());
                out.push_str(
                    std::str::from_utf8(&b[*pos..end])
                        .map_err(|_| Error::InvalidConfig("non-utf8 string".into()))?,
                );
                *pos = end;
            }
        }
    }
    Err(Error::InvalidConfig("unterminated string".into()))
}

fn push_escaped(s: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            c => s.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent { at: SimTime::from_secs(at), kind }
    }

    fn stall(at: u64, dur: u64) -> FaultEvent {
        ev(at, FaultKind::ControlStall { duration: SimDuration::from_secs(dur) })
    }

    #[test]
    fn shrinker_finds_single_culprit() {
        // The "bug" fires iff the schedule contains the stall at t=70.
        let events: Vec<FaultEvent> = (0..16).map(|i| stall(10 + i * 10, 20)).collect();
        let mut calls = 0u32;
        let minimal = shrink_events(&events, |cand| {
            calls += 1;
            cand.iter().any(|e| e.at == SimTime::from_secs(70))
        });
        assert_eq!(minimal.len(), 1);
        assert_eq!(minimal[0].at, SimTime::from_secs(70));
        assert!(calls < 200, "ddmin should need far fewer runs than 2^16");
    }

    #[test]
    fn shrinker_keeps_interacting_pair() {
        // The bug needs both t=30 and t=110 present.
        let events: Vec<FaultEvent> = (0..12).map(|i| stall(10 + i * 10, 40)).collect();
        let minimal = shrink_events(&events, |cand| {
            let has = |t: u64| cand.iter().any(|e| e.at == SimTime::from_secs(t));
            has(30) && has(110)
        });
        assert_eq!(minimal.len(), 2);
    }

    #[test]
    fn shrinker_halves_durations_to_the_floor() {
        let events = vec![stall(10, 64)];
        let minimal = shrink_events(&events, |_| true);
        assert_eq!(minimal.len(), 1);
        let FaultKind::ControlStall { duration } = minimal[0].kind else {
            panic!("kind changed");
        };
        assert_eq!(duration, SimDuration::from_secs(1));
    }

    #[test]
    fn reproducer_json_round_trips_every_kind() {
        let events = vec![
            ev(
                10,
                FaultKind::NodeCrash {
                    node: NodeId::new(1),
                    downtime: Some(SimDuration::from_secs(40)),
                },
            ),
            ev(11, FaultKind::NodeCrash { node: NodeId::new(2), downtime: None }),
            ev(
                20,
                FaultKind::ScrapeBlackout {
                    app: Some(AppId::new(3)),
                    duration: SimDuration::from_secs(15),
                },
            ),
            ev(25, FaultKind::ScrapeBlackout { app: None, duration: SimDuration::from_secs(5) }),
            ev(
                30,
                FaultKind::MetricNoise {
                    app: None,
                    duration: SimDuration::from_secs(30),
                    cv: 0.25,
                },
            ),
            ev(40, FaultKind::ControlStall { duration: SimDuration::from_secs(12) }),
            ev(45, FaultKind::ControllerCrash),
            ev(50, FaultKind::ActuationDrop { duration: SimDuration::from_secs(33) }),
            ev(
                60,
                FaultKind::ActuationDelay {
                    duration: SimDuration::from_secs(20),
                    lag: SimDuration::from_secs(7),
                },
            ),
            ev(
                70,
                FaultKind::ActuationPartial { duration: SimDuration::from_secs(18), fraction: 0.5 },
            ),
            ev(
                80,
                FaultKind::NodeFlap {
                    node: NodeId::new(0),
                    cycles: 4,
                    period: SimDuration::from_secs(10),
                },
            ),
        ];
        let repro = Reproducer {
            seed: 1234,
            profile: "service_hpc".to_string(),
            horizon: SimDuration::from_secs(600),
            nodes: 6,
            events,
            violation: "gang_atomicity".to_string(),
        };
        let json = repro.to_json();
        let parsed = Reproducer::from_json(&json).expect("round trip");
        assert_eq!(parsed, repro);
        // Deterministic: serializing again yields the same bytes.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn reproducer_rejects_malformed_input() {
        assert!(Reproducer::from_json("").is_err());
        assert!(Reproducer::from_json("{}").is_err());
        assert!(Reproducer::from_json("{\"version\":2}").is_err());
        let good = Reproducer {
            seed: 1,
            profile: "p".to_string(),
            horizon: SimDuration::from_secs(60),
            nodes: 2,
            events: vec![stall(5, 10)],
            violation: "x".to_string(),
        }
        .to_json();
        assert!(Reproducer::from_json(&good[..good.len() - 1]).is_err(), "truncation detected");
        let bad_kind = good.replace("control_stall", "warp_core_breach");
        assert!(Reproducer::from_json(&bad_kind).is_err());
    }

    #[test]
    fn random_events_are_seed_deterministic_and_valid() {
        let horizon = SimDuration::from_secs(600);
        let a = random_fault_events(9, horizon, 6, 3, 12);
        let b = random_fault_events(9, horizon, 6, 3, 12);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() <= 12);
        for ev in &a {
            ev.kind.validate().expect("generated faults are valid");
            assert!(ev.at < SimTime::ZERO + horizon);
        }
        let c = random_fault_events(10, horizon, 6, 3, 12);
        assert_ne!(a, c, "different seeds draw different schedules");
        // The generated schedule builds a valid plan.
        let plan = plan_from_events(&a);
        assert!(plan.validate(horizon).is_ok());
    }

    #[test]
    fn oracle_reports_clean_on_untouched_cluster() {
        use crate::{ClusterConfig, NodeShape, Simulation, SimulationConfig};
        use evolve_workload::Scenario;
        let scenario = Scenario::single_diurnal();
        let sim = Simulation::new(
            SimulationConfig::default(),
            ClusterConfig::uniform(4, NodeShape::default()),
            &scenario.mix,
            42,
        );
        let mut oracle = ChaosOracle::new();
        oracle.check_tick(&sim);
        let trace = TraceRing::new(64);
        let report = oracle.finish(&sim, &trace);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.ticks_checked, 2);
    }

    #[test]
    fn oracle_flags_applied_on_degraded_signal() {
        use evolve_telemetry::trace::ControlTrace;
        use evolve_types::ResourceVec;
        let mut trace = TraceRing::new(16);
        trace.push(TraceEvent::Control(ControlTrace {
            tick: 3,
            at: SimTime::from_secs(15),
            app: AppId::new(0),
            signal: TraceSignal::Stale,
            measured: None,
            rate_rps: 0.0,
            replicas: 2,
            per_replica: ResourceVec::ZERO,
            outcome: ActuationOutcome::Applied,
            resize_failures: 0,
            explain: None,
        }));
        let mut oracle = ChaosOracle::new();
        oracle.scan_trace(&trace);
        assert_eq!(oracle.report().total_violations, 1);
        assert_eq!(oracle.report().violations[0].check, "pid_freeze");
        // Rescanning must not double-count already-seen events.
        oracle.scan_trace(&trace);
        assert_eq!(oracle.report().total_violations, 1);
    }
}
