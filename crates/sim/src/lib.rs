//! Discrete-event Kubernetes-like cluster simulator.
//!
//! This crate is the substitution for the paper's real Kubernetes cluster
//! (see DESIGN.md): it reproduces the API surface and the dynamics a
//! resource manager interacts with, so the EVOLVE controllers and
//! schedulers exercise the same code paths they would against a live
//! cluster.
//!
//! * [`Node`], [`Pod`], [`ClusterState`] — nodes with multi-resource
//!   capacities, pods with requests/limits, binding/eviction/vertical
//!   resize with strict accounting invariants.
//! * [`ReplicaServer`] — the performance model: a replica executes its
//!   in-flight requests under multi-resource processor sharing; latency is
//!   governed by the bottleneck dimension, memory overcommit causes
//!   thrashing and ultimately OOM kills.
//! * [`Simulation`] — the event engine: open-loop request arrival per
//!   service, dispatching, batch stage orchestration, HPC gang execution,
//!   pod start latency, metric scraping windows and fault injection.
//!
//! # Examples
//!
//! ```
//! use evolve_sim::{ClusterConfig, Simulation, SimulationConfig};
//! use evolve_workload::Scenario;
//!
//! let scenario = Scenario::single_diurnal();
//! let mut sim = Simulation::new(
//!     SimulationConfig::default(),
//!     ClusterConfig::uniform(4, Default::default()),
//!     &scenario.mix,
//!     42,
//! );
//! // Nothing is scheduled yet: all pods are pending.
//! assert!(sim.cluster().pending_pods().count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod cluster;
mod engine;
mod faults;
mod node;
mod observe;
mod perf;
mod pod;

pub use chaos::{ArbitrationCheck, ChaosOracle, OracleReport, OracleViolation, Reproducer};
pub use cluster::{ClusterConfig, ClusterState, NodeShape};
pub use engine::{Simulation, SimulationConfig};
pub use faults::{FaultEvent, FaultInjector, FaultKind, FaultPlan, StochasticFaults};
pub use node::Node;
pub use observe::{AppKind, AppStatus, AppWindow, ClusterSnapshot, JobOutcome};
pub use perf::{DrainOutcome, PerfConfig, ReplicaServer};
pub use pod::{Pod, PodKind, PodPhase, PodSpec};
