//! Deterministic fault injection.
//!
//! A [`FaultPlan`] declares *what* goes wrong — scheduled events plus an
//! optional seeded-stochastic background process — and a [`FaultInjector`]
//! realizes the plan for one run: node crashes are armed as engine events,
//! while scrape blackouts, noisy metric windows and control-plane stalls
//! are interval predicates the control loop consults each tick. All
//! randomness derives from the run seed, so the same plan and seed yield
//! the same fault timeline regardless of how many runs execute in
//! parallel.

use evolve_types::{AppId, NodeId, SimDuration, SimTime};
use evolve_workload::{sample_exponential, sample_lognormal_with, SamplingMode};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::engine::Simulation;
use crate::observe::AppWindow;

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// A node goes unready; its pods are evicted and requeued. Recovers
    /// after `downtime` when given, otherwise stays down.
    NodeCrash {
        /// The failing node.
        node: NodeId,
        /// Time until the node rejoins; `None` means permanent.
        downtime: Option<SimDuration>,
    },
    /// Metric scrapes fail: the controller sees no window at all.
    ScrapeBlackout {
        /// Affected app; `None` blacks out every app.
        app: Option<AppId>,
        /// How long scrapes stay dark.
        duration: SimDuration,
    },
    /// Scrapes succeed but the measurements are distorted.
    MetricNoise {
        /// Affected app; `None` distorts every app.
        app: Option<AppId>,
        /// How long windows stay noisy.
        duration: SimDuration,
        /// Coefficient of variation of the multiplicative distortion.
        cv: f64,
    },
    /// The controller misses its ticks entirely (control-plane stall).
    ControlStall {
        /// How long the control plane is down.
        duration: SimDuration,
    },
    /// The controller **process dies** and restarts: unlike a stall, all
    /// in-memory control state (integrators, learned models, backoff
    /// tables) is destroyed at this instant. How the restarted controller
    /// rebuilds state is the runner's recovery strategy.
    ControllerCrash,
}

/// A fault scheduled at an absolute time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault begins.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Rates for the seeded-stochastic background fault process. Arrivals are
/// Poisson; durations are exponential around the configured means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StochasticFaults {
    /// Node crashes per hour (a uniformly random node each time).
    pub node_crashes_per_hour: f64,
    /// Mean node downtime.
    pub mean_downtime: SimDuration,
    /// Cluster-wide scrape blackouts per hour.
    pub blackouts_per_hour: f64,
    /// Mean blackout length.
    pub mean_blackout: SimDuration,
    /// Control-plane stalls per hour.
    pub stalls_per_hour: f64,
    /// Mean stall length.
    pub mean_stall: SimDuration,
    /// Controller crash–restarts per hour (state-destroying, instant).
    pub controller_crashes_per_hour: f64,
}

impl Default for StochasticFaults {
    fn default() -> Self {
        StochasticFaults {
            node_crashes_per_hour: 0.0,
            mean_downtime: SimDuration::from_secs(120),
            blackouts_per_hour: 0.0,
            mean_blackout: SimDuration::from_secs(60),
            stalls_per_hour: 0.0,
            mean_stall: SimDuration::from_secs(30),
            controller_crashes_per_hour: 0.0,
        }
    }
}

/// A declarative fault schedule for one experiment run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    scheduled: Vec<FaultEvent>,
    stochastic: Option<StochasticFaults>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty()
            && !self.stochastic.is_some_and(|s| {
                s.node_crashes_per_hour > 0.0
                    || s.blackouts_per_hour > 0.0
                    || s.stalls_per_hour > 0.0
                    || s.controller_crashes_per_hour > 0.0
            })
    }

    /// Adds an arbitrary scheduled fault.
    #[must_use]
    pub fn with_event(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.scheduled.push(FaultEvent { at, kind });
        self
    }

    /// Crashes `node` at `at`, recovering after `downtime` when given.
    #[must_use]
    pub fn with_node_crash(self, node: NodeId, at: SimTime, downtime: Option<SimDuration>) -> Self {
        self.with_event(at, FaultKind::NodeCrash { node, downtime })
    }

    /// Blacks out metric scrapes for every app.
    #[must_use]
    pub fn with_scrape_blackout(self, at: SimTime, duration: SimDuration) -> Self {
        self.with_event(at, FaultKind::ScrapeBlackout { app: None, duration })
    }

    /// Blacks out metric scrapes for one app.
    #[must_use]
    pub fn with_app_blackout(self, app: AppId, at: SimTime, duration: SimDuration) -> Self {
        self.with_event(at, FaultKind::ScrapeBlackout { app: Some(app), duration })
    }

    /// Distorts every app's metric windows with lognormal noise.
    #[must_use]
    pub fn with_metric_noise(self, at: SimTime, duration: SimDuration, cv: f64) -> Self {
        self.with_event(at, FaultKind::MetricNoise { app: None, duration, cv })
    }

    /// Stalls the control plane (skipped controller ticks).
    #[must_use]
    pub fn with_control_stall(self, at: SimTime, duration: SimDuration) -> Self {
        self.with_event(at, FaultKind::ControlStall { duration })
    }

    /// Kills and restarts the controller process at `at`, destroying all
    /// in-memory control state.
    #[must_use]
    pub fn with_controller_crash(self, at: SimTime) -> Self {
        self.with_event(at, FaultKind::ControllerCrash)
    }

    /// Adds a seeded-stochastic background fault process.
    #[must_use]
    pub fn with_stochastic(mut self, config: StochasticFaults) -> Self {
        self.stochastic = Some(config);
        self
    }

    /// The scheduled events (stochastic ones are realized per seed by the
    /// injector).
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.scheduled
    }
}

/// A realized fault timeline for one `(plan, seed)` pair.
///
/// Intervals are half-open: a fault starting at `t` with duration `d` is
/// active for `t <= now < t + d`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    crashes: Vec<(NodeId, SimTime, Option<SimTime>)>,
    blackouts: Vec<(SimTime, SimTime, Option<AppId>)>,
    noise: Vec<(SimTime, SimTime, Option<AppId>, f64)>,
    stalls: Vec<(SimTime, SimTime)>,
    controller_crashes: Vec<SimTime>,
    noise_rng: ChaCha8Rng,
    sampling: SamplingMode,
}

impl FaultInjector {
    /// Realizes a plan: scheduled events are copied, stochastic ones are
    /// drawn from a dedicated ChaCha8 stream (`seed`-derived, independent
    /// of the engine's stream) over `[0, horizon)`.
    #[must_use]
    pub fn new(plan: &FaultPlan, seed: u64, horizon: SimDuration, node_count: usize) -> Self {
        let mut inj = FaultInjector {
            crashes: Vec::new(),
            blackouts: Vec::new(),
            noise: Vec::new(),
            stalls: Vec::new(),
            controller_crashes: Vec::new(),
            noise_rng: ChaCha8Rng::seed_from_u64(seed ^ 0x4e01_5e00),
            sampling: SamplingMode::default(),
        };
        for ev in &plan.scheduled {
            inj.push(ev.at, &ev.kind);
        }
        if let Some(sto) = plan.stochastic {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfa17_0001);
            for at in poisson_arrivals(&mut rng, sto.node_crashes_per_hour, horizon) {
                let node = ((rng.gen::<f64>() * node_count as f64) as usize).min(node_count - 1);
                let downtime = exp_duration(&mut rng, sto.mean_downtime);
                inj.push(
                    at,
                    &FaultKind::NodeCrash {
                        node: NodeId::new(node as u32),
                        downtime: Some(downtime),
                    },
                );
            }
            for at in poisson_arrivals(&mut rng, sto.blackouts_per_hour, horizon) {
                let duration = exp_duration(&mut rng, sto.mean_blackout);
                inj.push(at, &FaultKind::ScrapeBlackout { app: None, duration });
            }
            for at in poisson_arrivals(&mut rng, sto.stalls_per_hour, horizon) {
                let duration = exp_duration(&mut rng, sto.mean_stall);
                inj.push(at, &FaultKind::ControlStall { duration });
            }
            // Realized last so that adding controller crashes to a plan
            // leaves the existing node-crash/blackout/stall timelines of
            // the same seed untouched.
            for at in poisson_arrivals(&mut rng, sto.controller_crashes_per_hour, horizon) {
                inj.push(at, &FaultKind::ControllerCrash);
            }
        }
        inj.crashes.sort_by_key(|&(node, at, _)| (at, node));
        inj.blackouts.sort_by_key(|&(s, e, _)| (s, e));
        inj.noise.sort_by_key(|&(s, e, _, _)| (s, e));
        inj.stalls.sort_unstable();
        inj.controller_crashes.sort_unstable();
        inj
    }

    /// Selects which sampler generation the noise-distortion draws use.
    /// `Legacy` keeps the Box–Muller stream of the pre-batched sampler
    /// bit-for-bit.
    #[must_use]
    pub fn with_sampling(mut self, mode: SamplingMode) -> Self {
        self.sampling = mode;
        self
    }

    fn push(&mut self, at: SimTime, kind: &FaultKind) {
        match *kind {
            FaultKind::NodeCrash { node, downtime } => {
                self.crashes.push((node, at, downtime.map(|d| at + d)));
            }
            FaultKind::ScrapeBlackout { app, duration } => {
                self.blackouts.push((at, at + duration, app));
            }
            FaultKind::MetricNoise { app, duration, cv } => {
                self.noise.push((at, at + duration, app, cv));
            }
            FaultKind::ControlStall { duration } => {
                self.stalls.push((at, at + duration));
            }
            FaultKind::ControllerCrash => {
                self.controller_crashes.push(at);
            }
        }
    }

    /// Schedules the realized node crashes as engine events.
    pub fn arm(&self, sim: &mut Simulation) {
        for &(node, at, recover) in &self.crashes {
            sim.inject_node_failure(node, at, recover);
        }
    }

    /// The realized crash schedule: `(node, fail_at, recover_at)`.
    #[must_use]
    pub fn crash_schedule(&self) -> &[(NodeId, SimTime, Option<SimTime>)] {
        &self.crashes
    }

    /// `false` while a blackout covering `app` is active at `at`.
    #[must_use]
    pub fn scrape_available(&self, app: AppId, at: SimTime) -> bool {
        !self
            .blackouts
            .iter()
            .any(|&(s, e, scope)| s <= at && at < e && scope.is_none_or(|a| a == app))
    }

    /// `true` while a control-plane stall is active at `at`.
    #[must_use]
    pub fn controller_stalled(&self, at: SimTime) -> bool {
        self.stalls.iter().any(|&(s, e)| s <= at && at < e)
    }

    /// The realized controller crash times, sorted ascending.
    #[must_use]
    pub fn controller_crash_schedule(&self) -> &[SimTime] {
        &self.controller_crashes
    }

    /// `true` when a controller crash falls in the half-open interval
    /// `(from, to]`. The runner polls this once per control tick with the
    /// previous tick's time as `from`, so every crash is observed exactly
    /// once even when several ticks were stalled in between.
    #[must_use]
    pub fn controller_crashed_in(&self, from: SimTime, to: SimTime) -> bool {
        self.controller_crashes.iter().any(|&t| from < t && t <= to)
    }

    /// The noise CV in force for `app` at `at`, when any.
    #[must_use]
    pub fn noise_cv(&self, app: AppId, at: SimTime) -> Option<f64> {
        self.noise
            .iter()
            .find(|&&(s, e, scope, _)| s <= at && at < e && scope.is_none_or(|a| a == app))
            .map(|&(_, _, _, cv)| cv)
    }

    /// Applies multiplicative lognormal distortion to a freshly scraped
    /// window when a noise fault covers it. Latency, throughput and usage
    /// each get an independent factor.
    pub fn distort_window(&mut self, app: AppId, window: &mut AppWindow) {
        let Some(cv) = self.noise_cv(app, window.at) else {
            return;
        };
        let lat = sample_lognormal_with(self.sampling, &mut self.noise_rng, 1.0, cv);
        let thr = sample_lognormal_with(self.sampling, &mut self.noise_rng, 1.0, cv);
        let usage = sample_lognormal_with(self.sampling, &mut self.noise_rng, 1.0, cv);
        if let Some(p) = window.p99_ms.as_mut() {
            *p *= lat;
        }
        if let Some(m) = window.mean_ms.as_mut() {
            *m *= lat;
        }
        window.throughput_rps *= thr;
        window.usage = window.usage * usage;
    }
}

/// Poisson arrival times over `[0, horizon)` at `per_hour` events/hour.
fn poisson_arrivals(rng: &mut ChaCha8Rng, per_hour: f64, horizon: SimDuration) -> Vec<SimTime> {
    let mut out = Vec::new();
    if per_hour <= 0.0 {
        return out;
    }
    let rate = per_hour / 3600.0;
    let mut t = 0.0;
    loop {
        t += sample_exponential(rng, rate);
        if t >= horizon.as_secs_f64() {
            return out;
        }
        out.push(SimTime::ZERO + SimDuration::from_secs_f64(t));
    }
}

fn exp_duration(rng: &mut ChaCha8Rng, mean: SimDuration) -> SimDuration {
    let mean_s = mean.as_secs_f64().max(1e-9);
    SimDuration::from_secs_f64(sample_exponential(rng, 1.0 / mean_s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(id: u32) -> AppId {
        AppId::new(id)
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let inj = FaultInjector::new(&plan, 1, SimDuration::from_mins(10), 4);
        assert!(inj.crash_schedule().is_empty());
        assert!(inj.scrape_available(app(0), SimTime::from_secs(100)));
        assert!(!inj.controller_stalled(SimTime::from_secs(100)));
    }

    #[test]
    fn scheduled_intervals_are_half_open() {
        let plan = FaultPlan::new()
            .with_scrape_blackout(SimTime::from_secs(100), SimDuration::from_secs(50))
            .with_control_stall(SimTime::from_secs(200), SimDuration::from_secs(10));
        assert!(!plan.is_empty());
        let inj = FaultInjector::new(&plan, 1, SimDuration::from_mins(10), 4);
        assert!(inj.scrape_available(app(0), SimTime::from_secs(99)));
        assert!(!inj.scrape_available(app(0), SimTime::from_secs(100)));
        assert!(!inj.scrape_available(app(0), SimTime::from_secs(149)));
        assert!(inj.scrape_available(app(0), SimTime::from_secs(150)));
        assert!(!inj.controller_stalled(SimTime::from_secs(199)));
        assert!(inj.controller_stalled(SimTime::from_secs(205)));
        assert!(!inj.controller_stalled(SimTime::from_secs(210)));
    }

    #[test]
    fn scheduled_controller_crash_is_seen_exactly_once() {
        let plan = FaultPlan::new().with_controller_crash(SimTime::from_secs(300));
        assert!(!plan.is_empty());
        let inj = FaultInjector::new(&plan, 1, SimDuration::from_mins(10), 4);
        assert_eq!(inj.controller_crash_schedule(), &[SimTime::from_secs(300)]);
        // Half-open (from, to]: the tick ending exactly at the crash sees it,
        // the next tick does not see it again.
        assert!(!inj.controller_crashed_in(SimTime::from_secs(290), SimTime::from_secs(295)));
        assert!(inj.controller_crashed_in(SimTime::from_secs(295), SimTime::from_secs(300)));
        assert!(!inj.controller_crashed_in(SimTime::from_secs(300), SimTime::from_secs(305)));
    }

    #[test]
    fn stochastic_controller_crashes_are_deterministic_and_do_not_shift_other_faults() {
        let base = FaultPlan::new()
            .with_stochastic(StochasticFaults { stalls_per_hour: 2.0, ..Default::default() });
        let with_cc = FaultPlan::new().with_stochastic(StochasticFaults {
            stalls_per_hour: 2.0,
            controller_crashes_per_hour: 3.0,
            ..Default::default()
        });
        let horizon = SimDuration::from_mins(120);
        let a = FaultInjector::new(&base, 7, horizon, 4);
        let b = FaultInjector::new(&with_cc, 7, horizon, 4);
        // Enabling controller crashes must not perturb the stall timeline.
        assert_eq!(a.stalls, b.stalls);
        assert!(a.controller_crash_schedule().is_empty());
        assert!(!b.controller_crash_schedule().is_empty());
        // Same seed, same realization.
        let b2 = FaultInjector::new(&with_cc, 7, horizon, 4);
        assert_eq!(b.controller_crash_schedule(), b2.controller_crash_schedule());
    }

    #[test]
    fn app_scoped_blackout_spares_other_apps() {
        let plan = FaultPlan::new().with_app_blackout(
            app(1),
            SimTime::from_secs(10),
            SimDuration::from_secs(10),
        );
        let inj = FaultInjector::new(&plan, 1, SimDuration::from_mins(1), 2);
        assert!(!inj.scrape_available(app(1), SimTime::from_secs(15)));
        assert!(inj.scrape_available(app(0), SimTime::from_secs(15)));
    }

    #[test]
    fn stochastic_realization_is_seed_deterministic() {
        let plan = FaultPlan::new().with_stochastic(StochasticFaults {
            node_crashes_per_hour: 30.0,
            blackouts_per_hour: 20.0,
            stalls_per_hour: 10.0,
            ..Default::default()
        });
        assert!(!plan.is_empty());
        let horizon = SimDuration::from_mins(60);
        let a = FaultInjector::new(&plan, 7, horizon, 4);
        let b = FaultInjector::new(&plan, 7, horizon, 4);
        assert_eq!(a.crash_schedule(), b.crash_schedule());
        assert_eq!(a.blackouts, b.blackouts);
        assert_eq!(a.stalls, b.stalls);
        assert!(!a.crash_schedule().is_empty(), "expected crashes at 30/h over 1h");
        // A different seed realizes a different timeline.
        let c = FaultInjector::new(&plan, 8, horizon, 4);
        assert_ne!(a.crash_schedule(), c.crash_schedule());
        // Crashes target valid nodes and recover after the fail time.
        for &(node, at, recover) in a.crash_schedule() {
            assert!(node.as_usize() < 4);
            assert!(recover.expect("stochastic crashes recover") > at);
        }
    }

    #[test]
    fn noise_distorts_windows_inside_interval_only() {
        let plan = FaultPlan::new().with_metric_noise(
            SimTime::from_secs(50),
            SimDuration::from_secs(50),
            0.5,
        );
        let mut inj = FaultInjector::new(&plan, 3, SimDuration::from_mins(5), 2);
        let base = AppWindow {
            at: SimTime::from_secs(60),
            duration: SimDuration::from_secs(10),
            arrivals: 100,
            completions: 100,
            timeouts: 0,
            oom_kills: 0,
            p99_ms: Some(80.0),
            mean_ms: Some(40.0),
            throughput_rps: 10.0,
            usage: evolve_types::ResourceVec::splat(100.0),
            alloc: evolve_types::ResourceVec::ZERO,
            alloc_per_replica: evolve_types::ResourceVec::ZERO,
            running_replicas: 2,
            pending_replicas: 0,
            progress: None,
            projected_makespan_s: None,
        };
        let mut noisy = base.clone();
        inj.distort_window(app(0), &mut noisy);
        assert_ne!(noisy.p99_ms, base.p99_ms);
        assert!(noisy.p99_ms.unwrap() > 0.0);
        let mut outside = AppWindow { at: SimTime::from_secs(150), ..base.clone() };
        let before = outside.clone();
        inj.distort_window(app(0), &mut outside);
        assert_eq!(outside, before);
    }
}
