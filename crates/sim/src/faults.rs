//! Deterministic fault injection.
//!
//! A [`FaultPlan`] declares *what* goes wrong — scheduled events plus an
//! optional seeded-stochastic background process — and a [`FaultInjector`]
//! realizes the plan for one run: node crashes are armed as engine events,
//! while scrape blackouts, noisy metric windows and control-plane stalls
//! are interval predicates the control loop consults each tick. All
//! randomness derives from the run seed, so the same plan and seed yield
//! the same fault timeline regardless of how many runs execute in
//! parallel.

use evolve_types::{AppId, Error, NodeId, SimDuration, SimTime};
use evolve_workload::{sample_exponential, sample_lognormal_with, SamplingMode};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::engine::Simulation;
use crate::observe::AppWindow;

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// A node goes unready; its pods are evicted and requeued. Recovers
    /// after `downtime` when given, otherwise stays down.
    NodeCrash {
        /// The failing node.
        node: NodeId,
        /// Time until the node rejoins; `None` means permanent.
        downtime: Option<SimDuration>,
    },
    /// Metric scrapes fail: the controller sees no window at all.
    ScrapeBlackout {
        /// Affected app; `None` blacks out every app.
        app: Option<AppId>,
        /// How long scrapes stay dark.
        duration: SimDuration,
    },
    /// Scrapes succeed but the measurements are distorted.
    MetricNoise {
        /// Affected app; `None` distorts every app.
        app: Option<AppId>,
        /// How long windows stay noisy.
        duration: SimDuration,
        /// Coefficient of variation of the multiplicative distortion.
        cv: f64,
    },
    /// The controller misses its ticks entirely (control-plane stall).
    ControlStall {
        /// How long the control plane is down.
        duration: SimDuration,
    },
    /// The controller **process dies** and restarts: unlike a stall, all
    /// in-memory control state (integrators, learned models, backoff
    /// tables) is destroyed at this instant. How the restarted controller
    /// rebuilds state is the runner's recovery strategy.
    ControllerCrash,
    /// Resize/scale requests from the controller are silently dropped:
    /// the reconciler believes it actuated, but the cluster never sees
    /// the request.
    ActuationDrop {
        /// How long the actuation path stays black-holed.
        duration: SimDuration,
    },
    /// Resize/scale requests reach the cluster only after `lag`.
    ActuationDelay {
        /// How long the actuation path stays slow.
        duration: SimDuration,
        /// Delay added to every request issued inside the interval.
        lag: SimDuration,
    },
    /// Resize requests are applied to only a fraction of each app's
    /// replicas (the desired state updates fully; the rollout stalls).
    ActuationPartial {
        /// How long the actuation path stays partial.
        duration: SimDuration,
        /// Fraction of replicas actually resized, in `(0, 1]`.
        fraction: f64,
    },
    /// Fast ready/unready cycling of one node: `cycles` crash/recover
    /// pairs spaced `period` apart (down for the first half of each
    /// period).
    NodeFlap {
        /// The flapping node.
        node: NodeId,
        /// Number of down/up cycles.
        cycles: u32,
        /// Length of one full cycle.
        period: SimDuration,
    },
}

impl FaultKind {
    /// Validates the parameters of this fault kind.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when a numeric parameter is
    /// non-finite or out of range: a negative noise `cv`, an actuation
    /// `fraction` outside `(0, 1]`, a zero-length flap `period`, or a
    /// flap with zero `cycles`.
    pub fn validate(&self) -> Result<(), Error> {
        match *self {
            FaultKind::MetricNoise { cv, .. } => {
                if !cv.is_finite() || cv < 0.0 {
                    return Err(Error::InvalidConfig(format!(
                        "metric-noise cv must be finite and non-negative, got {cv}"
                    )));
                }
            }
            FaultKind::ActuationPartial { fraction, .. } => {
                if !fraction.is_finite() || fraction <= 0.0 || fraction > 1.0 {
                    return Err(Error::InvalidConfig(format!(
                        "actuation fraction must be in (0, 1], got {fraction}"
                    )));
                }
            }
            FaultKind::NodeFlap { cycles, period, .. } => {
                if cycles == 0 {
                    return Err(Error::InvalidConfig("node flap needs at least one cycle".into()));
                }
                if period.is_zero() {
                    return Err(Error::InvalidConfig("node flap period must be positive".into()));
                }
            }
            FaultKind::NodeCrash { .. }
            | FaultKind::ScrapeBlackout { .. }
            | FaultKind::ControlStall { .. }
            | FaultKind::ControllerCrash
            | FaultKind::ActuationDrop { .. }
            | FaultKind::ActuationDelay { .. } => {}
        }
        Ok(())
    }

    /// Short stable label used in traces and reproducer files.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash { .. } => "node_crash",
            FaultKind::ScrapeBlackout { .. } => "scrape_blackout",
            FaultKind::MetricNoise { .. } => "metric_noise",
            FaultKind::ControlStall { .. } => "control_stall",
            FaultKind::ControllerCrash => "controller_crash",
            FaultKind::ActuationDrop { .. } => "actuation_drop",
            FaultKind::ActuationDelay { .. } => "actuation_delay",
            FaultKind::ActuationPartial { .. } => "actuation_partial",
            FaultKind::NodeFlap { .. } => "node_flap",
        }
    }
}

/// A fault scheduled at an absolute time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault begins.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Rates for the seeded-stochastic background fault process. Arrivals are
/// Poisson; durations are exponential around the configured means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StochasticFaults {
    /// Node crashes per hour (a uniformly random node each time).
    pub node_crashes_per_hour: f64,
    /// Mean node downtime.
    pub mean_downtime: SimDuration,
    /// Cluster-wide scrape blackouts per hour.
    pub blackouts_per_hour: f64,
    /// Mean blackout length.
    pub mean_blackout: SimDuration,
    /// Control-plane stalls per hour.
    pub stalls_per_hour: f64,
    /// Mean stall length.
    pub mean_stall: SimDuration,
    /// Controller crash–restarts per hour (state-destroying, instant).
    pub controller_crashes_per_hour: f64,
    /// Actuation black-hole windows per hour (resizes silently dropped).
    pub actuation_drops_per_hour: f64,
    /// Mean length of an actuation black-hole window.
    pub mean_actuation_drop: SimDuration,
}

impl Default for StochasticFaults {
    fn default() -> Self {
        StochasticFaults {
            node_crashes_per_hour: 0.0,
            mean_downtime: SimDuration::from_secs(120),
            blackouts_per_hour: 0.0,
            mean_blackout: SimDuration::from_secs(60),
            stalls_per_hour: 0.0,
            mean_stall: SimDuration::from_secs(30),
            controller_crashes_per_hour: 0.0,
            actuation_drops_per_hour: 0.0,
            mean_actuation_drop: SimDuration::from_secs(45),
        }
    }
}

/// A declarative fault schedule for one experiment run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    scheduled: Vec<FaultEvent>,
    stochastic: Option<StochasticFaults>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty()
            && !self.stochastic.is_some_and(|s| {
                s.node_crashes_per_hour > 0.0
                    || s.blackouts_per_hour > 0.0
                    || s.stalls_per_hour > 0.0
                    || s.controller_crashes_per_hour > 0.0
                    || s.actuation_drops_per_hour > 0.0
            })
    }

    /// Adds an arbitrary scheduled fault.
    ///
    /// # Panics
    ///
    /// Panics when the fault parameters fail [`FaultKind::validate`]
    /// (non-finite cv, fraction outside `(0, 1]`, zero-cycle or
    /// zero-period flap). Use [`FaultPlan::checked_event`] for a
    /// non-panicking variant.
    #[must_use]
    pub fn with_event(self, at: SimTime, kind: FaultKind) -> Self {
        match self.checked_event(at, kind) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds an arbitrary scheduled fault, rejecting invalid parameters
    /// with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when [`FaultKind::validate`]
    /// rejects the parameters.
    pub fn checked_event(mut self, at: SimTime, kind: FaultKind) -> Result<Self, Error> {
        kind.validate()?;
        self.scheduled.push(FaultEvent { at, kind });
        Ok(self)
    }

    /// Validates every scheduled event against a run horizon: all start
    /// times must fall inside `[0, horizon)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the first out-of-horizon
    /// event.
    pub fn validate(&self, horizon: SimDuration) -> Result<(), Error> {
        let end = SimTime::ZERO + horizon;
        for ev in &self.scheduled {
            ev.kind.validate()?;
            if ev.at >= end {
                return Err(Error::InvalidConfig(format!(
                    "fault {} at {:.1}s starts beyond the {:.1}s horizon",
                    ev.kind.label(),
                    ev.at.as_secs_f64(),
                    horizon.as_secs_f64()
                )));
            }
        }
        Ok(())
    }

    /// Crashes `node` at `at`, recovering after `downtime` when given.
    #[must_use]
    pub fn with_node_crash(self, node: NodeId, at: SimTime, downtime: Option<SimDuration>) -> Self {
        self.with_event(at, FaultKind::NodeCrash { node, downtime })
    }

    /// Blacks out metric scrapes for every app.
    #[must_use]
    pub fn with_scrape_blackout(self, at: SimTime, duration: SimDuration) -> Self {
        self.with_event(at, FaultKind::ScrapeBlackout { app: None, duration })
    }

    /// Blacks out metric scrapes for one app.
    #[must_use]
    pub fn with_app_blackout(self, app: AppId, at: SimTime, duration: SimDuration) -> Self {
        self.with_event(at, FaultKind::ScrapeBlackout { app: Some(app), duration })
    }

    /// Distorts every app's metric windows with lognormal noise.
    #[must_use]
    pub fn with_metric_noise(self, at: SimTime, duration: SimDuration, cv: f64) -> Self {
        self.with_event(at, FaultKind::MetricNoise { app: None, duration, cv })
    }

    /// Stalls the control plane (skipped controller ticks).
    #[must_use]
    pub fn with_control_stall(self, at: SimTime, duration: SimDuration) -> Self {
        self.with_event(at, FaultKind::ControlStall { duration })
    }

    /// Kills and restarts the controller process at `at`, destroying all
    /// in-memory control state.
    #[must_use]
    pub fn with_controller_crash(self, at: SimTime) -> Self {
        self.with_event(at, FaultKind::ControllerCrash)
    }

    /// Black-holes the actuation path: resizes issued during the window
    /// are silently dropped.
    #[must_use]
    pub fn with_actuation_drop(self, at: SimTime, duration: SimDuration) -> Self {
        self.with_event(at, FaultKind::ActuationDrop { duration })
    }

    /// Slows the actuation path: resizes issued during the window reach
    /// the cluster `lag` later.
    #[must_use]
    pub fn with_actuation_delay(
        self,
        at: SimTime,
        duration: SimDuration,
        lag: SimDuration,
    ) -> Self {
        self.with_event(at, FaultKind::ActuationDelay { duration, lag })
    }

    /// Degrades the actuation path: resizes apply to only `fraction` of
    /// each app's replicas.
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn with_actuation_partial(self, at: SimTime, duration: SimDuration, fraction: f64) -> Self {
        self.with_event(at, FaultKind::ActuationPartial { duration, fraction })
    }

    /// Flaps `node` ready/unready: `cycles` crash/recover pairs spaced
    /// `period` apart starting at `at`.
    ///
    /// # Panics
    ///
    /// Panics when `cycles` is zero or `period` is zero.
    #[must_use]
    pub fn with_node_flap(
        self,
        node: NodeId,
        at: SimTime,
        cycles: u32,
        period: SimDuration,
    ) -> Self {
        self.with_event(at, FaultKind::NodeFlap { node, cycles, period })
    }

    /// Adds a seeded-stochastic background fault process.
    #[must_use]
    pub fn with_stochastic(mut self, config: StochasticFaults) -> Self {
        self.stochastic = Some(config);
        self
    }

    /// The scheduled events (stochastic ones are realized per seed by the
    /// injector).
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.scheduled
    }
}

/// A realized fault timeline for one `(plan, seed)` pair.
///
/// Intervals are half-open: a fault starting at `t` with duration `d` is
/// active for `t <= now < t + d`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    crashes: Vec<(NodeId, SimTime, Option<SimTime>)>,
    blackouts: Vec<(SimTime, SimTime, Option<AppId>)>,
    noise: Vec<(SimTime, SimTime, Option<AppId>, f64)>,
    stalls: Vec<(SimTime, SimTime)>,
    controller_crashes: Vec<SimTime>,
    act_drops: Vec<(SimTime, SimTime)>,
    act_delays: Vec<(SimTime, SimTime, SimDuration)>,
    act_partials: Vec<(SimTime, SimTime, f64)>,
    noise_rng: ChaCha8Rng,
    sampling: SamplingMode,
}

impl FaultInjector {
    /// Realizes a plan: scheduled events are copied, stochastic ones are
    /// drawn from a dedicated ChaCha8 stream (`seed`-derived, independent
    /// of the engine's stream) over `[0, horizon)`.
    #[must_use]
    pub fn new(plan: &FaultPlan, seed: u64, horizon: SimDuration, node_count: usize) -> Self {
        let mut inj = FaultInjector {
            crashes: Vec::new(),
            blackouts: Vec::new(),
            noise: Vec::new(),
            stalls: Vec::new(),
            controller_crashes: Vec::new(),
            act_drops: Vec::new(),
            act_delays: Vec::new(),
            act_partials: Vec::new(),
            noise_rng: ChaCha8Rng::seed_from_u64(seed ^ 0x4e01_5e00),
            sampling: SamplingMode::default(),
        };
        for ev in &plan.scheduled {
            inj.push(ev.at, &ev.kind);
        }
        if let Some(sto) = plan.stochastic {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfa17_0001);
            for at in poisson_arrivals(&mut rng, sto.node_crashes_per_hour, horizon) {
                let node = ((rng.gen::<f64>() * node_count as f64) as usize).min(node_count - 1);
                let downtime = exp_duration(&mut rng, sto.mean_downtime);
                inj.push(
                    at,
                    &FaultKind::NodeCrash {
                        node: NodeId::new(node as u32),
                        downtime: Some(downtime),
                    },
                );
            }
            for at in poisson_arrivals(&mut rng, sto.blackouts_per_hour, horizon) {
                let duration = exp_duration(&mut rng, sto.mean_blackout);
                inj.push(at, &FaultKind::ScrapeBlackout { app: None, duration });
            }
            for at in poisson_arrivals(&mut rng, sto.stalls_per_hour, horizon) {
                let duration = exp_duration(&mut rng, sto.mean_stall);
                inj.push(at, &FaultKind::ControlStall { duration });
            }
            // Realized last so that adding controller crashes to a plan
            // leaves the existing node-crash/blackout/stall timelines of
            // the same seed untouched.
            for at in poisson_arrivals(&mut rng, sto.controller_crashes_per_hour, horizon) {
                inj.push(at, &FaultKind::ControllerCrash);
            }
            // Actuation drops realized after controller crashes for the
            // same reason: enabling them leaves every prior class's
            // same-seed timeline unchanged.
            for at in poisson_arrivals(&mut rng, sto.actuation_drops_per_hour, horizon) {
                let duration = exp_duration(&mut rng, sto.mean_actuation_drop);
                inj.push(at, &FaultKind::ActuationDrop { duration });
            }
        }
        inj.crashes.sort_by_key(|&(node, at, _)| (at, node));
        inj.blackouts.sort_by_key(|&(s, e, _)| (s, e));
        inj.noise.sort_by_key(|&(s, e, _, _)| (s, e));
        inj.stalls.sort_unstable();
        inj.controller_crashes.sort_unstable();
        inj.act_drops.sort_unstable();
        inj.act_delays.sort_unstable();
        inj.act_partials.sort_by_key(|&(s, e, _)| (s, e));
        inj
    }

    /// Selects which sampler generation the noise-distortion draws use.
    /// `Legacy` keeps the Box–Muller stream of the pre-batched sampler
    /// bit-for-bit.
    #[must_use]
    pub fn with_sampling(mut self, mode: SamplingMode) -> Self {
        self.sampling = mode;
        self
    }

    fn push(&mut self, at: SimTime, kind: &FaultKind) {
        match *kind {
            FaultKind::NodeCrash { node, downtime } => {
                self.crashes.push((node, at, downtime.map(|d| at + d)));
            }
            FaultKind::ScrapeBlackout { app, duration } => {
                self.blackouts.push((at, at + duration, app));
            }
            FaultKind::MetricNoise { app, duration, cv } => {
                self.noise.push((at, at + duration, app, cv));
            }
            FaultKind::ControlStall { duration } => {
                self.stalls.push((at, at + duration));
            }
            FaultKind::ControllerCrash => {
                self.controller_crashes.push(at);
            }
            FaultKind::ActuationDrop { duration } => {
                self.act_drops.push((at, at + duration));
            }
            FaultKind::ActuationDelay { duration, lag } => {
                self.act_delays.push((at, at + duration, lag));
            }
            FaultKind::ActuationPartial { duration, fraction } => {
                self.act_partials.push((at, at + duration, fraction));
            }
            FaultKind::NodeFlap { node, cycles, period } => {
                // A flap is sugar for `cycles` short crashes: down for the
                // first half of each period, recovered for the second.
                for c in 0..u64::from(cycles) {
                    let fail = at + period * c;
                    self.crashes.push((node, fail, Some(fail + period / 2)));
                }
            }
        }
    }

    /// Schedules the realized node crashes as engine events.
    pub fn arm(&self, sim: &mut Simulation) {
        for &(node, at, recover) in &self.crashes {
            sim.inject_node_failure(node, at, recover);
        }
    }

    /// The realized crash schedule: `(node, fail_at, recover_at)`.
    #[must_use]
    pub fn crash_schedule(&self) -> &[(NodeId, SimTime, Option<SimTime>)] {
        &self.crashes
    }

    /// `false` while a blackout covering `app` is active at `at`.
    #[must_use]
    pub fn scrape_available(&self, app: AppId, at: SimTime) -> bool {
        !self
            .blackouts
            .iter()
            .any(|&(s, e, scope)| s <= at && at < e && scope.is_none_or(|a| a == app))
    }

    /// `true` while a control-plane stall is active at `at`.
    #[must_use]
    pub fn controller_stalled(&self, at: SimTime) -> bool {
        self.stalls.iter().any(|&(s, e)| s <= at && at < e)
    }

    /// The realized controller crash times, sorted ascending.
    #[must_use]
    pub fn controller_crash_schedule(&self) -> &[SimTime] {
        &self.controller_crashes
    }

    /// `true` when a controller crash falls in the half-open interval
    /// `(from, to]`. The runner polls this once per control tick with the
    /// previous tick's time as `from`, so every crash is observed exactly
    /// once even when several ticks were stalled in between.
    #[must_use]
    pub fn controller_crashed_in(&self, from: SimTime, to: SimTime) -> bool {
        self.controller_crashes.iter().any(|&t| from < t && t <= to)
    }

    /// `true` while an actuation black-hole is active at `at`: resizes
    /// issued now are silently dropped.
    #[must_use]
    pub fn actuation_dropped(&self, at: SimTime) -> bool {
        self.act_drops.iter().any(|&(s, e)| s <= at && at < e)
    }

    /// The actuation lag in force at `at`, when any. Overlapping delay
    /// windows take the longest lag (the slowest path wins).
    #[must_use]
    pub fn actuation_lag(&self, at: SimTime) -> Option<SimDuration> {
        self.act_delays.iter().filter(|&&(s, e, _)| s <= at && at < e).map(|&(_, _, lag)| lag).max()
    }

    /// The actuation fraction in force at `at`, when any. Overlapping
    /// partial windows take the smallest fraction (the worst rollout
    /// wins).
    #[must_use]
    pub fn actuation_fraction(&self, at: SimTime) -> Option<f64> {
        self.act_partials
            .iter()
            .filter(|&&(s, e, _)| s <= at && at < e)
            .map(|&(_, _, f)| f)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// The fully realized timeline — scheduled plus drawn stochastic
    /// events — as `FaultEvent`s sorted by start time. Node flaps appear
    /// as their expanded crash/recover pairs; durations are reconstructed
    /// from the realized intervals.
    #[must_use]
    pub fn timeline(&self) -> Vec<FaultEvent> {
        let mut out = Vec::with_capacity(
            self.crashes.len()
                + self.blackouts.len()
                + self.noise.len()
                + self.stalls.len()
                + self.controller_crashes.len()
                + self.act_drops.len()
                + self.act_delays.len()
                + self.act_partials.len(),
        );
        for &(node, at, recover) in &self.crashes {
            let downtime = recover.map(|r| r.saturating_since(at));
            out.push(FaultEvent { at, kind: FaultKind::NodeCrash { node, downtime } });
        }
        for &(s, e, app) in &self.blackouts {
            let kind = FaultKind::ScrapeBlackout { app, duration: e.saturating_since(s) };
            out.push(FaultEvent { at: s, kind });
        }
        for &(s, e, app, cv) in &self.noise {
            let kind = FaultKind::MetricNoise { app, duration: e.saturating_since(s), cv };
            out.push(FaultEvent { at: s, kind });
        }
        for &(s, e) in &self.stalls {
            out.push(FaultEvent {
                at: s,
                kind: FaultKind::ControlStall { duration: e.saturating_since(s) },
            });
        }
        for &at in &self.controller_crashes {
            out.push(FaultEvent { at, kind: FaultKind::ControllerCrash });
        }
        for &(s, e) in &self.act_drops {
            out.push(FaultEvent {
                at: s,
                kind: FaultKind::ActuationDrop { duration: e.saturating_since(s) },
            });
        }
        for &(s, e, lag) in &self.act_delays {
            out.push(FaultEvent {
                at: s,
                kind: FaultKind::ActuationDelay { duration: e.saturating_since(s), lag },
            });
        }
        for &(s, e, fraction) in &self.act_partials {
            out.push(FaultEvent {
                at: s,
                kind: FaultKind::ActuationPartial { duration: e.saturating_since(s), fraction },
            });
        }
        out.sort_by_key(|ev| ev.at);
        out
    }

    /// How many fault intervals are active at `at` (instantaneous
    /// controller crashes never count; a permanent node crash counts from
    /// its fail time onward).
    #[must_use]
    pub fn active_count(&self, at: SimTime) -> usize {
        let crashes =
            self.crashes.iter().filter(|&&(_, s, e)| s <= at && e.is_none_or(|e| at < e)).count();
        let intervals =
            |v: &[(SimTime, SimTime)]| v.iter().filter(|&&(s, e)| s <= at && at < e).count();
        crashes
            + self.blackouts.iter().filter(|&&(s, e, _)| s <= at && at < e).count()
            + self.noise.iter().filter(|&&(s, e, _, _)| s <= at && at < e).count()
            + intervals(&self.stalls)
            + intervals(&self.act_drops)
            + self.act_delays.iter().filter(|&&(s, e, _)| s <= at && at < e).count()
            + self.act_partials.iter().filter(|&&(s, e, _)| s <= at && at < e).count()
    }

    /// The noise CV in force for `app` at `at`, when any.
    #[must_use]
    pub fn noise_cv(&self, app: AppId, at: SimTime) -> Option<f64> {
        self.noise
            .iter()
            .find(|&&(s, e, scope, _)| s <= at && at < e && scope.is_none_or(|a| a == app))
            .map(|&(_, _, _, cv)| cv)
    }

    /// Applies multiplicative lognormal distortion to a freshly scraped
    /// window when a noise fault covers it. Latency, throughput and usage
    /// each get an independent factor.
    pub fn distort_window(&mut self, app: AppId, window: &mut AppWindow) {
        let Some(cv) = self.noise_cv(app, window.at) else {
            return;
        };
        let lat = sample_lognormal_with(self.sampling, &mut self.noise_rng, 1.0, cv);
        let thr = sample_lognormal_with(self.sampling, &mut self.noise_rng, 1.0, cv);
        let usage = sample_lognormal_with(self.sampling, &mut self.noise_rng, 1.0, cv);
        if let Some(p) = window.p99_ms.as_mut() {
            *p *= lat;
        }
        if let Some(m) = window.mean_ms.as_mut() {
            *m *= lat;
        }
        window.throughput_rps *= thr;
        window.usage = window.usage * usage;
    }
}

/// Poisson arrival times over `[0, horizon)` at `per_hour` events/hour.
fn poisson_arrivals(rng: &mut ChaCha8Rng, per_hour: f64, horizon: SimDuration) -> Vec<SimTime> {
    let mut out = Vec::new();
    if per_hour <= 0.0 {
        return out;
    }
    let rate = per_hour / 3600.0;
    let mut t = 0.0;
    loop {
        t += sample_exponential(rng, rate);
        if t >= horizon.as_secs_f64() {
            return out;
        }
        out.push(SimTime::ZERO + SimDuration::from_secs_f64(t));
    }
}

fn exp_duration(rng: &mut ChaCha8Rng, mean: SimDuration) -> SimDuration {
    let mean_s = mean.as_secs_f64().max(1e-9);
    SimDuration::from_secs_f64(sample_exponential(rng, 1.0 / mean_s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(id: u32) -> AppId {
        AppId::new(id)
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let inj = FaultInjector::new(&plan, 1, SimDuration::from_mins(10), 4);
        assert!(inj.crash_schedule().is_empty());
        assert!(inj.scrape_available(app(0), SimTime::from_secs(100)));
        assert!(!inj.controller_stalled(SimTime::from_secs(100)));
    }

    #[test]
    fn scheduled_intervals_are_half_open() {
        let plan = FaultPlan::new()
            .with_scrape_blackout(SimTime::from_secs(100), SimDuration::from_secs(50))
            .with_control_stall(SimTime::from_secs(200), SimDuration::from_secs(10));
        assert!(!plan.is_empty());
        let inj = FaultInjector::new(&plan, 1, SimDuration::from_mins(10), 4);
        assert!(inj.scrape_available(app(0), SimTime::from_secs(99)));
        assert!(!inj.scrape_available(app(0), SimTime::from_secs(100)));
        assert!(!inj.scrape_available(app(0), SimTime::from_secs(149)));
        assert!(inj.scrape_available(app(0), SimTime::from_secs(150)));
        assert!(!inj.controller_stalled(SimTime::from_secs(199)));
        assert!(inj.controller_stalled(SimTime::from_secs(205)));
        assert!(!inj.controller_stalled(SimTime::from_secs(210)));
    }

    #[test]
    fn scheduled_controller_crash_is_seen_exactly_once() {
        let plan = FaultPlan::new().with_controller_crash(SimTime::from_secs(300));
        assert!(!plan.is_empty());
        let inj = FaultInjector::new(&plan, 1, SimDuration::from_mins(10), 4);
        assert_eq!(inj.controller_crash_schedule(), &[SimTime::from_secs(300)]);
        // Half-open (from, to]: the tick ending exactly at the crash sees it,
        // the next tick does not see it again.
        assert!(!inj.controller_crashed_in(SimTime::from_secs(290), SimTime::from_secs(295)));
        assert!(inj.controller_crashed_in(SimTime::from_secs(295), SimTime::from_secs(300)));
        assert!(!inj.controller_crashed_in(SimTime::from_secs(300), SimTime::from_secs(305)));
    }

    #[test]
    fn stochastic_controller_crashes_are_deterministic_and_do_not_shift_other_faults() {
        let base = FaultPlan::new()
            .with_stochastic(StochasticFaults { stalls_per_hour: 2.0, ..Default::default() });
        let with_cc = FaultPlan::new().with_stochastic(StochasticFaults {
            stalls_per_hour: 2.0,
            controller_crashes_per_hour: 3.0,
            ..Default::default()
        });
        let horizon = SimDuration::from_mins(120);
        let a = FaultInjector::new(&base, 7, horizon, 4);
        let b = FaultInjector::new(&with_cc, 7, horizon, 4);
        // Enabling controller crashes must not perturb the stall timeline.
        assert_eq!(a.stalls, b.stalls);
        assert!(a.controller_crash_schedule().is_empty());
        assert!(!b.controller_crash_schedule().is_empty());
        // Same seed, same realization.
        let b2 = FaultInjector::new(&with_cc, 7, horizon, 4);
        assert_eq!(b.controller_crash_schedule(), b2.controller_crash_schedule());
    }

    #[test]
    fn app_scoped_blackout_spares_other_apps() {
        let plan = FaultPlan::new().with_app_blackout(
            app(1),
            SimTime::from_secs(10),
            SimDuration::from_secs(10),
        );
        let inj = FaultInjector::new(&plan, 1, SimDuration::from_mins(1), 2);
        assert!(!inj.scrape_available(app(1), SimTime::from_secs(15)));
        assert!(inj.scrape_available(app(0), SimTime::from_secs(15)));
    }

    #[test]
    fn stochastic_realization_is_seed_deterministic() {
        let plan = FaultPlan::new().with_stochastic(StochasticFaults {
            node_crashes_per_hour: 30.0,
            blackouts_per_hour: 20.0,
            stalls_per_hour: 10.0,
            ..Default::default()
        });
        assert!(!plan.is_empty());
        let horizon = SimDuration::from_mins(60);
        let a = FaultInjector::new(&plan, 7, horizon, 4);
        let b = FaultInjector::new(&plan, 7, horizon, 4);
        assert_eq!(a.crash_schedule(), b.crash_schedule());
        assert_eq!(a.blackouts, b.blackouts);
        assert_eq!(a.stalls, b.stalls);
        assert!(!a.crash_schedule().is_empty(), "expected crashes at 30/h over 1h");
        // A different seed realizes a different timeline.
        let c = FaultInjector::new(&plan, 8, horizon, 4);
        assert_ne!(a.crash_schedule(), c.crash_schedule());
        // Crashes target valid nodes and recover after the fail time.
        for &(node, at, recover) in a.crash_schedule() {
            assert!(node.as_usize() < 4);
            assert!(recover.expect("stochastic crashes recover") > at);
        }
    }

    #[test]
    fn actuation_faults_are_half_open_intervals() {
        let plan = FaultPlan::new()
            .with_actuation_drop(SimTime::from_secs(100), SimDuration::from_secs(50))
            .with_actuation_delay(
                SimTime::from_secs(200),
                SimDuration::from_secs(30),
                SimDuration::from_secs(12),
            )
            .with_actuation_partial(SimTime::from_secs(300), SimDuration::from_secs(40), 0.5);
        assert!(!plan.is_empty());
        let inj = FaultInjector::new(&plan, 1, SimDuration::from_mins(10), 4);
        assert!(!inj.actuation_dropped(SimTime::from_secs(99)));
        assert!(inj.actuation_dropped(SimTime::from_secs(100)));
        assert!(inj.actuation_dropped(SimTime::from_secs(149)));
        assert!(!inj.actuation_dropped(SimTime::from_secs(150)));
        assert_eq!(inj.actuation_lag(SimTime::from_secs(199)), None);
        assert_eq!(inj.actuation_lag(SimTime::from_secs(210)), Some(SimDuration::from_secs(12)));
        assert_eq!(inj.actuation_lag(SimTime::from_secs(230)), None);
        assert_eq!(inj.actuation_fraction(SimTime::from_secs(299)), None);
        assert_eq!(inj.actuation_fraction(SimTime::from_secs(320)), Some(0.5));
        assert_eq!(inj.actuation_fraction(SimTime::from_secs(340)), None);
    }

    #[test]
    fn overlapping_actuation_windows_take_the_worst_case() {
        let plan = FaultPlan::new()
            .with_actuation_delay(
                SimTime::from_secs(0),
                SimDuration::from_secs(100),
                SimDuration::from_secs(5),
            )
            .with_actuation_delay(
                SimTime::from_secs(50),
                SimDuration::from_secs(100),
                SimDuration::from_secs(20),
            )
            .with_actuation_partial(SimTime::from_secs(0), SimDuration::from_secs(100), 0.8)
            .with_actuation_partial(SimTime::from_secs(50), SimDuration::from_secs(100), 0.25);
        let inj = FaultInjector::new(&plan, 1, SimDuration::from_mins(10), 4);
        assert_eq!(inj.actuation_lag(SimTime::from_secs(75)), Some(SimDuration::from_secs(20)));
        assert_eq!(inj.actuation_fraction(SimTime::from_secs(75)), Some(0.25));
    }

    #[test]
    fn node_flap_expands_into_crash_recover_pairs() {
        let plan = FaultPlan::new().with_node_flap(
            NodeId::new(2),
            SimTime::from_secs(60),
            3,
            SimDuration::from_secs(20),
        );
        let inj = FaultInjector::new(&plan, 1, SimDuration::from_mins(10), 4);
        let schedule = inj.crash_schedule();
        assert_eq!(schedule.len(), 3);
        for (c, &(node, fail, recover)) in schedule.iter().enumerate() {
            assert_eq!(node, NodeId::new(2));
            assert_eq!(fail, SimTime::from_secs(60 + 20 * c as u64));
            assert_eq!(recover, Some(SimTime::from_secs(70 + 20 * c as u64)));
        }
    }

    #[test]
    fn invalid_fault_parameters_yield_typed_errors() {
        let bad_fraction = FaultPlan::new().checked_event(
            SimTime::from_secs(1),
            FaultKind::ActuationPartial { duration: SimDuration::from_secs(10), fraction: 1.5 },
        );
        assert!(matches!(bad_fraction, Err(Error::InvalidConfig(_))));
        let bad_cv = FaultPlan::new().checked_event(
            SimTime::from_secs(1),
            FaultKind::MetricNoise {
                app: None,
                duration: SimDuration::from_secs(10),
                cv: f64::NAN,
            },
        );
        assert!(matches!(bad_cv, Err(Error::InvalidConfig(_))));
        let bad_cycles = FaultPlan::new().checked_event(
            SimTime::from_secs(1),
            FaultKind::NodeFlap {
                node: NodeId::new(0),
                cycles: 0,
                period: SimDuration::from_secs(5),
            },
        );
        assert!(matches!(bad_cycles, Err(Error::InvalidConfig(_))));
        let bad_period = FaultPlan::new().checked_event(
            SimTime::from_secs(1),
            FaultKind::NodeFlap { node: NodeId::new(0), cycles: 2, period: SimDuration::ZERO },
        );
        assert!(matches!(bad_period, Err(Error::InvalidConfig(_))));
    }

    #[test]
    #[should_panic(expected = "actuation fraction must be in (0, 1]")]
    fn with_actuation_partial_panics_on_bad_fraction() {
        let _ = FaultPlan::new().with_actuation_partial(
            SimTime::from_secs(1),
            SimDuration::from_secs(10),
            0.0,
        );
    }

    #[test]
    fn plan_validate_rejects_out_of_horizon_events() {
        let plan = FaultPlan::new()
            .with_control_stall(SimTime::from_secs(500), SimDuration::from_secs(10));
        assert!(plan.validate(SimDuration::from_secs(600)).is_ok());
        let err = plan.validate(SimDuration::from_secs(400)).unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)));
        assert!(err.to_string().contains("control_stall"));
    }

    #[test]
    fn timeline_and_active_count_cover_all_classes() {
        let plan = FaultPlan::new()
            .with_node_crash(
                NodeId::new(0),
                SimTime::from_secs(10),
                Some(SimDuration::from_secs(20)),
            )
            .with_scrape_blackout(SimTime::from_secs(15), SimDuration::from_secs(10))
            .with_actuation_drop(SimTime::from_secs(12), SimDuration::from_secs(6))
            .with_controller_crash(SimTime::from_secs(14));
        let inj = FaultInjector::new(&plan, 1, SimDuration::from_mins(1), 4);
        let timeline = inj.timeline();
        assert_eq!(timeline.len(), 4);
        assert!(timeline.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(
            timeline[0].kind,
            FaultKind::NodeCrash {
                node: NodeId::new(0),
                downtime: Some(SimDuration::from_secs(20))
            }
        );
        // At t=16: crash active, blackout active, drop active; the
        // instantaneous controller crash never counts.
        assert_eq!(inj.active_count(SimTime::from_secs(16)), 3);
        assert_eq!(inj.active_count(SimTime::from_secs(5)), 0);
        assert_eq!(inj.active_count(SimTime::from_secs(40)), 0);
    }

    #[test]
    fn stochastic_actuation_drops_do_not_shift_other_classes() {
        let base = FaultPlan::new().with_stochastic(StochasticFaults {
            stalls_per_hour: 2.0,
            controller_crashes_per_hour: 3.0,
            ..Default::default()
        });
        let with_drops = FaultPlan::new().with_stochastic(StochasticFaults {
            stalls_per_hour: 2.0,
            controller_crashes_per_hour: 3.0,
            actuation_drops_per_hour: 6.0,
            ..Default::default()
        });
        let horizon = SimDuration::from_mins(120);
        let a = FaultInjector::new(&base, 7, horizon, 4);
        let b = FaultInjector::new(&with_drops, 7, horizon, 4);
        assert_eq!(a.stalls, b.stalls);
        assert_eq!(a.controller_crash_schedule(), b.controller_crash_schedule());
        assert!(a.act_drops.is_empty());
        assert!(!b.act_drops.is_empty());
        let b2 = FaultInjector::new(&with_drops, 7, horizon, 4);
        assert_eq!(b.act_drops, b2.act_drops);
    }

    #[test]
    fn noise_distorts_windows_inside_interval_only() {
        let plan = FaultPlan::new().with_metric_noise(
            SimTime::from_secs(50),
            SimDuration::from_secs(50),
            0.5,
        );
        let mut inj = FaultInjector::new(&plan, 3, SimDuration::from_mins(5), 2);
        let base = AppWindow {
            at: SimTime::from_secs(60),
            duration: SimDuration::from_secs(10),
            arrivals: 100,
            completions: 100,
            timeouts: 0,
            shed_requests: 0,
            oom_kills: 0,
            p99_ms: Some(80.0),
            mean_ms: Some(40.0),
            throughput_rps: 10.0,
            usage: evolve_types::ResourceVec::splat(100.0),
            alloc: evolve_types::ResourceVec::ZERO,
            alloc_per_replica: evolve_types::ResourceVec::ZERO,
            running_replicas: 2,
            pending_replicas: 0,
            progress: None,
            projected_makespan_s: None,
        };
        let mut noisy = base.clone();
        inj.distort_window(app(0), &mut noisy);
        assert_ne!(noisy.p99_ms, base.p99_ms);
        assert!(noisy.p99_ms.unwrap() > 0.0);
        let mut outside = AppWindow { at: SimTime::from_secs(150), ..base.clone() };
        let before = outside.clone();
        inj.distort_window(app(0), &mut outside);
        assert_eq!(outside, before);
    }
}
