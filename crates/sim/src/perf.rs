//! The multi-resource processor-sharing performance model.
//!
//! Each running pod hosts a [`ReplicaServer`]: its in-flight requests
//! share the pod's allocated resources equally (processor sharing, the
//! standard model for a threaded server). A request carries *drainable*
//! demand on CPU, disk I/O and network I/O — it completes when its slowest
//! component drains — plus a *working set* that occupies memory while the
//! request is in flight.
//!
//! Memory is space, not rate: when the working set exceeds the memory
//! allocation the replica thrashes (CPU drains slower by a configurable
//! factor), and past the OOM threshold the replica is killed. This is the
//! mechanism that makes CPU-only autoscaling fail on memory-bound
//! services (ablation T5) and what the multi-resource controller fixes.
//!
//! All latencies therefore emerge from first principles: queueing (more
//! in-flight → smaller share), multi-resource bottlenecks (whichever
//! dimension is scarcest dominates) and memory pressure.

use evolve_types::{Resource, ResourceVec, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Tunables of the performance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfConfig {
    /// CPU slowdown per unit of relative memory overcommit: the effective
    /// CPU rate is divided by `1 + thrash_coeff × max(0, ws/alloc − 1)`.
    pub thrash_coeff: f64,
    /// The replica is OOM-killed when `ws > oom_threshold × alloc`.
    pub oom_threshold: f64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig { thrash_coeff: 4.0, oom_threshold: 1.5 }
    }
}

/// One request being executed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct InFlight {
    id: u64,
    arrived: SimTime,
    deadline: SimTime,
    /// Remaining drainable work (cpu mcore·s, disk MB, net MB); the
    /// memory component is unused here.
    remaining: ResourceVec,
    working_set: f64,
}

/// A completed request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// Time in the system (arrival → completion).
    pub latency: SimDuration,
}

/// Result of advancing a replica to a point in time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DrainOutcome {
    /// Requests that finished, with their latencies.
    pub completed: Vec<Completion>,
    /// Requests that hit their deadline and were dropped.
    pub timed_out: Vec<u64>,
    /// The replica exceeded the OOM threshold and must be killed. All
    /// remaining in-flight requests are reported in `timed_out`.
    pub oom_killed: bool,
}

impl DrainOutcome {
    /// Empties the buffers for reuse, keeping their capacity. The engine
    /// threads one scratch outcome through the per-event paths so a wake
    /// that completes requests does not allocate.
    pub fn clear(&mut self) {
        self.completed.clear();
        self.timed_out.clear();
        self.oom_killed = false;
    }
}

/// The execution state of one running pod.
///
/// # Examples
///
/// ```
/// use evolve_sim::{PerfConfig, ReplicaServer};
/// use evolve_types::{ResourceVec, SimDuration, SimTime};
///
/// // 1 core, 1 GiB, 100 MB/s disk and net.
/// let alloc = ResourceVec::new(1_000.0, 1_024.0, 100.0, 100.0);
/// let mut r = ReplicaServer::new(alloc, 64.0, PerfConfig::default(), SimTime::ZERO);
/// // One request: 500 mcore·s of compute → 0.5 s alone on this pod.
/// r.admit(1, SimTime::ZERO, SimTime::from_secs(10),
///         ResourceVec::new(500.0, 8.0, 0.0, 0.0));
/// let next = r.next_event().unwrap();
/// assert_eq!(next, SimTime::from_millis(500));
/// let out = r.advance(next);
/// assert_eq!(out.completed.len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicaServer {
    alloc: ResourceVec,
    base_memory: f64,
    config: PerfConfig,
    inflight: Vec<InFlight>,
    clock: SimTime,
    /// Cumulative drained work (rate dimensions) for usage accounting.
    consumed: ResourceVec,
    dead: bool,
    /// Memoized next-event time and per-request rates, valid until the
    /// next state mutation (admit/resize/kill/drain). The engine queries
    /// `next_event` right after every drain to reschedule its wake-up, and
    /// the following `advance` needs the very same boundary and rates —
    /// this cache halves the dominant O(n) scan. Derived data: skipped by
    /// serde and rebuilt on demand.
    #[serde(skip)]
    cache: Option<NextCache>,
    /// Memoized working set (base + Σ in-flight), invalidated whenever
    /// the in-flight set changes. The sum is recomputed in the same
    /// iteration order as the direct computation, so memoization never
    /// changes a single bit of the trajectory — it only deduplicates the
    /// O(n) pass that `thrash_factor`/`over_oom`/`take_consumed` each
    /// performed per event.
    #[serde(skip)]
    ws: std::cell::Cell<Option<f64>>,
}

/// See [`ReplicaServer::cache`].
#[derive(Debug, Clone, Copy)]
struct NextCache {
    event: Option<SimTime>,
    rates: ResourceVec,
}

impl ReplicaServer {
    /// Creates an idle replica with the given allocation and fixed base
    /// memory footprint (MiB).
    ///
    /// # Panics
    ///
    /// Panics when the allocation is invalid or `base_memory` is negative.
    #[must_use]
    pub fn new(alloc: ResourceVec, base_memory: f64, config: PerfConfig, now: SimTime) -> Self {
        assert!(alloc.is_valid(), "allocation must be valid");
        assert!(base_memory >= 0.0, "base memory must be non-negative");
        ReplicaServer {
            alloc,
            base_memory,
            config,
            inflight: Vec::new(),
            clock: now,
            consumed: ResourceVec::ZERO,
            dead: false,
            cache: None,
            ws: std::cell::Cell::new(None),
        }
    }

    /// Current allocation.
    #[must_use]
    pub fn alloc(&self) -> ResourceVec {
        self.alloc
    }

    /// Number of in-flight requests.
    #[must_use]
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Current memory footprint: base + Σ working sets (MiB).
    #[must_use]
    pub fn working_set(&self) -> f64 {
        if let Some(ws) = self.ws.get() {
            return ws;
        }
        let ws = self.base_memory + self.inflight.iter().map(|r| r.working_set).sum::<f64>();
        self.ws.set(Some(ws));
        ws
    }

    /// `true` after an OOM kill; a dead replica accepts no work.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The replica's internal clock (last drain time).
    #[must_use]
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Cumulative drained work since the last [`ReplicaServer::take_consumed`],
    /// with the memory component set to the *current* working set so the
    /// caller can treat the vector as a usage snapshot.
    pub fn take_consumed(&mut self) -> ResourceVec {
        let mut out = self.consumed;
        out[Resource::Memory] = self.working_set();
        self.consumed = ResourceVec::ZERO;
        out
    }

    /// Applies a vertical resize at the replica's current clock.
    pub fn set_alloc(&mut self, alloc: ResourceVec) {
        self.alloc = alloc.sanitized();
        self.cache = None;
    }

    /// Current effective thrash factor (1 = healthy).
    #[must_use]
    pub fn thrash_factor(&self) -> f64 {
        let mem = self.alloc[Resource::Memory];
        if mem <= 0.0 {
            return 1.0 + self.config.thrash_coeff;
        }
        let over = self.working_set() / mem;
        // Plain compare instead of `f64::max`: the operands are never
        // NaN, so the value is identical without the NaN-propagation
        // sequence `max` compiles to.
        let excess = over - 1.0;
        1.0 + self.config.thrash_coeff * if excess > 0.0 { excess } else { 0.0 }
    }

    fn over_oom(&self) -> bool {
        let mem = self.alloc[Resource::Memory];
        mem > 0.0 && self.working_set() > self.config.oom_threshold * mem
    }

    /// Admits a request at `at` (must not precede the replica clock).
    /// Returns an OOM outcome when the new working set crosses the kill
    /// threshold; the engine must then kill the pod.
    ///
    /// # Panics
    ///
    /// Panics when the replica is dead or `at` precedes the clock.
    pub fn admit(
        &mut self,
        id: u64,
        at: SimTime,
        deadline: SimTime,
        demand: ResourceVec,
    ) -> Option<DrainOutcome> {
        self.admit_arrived(id, at, at, deadline, demand)
    }

    /// Like [`ReplicaServer::admit`], but with a separate logical arrival
    /// time used for latency accounting — a request that waited in a
    /// front-door queue keeps its original arrival.
    ///
    /// # Panics
    ///
    /// Panics when the replica is dead or `at` precedes the clock.
    pub fn admit_arrived(
        &mut self,
        id: u64,
        at: SimTime,
        arrived: SimTime,
        deadline: SimTime,
        demand: ResourceVec,
    ) -> Option<DrainOutcome> {
        let mut pre = DrainOutcome::default();
        if self.admit_arrived_into(id, at, arrived, deadline, demand, &mut pre) {
            Some(pre)
        } else {
            None
        }
    }

    /// Allocation-free form of [`ReplicaServer::admit_arrived`]: outcomes
    /// are pushed into `out` (not cleared first) and the return value says
    /// whether anything was recorded.
    ///
    /// # Panics
    ///
    /// Panics when the replica is dead or `at` precedes the clock.
    pub fn admit_arrived_into(
        &mut self,
        id: u64,
        at: SimTime,
        arrived: SimTime,
        deadline: SimTime,
        demand: ResourceVec,
        out: &mut DrainOutcome,
    ) -> bool {
        assert!(!self.dead, "admitting work to a dead replica");
        assert!(at >= self.clock, "admission in the past");
        // Bring the replica forward first so existing work is accounted
        // under the old concurrency level.
        let before = (out.completed.len(), out.timed_out.len());
        if at > self.clock {
            self.advance_into(at, out);
        }
        let mut remaining = demand;
        remaining[Resource::Memory] = 0.0;
        self.cache = None;
        // Appending extends the memoized left-fold sum by exactly one
        // trailing add — the same float sequence a recompute would run —
        // so the cache updates incrementally instead of invalidating.
        let ws_next = self.ws.get().map(|w| w + demand[Resource::Memory]);
        self.inflight.push(InFlight {
            id,
            arrived: arrived.min(at),
            deadline,
            remaining,
            working_set: demand[Resource::Memory],
        });
        self.ws.set(ws_next);
        if self.over_oom() {
            self.kill_into(out);
            return true;
        }
        out.completed.len() != before.0 || out.timed_out.len() != before.1 || out.oom_killed
    }

    /// Kills the replica: every in-flight request is dropped and reported
    /// as timed out.
    pub fn kill(&mut self) -> DrainOutcome {
        let mut out = DrainOutcome::default();
        self.kill_into(&mut out);
        out
    }

    /// Allocation-free form of [`ReplicaServer::kill`]: dropped request
    /// ids are appended to `out` and `oom_killed` is set.
    pub fn kill_into(&mut self, out: &mut DrainOutcome) {
        self.dead = true;
        self.cache = None;
        self.ws.set(None);
        out.timed_out.extend(self.inflight.drain(..).map(|r| r.id));
        out.oom_killed = true;
    }

    /// The absolute time of the next completion or timeout, `None` when
    /// idle. The engine schedules its wake-up here.
    ///
    /// The result is memoized: the engine calls this after every drain to
    /// reschedule, and the subsequent [`ReplicaServer::advance`] reuses
    /// the same boundary and rates instead of rescanning the in-flight
    /// set.
    pub fn next_event(&mut self) -> Option<SimTime> {
        self.fill_cache().event
    }

    fn fill_cache(&mut self) -> NextCache {
        if let Some(c) = self.cache {
            return c;
        }
        let c = self.compute_next();
        self.cache = Some(c);
        c
    }

    fn compute_next(&self) -> NextCache {
        if self.dead || self.inflight.is_empty() {
            return NextCache { event: None, rates: ResourceVec::ZERO };
        }
        let n = self.inflight.len() as f64;
        let rates = self.effective_rates(n);
        const DIMS: [Resource; 3] = [Resource::Cpu, Resource::DiskIo, Resource::NetIo];
        if DIMS.iter().any(|&r| rates[r] <= 1e-12) {
            // A starved dimension: take the careful per-request path.
            let mut best: Option<SimTime> = None;
            for req in &self.inflight {
                let finish = self.finish_estimate(req, &rates);
                let event = finish.min(req.deadline);
                best = Some(match best {
                    None => event,
                    Some(b) => b.min(event),
                });
            }
            return NextCache { event: best, rates };
        }
        // Fast path (every rate positive, the overwhelming case): reduce
        // the raw per-request drain estimates in seconds and convert to a
        // timestamp once. `ceil` to the microsecond grid, the clock
        // offset, and the deadline min are all monotone, so they commute
        // with the min-reduction — the event is bit-identical to the
        // per-request form, with one rounding per scan instead of one per
        // request and no branches inside the loop.
        let mut best_secs = f64::INFINITY;
        let mut best_deadline = SimTime::MAX;
        for req in &self.inflight {
            let mut secs: f64 = 0.0;
            for r in DIMS {
                let rem = req.remaining[r];
                let q = if rem > 1e-12 { rem / rates[r] } else { 0.0 };
                // Never NaN, so a compare is bit-identical to `max`/`min`
                // without their NaN-handling instruction sequences.
                if q > secs {
                    secs = q;
                }
            }
            if secs < best_secs {
                best_secs = secs;
            }
            best_deadline = best_deadline.min(req.deadline);
        }
        let finish = self.clock + SimDuration::from_secs_f64_ceil(best_secs);
        NextCache { event: Some(finish.min(best_deadline)), rates }
    }

    /// Per-request drain rates at concurrency `n` (mcore, MB/s, MB/s),
    /// including the thrash penalty on CPU.
    fn effective_rates(&self, n: f64) -> ResourceVec {
        let thrash = self.thrash_factor();
        let mut rates = self.alloc * (1.0 / n.max(1.0));
        rates[Resource::Cpu] /= thrash;
        rates[Resource::Memory] = 0.0;
        rates
    }

    /// Absolute finish time estimate for one request at current rates.
    fn finish_estimate(&self, req: &InFlight, rates: &ResourceVec) -> SimTime {
        let mut secs: f64 = 0.0;
        for r in [Resource::Cpu, Resource::DiskIo, Resource::NetIo] {
            let rem = req.remaining[r];
            if rem > 1e-12 {
                let rate = rates[r];
                if rate <= 1e-12 {
                    return SimTime::MAX; // starved: only the deadline frees it
                }
                secs = secs.max(rem / rate);
            }
        }
        // Round up to the next microsecond so the drain loop always makes
        // forward progress (a nearest-rounded sub-microsecond estimate
        // would pin the boundary at the current clock).
        self.clock + SimDuration::from_secs_f64_ceil(secs)
    }

    /// Advances the replica to `to`, draining work, completing and timing
    /// out requests along the way.
    ///
    /// # Panics
    ///
    /// Panics when `to` precedes the replica clock.
    pub fn advance(&mut self, to: SimTime) -> DrainOutcome {
        let mut outcome = DrainOutcome::default();
        self.advance_into(to, &mut outcome);
        outcome
    }

    /// Allocation-free form of [`ReplicaServer::advance`]: completions and
    /// timeouts are appended to `out` (not cleared first), so the engine
    /// can reuse one scratch outcome across every wake.
    ///
    /// # Panics
    ///
    /// Panics when `to` precedes the replica clock.
    pub fn advance_into(&mut self, to: SimTime, outcome: &mut DrainOutcome) {
        assert!(to >= self.clock, "advance into the past");
        if self.inflight.is_empty() || self.dead {
            // Quiescent replica: O(1) clock move, nothing to drain. The
            // cached next-event (`None`) stays valid — it does not depend
            // on the clock while the in-flight set is empty.
            if self.clock < to {
                self.clock = to;
            }
            return;
        }
        // Process piecewise: each sub-interval ends at the earliest
        // completion/timeout or at `to`.
        let mut guard = 0usize;
        while self.clock < to && !self.inflight.is_empty() && !self.dead {
            guard += 1;
            assert!(guard < 1_000_000, "drain loop did not converge");
            let NextCache { event, rates } = self.fill_cache();
            let boundary = event.map_or(to, |e| e.min(to));
            let dt = boundary.saturating_since(self.clock).as_secs_f64();
            if dt > 0.0 {
                // Hoist the per-interval work quantum (same operands, so
                // bit-identical) and accumulate into a register-resident
                // copy of `consumed` — the adds happen in the exact same
                // order, just without round-tripping through memory.
                let mut consumed = self.consumed;
                for req in &mut self.inflight {
                    for r in [Resource::Cpu, Resource::DiskIo, Resource::NetIo] {
                        let step = rates[r] * dt;
                        let rem = req.remaining[r];
                        let drained = if step < rem { step } else { rem };
                        req.remaining[r] -= drained;
                        consumed[r] += drained;
                    }
                }
                self.consumed = consumed;
            }
            self.clock = boundary;
            // The drain mutated remaining work and the clock; estimates
            // must be recomputed next iteration.
            self.cache = None;
            // Remove finished and timed-out requests at the boundary.
            let clock = self.clock;
            let mut i = 0;
            while i < self.inflight.len() {
                let req = &self.inflight[i];
                // Short-circuit per-dimension check: equivalent to
                // `max_component() <= 1e-9` for the never-NaN remaining
                // vector, and usually settled by the first compare.
                let rem = &req.remaining;
                let done = rem[Resource::Cpu] <= 1e-9
                    && rem[Resource::DiskIo] <= 1e-9
                    && rem[Resource::NetIo] <= 1e-9
                    && rem[Resource::Memory] <= 1e-9;
                if done {
                    outcome.completed.push(Completion {
                        id: req.id,
                        latency: clock.saturating_since(req.arrived),
                    });
                    self.inflight.swap_remove(i);
                    self.ws.set(None);
                } else if clock >= req.deadline {
                    outcome.timed_out.push(req.id);
                    self.inflight.swap_remove(i);
                    self.ws.set(None);
                } else {
                    i += 1;
                }
            }
        }
        if self.clock < to {
            self.clock = to;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> ResourceVec {
        ResourceVec::new(1_000.0, 1_024.0, 100.0, 100.0)
    }

    fn server() -> ReplicaServer {
        ReplicaServer::new(alloc(), 64.0, PerfConfig::default(), SimTime::ZERO)
    }

    fn cpu_req(mcore_s: f64) -> ResourceVec {
        ResourceVec::new(mcore_s, 4.0, 0.0, 0.0)
    }

    #[test]
    fn single_cpu_request_latency() {
        let mut r = server();
        r.admit(1, SimTime::ZERO, SimTime::from_secs(60), cpu_req(500.0));
        // 500 mcore·s at 1000 mcore → 0.5 s.
        assert_eq!(r.next_event(), Some(SimTime::from_millis(500)));
        let out = r.advance(SimTime::from_millis(500));
        assert_eq!(out.completed.len(), 1);
        assert_eq!(out.completed[0].latency, SimDuration::from_millis(500));
        assert_eq!(r.inflight_len(), 0);
    }

    #[test]
    fn processor_sharing_halves_rates() {
        let mut r = server();
        r.admit(1, SimTime::ZERO, SimTime::from_secs(60), cpu_req(500.0));
        r.admit(2, SimTime::ZERO, SimTime::from_secs(60), cpu_req(500.0));
        // Two equal requests share the core: both finish at 1.0 s.
        let out = r.advance(SimTime::from_secs(2));
        assert_eq!(out.completed.len(), 2);
        for c in &out.completed {
            assert_eq!(c.latency, SimDuration::from_secs(1));
        }
    }

    #[test]
    fn late_arrival_slows_earlier_request() {
        let mut r = server();
        r.admit(1, SimTime::ZERO, SimTime::from_secs(60), cpu_req(500.0));
        // Second request arrives at 0.25 s; first has 250 mcore·s left and
        // now drains at 500 mcore → finishes at 0.75 s.
        r.admit(2, SimTime::from_millis(250), SimTime::from_secs(60), cpu_req(500.0));
        let out = r.advance(SimTime::from_secs(3));
        let first = out.completed.iter().find(|c| c.id == 1).unwrap();
        assert_eq!(first.latency, SimDuration::from_millis(750));
        // Second: shares 0.25–0.75 (drains 250), alone 0.75–1.0 → 1.0 s.
        let second = out.completed.iter().find(|c| c.id == 2).unwrap();
        assert_eq!(second.latency, SimDuration::from_millis(750));
    }

    #[test]
    fn bottleneck_dimension_dominates() {
        let mut r = server();
        // 100 mcore·s cpu (0.1 s) but 50 MB of disk at 100 MB/s (0.5 s).
        r.admit(1, SimTime::ZERO, SimTime::from_secs(60), ResourceVec::new(100.0, 4.0, 50.0, 0.0));
        let out = r.advance(SimTime::from_secs(1));
        assert_eq!(out.completed[0].latency, SimDuration::from_millis(500));
    }

    #[test]
    fn timeout_drops_request() {
        let mut r = server();
        r.admit(1, SimTime::ZERO, SimTime::from_millis(100), cpu_req(10_000.0));
        assert_eq!(r.next_event(), Some(SimTime::from_millis(100)));
        let out = r.advance(SimTime::from_secs(1));
        assert_eq!(out.timed_out, vec![1]);
        assert_eq!(out.completed.len(), 0);
        assert_eq!(r.inflight_len(), 0);
    }

    #[test]
    fn starved_dimension_times_out() {
        // Zero net allocation but net demand: request can never finish.
        let mut r = ReplicaServer::new(
            ResourceVec::new(1_000.0, 1_024.0, 100.0, 0.0),
            0.0,
            PerfConfig::default(),
            SimTime::ZERO,
        );
        r.admit(1, SimTime::ZERO, SimTime::from_secs(2), ResourceVec::new(10.0, 0.0, 0.0, 5.0));
        assert_eq!(r.next_event(), Some(SimTime::from_secs(2)));
        let out = r.advance(SimTime::from_secs(3));
        assert_eq!(out.timed_out, vec![1]);
    }

    #[test]
    fn thrash_slows_cpu() {
        let cfg = PerfConfig { thrash_coeff: 4.0, oom_threshold: 10.0 };
        // 100 MiB allocation; request working set 150 + base 0 → 1.5×
        // overcommit → thrash factor 1 + 4*0.5 = 3.
        let mut r = ReplicaServer::new(
            ResourceVec::new(1_000.0, 100.0, 100.0, 100.0),
            0.0,
            cfg,
            SimTime::ZERO,
        );
        r.admit(
            1,
            SimTime::ZERO,
            SimTime::from_secs(60),
            ResourceVec::new(1_000.0, 150.0, 0.0, 0.0),
        );
        assert!((r.thrash_factor() - 3.0).abs() < 1e-9);
        let out = r.advance(SimTime::from_secs(10));
        // 1 s of work takes 3 s under thrash.
        assert_eq!(out.completed[0].latency, SimDuration::from_secs(3));
    }

    #[test]
    fn oom_kill_on_admission() {
        let cfg = PerfConfig::default(); // kill at 1.5× of 100 MiB = 150
        let mut r = ReplicaServer::new(
            ResourceVec::new(1_000.0, 100.0, 100.0, 100.0),
            50.0,
            cfg,
            SimTime::ZERO,
        );
        r.admit(1, SimTime::ZERO, SimTime::from_secs(60), ResourceVec::new(10.0, 60.0, 0.0, 0.0));
        assert!(!r.is_dead());
        // +60 MiB → ws = 170 > 150 → OOM.
        let out = r
            .admit(2, SimTime::ZERO, SimTime::from_secs(60), ResourceVec::new(10.0, 60.0, 0.0, 0.0))
            .expect("OOM outcome");
        assert!(out.oom_killed);
        assert!(r.is_dead());
        assert_eq!(out.timed_out.len(), 2);
    }

    #[test]
    fn consumed_tracks_drained_work() {
        let mut r = server();
        r.admit(1, SimTime::ZERO, SimTime::from_secs(60), ResourceVec::new(500.0, 4.0, 10.0, 20.0));
        r.advance(SimTime::from_secs(1));
        let used = r.take_consumed();
        assert!((used.cpu() - 500.0).abs() < 1e-6);
        assert!((used.disk_io() - 10.0).abs() < 1e-6);
        assert!((used.net_io() - 20.0).abs() < 1e-6);
        // Memory reports the current working set (base only, request done).
        assert!((used.memory() - 64.0).abs() < 1e-6);
        // Second take returns zero rate work.
        assert_eq!(r.take_consumed().cpu(), 0.0);
    }

    #[test]
    fn resize_speeds_up_in_place() {
        let mut r = server();
        r.admit(1, SimTime::ZERO, SimTime::from_secs(60), cpu_req(1_000.0));
        // Half way through, double the CPU.
        r.advance(SimTime::from_millis(500));
        r.set_alloc(ResourceVec::new(2_000.0, 1_024.0, 100.0, 100.0));
        let out = r.advance(SimTime::from_secs(5));
        // 500 mcore·s left at 2000 mcore → 0.25 s more → total 0.75 s.
        assert_eq!(out.completed[0].latency, SimDuration::from_millis(750));
    }

    #[test]
    fn idle_replica_has_no_events() {
        let mut r = server();
        assert_eq!(r.next_event(), None);
        let out = r.advance(SimTime::from_secs(5));
        assert!(out.completed.is_empty() && out.timed_out.is_empty());
        assert_eq!(r.clock(), SimTime::from_secs(5));
    }

    #[test]
    fn many_requests_complete_in_fifo_of_size() {
        let mut r = server();
        for i in 0..10 {
            r.admit(i, SimTime::ZERO, SimTime::from_secs(600), cpu_req(100.0 * (i + 1) as f64));
        }
        let out = r.advance(SimTime::from_secs(60));
        assert_eq!(out.completed.len(), 10);
        // Smaller requests finish earlier under PS.
        let mut latencies: Vec<(u64, SimDuration)> =
            out.completed.iter().map(|c| (c.id, c.latency)).collect();
        latencies.sort_by_key(|(id, _)| *id);
        for w in latencies.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    #[should_panic(expected = "admission in the past")]
    fn admission_in_past_panics() {
        let mut r = server();
        r.advance(SimTime::from_secs(1));
        r.admit(1, SimTime::ZERO, SimTime::from_secs(2), cpu_req(1.0));
    }
}
