//! Observation types: what the resource manager sees each control window.
//!
//! The engine accumulates per-application statistics between harvests;
//! [`AppWindow`] is the scrape the controller consumes — completions,
//! tail latency, measured usage, current allocation. [`ClusterSnapshot`]
//! and [`JobOutcome`] feed the experiment reports.

use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::{AppId, JobId, PriorityClass, ResourceVec, Result, SimDuration, SimTime};
use evolve_workload::{PloSpec, WorldClass};
use serde::{Deserialize, Serialize};

/// Static identity of a managed application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppStatus {
    /// The application id.
    pub id: AppId,
    /// Human-readable name from the workload spec.
    pub name: String,
    /// Which world the app belongs to.
    pub world: WorldClass,
    /// The app's performance objective.
    pub plo: PloSpec,
    /// How the capacity arbiter treats the app under cluster overload.
    pub priority: PriorityClass,
}

/// Which execution model an application uses (mirrors
/// [`WorldClass`] but carries engine-specific detail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppKind {
    /// Open-loop request service.
    Service,
    /// Staged batch job.
    Batch,
    /// Gang-scheduled HPC job.
    Hpc,
}

/// One control window's measurements for an application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppWindow {
    /// Harvest time (end of window).
    pub at: SimTime,
    /// Window length.
    pub duration: SimDuration,
    /// Requests that arrived in the window (services).
    pub arrivals: u64,
    /// Requests completed in the window.
    pub completions: u64,
    /// Requests dropped on timeout in the window.
    pub timeouts: u64,
    /// Requests rejected at admission while the app ran capacity-clipped
    /// (load shedding) — counted in `arrivals` but never queued, so they
    /// neither complete nor time out.
    pub shed_requests: u64,
    /// OOM kills in the window.
    pub oom_kills: u64,
    /// 99th-percentile latency (ms) of completions; `None` when none
    /// completed.
    pub p99_ms: Option<f64>,
    /// Mean latency (ms) of completions.
    pub mean_ms: Option<f64>,
    /// Completions per second over the window.
    pub throughput_rps: f64,
    /// Measured usage: mean consumption rates over the window (CPU
    /// mcores, disk/net MB/s) with the *current* memory footprint (MiB),
    /// summed across replicas.
    pub usage: ResourceVec,
    /// Current total allocation (sum of running pod requests).
    pub alloc: ResourceVec,
    /// Current per-replica allocation (alloc / running replicas).
    pub alloc_per_replica: ResourceVec,
    /// Replicas currently running.
    pub running_replicas: u32,
    /// Replicas pending or starting.
    pub pending_replicas: u32,
    /// Work fraction complete (jobs only).
    pub progress: Option<f64>,
    /// Projected total makespan in seconds, from progress so far (jobs
    /// only; `None` until progress is measurable).
    pub projected_makespan_s: Option<f64>,
}

impl Codec for AppWindow {
    fn encode(&self, enc: &mut Encoder) {
        self.at.encode(enc);
        self.duration.encode(enc);
        self.arrivals.encode(enc);
        self.completions.encode(enc);
        self.timeouts.encode(enc);
        self.shed_requests.encode(enc);
        self.oom_kills.encode(enc);
        self.p99_ms.encode(enc);
        self.mean_ms.encode(enc);
        self.throughput_rps.encode(enc);
        self.usage.encode(enc);
        self.alloc.encode(enc);
        self.alloc_per_replica.encode(enc);
        self.running_replicas.encode(enc);
        self.pending_replicas.encode(enc);
        self.progress.encode(enc);
        self.projected_makespan_s.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(AppWindow {
            at: SimTime::decode(dec)?,
            duration: SimDuration::decode(dec)?,
            arrivals: u64::decode(dec)?,
            completions: u64::decode(dec)?,
            timeouts: u64::decode(dec)?,
            shed_requests: u64::decode(dec)?,
            oom_kills: u64::decode(dec)?,
            p99_ms: Option::<f64>::decode(dec)?,
            mean_ms: Option::<f64>::decode(dec)?,
            throughput_rps: f64::decode(dec)?,
            usage: ResourceVec::decode(dec)?,
            alloc: ResourceVec::decode(dec)?,
            alloc_per_replica: ResourceVec::decode(dec)?,
            running_replicas: u32::decode(dec)?,
            pending_replicas: u32::decode(dec)?,
            progress: Option::<f64>::decode(dec)?,
            projected_makespan_s: Option::<f64>::decode(dec)?,
        })
    }
}

impl AppWindow {
    /// Per-replica usage (usage / running replicas; zero when none run).
    #[must_use]
    pub fn usage_per_replica(&self) -> ResourceVec {
        if self.running_replicas == 0 {
            ResourceVec::ZERO
        } else {
            self.usage * (1.0 / f64::from(self.running_replicas))
        }
    }

    /// The measured value to compare against the given PLO: p99/mean
    /// latency in ms, throughput in rps, or projected makespan in
    /// seconds. `None` when the window provides no signal (e.g. no
    /// completions for a latency PLO with no arrivals either).
    #[must_use]
    pub fn measured_for(&self, plo: &PloSpec) -> Option<f64> {
        match plo {
            PloSpec::LatencyP99 { .. } => match self.p99_ms {
                Some(v) if self.timeouts == 0 => Some(v),
                // Timeouts poison the window: report a value beyond any
                // completion (the dropped requests were the slowest).
                Some(v) => Some(v.max(1e6)),
                None if self.arrivals > 0 || self.timeouts > 0 => Some(f64::INFINITY),
                None => None,
            },
            PloSpec::LatencyMean { .. } => match self.mean_ms {
                Some(v) if self.timeouts == 0 => Some(v),
                Some(v) => Some(v.max(1e6)),
                None if self.arrivals > 0 || self.timeouts > 0 => Some(f64::INFINITY),
                None => None,
            },
            PloSpec::Throughput { .. } => Some(self.throughput_rps),
            PloSpec::Deadline { .. } => self.projected_makespan_s,
        }
    }
}

/// Aggregate cluster state at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Snapshot time.
    pub at: SimTime,
    /// Total allocatable capacity (ready nodes).
    pub allocatable: ResourceVec,
    /// Total reserved requests.
    pub allocated: ResourceVec,
    /// Pods currently running.
    pub pods_running: u32,
    /// Pods pending or starting.
    pub pods_pending: u32,
    /// Ready nodes.
    pub nodes_ready: u32,
}

/// Final outcome of one batch or HPC job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job instance.
    pub job: JobId,
    /// The owning application.
    pub app: AppId,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time, `None` when unfinished at the horizon.
    pub finished: Option<SimTime>,
    /// The job's deadline (absolute).
    pub deadline: SimTime,
}

impl JobOutcome {
    /// `true` when the job finished before its deadline.
    #[must_use]
    pub fn met_deadline(&self) -> bool {
        self.finished.is_some_and(|f| f <= self.deadline)
    }

    /// Makespan in seconds, when finished.
    #[must_use]
    pub fn makespan_s(&self) -> Option<f64> {
        self.finished.map(|f| f.saturating_since(self.submitted).as_secs_f64())
    }
}

/// Internal per-window accumulator (crate-private mechanics, public type
/// for the engine modules).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct WindowAccumulator {
    pub arrivals: u64,
    pub completions: u64,
    pub timeouts: u64,
    pub shed: u64,
    pub oom_kills: u64,
    pub latencies_ms: Vec<f64>,
    pub consumed: ResourceVec,
    pub window_start: SimTime,
}

impl WindowAccumulator {
    pub fn record_completion(&mut self, latency: SimDuration) {
        self.completions += 1;
        self.latencies_ms.push(latency.as_millis_f64());
    }

    /// Drains the accumulator into an [`AppWindow`] skeleton (caller fills
    /// allocation/replica fields).
    pub fn harvest(&mut self, now: SimTime, current_memory: f64) -> AppWindow {
        let duration = now.saturating_since(self.window_start);
        let secs = duration.as_secs_f64().max(1e-9);
        let mut lat = std::mem::take(&mut self.latencies_ms);
        // Unstable sort on the raw IEEE-754 bit pattern: for the
        // non-negative, non-NaN latencies this is the exact `total_cmp`
        // order (u64 compares, no temp allocation), and with a total
        // order the sorted sequence is determined by the multiset alone —
        // so the quantiles and the in-order mean sum are bit-identical to
        // the stable comparator sort's.
        lat.sort_unstable_by_key(|l| l.to_bits());
        let p99 = percentile(&lat, 0.99);
        let mean =
            if lat.is_empty() { None } else { Some(lat.iter().sum::<f64>() / lat.len() as f64) };
        let mut usage = self.consumed * (1.0 / secs);
        usage[evolve_types::Resource::Memory] = current_memory;
        let out = AppWindow {
            at: now,
            duration,
            arrivals: self.arrivals,
            completions: self.completions,
            timeouts: self.timeouts,
            shed_requests: self.shed,
            oom_kills: self.oom_kills,
            p99_ms: p99,
            mean_ms: mean,
            throughput_rps: self.completions as f64 / secs,
            usage,
            alloc: ResourceVec::ZERO,
            alloc_per_replica: ResourceVec::ZERO,
            running_replicas: 0,
            pending_replicas: 0,
            progress: None,
            projected_makespan_s: None,
        };
        *self = WindowAccumulator { window_start: now, ..WindowAccumulator::default() };
        // Hand the latency buffer back so steady-state windows record
        // without reallocating.
        lat.clear();
        self.latencies_ms = lat;
        out
    }
}

fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Some(sorted[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_harvest_computes_stats() {
        let mut acc = WindowAccumulator { window_start: SimTime::ZERO, ..Default::default() };
        acc.arrivals = 5;
        for ms in [10u64, 20, 30, 40] {
            acc.record_completion(SimDuration::from_millis(ms));
        }
        acc.consumed = ResourceVec::new(1_000.0, 0.0, 50.0, 20.0);
        let w = acc.harvest(SimTime::from_secs(10), 256.0);
        assert_eq!(w.completions, 4);
        assert_eq!(w.arrivals, 5);
        assert_eq!(w.mean_ms, Some(25.0));
        assert_eq!(w.p99_ms, Some(40.0));
        assert!((w.throughput_rps - 0.4).abs() < 1e-9);
        assert!((w.usage.cpu() - 100.0).abs() < 1e-9);
        assert_eq!(w.usage.memory(), 256.0);
        // Accumulator reset.
        assert_eq!(acc.completions, 0);
        assert_eq!(acc.window_start, SimTime::from_secs(10));
    }

    #[test]
    fn harvest_carries_shed_requests() {
        let mut acc = WindowAccumulator { window_start: SimTime::ZERO, ..Default::default() };
        acc.arrivals = 10;
        acc.shed = 4;
        for ms in [10u64, 20] {
            acc.record_completion(SimDuration::from_millis(ms));
        }
        let w = acc.harvest(SimTime::from_secs(5), 64.0);
        assert_eq!(w.shed_requests, 4);
        assert_eq!(w.arrivals, 10);
        // Shed requests are not timeouts: they must not poison the
        // latency signal of the requests that were served.
        assert_eq!(w.measured_for(&PloSpec::LatencyP99 { target_ms: 100.0 }), Some(20.0));
        assert_eq!(acc.shed, 0, "accumulator resets after harvest");
    }

    #[test]
    fn measured_for_latency_plos() {
        let mut w = AppWindow {
            at: SimTime::ZERO,
            duration: SimDuration::from_secs(1),
            arrivals: 10,
            completions: 10,
            timeouts: 0,
            shed_requests: 0,
            oom_kills: 0,
            p99_ms: Some(80.0),
            mean_ms: Some(40.0),
            throughput_rps: 10.0,
            usage: ResourceVec::ZERO,
            alloc: ResourceVec::ZERO,
            alloc_per_replica: ResourceVec::ZERO,
            running_replicas: 2,
            pending_replicas: 0,
            progress: None,
            projected_makespan_s: None,
        };
        let p99 = PloSpec::LatencyP99 { target_ms: 100.0 };
        assert_eq!(w.measured_for(&p99), Some(80.0));
        assert_eq!(w.measured_for(&PloSpec::LatencyMean { target_ms: 50.0 }), Some(40.0));
        assert_eq!(w.measured_for(&PloSpec::Throughput { target_rps: 5.0 }), Some(10.0));
        // Timeouts poison the window.
        w.timeouts = 1;
        assert!(w.measured_for(&p99).unwrap() >= 1e6);
        // No completions but arrivals → infinite latency.
        w.p99_ms = None;
        w.timeouts = 0;
        assert_eq!(w.measured_for(&p99), Some(f64::INFINITY));
        // Truly idle window → no signal.
        w.arrivals = 0;
        assert_eq!(w.measured_for(&p99), None);
    }

    #[test]
    fn usage_per_replica_divides() {
        let w = AppWindow {
            at: SimTime::ZERO,
            duration: SimDuration::from_secs(1),
            arrivals: 0,
            completions: 0,
            timeouts: 0,
            shed_requests: 0,
            oom_kills: 0,
            p99_ms: None,
            mean_ms: None,
            throughput_rps: 0.0,
            usage: ResourceVec::splat(100.0),
            alloc: ResourceVec::ZERO,
            alloc_per_replica: ResourceVec::ZERO,
            running_replicas: 4,
            pending_replicas: 0,
            progress: None,
            projected_makespan_s: None,
        };
        assert_eq!(w.usage_per_replica(), ResourceVec::splat(25.0));
    }

    #[test]
    fn job_outcome_deadline() {
        let o = JobOutcome {
            job: JobId::new(1),
            app: AppId::new(1),
            submitted: SimTime::from_secs(10),
            finished: Some(SimTime::from_secs(100)),
            deadline: SimTime::from_secs(120),
        };
        assert!(o.met_deadline());
        assert_eq!(o.makespan_s(), Some(90.0));
        let unfinished = JobOutcome { finished: None, ..o };
        assert!(!unfinished.met_deadline());
        assert_eq!(unfinished.makespan_s(), None);
    }
}
