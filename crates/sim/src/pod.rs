//! Pod specifications and lifecycle.

use evolve_types::{AppId, JobId, NodeId, PodId, ResourceVec, SimTime};
use serde::{Deserialize, Serialize};

/// What kind of workload a pod carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PodKind {
    /// One replica of a latency-critical service.
    ServiceReplica {
        /// Owning application.
        app: AppId,
    },
    /// One task of a big-data batch stage.
    BatchTask {
        /// Owning application (the job's manager identity).
        app: AppId,
        /// The job instance.
        job: JobId,
        /// Stage index within the job.
        stage: u32,
        /// Task index within the stage.
        task: u32,
    },
    /// One rank of a gang-scheduled HPC job.
    HpcRank {
        /// Owning application (the job's manager identity).
        app: AppId,
        /// The job instance.
        job: JobId,
        /// Rank index within the gang.
        rank: u32,
    },
}

impl PodKind {
    /// The owning application id.
    #[must_use]
    pub fn app(&self) -> AppId {
        match self {
            PodKind::ServiceReplica { app }
            | PodKind::BatchTask { app, .. }
            | PodKind::HpcRank { app, .. } => *app,
        }
    }

    /// `true` for gang members that require all-or-nothing scheduling.
    #[must_use]
    pub fn is_gang(&self) -> bool {
        matches!(self, PodKind::HpcRank { .. })
    }
}

/// Desired state of a pod.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PodSpec {
    /// Workload kind and ownership.
    pub kind: PodKind,
    /// Resource request (the reservation the scheduler packs by).
    pub request: ResourceVec,
    /// Resource limit (vertical resizes may not exceed this).
    pub limit: ResourceVec,
    /// Scheduling priority; higher values may preempt lower ones.
    pub priority: i32,
}

impl PodSpec {
    /// Creates a spec with `limit` defaulting to four times the request.
    ///
    /// # Panics
    ///
    /// Panics when the request is invalid or zero.
    #[must_use]
    pub fn new(kind: PodKind, request: ResourceVec, priority: i32) -> Self {
        assert!(request.is_valid() && !request.is_zero(), "request must be valid and non-zero");
        PodSpec { kind, request, limit: request * 4.0, priority }
    }

    /// Overrides the limit.
    ///
    /// # Panics
    ///
    /// Panics when the request does not fit within `limit`.
    #[must_use]
    pub fn with_limit(mut self, limit: ResourceVec) -> Self {
        assert!(self.request.fits_within(&limit), "request must fit within limit");
        self.limit = limit;
        self
    }
}

/// Observed lifecycle phase of a pod.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PodPhase {
    /// Created, waiting for a scheduling decision.
    Pending,
    /// Bound to a node, container starting up.
    Starting,
    /// Running and serving work.
    Running,
    /// Completed successfully (jobs only).
    Succeeded,
    /// Terminated with an error (OOM kill, node failure, preemption).
    Failed(String),
}

impl PodPhase {
    /// `true` while the pod still occupies node resources.
    #[must_use]
    pub fn holds_resources(&self) -> bool {
        matches!(self, PodPhase::Starting | PodPhase::Running)
    }

    /// `true` once the pod reached a terminal phase.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, PodPhase::Succeeded | PodPhase::Failed(_))
    }
}

/// A pod instance tracked by the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pod {
    /// Unique id.
    pub id: PodId,
    /// Desired state.
    pub spec: PodSpec,
    /// Node the pod is bound to, if any.
    pub node: Option<NodeId>,
    /// Lifecycle phase.
    pub phase: PodPhase,
    /// When the pod object was created.
    pub created: SimTime,
    /// When the pod became `Running`, if it has.
    pub started: Option<SimTime>,
}

impl Pod {
    /// Creates a pending pod.
    #[must_use]
    pub fn new(id: PodId, spec: PodSpec, created: SimTime) -> Self {
        Pod { id, spec, node: None, phase: PodPhase::Pending, created, started: None }
    }

    /// The owning application.
    #[must_use]
    pub fn app(&self) -> AppId {
        self.spec.kind.app()
    }

    /// `true` when the pod is awaiting scheduling.
    #[must_use]
    pub fn is_pending(&self) -> bool {
        self.phase == PodPhase::Pending
    }

    /// `true` when the pod is serving work.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.phase == PodPhase::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PodSpec {
        PodSpec::new(PodKind::ServiceReplica { app: AppId::new(1) }, ResourceVec::splat(100.0), 0)
    }

    #[test]
    fn default_limit_is_4x_request() {
        let s = spec();
        assert_eq!(s.limit, ResourceVec::splat(400.0));
    }

    #[test]
    fn with_limit_validates() {
        let s = spec().with_limit(ResourceVec::splat(150.0));
        assert_eq!(s.limit, ResourceVec::splat(150.0));
    }

    #[test]
    #[should_panic(expected = "request must fit within limit")]
    fn limit_below_request_rejected() {
        let _ = spec().with_limit(ResourceVec::splat(50.0));
    }

    #[test]
    fn pod_kind_ownership() {
        let app = AppId::new(3);
        let kinds = [
            PodKind::ServiceReplica { app },
            PodKind::BatchTask { app, job: JobId::new(1), stage: 0, task: 2 },
            PodKind::HpcRank { app, job: JobId::new(2), rank: 5 },
        ];
        for k in kinds {
            assert_eq!(k.app(), app);
        }
        assert!(!kinds[0].is_gang());
        assert!(kinds[2].is_gang());
    }

    #[test]
    fn phase_predicates() {
        assert!(!PodPhase::Pending.holds_resources());
        assert!(PodPhase::Starting.holds_resources());
        assert!(PodPhase::Running.holds_resources());
        assert!(!PodPhase::Succeeded.holds_resources());
        assert!(PodPhase::Succeeded.is_terminal());
        assert!(PodPhase::Failed("oom".into()).is_terminal());
        assert!(!PodPhase::Running.is_terminal());
    }

    #[test]
    fn new_pod_is_pending() {
        let p = Pod::new(PodId::new(1), spec(), SimTime::from_secs(2));
        assert!(p.is_pending());
        assert!(!p.is_running());
        assert_eq!(p.app(), AppId::new(1));
        assert_eq!(p.node, None);
    }
}
