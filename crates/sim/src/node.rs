//! Cluster nodes.

use std::collections::BTreeSet;

use evolve_types::{NodeId, PodId, ResourceVec};
use serde::{Deserialize, Serialize};

/// A worker node with multi-resource capacity and request accounting.
///
/// Invariant: the sum of bound pod requests never exceeds
/// [`Node::allocatable`]; all mutation goes through
/// [`crate::ClusterState`], which maintains the invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    capacity: ResourceVec,
    allocatable: ResourceVec,
    allocated: ResourceVec,
    pods: BTreeSet<PodId>,
    ready: bool,
}

impl Node {
    /// Creates a ready node. `allocatable` is capacity minus a 5% system
    /// reserve, mirroring kubelet's reserved resources.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is invalid or zero.
    #[must_use]
    pub fn new(id: NodeId, capacity: ResourceVec) -> Self {
        assert!(capacity.is_valid() && !capacity.is_zero(), "capacity must be valid, non-zero");
        Node {
            id,
            capacity,
            allocatable: capacity * 0.95,
            allocated: ResourceVec::ZERO,
            pods: BTreeSet::new(),
            ready: true,
        }
    }

    /// The node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Raw hardware capacity.
    #[must_use]
    pub fn capacity(&self) -> ResourceVec {
        self.capacity
    }

    /// Capacity available to pods (after the system reserve).
    #[must_use]
    pub fn allocatable(&self) -> ResourceVec {
        self.allocatable
    }

    /// Sum of bound pod requests.
    #[must_use]
    pub fn allocated(&self) -> ResourceVec {
        self.allocated
    }

    /// Unreserved headroom.
    #[must_use]
    pub fn free(&self) -> ResourceVec {
        self.allocatable - self.allocated
    }

    /// `true` when `request` fits in the free headroom of a ready node.
    #[must_use]
    pub fn can_fit(&self, request: &ResourceVec) -> bool {
        self.ready && request.fits_within(&self.free())
    }

    /// Pods currently bound here.
    #[must_use]
    pub fn pods(&self) -> &BTreeSet<PodId> {
        &self.pods
    }

    /// Whether the node accepts placements (false after a failure).
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    pub(crate) fn set_ready(&mut self, ready: bool) {
        self.ready = ready;
    }

    pub(crate) fn bind(&mut self, pod: PodId, request: ResourceVec) {
        debug_assert!(self.can_fit(&request), "bind without capacity check");
        self.allocated += request;
        self.pods.insert(pod);
    }

    pub(crate) fn unbind(&mut self, pod: PodId, request: ResourceVec) {
        debug_assert!(self.pods.contains(&pod), "unbinding foreign pod");
        self.allocated -= request;
        self.pods.remove(&pod);
    }

    pub(crate) fn adjust(&mut self, old_request: ResourceVec, new_request: ResourceVec) {
        self.allocated = (self.allocated - old_request) + new_request;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(NodeId::new(0), ResourceVec::splat(1000.0))
    }

    #[test]
    fn allocatable_reserves_five_percent() {
        let n = node();
        assert_eq!(n.allocatable(), ResourceVec::splat(950.0));
        assert_eq!(n.free(), ResourceVec::splat(950.0));
    }

    #[test]
    fn bind_and_unbind_account() {
        let mut n = node();
        n.bind(PodId::new(1), ResourceVec::splat(400.0));
        assert_eq!(n.free(), ResourceVec::splat(550.0));
        assert!(n.pods().contains(&PodId::new(1)));
        n.unbind(PodId::new(1), ResourceVec::splat(400.0));
        assert_eq!(n.free(), ResourceVec::splat(950.0));
        assert!(n.pods().is_empty());
    }

    #[test]
    fn can_fit_respects_free_space() {
        let mut n = node();
        assert!(n.can_fit(&ResourceVec::splat(950.0)));
        assert!(!n.can_fit(&ResourceVec::splat(951.0)));
        n.bind(PodId::new(1), ResourceVec::splat(900.0));
        assert!(n.can_fit(&ResourceVec::splat(50.0)));
        assert!(!n.can_fit(&ResourceVec::splat(51.0)));
    }

    #[test]
    fn not_ready_node_rejects_fit() {
        let mut n = node();
        n.set_ready(false);
        assert!(!n.can_fit(&ResourceVec::splat(1.0)));
        assert!(!n.is_ready());
    }

    #[test]
    fn adjust_moves_allocation() {
        let mut n = node();
        n.bind(PodId::new(1), ResourceVec::splat(100.0));
        n.adjust(ResourceVec::splat(100.0), ResourceVec::splat(250.0));
        assert_eq!(n.allocated(), ResourceVec::splat(250.0));
    }
}
