//! Big-data batch job execution: staged dataflow with a bounded executor
//! pool, task requeue on preemption, and record-throughput accounting.

use std::collections::BTreeMap;

use evolve_types::{AppId, JobId, PodId, Resource, ResourceVec, SimTime};
use evolve_workload::BatchJobSpec;

use crate::observe::{AppWindow, JobOutcome, WindowAccumulator};
use crate::perf::ReplicaServer;
use crate::pod::{PodKind, PodPhase, PodSpec};

use super::{Owner, Simulation};

/// Runtime state of one batch job.
pub(crate) struct BatchRuntime {
    pub(crate) app: AppId,
    pub(crate) job: JobId,
    pub(crate) spec: BatchJobSpec,
    submit_at: SimTime,
    started: Option<SimTime>,
    /// Current stage index.
    stage: usize,
    /// Tasks of the current stage already launched (pods created).
    tasks_launched: u32,
    /// Tasks of the current stage completed.
    tasks_done: u32,
    /// Active pods → task index, in pod-id order (iterated for usage
    /// harvesting, so the order must be deterministic).
    active: BTreeMap<PodId, u32>,
    servers: BTreeMap<PodId, ReplicaServer>,
    wake_version: super::PodMap<u64>,
    pub(crate) records_done: u64,
    records_this_window: u64,
    pub(crate) finished: Option<SimTime>,
    pub(crate) desired_alloc: ResourceVec,
    pub(crate) acc: WindowAccumulator,
    /// Reusable pod-id buffer for the actuation paths.
    scratch: Vec<PodId>,
}

impl BatchRuntime {
    pub(crate) fn new(app: AppId, job_raw: u64, spec: BatchJobSpec, submit_at: SimTime) -> Self {
        let desired_alloc = spec.task_alloc;
        BatchRuntime {
            app,
            job: JobId::new(job_raw),
            spec,
            submit_at,
            started: None,
            stage: 0,
            tasks_launched: 0,
            tasks_done: 0,
            active: BTreeMap::new(),
            servers: BTreeMap::new(),
            wake_version: super::PodMap::default(),
            records_done: 0,
            records_this_window: 0,
            finished: None,
            desired_alloc,
            acc: WindowAccumulator::default(),
            scratch: Vec::new(),
        }
    }

    /// Fraction of the job's records produced so far.
    pub(crate) fn progress(&self) -> f64 {
        let total = self.spec.total_records().max(1);
        self.records_done as f64 / total as f64
    }

    pub(crate) fn outcome(&self) -> JobOutcome {
        let deadline = match self.spec.plo {
            evolve_workload::PloSpec::Deadline { deadline } => self.submit_at + deadline,
            _ => SimTime::MAX,
        };
        JobOutcome {
            job: self.job,
            app: self.app,
            submitted: self.submit_at,
            finished: self.finished,
            deadline,
        }
    }

    fn bump_version(&mut self, pod: PodId) -> u64 {
        let v = self.wake_version.get(pod).unwrap_or(0) + 1;
        self.wake_version.insert(pod, v);
        v
    }
}

impl Simulation {
    /// The job was submitted: launch the first wave of task pods.
    pub(crate) fn batch_submit(&mut self, idx: usize) {
        self.batches[idx].started = Some(self.now);
        self.batch_launch_tasks(idx);
    }

    /// Creates pending task pods up to the executor-pool cap.
    fn batch_launch_tasks(&mut self, idx: usize) {
        loop {
            let (launch, app, request, limit, stage, task) = {
                let rt = &self.batches[idx];
                if rt.finished.is_some() || rt.stage >= rt.spec.stages.len() {
                    break;
                }
                let stage_spec = &rt.spec.stages[rt.stage];
                let can_launch = rt.tasks_launched < stage_spec.tasks
                    && (rt.active.len() as u32) < rt.spec.max_parallel_tasks;
                (
                    can_launch,
                    rt.app,
                    rt.desired_alloc.min(&self.pod_limit),
                    self.pod_limit,
                    rt.stage as u32,
                    rt.tasks_launched,
                )
            };
            if !launch {
                break;
            }
            let job = self.batches[idx].job;
            let spec = PodSpec::new(
                PodKind::BatchTask { app, job, stage, task },
                request,
                self.config.batch_priority,
            )
            .with_limit(limit);
            let pod = self.cluster.create_pod(spec, self.now);
            self.pod_owner.insert(pod, Owner::Batch(idx));
            let rt = &mut self.batches[idx];
            rt.active.insert(pod, task);
            rt.tasks_launched += 1;
        }
    }

    /// A task pod became running: give it its work item.
    pub(crate) fn batch_pod_started(&mut self, idx: usize, pod: PodId) {
        let now = self.now;
        let alloc = self.cluster.pod(pod).expect("started pod").spec.request;
        let work = {
            let rt = &self.batches[idx];
            let stage = match self.cluster.pod(pod).expect("started").spec.kind {
                PodKind::BatchTask { stage, .. } => stage as usize,
                _ => unreachable!("batch pod has batch kind"),
            };
            rt.spec.stages[stage].work_per_task
        };
        let mut server = ReplicaServer::new(alloc, 0.0, self.config.perf, now);
        // One work item, no deadline (jobs run to completion).
        server.admit(0, now, SimTime::MAX, work);
        let next = server.next_event();
        let version = {
            let rt = &mut self.batches[idx];
            rt.servers.insert(pod, server);
            rt.bump_version(pod)
        };
        if let Some(at) = next {
            self.schedule_wake(pod, at, version);
        }
    }

    /// Task timer fired: has the work item drained?
    pub(crate) fn batch_wake(&mut self, idx: usize, pod: PodId, version: u64) {
        let now = self.now;
        let done = {
            let rt = &mut self.batches[idx];
            if rt.wake_version.get(pod) != Some(version) {
                return;
            }
            let Some(server) = rt.servers.get_mut(&pod) else {
                return;
            };
            let out = server.advance(now);
            !out.completed.is_empty()
        };
        if done {
            self.batch_task_complete(idx, pod);
        } else {
            // Rates may have changed (resize); rearm.
            let (next, version) = {
                let rt = &mut self.batches[idx];
                let next = rt.servers.get_mut(&pod).and_then(ReplicaServer::next_event);
                let version = rt.bump_version(pod);
                (next, version)
            };
            if let Some(at) = next {
                self.schedule_wake(pod, at, version);
            }
        }
    }

    fn batch_task_complete(&mut self, idx: usize, pod: PodId) {
        let now = self.now;
        let started = self.cluster.pod(pod).ok().and_then(|p| p.started);
        self.batch_cleanup_pod(idx, pod);
        let _ = self.cluster.terminate_pod(pod, PodPhase::Succeeded);
        self.pod_owner.remove(pod);
        let stage_finished = {
            let rt = &mut self.batches[idx];
            let stage_spec = rt.spec.stages[rt.stage];
            rt.tasks_done += 1;
            rt.records_done += stage_spec.records_per_task;
            rt.records_this_window += stage_spec.records_per_task;
            if let Some(s) = started {
                rt.acc.record_completion(now.saturating_since(s));
            }
            rt.tasks_done == stage_spec.tasks
        };
        if stage_finished {
            let rt = &mut self.batches[idx];
            rt.stage += 1;
            rt.tasks_launched = 0;
            rt.tasks_done = 0;
            if rt.stage >= rt.spec.stages.len() {
                rt.finished = Some(now);
                return;
            }
        }
        self.batch_launch_tasks(idx);
    }

    /// Removes a pod from the runtime maps, preserving its window usage.
    fn batch_cleanup_pod(&mut self, idx: usize, pod: PodId) {
        let rt = &mut self.batches[idx];
        if let Some(mut server) = rt.servers.remove(&pod) {
            let mut used = server.take_consumed();
            used[Resource::Memory] = 0.0;
            rt.acc.consumed += used;
        }
        rt.wake_version.remove(pod);
        rt.active.remove(&pod);
    }

    /// External loss (preemption, node failure): the task restarts from
    /// scratch on a fresh pending pod.
    pub(crate) fn batch_pod_lost(&mut self, idx: usize, pod: PodId, reason: &str) {
        let task = self.batches[idx].active.get(&pod).copied();
        self.batch_cleanup_pod(idx, pod);
        let _ = self.cluster.terminate_pod(pod, PodPhase::Failed(reason.into()));
        self.pod_owner.remove(pod);
        let Some(task) = task else {
            return;
        };
        if self.batches[idx].finished.is_some() {
            return;
        }
        // Replacement pod for the same task.
        let (app, job, stage, request, limit) = {
            let rt = &self.batches[idx];
            (rt.app, rt.job, rt.stage as u32, rt.desired_alloc.min(&self.pod_limit), self.pod_limit)
        };
        let spec = PodSpec::new(
            PodKind::BatchTask { app, job, stage, task },
            request,
            self.config.batch_priority,
        )
        .with_limit(limit);
        let new_pod = self.cluster.create_pod(spec, self.now);
        self.pod_owner.insert(new_pod, Owner::Batch(idx));
        self.batches[idx].active.insert(new_pod, task);
    }

    /// Applies a controller decision; returns failed in-place resizes.
    /// `fraction < 1.0` limits the rollout to the first `ceil(fraction·n)`
    /// tasks (degraded actuation path).
    pub(crate) fn batch_set_target(
        &mut self,
        idx: usize,
        per_task: ResourceVec,
        fraction: f64,
    ) -> u32 {
        let now = self.now;
        let target = per_task.min(&self.pod_limit).sanitized();
        self.batches[idx].desired_alloc = target;
        let mut failures = 0u32;
        // Reuse the runtime's scratch buffer for both passes; the loop
        // bodies mutate the maps being iterated.
        let mut buf = std::mem::take(&mut self.batches[idx].scratch);
        buf.clear();
        buf.extend(self.batches[idx].servers.keys().copied());
        if fraction < 1.0 {
            buf.truncate(super::partial_quota(buf.len(), fraction));
        }
        for &pod in &buf {
            match self.cluster.resize_pod(pod, target) {
                Ok(()) => {
                    let (next, version) = {
                        let rt = &mut self.batches[idx];
                        let server = rt.servers.get_mut(&pod).expect("running");
                        server.advance(now);
                        server.set_alloc(target);
                        let next = server.next_event();
                        let version = rt.bump_version(pod);
                        (next, version)
                    };
                    if let Some(at) = next {
                        self.schedule_wake(pod, at, version);
                    }
                }
                Err(_) => failures += 1,
            }
        }
        buf.clear();
        buf.extend(self.batches[idx].active.keys().copied());
        if fraction < 1.0 {
            buf.truncate(super::partial_quota(buf.len(), fraction));
        }
        for &pod in &buf {
            if self.cluster.pod(pod).is_ok_and(|x| x.is_pending()) {
                let _ = self.cluster.update_pending_request(pod, target);
            }
        }
        buf.clear();
        self.batches[idx].scratch = buf;
        failures
    }

    /// Harvests the job's control window.
    pub(crate) fn batch_window(&mut self, idx: usize, now: SimTime) -> AppWindow {
        let mut mem_total = 0.0;
        {
            let rt = &mut self.batches[idx];
            for server in rt.servers.values_mut() {
                let mut used = server.take_consumed();
                mem_total += used[Resource::Memory];
                used[Resource::Memory] = 0.0;
                rt.acc.consumed += used;
            }
        }
        let records = std::mem::take(&mut self.batches[idx].records_this_window);
        let mut window = self.batches[idx].acc.harvest(now, mem_total);
        window.throughput_rps = records as f64 / window.duration.as_secs_f64().max(1e-9);
        let rt = &self.batches[idx];
        let mut alloc = ResourceVec::ZERO;
        let mut running = 0u32;
        let mut pending = 0u32;
        for pod in rt.active.keys() {
            if let Ok(p) = self.cluster.pod(*pod) {
                match p.phase {
                    PodPhase::Running => {
                        running += 1;
                        alloc += p.spec.request;
                    }
                    PodPhase::Pending | PodPhase::Starting => pending += 1,
                    _ => {}
                }
            }
        }
        window.alloc = alloc;
        window.running_replicas = running;
        window.pending_replicas = pending;
        window.alloc_per_replica =
            if running > 0 { alloc * (1.0 / f64::from(running)) } else { rt.desired_alloc };
        let progress = rt.progress();
        window.progress = Some(progress);
        if let Some(started) = rt.started {
            let elapsed = now.saturating_since(started).as_secs_f64();
            window.projected_makespan_s = match rt.finished {
                Some(f) => Some(f.saturating_since(started).as_secs_f64()),
                None if progress > 1e-6 => Some(elapsed / progress),
                // No progress yet: optimistically the job is still
                // "projected on time" until it shows data (avoids wild
                // transients right after submission).
                None => None,
            };
        }
        window
    }
}
