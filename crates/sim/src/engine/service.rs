//! Service (cloud microservice) execution: open-loop arrivals, replica
//! dispatching, deployment-style replica reconciliation and graceful
//! scale-in.

use std::collections::{BTreeSet, VecDeque};

use evolve_types::{AppId, PodId, Resource, ResourceVec, SimTime};
use evolve_workload::{LoadSpec, PoissonArrivals, SamplingMode, ServiceSpec};
use rand_chacha::ChaCha8Rng;

use crate::observe::{AppWindow, WindowAccumulator};
use crate::perf::{DrainOutcome, ReplicaServer};
use crate::pod::{PodKind, PodPhase, PodSpec};

use super::{Owner, PodMap, PodTable, Simulation};

/// A request waiting because no replica is running.
#[derive(Debug, Clone, Copy)]
struct QueuedRequest {
    id: u64,
    arrived: SimTime,
    deadline: SimTime,
    demand: ResourceVec,
}

/// Runtime state of one managed service.
pub(crate) struct ServiceRuntime {
    pub(crate) app: AppId,
    pub(crate) spec: ServiceSpec,
    arrivals: PoissonArrivals,
    pub(crate) desired_replicas: u32,
    pub(crate) desired_alloc: ResourceVec,
    /// All non-terminal pods owned by the deployment.
    pub(crate) pods: Vec<PodId>,
    /// Replicas being drained for scale-in. Ordered so that scale-out
    /// revives and window harvesting walk replicas deterministically.
    draining: BTreeSet<PodId>,
    /// Execution state per *running* replica, in pod-id order.
    pub(crate) servers: PodTable<ReplicaServer>,
    /// Current wake-timer version per pod, dense-indexed: bumped on every
    /// reschedule so stale timers are recognized without a map lookup.
    wake_version: PodMap<u64>,
    queue: VecDeque<QueuedRequest>,
    pub(crate) acc: WindowAccumulator,
    /// Load-shedding admission control, toggled by the capacity arbiter
    /// while the app runs capacity-clipped.
    pub(crate) shedding: bool,
    next_req: u64,
    /// Reusable pod-id buffer for the actuation paths (avoids a fresh
    /// collect every control tick).
    scratch: Vec<PodId>,
}

impl ServiceRuntime {
    pub(crate) fn new(app: AppId, spec: ServiceSpec, load: &LoadSpec, mode: SamplingMode) -> Self {
        let desired_alloc = spec.initial_alloc;
        let desired_replicas = spec.initial_replicas;
        ServiceRuntime {
            app,
            spec,
            arrivals: PoissonArrivals::with_mode(load.build(), mode),
            desired_replicas,
            desired_alloc,
            pods: Vec::new(),
            draining: BTreeSet::new(),
            servers: PodTable::default(),
            wake_version: PodMap::default(),
            queue: VecDeque::new(),
            acc: WindowAccumulator::default(),
            shedding: false,
            next_req: 0,
            scratch: Vec::new(),
        }
    }

    pub(crate) fn next_arrival(&mut self, now: SimTime, rng: &mut ChaCha8Rng) -> Option<SimTime> {
        self.arrivals.next_after(now, rng)
    }

    /// Thinning bailouts recorded by this service's arrival sampler.
    pub(crate) fn thinning_bailouts(&self) -> u64 {
        self.arrivals.thinning_bailouts()
    }

    fn bump_version(&mut self, pod: PodId) -> u64 {
        let v = self.wake_version.get(pod).unwrap_or(0) + 1;
        self.wake_version.insert(pod, v);
        v
    }
}

impl Simulation {
    /// Creates one pending replica pod for a service.
    pub(crate) fn create_service_pod(&mut self, idx: usize) {
        let (app, request, priority, limit) = {
            let rt = &self.services[idx];
            (
                rt.app,
                rt.desired_alloc.min(&self.pod_limit),
                self.config.service_priority,
                self.pod_limit,
            )
        };
        let spec =
            PodSpec::new(PodKind::ServiceReplica { app }, request, priority).with_limit(limit);
        let pod = self.cluster.create_pod(spec, self.now);
        self.services[idx].pods.push(pod);
        self.pod_owner.insert(pod, Owner::Service(idx));
    }

    /// One request arrives for service `idx`.
    pub(crate) fn service_arrival(&mut self, idx: usize) {
        let now = self.now;
        let mode = self.config.sampling;
        // Admission control while capacity-clipped: excess offered load is
        // rejected at the front door once the backlog (the least-loaded
        // replica's in-flight set, or the start-up queue when nothing
        // runs) reaches the shed bound — a small bounded queue instead of
        // an unbounded one. Shed arrivals are counted but never sample
        // demand, queue, complete or time out.
        if self.services[idx].shedding {
            let shed_cap = self.config.shed_queue_cap;
            let rt = &self.services[idx];
            let no_draining = rt.draining.is_empty();
            let min_inflight = rt
                .servers
                .iter()
                .filter(|(pod, s)| !s.is_dead() && (no_draining || !rt.draining.contains(pod)))
                .map(|(_, s)| s.inflight_len())
                .min();
            let backlogged = match min_inflight {
                Some(inflight) => inflight >= shed_cap,
                None => rt.queue.len() >= shed_cap,
            };
            if backlogged {
                let rt = &mut self.services[idx];
                rt.acc.arrivals += 1;
                rt.acc.shed += 1;
                return;
            }
        }
        let (id, demand, deadline) = {
            let rt = &mut self.services[idx];
            rt.acc.arrivals += 1;
            let demand = rt.spec.request_class.sample_demand_with(mode, &mut self.rng);
            let id = rt.next_req;
            rt.next_req += 1;
            (id, demand, now + rt.spec.request_class.timeout())
        };
        // Pick the running, non-draining, non-dead replica with the fewest
        // in-flight requests.
        let target = {
            let rt = &self.services[idx];
            // Draining is almost always empty; hoist that check out of
            // the per-replica filter.
            let no_draining = rt.draining.is_empty();
            rt.servers
                .iter()
                .filter(|(pod, s)| !s.is_dead() && (no_draining || !rt.draining.contains(pod)))
                .min_by_key(|(pod, s)| (s.inflight_len(), pod.raw()))
                .map(|(pod, _)| pod)
        };
        match target {
            Some(pod) => {
                let mut out = std::mem::take(&mut self.drain_scratch);
                out.clear();
                // One map lookup serves admit and the wake reschedule.
                let (had_outcome, next) = {
                    let rt = &mut self.services[idx];
                    let server = rt.servers.get_mut(pod).expect("target exists");
                    let had = server.admit_arrived_into(id, now, now, deadline, demand, &mut out);
                    (had, server.next_event())
                };
                let oom = out.oom_killed;
                if had_outcome {
                    self.service_process_outcome(idx, pod, &out);
                }
                self.drain_scratch = out;
                if !oom {
                    // The admit cannot retire the pod unless it OOM-killed,
                    // so the server (and its next event) are still live.
                    let version = self.services[idx].bump_version(pod);
                    if let Some(at) = next {
                        self.schedule_wake(pod, at, version);
                    }
                }
            }
            None => {
                let cap = self.config.service_queue_cap;
                let rt = &mut self.services[idx];
                if rt.queue.len() >= cap {
                    rt.acc.timeouts += 1; // dropped at the front door
                } else {
                    rt.queue.push_back(QueuedRequest { id, arrived: now, deadline, demand });
                }
            }
        }
    }

    /// A replica finished starting: create its execution state and drain
    /// the waiting queue into it.
    pub(crate) fn service_pod_started(&mut self, idx: usize, pod: PodId) {
        let now = self.now;
        if self.services[idx].draining.contains(&pod) {
            // Scaled in while still starting: retire immediately.
            self.service_retire_pod(idx, pod, PodPhase::Succeeded);
            return;
        }
        let (alloc, base_memory) = {
            let request = self.cluster.pod(pod).expect("started pod exists").spec.request;
            (request, self.services[idx].spec.base_memory)
        };
        let mut server = ReplicaServer::new(alloc, base_memory, self.config.perf, now);
        // Drain the front-door queue.
        let mut oom = false;
        {
            let rt = &mut self.services[idx];
            while let Some(q) = rt.queue.pop_front() {
                if q.deadline <= now {
                    rt.acc.timeouts += 1;
                    continue;
                }
                if let Some(out) = server.admit_arrived(q.id, now, q.arrived, q.deadline, q.demand)
                {
                    for c in &out.completed {
                        rt.acc.record_completion(c.latency);
                    }
                    rt.acc.timeouts += out.timed_out.len() as u64;
                    if out.oom_killed {
                        oom = true;
                        break;
                    }
                }
            }
            rt.servers.insert(pod, server);
        }
        if oom {
            self.service_oom(idx, pod);
            return;
        }
        self.service_reschedule_wake(idx, pod);
    }

    /// Timer fired for a replica: advance it and process what happened.
    pub(crate) fn service_wake(&mut self, idx: usize, pod: PodId, version: u64) {
        let now = self.now;
        let (outcome, next, drained_empty) = {
            let rt = &mut self.services[idx];
            if rt.wake_version.get(pod) != Some(version) {
                return; // stale timer
            }
            let Some(server) = rt.servers.get_mut(pod) else {
                return;
            };
            let mut out = std::mem::take(&mut self.drain_scratch);
            out.clear();
            server.advance_into(now, &mut out);
            // One map lookup serves the drain, the scale-in check and the
            // wake reschedule.
            (out, server.next_event(), server.inflight_len() == 0)
        };
        let oom = outcome.oom_killed;
        self.service_process_outcome(idx, pod, &outcome);
        self.drain_scratch = outcome;
        if oom {
            return; // the OOM handler already retired the pod
        }
        // Graceful scale-in: retire once drained.
        if drained_empty && self.services[idx].draining.contains(&pod) {
            self.service_retire_pod(idx, pod, PodPhase::Succeeded);
        } else {
            let version = self.services[idx].bump_version(pod);
            if let Some(at) = next {
                self.schedule_wake(pod, at, version);
            }
        }
    }

    fn service_process_outcome(&mut self, idx: usize, pod: PodId, outcome: &DrainOutcome) {
        {
            let rt = &mut self.services[idx];
            for c in &outcome.completed {
                rt.acc.record_completion(c.latency);
            }
            rt.acc.timeouts += outcome.timed_out.len() as u64;
        }
        if outcome.oom_killed {
            self.service_oom(idx, pod);
        }
    }

    fn service_oom(&mut self, idx: usize, pod: PodId) {
        self.services[idx].acc.oom_kills += 1;
        self.service_retire_pod(idx, pod, PodPhase::Failed("oom killed".into()));
        self.reconcile_service(idx);
    }

    /// Removes a replica pod from all runtime maps and terminates it.
    fn service_retire_pod(&mut self, idx: usize, pod: PodId, phase: PodPhase) {
        {
            let rt = &mut self.services[idx];
            if let Some(mut server) = rt.servers.remove(pod) {
                // Preserve the work it performed this window.
                let mut used = server.take_consumed();
                used[Resource::Memory] = 0.0;
                rt.acc.consumed += used;
            }
            rt.wake_version.remove(pod);
            rt.draining.remove(&pod);
            rt.pods.retain(|p| *p != pod);
        }
        self.pod_owner.remove(pod);
        let _ = self.cluster.terminate_pod(pod, phase);
    }

    /// External loss (preemption, node failure).
    pub(crate) fn service_pod_lost(&mut self, idx: usize, pod: PodId, reason: &str) {
        // In-flight requests die with the replica.
        let lost = {
            let rt = &mut self.services[idx];
            rt.servers.get_mut(pod).map_or(0, |s| s.kill().timed_out.len())
        };
        self.services[idx].acc.timeouts += lost as u64;
        self.service_retire_pod(idx, pod, PodPhase::Failed(reason.into()));
        self.reconcile_service(idx);
    }

    fn service_reschedule_wake(&mut self, idx: usize, pod: PodId) {
        let (next, version) = {
            let rt = &mut self.services[idx];
            let Some(server) = rt.servers.get_mut(pod) else {
                return;
            };
            let next = server.next_event();
            let version = rt.bump_version(pod);
            (next, version)
        };
        if let Some(at) = next {
            self.schedule_wake(pod, at, version);
        }
    }

    /// Reconciles the replica count against the desired state, exactly
    /// like a Deployment controller: create pending pods on scale-out,
    /// cancel pending pods and drain the newest running replicas on
    /// scale-in.
    pub(crate) fn reconcile_service(&mut self, idx: usize) {
        let desired = self.services[idx].desired_replicas.max(1) as usize;
        loop {
            // Draining pods stay in `pods` until retired, so the active
            // set is the difference — counted without materializing it.
            let active_len = {
                let rt = &self.services[idx];
                debug_assert!(rt.draining.iter().all(|p| rt.pods.contains(p)));
                rt.pods.len() - rt.draining.len()
            };
            if active_len < desired {
                // Prefer reviving a draining replica over a cold start.
                let revived = {
                    let rt = &mut self.services[idx];
                    let candidate = rt.draining.iter().copied().next();
                    if let Some(p) = candidate {
                        rt.draining.remove(&p);
                        true
                    } else {
                        false
                    }
                };
                if !revived {
                    self.create_service_pod(idx);
                }
            } else if active_len > desired {
                // Cancel pending pods first (free), then drain the newest.
                let rt = &self.services[idx];
                let pending = rt
                    .pods
                    .iter()
                    .rev()
                    .filter(|p| !rt.draining.contains(p))
                    .copied()
                    .find(|p| self.cluster.pod(*p).is_ok_and(|x| x.is_pending()));
                if let Some(p) = pending {
                    self.service_retire_pod(idx, p, PodPhase::Succeeded);
                } else if let Some(p) =
                    rt.pods.iter().rev().find(|p| !rt.draining.contains(p)).copied()
                {
                    self.services[idx].draining.insert(p);
                    // An idle replica can retire immediately.
                    let idle =
                        self.services[idx].servers.get(p).is_some_and(|s| s.inflight_len() == 0);
                    if idle {
                        self.service_retire_pod(idx, p, PodPhase::Succeeded);
                    }
                } else {
                    break;
                }
            } else {
                break;
            }
        }
    }

    /// Applies a controller decision; returns failed in-place resizes.
    /// `fraction < 1.0` models a degraded actuation path: the desired
    /// state updates fully but the rollout reaches only the first
    /// `ceil(fraction·n)` replicas (by pod-id order).
    pub(crate) fn service_set_target(
        &mut self,
        idx: usize,
        replicas: u32,
        per_replica: ResourceVec,
        fraction: f64,
    ) -> u32 {
        let now = self.now;
        let target = per_replica.min(&self.pod_limit).sanitized();
        self.services[idx].desired_alloc = target;
        self.services[idx].desired_replicas = replicas.max(1);
        let mut failures = 0u32;
        // Resize running replicas in place (reusing the runtime's scratch
        // buffer; the loop body mutates the server map).
        let mut running = std::mem::take(&mut self.services[idx].scratch);
        running.clear();
        running.extend(self.services[idx].servers.keys());
        let quota = if fraction < 1.0 {
            super::partial_quota(running.len(), fraction)
        } else {
            running.len()
        };
        running.truncate(quota);
        for &pod in &running {
            match self.cluster.resize_pod(pod, target) {
                Ok(()) => {
                    let outcome = {
                        let rt = &mut self.services[idx];
                        let server = rt.servers.get_mut(pod).expect("running");
                        let out = server.advance(now);
                        server.set_alloc(target);
                        out
                    };
                    self.service_process_outcome(idx, pod, &outcome);
                    self.service_reschedule_wake(idx, pod);
                }
                Err(_) => failures += 1,
            }
        }
        running.clear();
        self.services[idx].scratch = running;
        // Rewrite pending pods' requests (fraction-limited like the
        // in-place pass when the actuation path is degraded).
        let mut budget = if fraction < 1.0 {
            let pending = (0..self.services[idx].pods.len())
                .filter(|&i| {
                    let pod = self.services[idx].pods[i];
                    self.cluster.pod(pod).is_ok_and(|x| x.is_pending())
                })
                .count();
            super::partial_quota(pending, fraction)
        } else {
            usize::MAX
        };
        for i in 0..self.services[idx].pods.len() {
            if budget == 0 {
                break;
            }
            let pod = self.services[idx].pods[i];
            if self.cluster.pod(pod).is_ok_and(|x| x.is_pending()) {
                let _ = self.cluster.update_pending_request(pod, target);
                budget -= 1;
            }
        }
        self.reconcile_service(idx);
        failures
    }

    /// Harvests the service's control window.
    pub(crate) fn service_window(&mut self, idx: usize, now: SimTime) -> AppWindow {
        // Expire queued requests first.
        {
            let rt = &mut self.services[idx];
            let before = rt.queue.len();
            rt.queue.retain(|q| q.deadline > now);
            rt.acc.timeouts += (before - rt.queue.len()) as u64;
        }
        // Gather usage from live replicas.
        let mut mem_total = 0.0;
        {
            let rt = &mut self.services[idx];
            for server in rt.servers.values_mut() {
                let mut used = server.take_consumed();
                mem_total += used[Resource::Memory];
                used[Resource::Memory] = 0.0;
                rt.acc.consumed += used;
            }
        }
        let mut window = self.services[idx].acc.harvest(now, mem_total);
        // Fill allocation/replica facts.
        let rt = &self.services[idx];
        let mut alloc = ResourceVec::ZERO;
        for pod in rt.servers.keys() {
            if let Ok(p) = self.cluster.pod(pod) {
                alloc += p.spec.request;
            }
        }
        let running = rt.servers.len() as u32;
        let pending = rt
            .pods
            .iter()
            .filter(|p| {
                self.cluster
                    .pod(**p)
                    .is_ok_and(|x| matches!(x.phase, PodPhase::Pending | PodPhase::Starting))
            })
            .count() as u32;
        window.alloc = alloc;
        window.running_replicas = running;
        window.pending_replicas = pending;
        window.alloc_per_replica =
            if running > 0 { alloc * (1.0 / f64::from(running)) } else { rt.desired_alloc };
        window
    }
}
