//! The discrete-event engine.
//!
//! [`Simulation`] owns the cluster, the per-application runtimes and the
//! event heap. The resource manager (in `evolve-core`) drives it in a
//! classic control loop:
//!
//! ```text
//! loop {
//!     sim.run_until(next_control_tick);      // world evolves
//!     let window = sim.take_window(app);     // scrape metrics
//!     …controller decides…
//!     sim.set_service_target(app, replicas, alloc);  // actuate
//!     …scheduler binds pending pods via sim.bind_pod…
//! }
//! ```
//!
//! Everything is deterministic under a fixed seed: the event heap breaks
//! ties by sequence number and all randomness flows from one seeded
//! ChaCha8 stream.

mod batch;
mod hpc;
mod service;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use evolve_types::{AppId, Error, NodeId, PodId, ResourceVec, Result, SimDuration, SimTime};
use evolve_workload::{SamplingMode, WorkloadMix, WorldClass};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::cluster::{ClusterConfig, ClusterState};
use crate::observe::{AppStatus, AppWindow, ClusterSnapshot, JobOutcome};
use crate::perf::PerfConfig;
use crate::pod::PodPhase;

pub(crate) use batch::BatchRuntime;
pub(crate) use hpc::HpcRuntime;
pub(crate) use service::ServiceRuntime;

/// Engine tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Performance-model tunables.
    pub perf: PerfConfig,
    /// Container start latency (bind → running).
    pub pod_start_delay: SimDuration,
    /// Maximum queued requests per service while no replica runs.
    pub service_queue_cap: usize,
    /// Queue bound while a service is in load-shedding mode (capacity
    /// clipped by the arbiter): arrivals beyond it are rejected at the
    /// front door and counted as shed, not queued.
    pub shed_queue_cap: usize,
    /// Coefficient of variation of HPC iteration durations.
    pub hpc_jitter_cv: f64,
    /// Scheduling priority of service replicas.
    pub service_priority: i32,
    /// Scheduling priority of HPC ranks.
    pub hpc_priority: i32,
    /// Scheduling priority of batch tasks.
    pub batch_priority: i32,
    /// Which sampler generation the stochastic streams use. `Batched`
    /// (default) is the post-PR-6 ziggurat/windowed stream; `Legacy`
    /// reproduces the pre-PR-6 Box–Muller/thinning stream bit-for-bit.
    pub sampling: SamplingMode,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            perf: PerfConfig::default(),
            pod_start_delay: SimDuration::from_secs(3),
            service_queue_cap: 10_000,
            shed_queue_cap: 64,
            hpc_jitter_cv: 0.05,
            service_priority: 100,
            hpc_priority: 50,
            batch_priority: 10,
            sampling: SamplingMode::default(),
        }
    }
}

/// Who owns a pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Owner {
    Service(usize),
    Batch(usize),
    Hpc(usize),
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Event {
    ServiceArrival { svc: usize },
    PodStarted { pod: PodId },
    BatchSubmit { idx: usize },
    HpcSubmit { idx: usize },
    HpcIterationDone { idx: usize, version: u64 },
    NodeFail { node: NodeId },
    NodeRecover { node: NodeId },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A pending replica wake-up: the timer a [`crate::ReplicaServer`] set for
/// its next completion or timeout.
#[derive(Debug, Clone, Copy)]
struct WakeEntry {
    at: SimTime,
    seq: u64,
    pod: PodId,
    version: u64,
}

/// A dense `PodId`-keyed map. Pod ids are handed out sequentially by the
/// cluster, so a `Vec` indexed by raw id replaces hashing on the per-event
/// paths (owner dispatch, wake-queue position tracking).
#[derive(Debug)]
pub(crate) struct PodMap<T> {
    slots: Vec<Option<T>>,
}

impl<T> Default for PodMap<T> {
    fn default() -> Self {
        PodMap { slots: Vec::new() }
    }
}

impl<T: Copy> PodMap<T> {
    pub(crate) fn get(&self, pod: PodId) -> Option<T> {
        self.slots.get(pod.as_usize()).copied().flatten()
    }

    pub(crate) fn insert(&mut self, pod: PodId, value: T) {
        let i = pod.as_usize();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        self.slots[i] = Some(value);
    }

    pub(crate) fn remove(&mut self, pod: PodId) {
        if let Some(slot) = self.slots.get_mut(pod.as_usize()) {
            *slot = None;
        }
    }
}

/// A sorted-`Vec` map keyed by `PodId`, for small per-app replica tables.
///
/// The per-event paths walk or probe one app's replica set constantly
/// (least-loaded pick on every arrival, server lookup on every wake); at
/// the typical 2–10 entries a contiguous vector beats a node-based map on
/// every one of those operations while keeping the same pod-id iteration
/// order, so trajectories are bit-identical.
#[derive(Debug)]
pub(crate) struct PodTable<T> {
    entries: Vec<(PodId, T)>,
}

impl<T> Default for PodTable<T> {
    fn default() -> Self {
        PodTable { entries: Vec::new() }
    }
}

impl<T> PodTable<T> {
    fn idx(&self, pod: PodId) -> core::result::Result<usize, usize> {
        self.entries.binary_search_by_key(&pod, |e| e.0)
    }

    pub(crate) fn get(&self, pod: PodId) -> Option<&T> {
        self.idx(pod).ok().map(|i| &self.entries[i].1)
    }

    pub(crate) fn get_mut(&mut self, pod: PodId) -> Option<&mut T> {
        match self.idx(pod) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    pub(crate) fn insert(&mut self, pod: PodId, value: T) {
        match self.idx(pod) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (pod, value)),
        }
    }

    pub(crate) fn remove(&mut self, pod: PodId) -> Option<T> {
        match self.idx(pod) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Pods in ascending id order.
    pub(crate) fn keys(&self) -> impl Iterator<Item = PodId> + '_ {
        self.entries.iter().map(|e| e.0)
    }

    pub(crate) fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.entries.iter_mut().map(|e| &mut e.1)
    }

    /// `(pod, value)` pairs in ascending pod-id order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (PodId, &T)> {
        self.entries.iter().map(|e| (e.0, &e.1))
    }
}

/// An indexed min-heap of replica wake-ups, at most one entry per pod.
///
/// Replica timers are the highest-churn events in the engine: every
/// admission, drain or resize reschedules the pod's wake-up, and under the
/// plain event heap each reschedule pushed a fresh event while the old one
/// stayed behind as a stale no-op (~16% of all popped events on the
/// headline scenario). Every reschedule carries a freshly bumped version,
/// which proves the pod's previous entry could only have popped as a
/// stale no-op — so it is replaced in place instead.
///
/// Entries are keyed by `(at, seq)` with `seq` drawn from the same global
/// counter as the main heap, so merging the two queues by key reproduces
/// the old pop order of the surviving events exactly.
#[derive(Debug, Default)]
struct WakeQueue {
    /// Binary min-heap ordered by `(at, seq)`.
    entries: Vec<WakeEntry>,
    /// Pod → index into `entries`.
    pos: PodMap<u32>,
}

impl WakeQueue {
    fn key(e: &WakeEntry) -> (SimTime, u64) {
        (e.at, e.seq)
    }

    /// The smallest `(at, seq)` key, `None` when empty.
    fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.entries.first().map(Self::key)
    }

    /// The earliest entry, without removing it.
    fn peek(&self) -> Option<&WakeEntry> {
        self.entries.first()
    }

    /// Schedules or replaces the pod's wake-up.
    fn set(&mut self, pod: PodId, at: SimTime, seq: u64, version: u64) {
        if let Some(i) = self.pos.get(pod) {
            let i = i as usize;
            let rising = (at, seq) > Self::key(&self.entries[i]);
            self.entries[i].at = at;
            self.entries[i].seq = seq;
            self.entries[i].version = version;
            // The heap held its invariant before the rewrite, so the entry
            // can only have moved in one direction.
            if rising {
                self.sift_down(i);
            } else {
                self.sift_up(i);
            }
        } else {
            let i = self.entries.len();
            self.entries.push(WakeEntry { at, seq, pod, version });
            self.pos.insert(pod, i as u32);
            self.sift_up(i);
        }
    }

    /// Removes and returns the earliest wake-up.
    fn pop(&mut self) -> Option<WakeEntry> {
        let last = self.entries.len().checked_sub(1)?;
        self.entries.swap(0, last);
        let e = self.entries.pop().expect("non-empty");
        self.pos.remove(e.pod);
        if !self.entries.is_empty() {
            self.pos.insert(self.entries[0].pod, 0);
            self.sift_down(0);
        }
        Some(e)
    }

    /// Hole-based sift in a 4-ary heap: the moving entry is held in a
    /// register while displaced entries shift one slot, so each level
    /// costs one entry move and one position update instead of a
    /// three-way swap — and the wider fan-out halves the number of
    /// levels for the few dozen live pods the queue typically holds.
    /// Pop order is still strictly `(at, seq)`, so the event trajectory
    /// is unaffected by the heap shape.
    fn sift_up(&mut self, mut i: usize) -> usize {
        let e = self.entries[i];
        let key = (e.at, e.seq);
        while i > 0 {
            let parent = (i - 1) / 4;
            if key < Self::key(&self.entries[parent]) {
                self.entries[i] = self.entries[parent];
                self.pos.insert(self.entries[i].pod, i as u32);
                i = parent;
            } else {
                break;
            }
        }
        self.entries[i] = e;
        self.pos.insert(e.pod, i as u32);
        i
    }

    fn sift_down(&mut self, mut i: usize) {
        let e = self.entries[i];
        let key = (e.at, e.seq);
        let len = self.entries.len();
        loop {
            let first = 4 * i + 1;
            if first >= len {
                break;
            }
            let mut child = first;
            let mut child_key = Self::key(&self.entries[first]);
            let last = (first + 4).min(len);
            for c in first + 1..last {
                let k = Self::key(&self.entries[c]);
                if k < child_key {
                    child = c;
                    child_key = k;
                }
            }
            if child_key < key {
                self.entries[i] = self.entries[child];
                self.pos.insert(self.entries[i].pod, i as u32);
                i = child;
            } else {
                break;
            }
        }
        self.entries[i] = e;
        self.pos.insert(e.pod, i as u32);
    }
}

/// The discrete-event cluster simulation.
pub struct Simulation {
    pub(crate) config: SimulationConfig,
    pub(crate) cluster: ClusterState,
    pub(crate) now: SimTime,
    heap: BinaryHeap<Reverse<Scheduled>>,
    wakes: WakeQueue,
    seq: u64,
    pub(crate) rng: ChaCha8Rng,
    pub(crate) services: Vec<ServiceRuntime>,
    pub(crate) batches: Vec<BatchRuntime>,
    pub(crate) hpcs: Vec<HpcRuntime>,
    pub(crate) pod_owner: PodMap<Owner>,
    /// App id → (world, runtime index), built once at construction so the
    /// per-tick observation/actuation API avoids linear scans.
    app_index: HashMap<AppId, Owner>,
    statuses: Vec<AppStatus>,
    /// Per-pod ceiling applied to every created pod (largest node
    /// allocatable by default — a pod cannot out-grow its node).
    pub(crate) pod_limit: ResourceVec,
    /// Next pre-generated arrival per service (batched sampling mode);
    /// merged into `run_until`'s pop order without round-tripping through
    /// the main heap.
    arrival_slots: Vec<Option<SimTime>>,
    /// Cached minimum of `arrival_slots` (`(at, svc)`): slots only change
    /// when an arrival fires or is rearmed, so the merge loop compares one
    /// key per event instead of rescanning every service.
    arrival_min: Option<(SimTime, usize)>,
    /// Reusable drain-outcome buffers for the per-event advance paths
    /// (one wake or arrival at a time ever holds them).
    pub(crate) drain_scratch: crate::perf::DrainOutcome,
    events_processed: u64,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("services", &self.services.len())
            .field("batches", &self.batches.len())
            .field("hpcs", &self.hpcs.len())
            .field("events_processed", &self.events_processed)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Builds a simulation from a workload mix on a fresh cluster.
    ///
    /// Applications receive dense [`AppId`]s: services first, then batch
    /// jobs, then HPC jobs, in mix order.
    ///
    /// # Panics
    ///
    /// Panics when the mix is empty.
    #[must_use]
    pub fn new(
        config: SimulationConfig,
        cluster_config: ClusterConfig,
        mix: &WorkloadMix,
        seed: u64,
    ) -> Self {
        assert!(!mix.is_empty(), "workload mix must not be empty");
        let cluster = ClusterState::new(&cluster_config);
        let pod_limit = cluster
            .nodes()
            .iter()
            .map(crate::node::Node::allocatable)
            .fold(ResourceVec::ZERO, |acc, a| acc.max(&a));
        let mut sim = Simulation {
            config,
            cluster,
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            wakes: WakeQueue::default(),
            seq: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
            services: Vec::new(),
            batches: Vec::new(),
            hpcs: Vec::new(),
            pod_owner: PodMap::default(),
            app_index: HashMap::new(),
            statuses: Vec::new(),
            pod_limit,
            arrival_slots: Vec::new(),
            arrival_min: None,
            drain_scratch: crate::perf::DrainOutcome::default(),
            events_processed: 0,
        };
        let mut next_app = 0u32;
        for (spec, load) in mix.services() {
            let app = AppId::new(next_app);
            next_app += 1;
            sim.statuses.push(AppStatus {
                id: app,
                name: spec.name.clone(),
                world: WorldClass::Microservice,
                plo: spec.plo,
                priority: spec.priority,
            });
            let idx = sim.services.len();
            sim.app_index.insert(app, Owner::Service(idx));
            sim.services.push(ServiceRuntime::new(app, spec.clone(), load, config.sampling));
            sim.arrival_slots.push(None);
            // Initial replicas exist from t=0.
            for _ in 0..spec.initial_replicas {
                sim.create_service_pod(idx);
            }
            sim.schedule_next_arrival(idx);
        }
        for (job_idx, (spec, at)) in mix.batch_jobs().iter().enumerate() {
            let app = AppId::new(next_app);
            next_app += 1;
            sim.statuses.push(AppStatus {
                id: app,
                name: format!("{}-{job_idx}", spec.name),
                world: WorldClass::BigData,
                plo: spec.plo,
                priority: spec.priority,
            });
            let idx = sim.batches.len();
            sim.app_index.insert(app, Owner::Batch(idx));
            sim.batches.push(BatchRuntime::new(app, job_idx as u64, spec.clone(), *at));
            sim.schedule(*at, Event::BatchSubmit { idx });
        }
        for (job_idx, (spec, at)) in mix.hpc_jobs().iter().enumerate() {
            let app = AppId::new(next_app);
            next_app += 1;
            sim.statuses.push(AppStatus {
                id: app,
                name: format!("{}-{job_idx}", spec.name),
                world: WorldClass::Hpc,
                plo: spec.plo(),
                priority: spec.priority,
            });
            let idx = sim.hpcs.len();
            sim.app_index.insert(app, Owner::Hpc(idx));
            sim.hpcs.push(HpcRuntime::new(app, 1_000 + job_idx as u64, spec.clone(), *at));
            sim.schedule(*at, Event::HpcSubmit { idx });
        }
        sim
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed (engine-throughput benchmarking).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total legacy-thinning bailouts across all services (each one
    /// silenced an arrival stream until the next poll; see
    /// `PoissonArrivals::thinning_bailouts`).
    #[must_use]
    pub fn thinning_bailouts(&self) -> u64 {
        self.services.iter().map(ServiceRuntime::thinning_bailouts).sum()
    }

    /// Read access to the cluster (the scheduler's world view).
    #[must_use]
    pub fn cluster(&self) -> &ClusterState {
        &self.cluster
    }

    /// Identities of all managed applications.
    #[must_use]
    pub fn apps(&self) -> &[AppStatus] {
        &self.statuses
    }

    pub(crate) fn schedule(&mut self, at: SimTime, event: Event) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq: self.seq, event }));
    }

    /// Runs the world forward to `to` (inclusive of events at `to`).
    ///
    /// Three queues are merged by `(at, seq)`: the main heap, the replica
    /// wake queue and the per-service arrival slots. Heap and wake `seq`s
    /// come from one global counter, so their keys never collide; arrival
    /// slots carry a pseudo-seq of 0, so a same-instant tie deterministically
    /// dispatches the arrival first (and ties between services break on the
    /// lowest service index).
    pub fn run_until(&mut self, to: SimTime) {
        /// Where the next event comes from.
        enum Src {
            Heap,
            Wake,
            Arrival(usize),
        }
        loop {
            let mut best: Option<((SimTime, u64), Src)> = None;
            if let Some((at, i)) = self.arrival_min {
                best = Some(((at, 0), Src::Arrival(i)));
            }
            if let Some(h) = self.heap.peek().map(|Reverse(s)| (s.at, s.seq)) {
                if best.as_ref().is_none_or(|(k, _)| h < *k) {
                    best = Some((h, Src::Heap));
                }
            }
            if let Some(w) = self.wakes.peek_key() {
                if best.as_ref().is_none_or(|(k, _)| w < *k) {
                    best = Some((w, Src::Wake));
                }
            }
            let Some((key, src)) = best else {
                break;
            };
            if key.0 > to {
                break;
            }
            self.now = key.0.max(self.now);
            self.events_processed += 1;
            match src {
                Src::Wake => {
                    // Replace-top: leave the entry in place while the
                    // handler runs. The common outcome is that the same
                    // pod reschedules, which rewrites the root key and
                    // sifts once — instead of a full pop (sift-down) plus
                    // reinsert (sift-up). Every wake scheduled during
                    // handling carries `at >= now` and a fresh, larger
                    // seq, so nothing can displace the root from below.
                    let e = *self.wakes.peek().expect("peeked");
                    self.handle_wake(e.pod, e.version);
                    // Root untouched — stale wake, retired pod, or a
                    // drained-idle replica with nothing to reschedule —
                    // so it must be removed for real.
                    if self
                        .wakes
                        .peek()
                        .is_some_and(|r| r.pod == e.pod && r.at == e.at && r.seq == e.seq)
                    {
                        self.wakes.pop();
                    }
                }
                Src::Heap => {
                    let Reverse(sch) = self.heap.pop().expect("peeked");
                    self.dispatch(sch.event);
                }
                Src::Arrival(svc) => {
                    self.arrival_slots[svc] = None;
                    self.service_arrival(svc);
                    self.schedule_next_arrival(svc);
                    self.recompute_arrival_min();
                }
            }
        }
        if to > self.now {
            self.now = to;
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::ServiceArrival { svc } => self.handle_service_arrival(svc),
            Event::PodStarted { pod } => self.handle_pod_started(pod),
            Event::BatchSubmit { idx } => self.handle_batch_submit(idx),
            Event::HpcSubmit { idx } => self.handle_hpc_submit(idx),
            Event::HpcIterationDone { idx, version } => self.handle_hpc_iteration(idx, version),
            Event::NodeFail { node } => self.handle_node_fail(node),
            Event::NodeRecover { node } => {
                let _ = self.cluster.set_node_ready(node, true);
            }
        }
    }

    // ------------------------------------------------------------------
    // Pod lifecycle shared across worlds
    // ------------------------------------------------------------------

    /// Binds a pending pod to a node and schedules its start. This is the
    /// actuation path for scheduler decisions.
    ///
    /// # Errors
    ///
    /// Propagates cluster binding failures (unknown ids, capacity).
    pub fn bind_pod(&mut self, pod: PodId, node: NodeId) -> Result<()> {
        self.cluster.bind_pod(pod, node)?;
        let at = self.now + self.config.pod_start_delay;
        self.schedule(at, Event::PodStarted { pod });
        Ok(())
    }

    /// Preempts a bound pod (scheduler-driven). Services lose the replica
    /// (the deployment recreates it), batch tasks are requeued with lost
    /// progress, HPC ranks are requeued and the gang pauses.
    ///
    /// # Errors
    ///
    /// Fails when the pod is unknown or not bound.
    pub fn preempt_pod(&mut self, pod: PodId) -> Result<()> {
        if !self.cluster.pod(pod)?.phase.holds_resources() {
            return Err(Error::InvalidState(format!("{pod} is not bound")));
        }
        self.remove_pod(pod, "preempted");
        Ok(())
    }

    /// Schedules a node failure (and optional recovery) — fault injection
    /// for the resilience experiments.
    pub fn inject_node_failure(
        &mut self,
        node: NodeId,
        fail_at: SimTime,
        recover_at: Option<SimTime>,
    ) {
        self.schedule(fail_at.max(self.now), Event::NodeFail { node });
        if let Some(r) = recover_at {
            self.schedule(r.max(self.now), Event::NodeRecover { node });
        }
    }

    fn handle_node_fail(&mut self, node: NodeId) {
        // `set_node_ready` evicts the node's pods and returns them; the
        // owner-specific recovery (replacement pod, task requeue, gang
        // pause + rank requeue) happens here.
        let Ok(victims) = self.cluster.set_node_ready(node, false) else {
            return;
        };
        for pod in victims {
            self.remove_pod(pod, "node failure");
        }
    }

    /// Terminates a bound/pending pod and performs the owner-specific
    /// recovery (replacement pod, task requeue, gang pause).
    pub(crate) fn remove_pod(&mut self, pod: PodId, reason: &str) {
        let Some(owner) = self.pod_owner.get(pod) else {
            return;
        };
        match owner {
            Owner::Service(idx) => self.service_pod_lost(idx, pod, reason),
            Owner::Batch(idx) => self.batch_pod_lost(idx, pod, reason),
            Owner::Hpc(idx) => self.hpc_pod_lost(idx, pod, reason),
        }
    }

    fn handle_pod_started(&mut self, pod: PodId) {
        // The pod may have been preempted/killed while starting.
        let Ok(p) = self.cluster.pod(pod) else {
            return;
        };
        if p.phase != PodPhase::Starting {
            return;
        }
        self.cluster.start_pod(pod, self.now).expect("phase checked");
        match self.pod_owner.get(pod) {
            Some(Owner::Service(idx)) => self.service_pod_started(idx, pod),
            Some(Owner::Batch(idx)) => self.batch_pod_started(idx, pod),
            Some(Owner::Hpc(idx)) => self.hpc_pod_started(idx, pod),
            None => {}
        }
    }

    fn handle_wake(&mut self, pod: PodId, version: u64) {
        match self.pod_owner.get(pod) {
            Some(Owner::Service(idx)) => self.service_wake(idx, pod, version),
            Some(Owner::Batch(idx)) => self.batch_wake(idx, pod, version),
            _ => {}
        }
    }

    pub(crate) fn schedule_wake(&mut self, pod: PodId, at: SimTime, version: u64) {
        // Draw from the same seq counter as `schedule` so the merged pop
        // order in `run_until` matches the old single-heap order exactly.
        self.seq += 1;
        self.wakes.set(pod, at.max(self.now), self.seq, version);
    }

    pub(crate) fn schedule_next_arrival(&mut self, svc: usize) {
        let now = self.now;
        let next = self.services[svc].next_arrival(now, &mut self.rng);
        if let Some(at) = next {
            match self.config.sampling {
                // Legacy arrivals round-trip through the main heap so the
                // merged pop order (and thus the fixture) is bit-identical.
                SamplingMode::Legacy => self.schedule(at, Event::ServiceArrival { svc }),
                SamplingMode::Batched => {
                    self.arrival_slots[svc] = Some(at);
                    if self.arrival_min.is_none_or(|m| (at, svc) < m) {
                        self.arrival_min = Some((at, svc));
                    }
                }
            }
        }
    }

    /// Rebuilds [`Simulation::arrival_min`] after the previous minimum was
    /// consumed (ties break toward the lowest service index).
    fn recompute_arrival_min(&mut self) {
        self.arrival_min = None;
        for (i, slot) in self.arrival_slots.iter().enumerate() {
            if let Some(at) = *slot {
                if self.arrival_min.is_none_or(|(b, _)| at < b) {
                    self.arrival_min = Some((at, i));
                }
            }
        }
    }

    fn handle_service_arrival(&mut self, svc: usize) {
        self.service_arrival(svc);
        self.schedule_next_arrival(svc);
    }

    fn handle_batch_submit(&mut self, idx: usize) {
        self.batch_submit(idx);
    }

    fn handle_hpc_submit(&mut self, idx: usize) {
        self.hpc_submit(idx);
    }

    fn handle_hpc_iteration(&mut self, idx: usize, version: u64) {
        self.hpc_iteration_done(idx, version);
    }

    // ------------------------------------------------------------------
    // Observation API
    // ------------------------------------------------------------------

    /// Harvests and resets the control-window statistics of an
    /// application.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownApp`] for unregistered ids.
    pub fn take_window(&mut self, app: AppId) -> Result<AppWindow> {
        let now = self.now;
        match self.app_index.get(&app) {
            Some(Owner::Service(idx)) => Ok(self.service_window(*idx, now)),
            Some(Owner::Batch(idx)) => Ok(self.batch_window(*idx, now)),
            Some(Owner::Hpc(idx)) => Ok(self.hpc_window(*idx, now)),
            None => Err(Error::UnknownApp(app)),
        }
    }

    /// Aggregate cluster state right now.
    #[must_use]
    pub fn snapshot(&self) -> ClusterSnapshot {
        // The pod table is append-only (terminal pods stay for outcome
        // reporting), so counts come from the cluster's maintained phase
        // counters instead of a scan that grows with simulation length.
        let (running, pending) = self.cluster.phase_counts();
        ClusterSnapshot {
            at: self.now,
            allocatable: self.cluster.total_allocatable(),
            allocated: self.cluster.total_allocated(),
            pods_running: running,
            pods_pending: pending,
            nodes_ready: self.cluster.nodes().iter().filter(|n| n.is_ready()).count() as u32,
        }
    }

    /// Outcomes of all batch and HPC jobs (finished or not).
    #[must_use]
    pub fn job_outcomes(&self) -> Vec<JobOutcome> {
        let mut out = Vec::new();
        for b in &self.batches {
            out.push(b.outcome());
        }
        for h in &self.hpcs {
            out.push(h.outcome());
        }
        out
    }

    // ------------------------------------------------------------------
    // Actuation API (the controller's knobs)
    // ------------------------------------------------------------------

    /// Sets a service's desired replica count and per-replica allocation.
    /// Running replicas are resized in place where node headroom allows;
    /// pending replicas have their requests rewritten; the replica count
    /// is reconciled (scale-out creates pending pods, scale-in drains the
    /// newest replicas gracefully). Returns the number of in-place
    /// resizes that failed for lack of node headroom.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownApp`] for ids that are not services.
    pub fn set_service_target(
        &mut self,
        app: AppId,
        replicas: u32,
        per_replica: ResourceVec,
    ) -> Result<u32> {
        let Some(Owner::Service(idx)) = self.app_index.get(&app) else {
            return Err(Error::UnknownApp(app));
        };
        let idx = *idx;
        Ok(self.service_set_target(idx, replicas, per_replica, 1.0))
    }

    /// Switches a service's admission control into (or out of) load
    /// shedding: while enabled, arrivals beyond the small
    /// [`SimulationConfig::shed_queue_cap`] backlog are rejected at the
    /// front door and counted in [`AppWindow::shed_requests`] instead of
    /// queueing without bound. The capacity arbiter flips this when it
    /// clips or sheds an app; jobs (batch/HPC) have no open-loop arrival
    /// stream, so the call is a no-op for them.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownApp`] for unknown ids.
    pub fn set_service_shedding(&mut self, app: AppId, shedding: bool) -> Result<()> {
        match self.app_index.get(&app) {
            Some(Owner::Service(idx)) => {
                self.services[*idx].shedding = shedding;
                Ok(())
            }
            Some(_) => Ok(()),
            None => Err(Error::UnknownApp(app)),
        }
    }

    /// `true` when a service currently sheds excess load at admission.
    #[must_use]
    pub fn service_shedding(&self, app: AppId) -> bool {
        matches!(self.app_index.get(&app), Some(Owner::Service(idx)) if self.services[*idx].shedding)
    }

    /// Like [`Simulation::set_service_target`], but the rollout reaches
    /// only `fraction` of replicas (chaos `ActuationPartial` fault): the
    /// desired state updates fully while untouched replicas keep their
    /// old allocation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownApp`] for ids that are not services.
    pub fn set_service_target_partial(
        &mut self,
        app: AppId,
        replicas: u32,
        per_replica: ResourceVec,
        fraction: f64,
    ) -> Result<u32> {
        let Some(Owner::Service(idx)) = self.app_index.get(&app) else {
            return Err(Error::UnknownApp(app));
        };
        let idx = *idx;
        Ok(self.service_set_target(idx, replicas, per_replica, fraction))
    }

    /// Sets a batch job's per-task allocation (applied to running tasks in
    /// place where possible and to all future tasks). Returns failed
    /// in-place resizes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownApp`] for ids that are not batch jobs.
    pub fn set_batch_target(&mut self, app: AppId, per_task: ResourceVec) -> Result<u32> {
        let Some(Owner::Batch(idx)) = self.app_index.get(&app) else {
            return Err(Error::UnknownApp(app));
        };
        let idx = *idx;
        Ok(self.batch_set_target(idx, per_task, 1.0))
    }

    /// Like [`Simulation::set_batch_target`], but the rollout reaches
    /// only `fraction` of tasks (chaos `ActuationPartial` fault).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownApp`] for ids that are not batch jobs.
    pub fn set_batch_target_partial(
        &mut self,
        app: AppId,
        per_task: ResourceVec,
        fraction: f64,
    ) -> Result<u32> {
        let Some(Owner::Batch(idx)) = self.app_index.get(&app) else {
            return Err(Error::UnknownApp(app));
        };
        let idx = *idx;
        Ok(self.batch_set_target(idx, per_task, fraction))
    }

    /// Sets an HPC job's per-rank allocation (in-place where possible;
    /// affects the duration of subsequent iterations). Returns failed
    /// resizes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownApp`] for ids that are not HPC jobs.
    pub fn set_hpc_target(&mut self, app: AppId, per_rank: ResourceVec) -> Result<u32> {
        let Some(Owner::Hpc(idx)) = self.app_index.get(&app) else {
            return Err(Error::UnknownApp(app));
        };
        let idx = *idx;
        Ok(self.hpc_set_target(idx, per_rank, 1.0))
    }

    /// Like [`Simulation::set_hpc_target`], but the rollout reaches only
    /// `fraction` of ranks (chaos `ActuationPartial` fault).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownApp`] for ids that are not HPC jobs.
    pub fn set_hpc_target_partial(
        &mut self,
        app: AppId,
        per_rank: ResourceVec,
        fraction: f64,
    ) -> Result<u32> {
        let Some(Owner::Hpc(idx)) = self.app_index.get(&app) else {
            return Err(Error::UnknownApp(app));
        };
        let idx = *idx;
        Ok(self.hpc_set_target(idx, per_rank, fraction))
    }

    /// The per-pod resource ceiling in force (largest node allocatable).
    #[must_use]
    pub fn pod_limit(&self) -> ResourceVec {
        self.pod_limit
    }
}

/// `ceil(fraction·n)` clamped to `[0, n]`: how many of `n` replicas a
/// degraded actuation rollout reaches.
pub(crate) fn partial_quota(n: usize, fraction: f64) -> usize {
    if n == 0 || fraction <= 0.0 {
        return 0;
    }
    (((fraction.min(1.0)) * n as f64).ceil() as usize).min(n)
}
