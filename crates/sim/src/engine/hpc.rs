//! HPC gang execution: all-or-nothing rank scheduling and lockstep
//! iterations that progress at the pace of the slowest rank.

use std::collections::BTreeSet;

use evolve_types::{AppId, JobId, PodId, Resource, ResourceVec, SimDuration, SimTime};
use evolve_workload::{sample_lognormal_with, HpcJobSpec};

use crate::observe::{AppWindow, JobOutcome, WindowAccumulator};
use crate::pod::{PodKind, PodPhase, PodSpec};

use super::{Event, Owner, Simulation};

/// Runtime state of one HPC job.
pub(crate) struct HpcRuntime {
    pub(crate) app: AppId,
    pub(crate) job: JobId,
    pub(crate) spec: HpcJobSpec,
    submit_at: SimTime,
    started: Option<SimTime>,
    /// All rank pods (stable across requeues).
    pub(crate) pods: Vec<PodId>,
    /// Ranks currently running, in pod-id order (iterated for usage
    /// accounting).
    running: BTreeSet<PodId>,
    pub(crate) iterations_done: u32,
    version: u64,
    iterating: bool,
    pub(crate) finished: Option<SimTime>,
    pub(crate) desired_alloc: ResourceVec,
    pub(crate) acc: WindowAccumulator,
}

impl HpcRuntime {
    pub(crate) fn new(app: AppId, job_raw: u64, spec: HpcJobSpec, submit_at: SimTime) -> Self {
        let desired_alloc = spec.rank_alloc;
        HpcRuntime {
            app,
            job: JobId::new(job_raw),
            spec,
            submit_at,
            started: None,
            pods: Vec::new(),
            running: BTreeSet::new(),
            iterations_done: 0,
            version: 0,
            iterating: false,
            finished: None,
            desired_alloc,
            acc: WindowAccumulator::default(),
        }
    }

    pub(crate) fn progress(&self) -> f64 {
        self.iterations_done as f64 / f64::from(self.spec.iterations.max(1))
    }

    pub(crate) fn outcome(&self) -> JobOutcome {
        JobOutcome {
            job: self.job,
            app: self.app,
            submitted: self.submit_at,
            finished: self.finished,
            deadline: self.submit_at + self.spec.deadline,
        }
    }
}

impl Simulation {
    /// The job was submitted: create the whole gang as pending pods. The
    /// scheduler must bind them all-or-nothing.
    pub(crate) fn hpc_submit(&mut self, idx: usize) {
        let (app, job, gang, request, limit) = {
            let rt = &self.hpcs[idx];
            (
                rt.app,
                rt.job,
                rt.spec.gang_size,
                rt.desired_alloc.min(&self.pod_limit),
                self.pod_limit,
            )
        };
        for rank in 0..gang {
            let spec = PodSpec::new(
                PodKind::HpcRank { app, job, rank },
                request,
                self.config.hpc_priority,
            )
            .with_limit(limit);
            let pod = self.cluster.create_pod(spec, self.now);
            self.pod_owner.insert(pod, Owner::Hpc(idx));
            self.hpcs[idx].pods.push(pod);
        }
    }

    /// A rank became running; when the gang is complete, iterations begin.
    pub(crate) fn hpc_pod_started(&mut self, idx: usize, pod: PodId) {
        {
            let rt = &mut self.hpcs[idx];
            rt.running.insert(pod);
            if rt.started.is_none() {
                rt.started = Some(self.now);
            }
        }
        self.hpc_maybe_start_iteration(idx);
    }

    fn hpc_maybe_start_iteration(&mut self, idx: usize) {
        let ready = {
            let rt = &self.hpcs[idx];
            rt.finished.is_none() && !rt.iterating && rt.running.len() as u32 == rt.spec.gang_size
        };
        if !ready {
            return;
        }
        // Iteration duration: the slowest rank's drain time across all
        // resource dimensions, from the *current* pod allocations.
        let mut secs: f64 = 0.0;
        {
            let rt = &self.hpcs[idx];
            for pod in &rt.running {
                let alloc = self.cluster.pod(*pod).expect("running rank").spec.request;
                for r in [Resource::Cpu, Resource::DiskIo, Resource::NetIo] {
                    let work = rt.spec.work_per_iteration[r];
                    if work > 1e-12 {
                        let rate = alloc[r];
                        secs = if rate <= 1e-12 { f64::INFINITY } else { secs.max(work / rate) };
                    }
                }
            }
        }
        if !secs.is_finite() {
            return; // starved allocation: wait for a resize
        }
        let jitter_cv = self.config.hpc_jitter_cv;
        let jitter = if jitter_cv > 0.0 {
            sample_lognormal_with(self.config.sampling, &mut self.rng, 1.0, jitter_cv)
        } else {
            1.0
        };
        let duration = SimDuration::from_secs_f64((secs * jitter).max(1e-6));
        let version = {
            let rt = &mut self.hpcs[idx];
            rt.iterating = true;
            rt.version += 1;
            rt.version
        };
        let at = self.now + duration;
        self.schedule(at, Event::HpcIterationDone { idx, version });
    }

    /// One lockstep iteration finished.
    pub(crate) fn hpc_iteration_done(&mut self, idx: usize, version: u64) {
        let now = self.now;
        let job_done = {
            let rt = &mut self.hpcs[idx];
            if rt.version != version || !rt.iterating || rt.finished.is_some() {
                return;
            }
            rt.iterating = false;
            rt.iterations_done += 1;
            // Usage accounting: the gang consumed one iteration of work on
            // every rank.
            let gang = f64::from(rt.spec.gang_size);
            let mut work = rt.spec.work_per_iteration * gang;
            work[Resource::Memory] = 0.0;
            rt.acc.consumed += work;
            rt.acc.record_completion(SimDuration::from_secs_f64(0.0));
            rt.iterations_done >= rt.spec.iterations
        };
        if job_done {
            self.hpcs[idx].finished = Some(now);
            for i in 0..self.hpcs[idx].pods.len() {
                let pod = self.hpcs[idx].pods[i];
                if self.cluster.pod(pod).is_ok_and(|p| !p.phase.is_terminal()) {
                    let _ = self.cluster.terminate_pod(pod, PodPhase::Succeeded);
                }
                self.pod_owner.remove(pod);
            }
            self.hpcs[idx].running.clear();
        } else {
            self.hpc_maybe_start_iteration(idx);
        }
    }

    /// External loss of a rank: the gang pauses and the rank requeues;
    /// the interrupted iteration restarts when the gang is whole again.
    pub(crate) fn hpc_pod_lost(&mut self, idx: usize, pod: PodId, reason: &str) {
        {
            let rt = &mut self.hpcs[idx];
            rt.running.remove(&pod);
            rt.iterating = false;
            rt.version += 1; // cancels any in-flight iteration event
        }
        let _ = self.cluster.terminate_pod(pod, PodPhase::Failed(reason.into()));
        if self.hpcs[idx].finished.is_none() {
            let _ = self.cluster.requeue_pod(pod, self.now);
        } else {
            self.pod_owner.remove(pod);
        }
    }

    /// Applies a controller decision; returns failed in-place resizes.
    /// `fraction < 1.0` limits the rollout to the first `ceil(fraction·n)`
    /// ranks (degraded actuation path).
    pub(crate) fn hpc_set_target(
        &mut self,
        idx: usize,
        per_rank: ResourceVec,
        fraction: f64,
    ) -> u32 {
        let target = per_rank.min(&self.pod_limit).sanitized();
        self.hpcs[idx].desired_alloc = target;
        let mut failures = 0u32;
        let quota = if fraction < 1.0 {
            super::partial_quota(self.hpcs[idx].pods.len(), fraction)
        } else {
            self.hpcs[idx].pods.len()
        };
        for i in 0..quota {
            let pod = self.hpcs[idx].pods[i];
            // Classify first: the phase borrow must end before the
            // mutating cluster calls below.
            let bound = match self.cluster.pod(pod).map(|p| &p.phase) {
                Ok(PodPhase::Running | PodPhase::Starting) => true,
                Ok(PodPhase::Pending) => false,
                _ => continue,
            };
            if bound {
                if self.cluster.resize_pod(pod, target).is_err() {
                    failures += 1;
                }
            } else {
                let _ = self.cluster.update_pending_request(pod, target);
            }
        }
        failures
    }

    /// Harvests the job's control window.
    pub(crate) fn hpc_window(&mut self, idx: usize, now: SimTime) -> AppWindow {
        let mem_total = {
            let rt = &self.hpcs[idx];
            // Ranks hold their requested memory while running.
            rt.running
                .iter()
                .filter_map(|p| self.cluster.pod(*p).ok())
                .map(|p| p.spec.request[Resource::Memory])
                .sum::<f64>()
        };
        let mut window = self.hpcs[idx].acc.harvest(now, mem_total);
        let rt = &self.hpcs[idx];
        let mut alloc = ResourceVec::ZERO;
        let mut pending = 0u32;
        for pod in &rt.pods {
            if let Ok(p) = self.cluster.pod(*pod) {
                match p.phase {
                    PodPhase::Running => alloc += p.spec.request,
                    PodPhase::Pending | PodPhase::Starting => pending += 1,
                    _ => {}
                }
            }
        }
        let running = rt.running.len() as u32;
        window.alloc = alloc;
        window.running_replicas = running;
        window.pending_replicas = pending;
        window.alloc_per_replica =
            if running > 0 { alloc * (1.0 / f64::from(running)) } else { rt.desired_alloc };
        let progress = rt.progress();
        window.progress = Some(progress);
        if let Some(started) = rt.started {
            let elapsed = now.saturating_since(started).as_secs_f64();
            window.projected_makespan_s = match rt.finished {
                Some(f) => Some(f.saturating_since(started).as_secs_f64()),
                None if progress > 1e-6 => Some(elapsed / progress),
                None => None,
            };
        }
        window
    }
}
