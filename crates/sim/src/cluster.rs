//! Cluster state: the simulated control-plane view.
//!
//! `ClusterState` is the single source of truth for nodes and pods. All
//! mutation (binding, eviction, vertical resize) validates capacity and
//! maintains the accounting invariant `Σ pod requests ≤ allocatable` per
//! node — exactly what a kubelet admission check enforces.

use std::collections::BTreeMap;

use evolve_types::{Error, NodeId, PodId, ResourceVec, Result, SimTime};
use serde::{Deserialize, Serialize};

use crate::node::Node;
use crate::pod::{Pod, PodPhase, PodSpec};

/// Shape of one node class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeShape {
    /// Node hardware capacity.
    pub capacity: ResourceVec,
}

impl Default for NodeShape {
    /// A 16-core / 64 GiB / 500 MB/s disk / 1250 MB/s (10 GbE) node.
    fn default() -> Self {
        NodeShape { capacity: ResourceVec::new(16_000.0, 65_536.0, 500.0, 1_250.0) }
    }
}

/// Cluster construction parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Node shapes; one node is created per entry.
    pub nodes: Vec<NodeShape>,
}

impl ClusterConfig {
    /// `count` identical nodes of the given shape.
    ///
    /// # Panics
    ///
    /// Panics when `count` is zero.
    #[must_use]
    pub fn uniform(count: usize, shape: NodeShape) -> Self {
        assert!(count > 0, "cluster needs at least one node");
        ClusterConfig { nodes: vec![shape; count] }
    }
}

/// Live cluster state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterState {
    nodes: Vec<Node>,
    pods: BTreeMap<PodId, Pod>,
    next_pod: u64,
    /// Pods currently `Running`, maintained on every phase transition so
    /// snapshots don't rescan the (append-only) pod table.
    running_count: u32,
    /// Pods currently `Pending` or `Starting`.
    waiting_count: u32,
    /// Monotone mutation counter, bumped whenever any node's scheduling-
    /// relevant state (allocation, bound set, readiness) changes. The
    /// scheduler's feasibility index diffs against this instead of
    /// rebuilding its per-node mirrors every cycle.
    version: u64,
    /// Per-node mutation counters (same events as `version`, node-scoped).
    node_versions: Vec<u64>,
    /// Bound (resource-holding) pod count per priority. Lets the
    /// scheduler bail out of preemption in O(1) when no pod of strictly
    /// lower priority exists anywhere in the cluster.
    bound_by_priority: BTreeMap<i32, u32>,
}

impl ClusterState {
    /// Builds the initial cluster from a configuration.
    #[must_use]
    pub fn new(config: &ClusterConfig) -> Self {
        let nodes = config
            .nodes
            .iter()
            .enumerate()
            .map(|(i, shape)| Node::new(NodeId::new(i as u32), shape.capacity))
            .collect();
        ClusterState {
            node_versions: vec![0; config.nodes.len()],
            nodes,
            pods: BTreeMap::new(),
            next_pod: 0,
            running_count: 0,
            waiting_count: 0,
            version: 0,
            bound_by_priority: BTreeMap::new(),
        }
    }

    /// Global mutation counter: changes whenever any node's scheduling-
    /// relevant state changed. Equal versions imply nothing a scheduler
    /// feasibility index mirrors has moved.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Per-node mutation counter (see [`ClusterState::version`]).
    ///
    /// # Panics
    ///
    /// Panics for node indices outside the cluster.
    #[must_use]
    pub fn node_version(&self, node: usize) -> u64 {
        self.node_versions[node]
    }

    /// Bound (resource-holding) pods with priority strictly below
    /// `priority`, maintained in O(1) per bind/unbind. Zero means
    /// preemption on behalf of a `priority` pod cannot possibly succeed.
    #[must_use]
    pub fn bound_pods_below(&self, priority: i32) -> u64 {
        self.bound_by_priority.range(..priority).map(|(_, c)| u64::from(*c)).sum()
    }

    fn bump_node(&mut self, node: usize) {
        self.version += 1;
        self.node_versions[node] += 1;
    }

    fn census_bind(&mut self, priority: i32) {
        *self.bound_by_priority.entry(priority).or_insert(0) += 1;
    }

    fn census_unbind(&mut self, priority: i32) {
        if let Some(c) = self.bound_by_priority.get_mut(&priority) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.bound_by_priority.remove(&priority);
            }
        }
    }

    /// `(running, pending_or_starting)` pod counts, maintained in O(1)
    /// across phase transitions.
    #[must_use]
    pub fn phase_counts(&self) -> (u32, u32) {
        (self.running_count, self.waiting_count)
    }

    /// All nodes.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up one node.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for ids outside the cluster.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.as_usize()).ok_or(Error::UnknownNode(id))
    }

    /// Looks up one pod.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPod`] when the pod does not exist.
    pub fn pod(&self, id: PodId) -> Result<&Pod> {
        self.pods.get(&id).ok_or(Error::UnknownPod(id))
    }

    /// Iterates over all pods in creation (pod-id) order.
    pub fn pods(&self) -> impl Iterator<Item = &Pod> {
        self.pods.values()
    }

    /// Pods awaiting a scheduling decision, in creation order.
    pub fn pending_pods(&self) -> impl Iterator<Item = &Pod> {
        let mut pending: Vec<&Pod> = self.pods.values().filter(|p| p.is_pending()).collect();
        pending.sort_by_key(|p| (p.created, p.id));
        pending.into_iter()
    }

    /// Creates a pod in `Pending` phase and returns its id.
    pub fn create_pod(&mut self, spec: PodSpec, now: SimTime) -> PodId {
        let id = PodId::new(self.next_pod);
        self.next_pod += 1;
        self.pods.insert(id, Pod::new(id, spec, now));
        self.waiting_count += 1;
        id
    }

    /// Binds a pending pod to a node, reserving its request. The pod moves
    /// to `Starting`; the engine flips it to `Running` after the start
    /// latency.
    ///
    /// # Errors
    ///
    /// Fails when the pod or node is unknown, the pod is not pending, or
    /// the node lacks capacity.
    pub fn bind_pod(&mut self, pod_id: PodId, node_id: NodeId) -> Result<()> {
        let pod = self.pods.get(&pod_id).ok_or(Error::UnknownPod(pod_id))?;
        if !pod.is_pending() {
            return Err(Error::InvalidState(format!("{pod_id} is not pending")));
        }
        let request = pod.spec.request;
        let node = self.nodes.get_mut(node_id.as_usize()).ok_or(Error::UnknownNode(node_id))?;
        if !node.can_fit(&request) {
            return Err(Error::InsufficientCapacity {
                node: node_id,
                detail: format!("free {} < request {}", node.free(), request),
            });
        }
        node.bind(pod_id, request);
        let pod = self.pods.get_mut(&pod_id).expect("checked above");
        pod.node = Some(node_id);
        pod.phase = PodPhase::Starting;
        let priority = pod.spec.priority;
        self.bump_node(node_id.as_usize());
        self.census_bind(priority);
        Ok(())
    }

    /// Marks a `Starting` pod as `Running`.
    ///
    /// # Errors
    ///
    /// Fails when the pod is unknown or not starting.
    pub fn start_pod(&mut self, pod_id: PodId, now: SimTime) -> Result<()> {
        let pod = self.pods.get_mut(&pod_id).ok_or(Error::UnknownPod(pod_id))?;
        if pod.phase != PodPhase::Starting {
            return Err(Error::InvalidState(format!("{pod_id} is not starting")));
        }
        pod.phase = PodPhase::Running;
        pod.started = Some(now);
        self.waiting_count -= 1;
        self.running_count += 1;
        Ok(())
    }

    /// Terminates a pod, releasing its node reservation.
    ///
    /// # Errors
    ///
    /// Fails when the pod is unknown or already terminal.
    pub fn terminate_pod(&mut self, pod_id: PodId, phase: PodPhase) -> Result<()> {
        assert!(phase.is_terminal(), "terminate_pod needs a terminal phase");
        let pod = self.pods.get_mut(&pod_id).ok_or(Error::UnknownPod(pod_id))?;
        if pod.phase.is_terminal() {
            return Err(Error::InvalidState(format!("{pod_id} already terminal")));
        }
        let mut released: Option<(usize, i32)> = None;
        if let Some(node_id) = pod.node.take() {
            if pod.phase.holds_resources() {
                self.nodes[node_id.as_usize()].unbind(pod_id, pod.spec.request);
                released = Some((node_id.as_usize(), pod.spec.priority));
            }
        }
        match pod.phase {
            PodPhase::Running => self.running_count -= 1,
            _ => self.waiting_count -= 1,
        }
        pod.phase = phase;
        if let Some((node, priority)) = released {
            self.bump_node(node);
            self.census_unbind(priority);
        }
        Ok(())
    }

    /// Returns a terminated or pending pod to `Pending` (requeue after
    /// preemption or node failure), assigning a fresh creation time so the
    /// queue ordering reflects the requeue.
    ///
    /// # Errors
    ///
    /// Fails when the pod is unknown or still holds resources.
    pub fn requeue_pod(&mut self, pod_id: PodId, now: SimTime) -> Result<()> {
        let pod = self.pods.get_mut(&pod_id).ok_or(Error::UnknownPod(pod_id))?;
        if pod.phase.holds_resources() {
            return Err(Error::InvalidState(format!("{pod_id} still bound")));
        }
        if pod.phase.is_terminal() {
            self.waiting_count += 1;
        }
        pod.phase = PodPhase::Pending;
        pod.node = None;
        pod.started = None;
        pod.created = now;
        Ok(())
    }

    /// Vertically resizes a bound pod's request in place (the in-place pod
    /// resize the EVOLVE controller relies on).
    ///
    /// # Errors
    ///
    /// Fails when the pod is unknown, not bound, the new request exceeds
    /// the pod limit, or the node lacks headroom for the increase.
    pub fn resize_pod(&mut self, pod_id: PodId, new_request: ResourceVec) -> Result<()> {
        let pod = self.pods.get(&pod_id).ok_or(Error::UnknownPod(pod_id))?;
        if !pod.phase.holds_resources() {
            return Err(Error::InvalidState(format!("{pod_id} is not bound")));
        }
        if !new_request.is_valid() || new_request.is_zero() {
            return Err(Error::InvalidConfig("resize request must be valid and non-zero".into()));
        }
        if !new_request.fits_within(&pod.spec.limit) {
            return Err(Error::InvalidConfig(format!(
                "resize {new_request} exceeds limit {}",
                pod.spec.limit
            )));
        }
        let node_id = pod.node.expect("bound pod has a node");
        let old_request = pod.spec.request;
        let node = &mut self.nodes[node_id.as_usize()];
        let free_plus_old = node.free() + old_request;
        if !new_request.fits_within(&free_plus_old) {
            return Err(Error::InsufficientCapacity {
                node: node_id,
                detail: format!("resize to {new_request} exceeds headroom {free_plus_old}"),
            });
        }
        node.adjust(old_request, new_request);
        self.pods.get_mut(&pod_id).expect("checked above").spec.request = new_request;
        self.bump_node(node_id.as_usize());
        Ok(())
    }

    /// Rewrites the request of a still-pending pod (the deployment updated
    /// its template before the pod was scheduled).
    ///
    /// # Errors
    ///
    /// Fails when the pod is unknown, not pending, or the request is
    /// invalid or exceeds the pod limit.
    pub fn update_pending_request(
        &mut self,
        pod_id: PodId,
        new_request: ResourceVec,
    ) -> Result<()> {
        let pod = self.pods.get_mut(&pod_id).ok_or(Error::UnknownPod(pod_id))?;
        if !pod.is_pending() {
            return Err(Error::InvalidState(format!("{pod_id} is not pending")));
        }
        if !new_request.is_valid() || new_request.is_zero() {
            return Err(Error::InvalidConfig("request must be valid and non-zero".into()));
        }
        if !new_request.fits_within(&pod.spec.limit) {
            return Err(Error::InvalidConfig(format!(
                "request {new_request} exceeds limit {}",
                pod.spec.limit
            )));
        }
        pod.spec.request = new_request;
        Ok(())
    }

    /// Marks a node (un)ready. Losing readiness evicts the node's pods in
    /// the same transaction — they are unbound, moved to `Failed`, and
    /// returned so the caller can requeue them — and the node's capacity
    /// leaves the allocatable pool. Recovery never resurrects pods: a node
    /// comes back empty.
    ///
    /// # Errors
    ///
    /// Fails for unknown node ids.
    pub fn set_node_ready(&mut self, node_id: NodeId, ready: bool) -> Result<Vec<PodId>> {
        let node = self.nodes.get_mut(node_id.as_usize()).ok_or(Error::UnknownNode(node_id))?;
        if node.is_ready() == ready {
            return Ok(Vec::new());
        }
        node.set_ready(ready);
        if ready {
            self.bump_node(node_id.as_usize());
            return Ok(Vec::new());
        }
        let victims: Vec<PodId> = node.pods().iter().copied().collect();
        self.bump_node(node_id.as_usize());
        for pod_id in &victims {
            let pod = self.pods.get_mut(pod_id).expect("node pod set is consistent");
            let released = pod.phase.holds_resources().then_some(pod.spec.priority);
            if released.is_some() {
                self.nodes[node_id.as_usize()].unbind(*pod_id, pod.spec.request);
            }
            match pod.phase {
                PodPhase::Running => self.running_count -= 1,
                PodPhase::Pending | PodPhase::Starting => self.waiting_count -= 1,
                _ => {}
            }
            pod.node = None;
            pod.phase = PodPhase::Failed("node unready".into());
            pod.started = None;
            if let Some(priority) = released {
                self.census_unbind(priority);
            }
        }
        Ok(victims)
    }

    /// Total cluster allocatable capacity (ready nodes only).
    #[must_use]
    pub fn total_allocatable(&self) -> ResourceVec {
        self.nodes.iter().filter(|n| n.is_ready()).map(Node::allocatable).sum()
    }

    /// Total reserved requests across ready nodes.
    #[must_use]
    pub fn total_allocated(&self) -> ResourceVec {
        self.nodes.iter().filter(|n| n.is_ready()).map(Node::allocated).sum()
    }

    /// Verifies internal accounting invariants (tests and debug builds).
    ///
    /// # Panics
    ///
    /// Panics when a node's book-kept allocation differs from the sum of
    /// its pods' requests, or exceeds its allocatable capacity.
    pub fn check_invariants(&self) {
        let violations = self.invariant_violations();
        assert!(violations.is_empty(), "cluster invariants violated: {violations:?}");
    }

    /// Non-panicking form of [`ClusterState::check_invariants`]: returns
    /// one description per violated accounting invariant (empty when the
    /// cluster is consistent). The chaos oracle calls this every tick, so
    /// a violation becomes a recorded finding instead of a panic.
    #[must_use]
    pub fn invariant_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut running = 0u32;
        let mut waiting = 0u32;
        let mut by_priority: BTreeMap<i32, u32> = BTreeMap::new();
        for pod in self.pods.values() {
            match pod.phase {
                PodPhase::Running => running += 1,
                PodPhase::Pending | PodPhase::Starting => waiting += 1,
                _ => {}
            }
            if pod.phase.holds_resources() {
                *by_priority.entry(pod.spec.priority).or_insert(0) += 1;
            }
        }
        if (running, waiting) != (self.running_count, self.waiting_count) {
            out.push(format!(
                "maintained phase counts diverged from pod table: ({running}, {waiting}) vs ({}, {})",
                self.running_count, self.waiting_count
            ));
        }
        if by_priority != self.bound_by_priority {
            out.push(format!(
                "maintained per-priority bound census diverged from pod table: {by_priority:?} vs {:?}",
                self.bound_by_priority
            ));
        }
        for node in &self.nodes {
            let mut sum = ResourceVec::ZERO;
            for pod_id in node.pods() {
                let pod = &self.pods[pod_id];
                if !pod.phase.holds_resources() {
                    out.push(format!("{pod_id} on node {} but not bound", node.id()));
                }
                sum += pod.spec.request;
            }
            let diff = (sum - node.allocated()).total() + (node.allocated() - sum).total();
            if diff >= 1e-6 {
                out.push(format!(
                    "allocation mismatch on {}: {sum} vs {}",
                    node.id(),
                    node.allocated()
                ));
            }
            if !node.allocated().fits_within(&(node.allocatable() + ResourceVec::splat(1e-6))) {
                out.push(format!("node {} over-allocated", node.id()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::PodKind;
    use evolve_types::AppId;

    fn cluster() -> ClusterState {
        ClusterState::new(&ClusterConfig::uniform(
            2,
            NodeShape { capacity: ResourceVec::splat(1000.0) },
        ))
    }

    fn spec(request: f64) -> PodSpec {
        PodSpec::new(PodKind::ServiceReplica { app: AppId::new(0) }, ResourceVec::splat(request), 0)
    }

    #[test]
    fn create_bind_start_lifecycle() {
        let mut c = cluster();
        let pod = c.create_pod(spec(100.0), SimTime::ZERO);
        assert!(c.pod(pod).unwrap().is_pending());
        c.bind_pod(pod, NodeId::new(0)).unwrap();
        assert_eq!(c.pod(pod).unwrap().phase, PodPhase::Starting);
        c.start_pod(pod, SimTime::from_secs(2)).unwrap();
        assert!(c.pod(pod).unwrap().is_running());
        assert_eq!(c.pod(pod).unwrap().started, Some(SimTime::from_secs(2)));
        c.check_invariants();
    }

    #[test]
    fn bind_rejects_overcommit() {
        let mut c = cluster();
        let a = c.create_pod(spec(900.0), SimTime::ZERO);
        let b = c.create_pod(spec(100.0), SimTime::ZERO);
        c.bind_pod(a, NodeId::new(0)).unwrap();
        let err = c.bind_pod(b, NodeId::new(0)).unwrap_err();
        assert!(matches!(err, Error::InsufficientCapacity { .. }));
        c.bind_pod(b, NodeId::new(1)).unwrap();
        c.check_invariants();
    }

    #[test]
    fn bind_rejects_non_pending() {
        let mut c = cluster();
        let a = c.create_pod(spec(10.0), SimTime::ZERO);
        c.bind_pod(a, NodeId::new(0)).unwrap();
        assert!(c.bind_pod(a, NodeId::new(1)).is_err());
    }

    #[test]
    fn terminate_releases_resources() {
        let mut c = cluster();
        let a = c.create_pod(spec(500.0), SimTime::ZERO);
        c.bind_pod(a, NodeId::new(0)).unwrap();
        c.terminate_pod(a, PodPhase::Succeeded).unwrap();
        assert_eq!(c.nodes()[0].allocated(), ResourceVec::ZERO);
        assert!(c.terminate_pod(a, PodPhase::Succeeded).is_err());
        c.check_invariants();
    }

    #[test]
    fn requeue_after_termination() {
        let mut c = cluster();
        let a = c.create_pod(spec(10.0), SimTime::ZERO);
        c.bind_pod(a, NodeId::new(0)).unwrap();
        c.terminate_pod(a, PodPhase::Failed("preempted".into())).unwrap();
        c.requeue_pod(a, SimTime::from_secs(5)).unwrap();
        let p = c.pod(a).unwrap();
        assert!(p.is_pending());
        assert_eq!(p.created, SimTime::from_secs(5));
        assert_eq!(p.node, None);
    }

    #[test]
    fn resize_within_headroom() {
        let mut c = cluster();
        let a = c.create_pod(spec(100.0).with_limit(ResourceVec::splat(2_000.0)), SimTime::ZERO);
        c.bind_pod(a, NodeId::new(0)).unwrap();
        c.resize_pod(a, ResourceVec::splat(800.0)).unwrap();
        assert_eq!(c.nodes()[0].allocated(), ResourceVec::splat(800.0));
        // Headroom is 950 total on the node.
        assert!(c.resize_pod(a, ResourceVec::splat(960.0)).is_err());
        // Shrinking always works.
        c.resize_pod(a, ResourceVec::splat(50.0)).unwrap();
        c.check_invariants();
    }

    #[test]
    fn resize_respects_pod_limit() {
        let mut c = cluster();
        let a = c.create_pod(spec(100.0), SimTime::ZERO); // limit 400
        c.bind_pod(a, NodeId::new(0)).unwrap();
        assert!(c.resize_pod(a, ResourceVec::splat(401.0)).is_err());
        assert!(c.resize_pod(a, ResourceVec::splat(400.0)).is_ok());
    }

    #[test]
    fn resize_unbound_pod_fails() {
        let mut c = cluster();
        let a = c.create_pod(spec(100.0), SimTime::ZERO);
        assert!(c.resize_pod(a, ResourceVec::splat(200.0)).is_err());
    }

    #[test]
    fn pending_pods_in_creation_order() {
        let mut c = cluster();
        let a = c.create_pod(spec(1.0), SimTime::from_secs(2));
        let b = c.create_pod(spec(1.0), SimTime::from_secs(1));
        let order: Vec<PodId> = c.pending_pods().map(|p| p.id).collect();
        assert_eq!(order, vec![b, a]);
    }

    #[test]
    fn totals_skip_unready_nodes() {
        let mut c = cluster();
        let full = c.total_allocatable();
        c.set_node_ready(NodeId::new(1), false).unwrap();
        assert_eq!(c.total_allocatable(), full * 0.5);
    }

    #[test]
    fn unready_node_evicts_and_releases_capacity() {
        let mut c = cluster();
        let a = c.create_pod(spec(100.0), SimTime::ZERO);
        let b = c.create_pod(spec(50.0), SimTime::ZERO);
        c.bind_pod(a, NodeId::new(0)).unwrap();
        c.bind_pod(b, NodeId::new(1)).unwrap();
        c.start_pod(a, SimTime::from_secs(1)).unwrap();
        let victims = c.set_node_ready(NodeId::new(0), false).unwrap();
        assert_eq!(victims, vec![a]);
        assert_eq!(c.nodes()[0].allocated(), ResourceVec::ZERO);
        assert!(c.nodes()[0].pods().is_empty());
        let pod = c.pod(a).unwrap();
        assert!(pod.phase.is_terminal());
        assert_eq!(pod.node, None);
        // The other node's pod is untouched.
        assert_eq!(c.pod(b).unwrap().node, Some(NodeId::new(1)));
        // Repeating the transition is a no-op, and recovery never
        // resurrects evicted pods.
        assert!(c.set_node_ready(NodeId::new(0), false).unwrap().is_empty());
        assert!(c.set_node_ready(NodeId::new(0), true).unwrap().is_empty());
        assert!(c.nodes()[0].pods().is_empty());
        // The victim can be requeued and rescheduled.
        c.requeue_pod(a, SimTime::from_secs(9)).unwrap();
        c.bind_pod(a, NodeId::new(0)).unwrap();
        c.check_invariants();
    }

    #[test]
    fn versions_track_node_mutations() {
        let mut c = cluster();
        let v0 = c.version();
        let a = c.create_pod(spec(100.0), SimTime::ZERO);
        assert_eq!(c.version(), v0, "pod creation touches no node");
        c.bind_pod(a, NodeId::new(0)).unwrap();
        assert!(c.version() > v0);
        assert!(c.node_version(0) > 0);
        assert_eq!(c.node_version(1), 0, "other nodes unversioned");
        let v1 = c.version();
        c.start_pod(a, SimTime::from_secs(1)).unwrap();
        assert_eq!(c.version(), v1, "phase flip changes no allocation");
        c.terminate_pod(a, PodPhase::Succeeded).unwrap();
        assert!(c.version() > v1);
    }

    #[test]
    fn versions_track_resize_and_readiness() {
        let mut c = cluster();
        let a = c.create_pod(spec(100.0).with_limit(ResourceVec::splat(500.0)), SimTime::ZERO);
        c.bind_pod(a, NodeId::new(0)).unwrap();
        let v = c.node_version(0);
        c.resize_pod(a, ResourceVec::splat(200.0)).unwrap();
        assert!(c.node_version(0) > v);
        let v = c.node_version(0);
        c.set_node_ready(NodeId::new(0), false).unwrap();
        assert!(c.node_version(0) > v);
    }

    #[test]
    fn bound_priority_census_tracks_lifecycle() {
        let mut c = cluster();
        let lo = c.create_pod(
            PodSpec::new(
                PodKind::ServiceReplica { app: AppId::new(0) },
                ResourceVec::splat(10.0),
                10,
            ),
            SimTime::ZERO,
        );
        let hi = c.create_pod(
            PodSpec::new(
                PodKind::ServiceReplica { app: AppId::new(1) },
                ResourceVec::splat(10.0),
                100,
            ),
            SimTime::ZERO,
        );
        assert_eq!(c.bound_pods_below(100), 0, "pending pods are not bound");
        c.bind_pod(lo, NodeId::new(0)).unwrap();
        c.bind_pod(hi, NodeId::new(1)).unwrap();
        assert_eq!(c.bound_pods_below(100), 1);
        assert_eq!(c.bound_pods_below(11), 1);
        assert_eq!(c.bound_pods_below(10), 0);
        c.check_invariants();
        c.terminate_pod(lo, PodPhase::Succeeded).unwrap();
        assert_eq!(c.bound_pods_below(100), 0);
        // Eviction through node failure also updates the census.
        c.set_node_ready(NodeId::new(1), false).unwrap();
        assert_eq!(c.bound_pods_below(i32::MAX), 0);
        c.check_invariants();
    }

    #[test]
    fn unknown_ids_error() {
        let mut c = cluster();
        assert!(c.node(NodeId::new(99)).is_err());
        assert!(c.pod(PodId::new(99)).is_err());
        assert!(c.bind_pod(PodId::new(99), NodeId::new(0)).is_err());
        assert!(c.set_node_ready(NodeId::new(99), true).is_err());
    }
}
