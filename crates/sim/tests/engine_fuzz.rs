//! Fuzz-style property tests: arbitrary interleavings of scheduling,
//! resizing, preemption, fault injection and time advancement must never
//! panic, corrupt cluster accounting, or lose requests.

use evolve_sim::{ClusterConfig, NodeShape, Simulation, SimulationConfig};
use evolve_types::{NodeId, PodId, ResourceVec, SimDuration, SimTime};
use evolve_workload::{
    BatchJobSpec, HpcJobSpec, LoadSpec, PloSpec, RequestClass, ServiceSpec, StageSpec, WorkloadMix,
};
use proptest::prelude::*;

/// One random control action.
#[derive(Debug, Clone, Copy)]
enum Action {
    Advance(u64),
    BindFirstFit,
    PreemptSomeRunning(u8),
    ResizeService(u8),
    ScaleService(u8),
    FailNode(u8),
    RecoverNode(u8),
    Harvest,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u64..20).prop_map(Action::Advance),
        Just(Action::BindFirstFit),
        any::<u8>().prop_map(Action::PreemptSomeRunning),
        any::<u8>().prop_map(Action::ResizeService),
        any::<u8>().prop_map(Action::ScaleService),
        (0u8..3).prop_map(Action::FailNode),
        (0u8..3).prop_map(Action::RecoverNode),
        Just(Action::Harvest),
    ]
}

fn mixed_workload() -> WorkloadMix {
    let class = RequestClass::new(
        "rq",
        ResourceVec::new(15.0, 4.0, 0.5, 0.5),
        0.6,
        SimDuration::from_secs(8),
    );
    WorkloadMix::new()
        .with_service(
            ServiceSpec::new(
                "svc",
                PloSpec::LatencyP99 { target_ms: 100.0 },
                class,
                ResourceVec::new(1_500.0, 1_536.0, 20.0, 20.0),
            )
            .with_initial_replicas(2),
            LoadSpec::Mmpp { low: 20.0, high: 60.0, mean_dwell: SimDuration::from_secs(30) },
        )
        .with_batch_job(
            BatchJobSpec::new(
                "b",
                vec![StageSpec::new(3, ResourceVec::new(20_000.0, 512.0, 200.0, 20.0), 100)],
                PloSpec::Deadline { deadline: SimDuration::from_secs(600) },
                ResourceVec::new(2_000.0, 1_024.0, 50.0, 20.0),
                3,
            ),
            SimTime::from_secs(5),
        )
        .with_hpc_job(
            HpcJobSpec::new(
                "h",
                2,
                20,
                ResourceVec::new(2_000.0, 512.0, 5.0, 10.0),
                ResourceVec::new(2_000.0, 1_024.0, 10.0, 20.0),
                SimDuration::from_secs(600),
            ),
            SimTime::from_secs(10),
        )
}

fn bind_first_fit(sim: &mut Simulation) {
    let pending: Vec<PodId> = sim.cluster().pending_pods().map(|p| p.id).collect();
    for pod in pending {
        let request = sim.cluster().pod(pod).expect("pending pod").spec.request;
        let node =
            sim.cluster().nodes().iter().find(|n| n.can_fit(&request)).map(evolve_sim::Node::id);
        if let Some(node) = node {
            sim.bind_pod(pod, node).expect("first-fit binding");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_interleavings_preserve_invariants(
        seed in 0u64..1_000,
        actions in prop::collection::vec(arb_action(), 1..60),
    ) {
        let mut sim = Simulation::new(
            SimulationConfig::default(),
            ClusterConfig::uniform(3, NodeShape::default()),
            &mixed_workload(),
            seed,
        );
        let service = sim.apps()[0].id;
        let mut now = SimTime::ZERO;
        for action in actions {
            match action {
                Action::Advance(secs) => {
                    now += SimDuration::from_secs(secs);
                    sim.run_until(now);
                }
                Action::BindFirstFit => bind_first_fit(&mut sim),
                Action::PreemptSomeRunning(k) => {
                    let victims: Vec<PodId> = sim
                        .cluster()
                        .pods()
                        .filter(|p| p.is_running())
                        .map(|p| p.id)
                        .collect();
                    if !victims.is_empty() {
                        let victim = victims[k as usize % victims.len()];
                        sim.preempt_pod(victim).expect("preempting a running pod");
                    }
                }
                Action::ResizeService(k) => {
                    let cpu = 500.0 + f64::from(k) * 40.0;
                    let _ = sim.set_service_target(
                        service,
                        0, // clamped to ≥1 by the engine
                        ResourceVec::new(cpu, 1_024.0, 20.0, 20.0),
                    );
                }
                Action::ScaleService(k) => {
                    let replicas = u32::from(k % 6) + 1;
                    let _ = sim.set_service_target(
                        service,
                        replicas,
                        ResourceVec::new(1_500.0, 1_536.0, 20.0, 20.0),
                    );
                }
                Action::FailNode(n) => {
                    sim.inject_node_failure(
                        NodeId::new(u32::from(n)),
                        now + SimDuration::from_secs(1),
                        None,
                    );
                }
                Action::RecoverNode(n) => {
                    // Recovery is modelled as a failure event with an
                    // immediate recovery timestamp.
                    sim.inject_node_failure(
                        NodeId::new(u32::from(n)),
                        now + SimDuration::from_secs(1),
                        Some(now + SimDuration::from_secs(2)),
                    );
                }
                Action::Harvest => {
                    let w = sim.take_window(service).expect("service window");
                    // Window counters are internally consistent.
                    prop_assert!(w.completions <= w.arrivals + 10_000);
                    prop_assert!(w.usage.is_valid(), "usage invalid: {:?}", w.usage);
                    prop_assert!(w.alloc.is_valid(), "alloc invalid: {:?}", w.alloc);
                }
            }
            sim.cluster().check_invariants();
        }
        // Drain to a quiet horizon: everything must still be consistent.
        sim.run_until(now + SimDuration::from_secs(60));
        sim.cluster().check_invariants();
        for outcome in sim.job_outcomes() {
            if let Some(f) = outcome.finished {
                prop_assert!(f >= outcome.submitted);
            }
        }
    }
}
