//! Property-based tests for the processor-sharing performance model.

use evolve_sim::{PerfConfig, ReplicaServer};
use evolve_types::{Resource, ResourceVec, SimDuration, SimTime};
use proptest::prelude::*;

/// An admission: (offset µs from previous, cpu work, disk work, net work,
/// working set).
type Admission = (u64, f64, f64, f64, f64);

fn arb_admissions() -> impl Strategy<Value = Vec<Admission>> {
    prop::collection::vec(
        (0u64..500_000, 1.0..2_000.0f64, 0.0..50.0f64, 0.0..50.0f64, 0.0..64.0f64),
        1..40,
    )
}

fn big_server() -> ReplicaServer {
    ReplicaServer::new(
        ResourceVec::new(4_000.0, 1_000_000.0, 200.0, 200.0),
        0.0,
        PerfConfig::default(),
        SimTime::ZERO,
    )
}

proptest! {
    #[test]
    fn conservation_every_request_completes_or_times_out(admissions in arb_admissions()) {
        let mut server = big_server();
        let mut t = SimTime::ZERO;
        let mut admitted = 0u64;
        let mut finished = 0usize;
        for (i, (gap, cpu, disk, net, ws)) in admissions.iter().enumerate() {
            t += SimDuration::from_micros(*gap);
            let out = server.admit(
                i as u64,
                t,
                t + SimDuration::from_secs(30),
                ResourceVec::new(*cpu, *ws, *disk, *net),
            );
            admitted += 1;
            if let Some(out) = out {
                finished += out.completed.len() + out.timed_out.len();
                prop_assert!(!out.oom_killed, "memory allocation is huge");
            }
        }
        // Run far past every deadline.
        let out = server.advance(t + SimDuration::from_secs(120));
        finished += out.completed.len() + out.timed_out.len();
        prop_assert_eq!(finished as u64, admitted, "requests leaked");
        prop_assert_eq!(server.inflight_len(), 0);
    }

    #[test]
    fn latency_at_least_ideal_service_time(
        cpu in 10.0..4_000.0f64,
        disk in 0.0..100.0f64,
        net in 0.0..100.0f64,
    ) {
        let alloc = ResourceVec::new(2_000.0, 10_000.0, 100.0, 100.0);
        let mut server = ReplicaServer::new(alloc, 0.0, PerfConfig::default(), SimTime::ZERO);
        server.admit(
            0,
            SimTime::ZERO,
            SimTime::from_secs(600),
            ResourceVec::new(cpu, 1.0, disk, net),
        );
        let out = server.advance(SimTime::from_secs(600));
        prop_assert_eq!(out.completed.len(), 1);
        let ideal = (cpu / 2_000.0).max(disk / 100.0).max(net / 100.0);
        let measured = out.completed[0].latency.as_secs_f64();
        prop_assert!(
            measured >= ideal - 1e-6,
            "measured {measured} below ideal {ideal}"
        );
        // Alone on the replica, it should also be close to ideal.
        prop_assert!(measured <= ideal + 1e-3, "measured {measured} far above ideal {ideal}");
    }

    #[test]
    fn consumed_work_never_exceeds_offered(admissions in arb_admissions()) {
        let mut server = big_server();
        let mut t = SimTime::ZERO;
        let mut offered = ResourceVec::ZERO;
        for (i, (gap, cpu, disk, net, ws)) in admissions.iter().enumerate() {
            t += SimDuration::from_micros(*gap);
            let demand = ResourceVec::new(*cpu, *ws, *disk, *net);
            offered += demand;
            server.admit(i as u64, t, t + SimDuration::from_secs(30), demand);
        }
        server.advance(t + SimDuration::from_secs(120));
        let mut consumed = server.take_consumed();
        consumed[Resource::Memory] = 0.0;
        for r in [Resource::Cpu, Resource::DiskIo, Resource::NetIo] {
            prop_assert!(
                consumed[r] <= offered[r] + 1e-3,
                "{r}: consumed {} offered {}",
                consumed[r],
                offered[r]
            );
        }
    }

    #[test]
    fn clock_is_monotone_under_any_interleaving(
        ops in prop::collection::vec((0u64..1_000_000, any::<bool>()), 1..60),
    ) {
        let mut server = big_server();
        let mut t = SimTime::ZERO;
        let mut id = 0u64;
        for (gap, is_admit) in ops {
            t += SimDuration::from_micros(gap);
            if is_admit {
                server.admit(
                    id,
                    t,
                    t + SimDuration::from_secs(5),
                    ResourceVec::new(100.0, 1.0, 0.0, 0.0),
                );
                id += 1;
            } else {
                server.advance(t);
            }
            prop_assert!(server.clock() <= t + SimDuration::from_micros(1));
            prop_assert!(server.clock() >= t - SimDuration::from_micros(1) || server.inflight_len() > 0);
        }
    }

    #[test]
    fn next_event_is_never_in_the_past(admissions in arb_admissions()) {
        let mut server = big_server();
        let mut t = SimTime::ZERO;
        for (i, (gap, cpu, disk, net, ws)) in admissions.iter().enumerate() {
            t += SimDuration::from_micros(*gap);
            server.admit(
                i as u64,
                t,
                t + SimDuration::from_secs(30),
                ResourceVec::new(*cpu, *ws, *disk, *net),
            );
            if let Some(next) = server.next_event() {
                prop_assert!(next > server.clock(), "event {next:?} not after {:?}", server.clock());
            }
        }
    }
}
