//! End-to-end engine tests: services, batch jobs and HPC gangs executing
//! on a simulated cluster with manual (test-driven) scheduling.

use evolve_sim::{ClusterConfig, NodeShape, Simulation, SimulationConfig};
use evolve_types::{NodeId, PodId, ResourceVec, SimDuration, SimTime};
use evolve_workload::{
    BatchJobSpec, HpcJobSpec, LoadSpec, PloSpec, RequestClass, ServiceSpec, StageSpec, WorkloadMix,
};

fn small_cluster(nodes: usize) -> ClusterConfig {
    ClusterConfig::uniform(
        nodes,
        NodeShape { capacity: ResourceVec::new(16_000.0, 65_536.0, 500.0, 1_250.0) },
    )
}

fn service_mix(rate: f64) -> WorkloadMix {
    let class = RequestClass::new(
        "rq",
        ResourceVec::new(20.0, 2.0, 0.1, 0.1),
        0.0, // deterministic demands for exact assertions
        SimDuration::from_secs(10),
    );
    WorkloadMix::new().with_service(
        ServiceSpec::new(
            "svc",
            PloSpec::LatencyP99 { target_ms: 100.0 },
            class,
            ResourceVec::new(2_000.0, 2_048.0, 50.0, 50.0),
        )
        .with_initial_replicas(2),
        LoadSpec::Constant { rate },
    )
}

/// Binds every pending pod first-fit onto the cluster.
fn bind_all(sim: &mut Simulation) -> usize {
    let pending: Vec<PodId> = sim.cluster().pending_pods().map(|p| p.id).collect();
    let mut bound = 0;
    for pod in pending {
        let request = sim.cluster().pod(pod).unwrap().spec.request;
        let target =
            sim.cluster().nodes().iter().find(|n| n.can_fit(&request)).map(evolve_sim::Node::id);
        if let Some(node) = target {
            sim.bind_pod(pod, node).unwrap();
            bound += 1;
        }
    }
    bound
}

#[test]
fn service_completes_requests_and_reports_latency() {
    let mix = service_mix(50.0);
    let mut sim = Simulation::new(SimulationConfig::default(), small_cluster(2), &mix, 1);
    assert_eq!(bind_all(&mut sim), 2);
    let app = sim.apps()[0].id;
    // Discard the startup window: requests that arrived before the pods
    // finished starting carry seconds of queue wait.
    sim.run_until(SimTime::from_secs(5));
    sim.take_window(app).unwrap();
    sim.run_until(SimTime::from_secs(30));
    let w = sim.take_window(app).unwrap();
    // 50 rps for 25 s.
    assert!(w.arrivals > 1_000, "arrivals {}", w.arrivals);
    assert!(w.completions > 900, "completions {}", w.completions);
    assert_eq!(w.timeouts, 0);
    assert_eq!(w.running_replicas, 2);
    // 20 mcore·s at 2000 mcore alone ≈ 10ms; light load → low p99.
    let p99 = w.p99_ms.unwrap();
    assert!(p99 < 100.0, "p99 {p99}");
    // CPU usage ≈ 50 rps × 20 mcore·s = 1000 mcores across replicas.
    assert!((w.usage.cpu() - 1_000.0).abs() < 200.0, "cpu usage {}", w.usage.cpu());
    sim.cluster().check_invariants();
}

#[test]
fn unbound_service_times_out_requests() {
    let mix = service_mix(20.0);
    let mut sim = Simulation::new(SimulationConfig::default(), small_cluster(1), &mix, 2);
    // Never bind anything: requests must expire in the queue.
    sim.run_until(SimTime::from_secs(30));
    let app = sim.apps()[0].id;
    let w = sim.take_window(app).unwrap();
    assert_eq!(w.completions, 0);
    assert!(w.timeouts > 100, "timeouts {}", w.timeouts);
    // Latency PLO signal must read as a violation.
    let measured = w.measured_for(&PloSpec::LatencyP99 { target_ms: 100.0 }).unwrap();
    assert!(measured > 1e5);
}

#[test]
fn overloaded_service_has_high_tail_latency() {
    // 2000 mcore replica, 20 mcore·s demands → capacity ≈ 100 rps per
    // replica; offer 150 rps on ONE replica.
    let class = RequestClass::new(
        "rq",
        ResourceVec::new(20.0, 2.0, 0.0, 0.0),
        0.0,
        SimDuration::from_secs(10),
    );
    let mix = WorkloadMix::new().with_service(
        ServiceSpec::new(
            "hot",
            PloSpec::LatencyP99 { target_ms: 100.0 },
            class,
            ResourceVec::new(2_000.0, 2_048.0, 50.0, 50.0),
        ),
        LoadSpec::Constant { rate: 150.0 },
    );
    let mut sim = Simulation::new(SimulationConfig::default(), small_cluster(1), &mix, 3);
    bind_all(&mut sim);
    sim.run_until(SimTime::from_secs(60));
    let w = sim.take_window(sim.apps()[0].id).unwrap();
    // Severely overloaded: timeouts (10s deadline) must appear.
    assert!(w.timeouts > 0, "expected timeouts under overload");
}

#[test]
fn vertical_resize_improves_latency() {
    let mix = service_mix(80.0);
    let mut sim = Simulation::new(SimulationConfig::default(), small_cluster(2), &mix, 4);
    bind_all(&mut sim);
    let app = sim.apps()[0].id;
    sim.run_until(SimTime::from_secs(20));
    let before = sim.take_window(app).unwrap();
    // Double the per-replica allocation in place.
    let failures =
        sim.set_service_target(app, 2, ResourceVec::new(4_000.0, 4_096.0, 100.0, 100.0)).unwrap();
    assert_eq!(failures, 0);
    sim.run_until(SimTime::from_secs(40));
    let after = sim.take_window(app).unwrap();
    assert!(
        after.p99_ms.unwrap() < before.p99_ms.unwrap() + 1.0,
        "p99 before {:?} after {:?}",
        before.p99_ms,
        after.p99_ms
    );
    assert!((after.alloc_per_replica.cpu() - 4_000.0).abs() < 1.0);
}

#[test]
fn horizontal_scale_out_creates_and_absorbs() {
    let mix = service_mix(100.0);
    let mut sim = Simulation::new(SimulationConfig::default(), small_cluster(3), &mix, 5);
    bind_all(&mut sim);
    let app = sim.apps()[0].id;
    sim.run_until(SimTime::from_secs(10));
    sim.set_service_target(app, 5, ResourceVec::new(2_000.0, 2_048.0, 50.0, 50.0)).unwrap();
    // New pods appear pending and must be bound.
    let newly_bound = bind_all(&mut sim);
    assert_eq!(newly_bound, 3);
    sim.run_until(SimTime::from_secs(30));
    let w = sim.take_window(app).unwrap();
    assert_eq!(w.running_replicas, 5);
    sim.cluster().check_invariants();
}

#[test]
fn graceful_scale_in_loses_no_requests() {
    let mix = service_mix(60.0);
    let mut sim = Simulation::new(SimulationConfig::default(), small_cluster(2), &mix, 6);
    bind_all(&mut sim);
    let app = sim.apps()[0].id;
    sim.run_until(SimTime::from_secs(15));
    sim.take_window(app).unwrap();
    sim.set_service_target(app, 1, ResourceVec::new(2_000.0, 2_048.0, 50.0, 50.0)).unwrap();
    sim.run_until(SimTime::from_secs(40));
    let w = sim.take_window(app).unwrap();
    assert_eq!(w.running_replicas, 1);
    assert_eq!(w.timeouts, 0, "graceful drain must not drop requests");
    sim.cluster().check_invariants();
}

#[test]
fn batch_job_runs_stages_and_finishes() {
    let job = BatchJobSpec::new(
        "etl",
        vec![
            StageSpec::new(4, ResourceVec::new(2_000.0, 256.0, 50.0, 10.0), 1_000),
            StageSpec::new(2, ResourceVec::new(1_000.0, 256.0, 10.0, 50.0), 500),
        ],
        PloSpec::Deadline { deadline: SimDuration::from_mins(10) },
        ResourceVec::new(2_000.0, 1_024.0, 100.0, 100.0),
        4,
    );
    let mix = WorkloadMix::new().with_batch_job(job, SimTime::from_secs(5));
    let mut sim = Simulation::new(SimulationConfig::default(), small_cluster(2), &mix, 7);
    // Drive: run, bind whatever appears, repeat.
    for step in 1..=120u64 {
        sim.run_until(SimTime::from_secs(5 * step));
        bind_all(&mut sim);
    }
    let outcomes = sim.job_outcomes();
    assert_eq!(outcomes.len(), 1);
    let o = outcomes[0];
    assert!(o.finished.is_some(), "batch job should finish");
    assert!(o.met_deadline(), "makespan {:?}", o.makespan_s());
    // All 5000 records accounted.
    let w = sim.take_window(sim.apps()[0].id).unwrap();
    assert_eq!(w.progress, Some(1.0));
    sim.cluster().check_invariants();
}

#[test]
fn hpc_gang_waits_for_all_ranks() {
    let job = HpcJobSpec::new(
        "solver",
        4,
        10,
        ResourceVec::new(2_000.0, 512.0, 0.0, 10.0),
        ResourceVec::new(2_000.0, 1_024.0, 10.0, 50.0),
        SimDuration::from_mins(10),
    );
    let mix = WorkloadMix::new().with_hpc_job(job, SimTime::from_secs(1));
    let mut sim = Simulation::new(SimulationConfig::default(), small_cluster(2), &mix, 8);
    sim.run_until(SimTime::from_secs(5));
    // Bind only 3 of 4 ranks: no progress may happen.
    let pending: Vec<PodId> = sim.cluster().pending_pods().map(|p| p.id).collect();
    assert_eq!(pending.len(), 4);
    for pod in pending.iter().take(3) {
        sim.bind_pod(*pod, NodeId::new(0)).unwrap();
    }
    sim.run_until(SimTime::from_secs(60));
    let app = sim.apps()[0].id;
    let w = sim.take_window(app).unwrap();
    assert_eq!(w.progress, Some(0.0), "gang must not progress with a missing rank");
    // Bind the last rank: iterations start.
    let last = *pending.last().unwrap();
    sim.bind_pod(last, NodeId::new(1)).unwrap();
    sim.run_until(SimTime::from_secs(120));
    let w = sim.take_window(app).unwrap();
    assert!(w.progress.unwrap() > 0.0);
    // Each iteration: 2000 mcore·s at 2000 mcore ≈ 1 s → 10 iterations
    // finish well within the horizon.
    let outcome = sim.job_outcomes()[0];
    assert!(outcome.finished.is_some());
}

#[test]
fn preempted_batch_task_requeues() {
    let job = BatchJobSpec::new(
        "b",
        vec![StageSpec::new(1, ResourceVec::new(60_000.0, 256.0, 0.0, 0.0), 100)],
        PloSpec::Deadline { deadline: SimDuration::from_mins(30) },
        ResourceVec::new(2_000.0, 1_024.0, 10.0, 10.0),
        1,
    );
    let mix = WorkloadMix::new().with_batch_job(job, SimTime::ZERO);
    let mut sim = Simulation::new(SimulationConfig::default(), small_cluster(1), &mix, 9);
    sim.run_until(SimTime::from_secs(1));
    bind_all(&mut sim);
    sim.run_until(SimTime::from_secs(10)); // task running (needs ~30s)
    let running: Vec<PodId> =
        sim.cluster().pods().filter(|p| p.is_running()).map(|p| p.id).collect();
    assert_eq!(running.len(), 1);
    sim.preempt_pod(running[0]).unwrap();
    // A replacement pod must be pending.
    assert_eq!(sim.cluster().pending_pods().count(), 1);
    bind_all(&mut sim);
    // Work restarts from scratch: needs ~30 more seconds.
    for step in 2..=12u64 {
        sim.run_until(SimTime::from_secs(step * 5));
        bind_all(&mut sim);
    }
    assert!(sim.job_outcomes()[0].finished.is_some());
    sim.cluster().check_invariants();
}

#[test]
fn node_failure_recreates_service_replicas() {
    let mix = service_mix(30.0);
    let mut sim = Simulation::new(SimulationConfig::default(), small_cluster(2), &mix, 10);
    bind_all(&mut sim);
    sim.run_until(SimTime::from_secs(10));
    // Fail node 0 at t=12, recover at t=30.
    sim.inject_node_failure(NodeId::new(0), SimTime::from_secs(12), Some(SimTime::from_secs(30)));
    sim.run_until(SimTime::from_secs(13));
    // Replacement pods pending; bind to the surviving node.
    let pending = bind_all(&mut sim);
    assert!(pending > 0, "replacement replicas expected");
    sim.run_until(SimTime::from_secs(60));
    let w = sim.take_window(sim.apps()[0].id).unwrap();
    assert_eq!(w.running_replicas, 2);
    assert!(sim.cluster().nodes()[0].is_ready(), "node should have recovered");
    sim.cluster().check_invariants();
}

#[test]
fn oom_killed_replica_is_replaced() {
    // Tiny memory allocation + memory-heavy requests → OOM.
    let class = RequestClass::new(
        "big",
        ResourceVec::new(5_000.0, 600.0, 0.0, 0.0), // long-lived, 600 MiB ws
        0.0,
        SimDuration::from_secs(30),
    );
    let mix = WorkloadMix::new().with_service(
        ServiceSpec::new(
            "leaky",
            PloSpec::LatencyP99 { target_ms: 1_000.0 },
            class,
            ResourceVec::new(2_000.0, 1_024.0, 50.0, 50.0),
        ),
        LoadSpec::Constant { rate: 5.0 },
    );
    let mut sim = Simulation::new(SimulationConfig::default(), small_cluster(1), &mix, 11);
    bind_all(&mut sim);
    sim.run_until(SimTime::from_secs(30));
    bind_all(&mut sim); // bind replacements
    sim.run_until(SimTime::from_secs(60));
    let w = sim.take_window(sim.apps()[0].id).unwrap();
    assert!(w.oom_kills > 0, "expected OOM kills");
    sim.cluster().check_invariants();
}

#[test]
fn determinism_under_fixed_seed() {
    let run = |seed: u64| {
        let mix = service_mix(40.0);
        let mut sim = Simulation::new(SimulationConfig::default(), small_cluster(2), &mix, seed);
        bind_all(&mut sim);
        sim.run_until(SimTime::from_secs(30));
        let w = sim.take_window(sim.apps()[0].id).unwrap();
        (w.arrivals, w.completions, w.p99_ms)
    };
    assert_eq!(run(123), run(123));
    assert_ne!(run(123).0, run(456).0);
}

#[test]
fn snapshot_counts_pods() {
    let mix = service_mix(10.0);
    let mut sim = Simulation::new(SimulationConfig::default(), small_cluster(2), &mix, 12);
    let snap = sim.snapshot();
    assert_eq!(snap.pods_running, 0);
    assert_eq!(snap.pods_pending, 2);
    assert_eq!(snap.nodes_ready, 2);
    bind_all(&mut sim);
    sim.run_until(SimTime::from_secs(10));
    let snap = sim.snapshot();
    assert_eq!(snap.pods_running, 2);
    assert_eq!(snap.pods_pending, 0);
    assert!(snap.allocated.cpu() > 0.0);
}
