//! Engine tests for the actuation and failure paths: in-place resizes of
//! batch tasks and HPC ranks, gang pauses on rank loss, preemption of
//! services, and window accounting after churn.

use evolve_sim::{ClusterConfig, NodeShape, Simulation, SimulationConfig};
use evolve_types::{NodeId, PodId, ResourceVec, SimDuration, SimTime};
use evolve_workload::{
    BatchJobSpec, HpcJobSpec, LoadSpec, PloSpec, RequestClass, ServiceSpec, StageSpec, WorkloadMix,
};

fn cluster(nodes: usize) -> ClusterConfig {
    ClusterConfig::uniform(
        nodes,
        NodeShape { capacity: ResourceVec::new(16_000.0, 65_536.0, 500.0, 1_250.0) },
    )
}

fn bind_all(sim: &mut Simulation) -> usize {
    let pending: Vec<PodId> = sim.cluster().pending_pods().map(|p| p.id).collect();
    let mut bound = 0;
    for pod in pending {
        let request = sim.cluster().pod(pod).unwrap().spec.request;
        let target =
            sim.cluster().nodes().iter().find(|n| n.can_fit(&request)).map(evolve_sim::Node::id);
        if let Some(node) = target {
            sim.bind_pod(pod, node).unwrap();
            bound += 1;
        }
    }
    bound
}

#[test]
fn hpc_resize_speeds_up_iterations() {
    // 40 iterations × 4000 mcore·s at 2000 mcore → 2 s each ≈ 80 s total.
    let job = HpcJobSpec::new(
        "solver",
        2,
        40,
        ResourceVec::new(4_000.0, 512.0, 0.0, 0.0),
        ResourceVec::new(2_000.0, 1_024.0, 10.0, 10.0),
        SimDuration::from_mins(10),
    );
    let mix = WorkloadMix::new().with_hpc_job(job.clone(), SimTime::ZERO);
    // Unmanaged run.
    let mut slow = Simulation::new(SimulationConfig::default(), cluster(2), &mix, 5);
    slow.run_until(SimTime::from_secs(1));
    bind_all(&mut slow);
    slow.run_until(SimTime::from_secs(5 * 60));
    let slow_makespan = slow.job_outcomes()[0].makespan_s().expect("finished");

    // Managed run: double the rank allocation shortly after start. Spread
    // the ranks over both nodes so the in-place resize has headroom.
    let mix2 = WorkloadMix::new().with_hpc_job(job, SimTime::ZERO);
    let mut fast = Simulation::new(SimulationConfig::default(), cluster(2), &mix2, 5);
    fast.run_until(SimTime::from_secs(1));
    let pending: Vec<PodId> = fast.cluster().pending_pods().map(|p| p.id).collect();
    for (i, pod) in pending.into_iter().enumerate() {
        fast.bind_pod(pod, NodeId::new(i as u32)).unwrap();
    }
    fast.run_until(SimTime::from_secs(10));
    let app = fast.apps()[0].id;
    let failures =
        fast.set_hpc_target(app, ResourceVec::new(8_000.0, 1_024.0, 10.0, 10.0)).unwrap();
    assert_eq!(failures, 0);
    fast.run_until(SimTime::from_secs(5 * 60));
    let fast_makespan = fast.job_outcomes()[0].makespan_s().expect("finished");
    assert!(
        fast_makespan < 0.5 * slow_makespan,
        "resized {fast_makespan:.1}s vs unmanaged {slow_makespan:.1}s"
    );
}

#[test]
fn hpc_rank_loss_pauses_gang_and_recovers() {
    let job = HpcJobSpec::new(
        "solver",
        3,
        50,
        ResourceVec::new(2_000.0, 512.0, 0.0, 0.0),
        ResourceVec::new(2_000.0, 1_024.0, 10.0, 10.0),
        SimDuration::from_mins(10),
    );
    let mix = WorkloadMix::new().with_hpc_job(job, SimTime::ZERO);
    let mut sim = Simulation::new(SimulationConfig::default(), cluster(2), &mix, 6);
    sim.run_until(SimTime::from_secs(1));
    bind_all(&mut sim);
    sim.run_until(SimTime::from_secs(20));
    let app = sim.apps()[0].id;
    let before = sim.take_window(app).unwrap();
    let progressed = before.progress.unwrap();
    assert!(progressed > 0.0, "gang should be iterating");
    // Preempt one rank: the gang must stall.
    let rank = sim.cluster().pods().find(|p| p.is_running()).map(|p| p.id).expect("running rank");
    sim.preempt_pod(rank).unwrap();
    sim.run_until(SimTime::from_secs(40));
    let stalled = sim.take_window(app).unwrap();
    assert_eq!(
        stalled.progress.unwrap(),
        progressed,
        "no iteration may complete with a missing rank"
    );
    // The lost rank requeued as pending; rebind and the job finishes.
    assert_eq!(bind_all(&mut sim), 1);
    sim.run_until(SimTime::from_secs(5 * 60));
    assert!(sim.job_outcomes()[0].finished.is_some());
    sim.cluster().check_invariants();
}

#[test]
fn batch_resize_applies_to_running_and_future_tasks() {
    let job = BatchJobSpec::new(
        "b",
        vec![StageSpec::new(4, ResourceVec::new(30_000.0, 512.0, 0.0, 0.0), 100)],
        PloSpec::Deadline { deadline: SimDuration::from_mins(10) },
        ResourceVec::new(1_000.0, 1_024.0, 10.0, 10.0),
        2, // two executors: two waves of two tasks
    );
    let mix = WorkloadMix::new().with_batch_job(job, SimTime::ZERO);
    let mut sim = Simulation::new(SimulationConfig::default(), cluster(2), &mix, 7);
    sim.run_until(SimTime::from_secs(1));
    bind_all(&mut sim);
    sim.run_until(SimTime::from_secs(10));
    let app = sim.apps()[0].id;
    // 30 s per task at 1000 mcore; quadruple → 7.5 s.
    let failures =
        sim.set_batch_target(app, ResourceVec::new(4_000.0, 1_024.0, 10.0, 10.0)).unwrap();
    assert_eq!(failures, 0);
    for step in 3..40u64 {
        sim.run_until(SimTime::from_secs(step * 5));
        bind_all(&mut sim);
    }
    let outcome = sim.job_outcomes()[0];
    let makespan = outcome.makespan_s().expect("finished");
    // Unresized: ~60 s of work in two waves; resized mid-first-wave it
    // must land well under that.
    assert!(makespan < 50.0, "makespan {makespan}");
}

#[test]
fn service_preemption_is_replaced_by_deployment() {
    let class = RequestClass::new(
        "rq",
        ResourceVec::new(20.0, 2.0, 0.0, 0.0),
        0.0,
        SimDuration::from_secs(10),
    );
    let mix = WorkloadMix::new().with_service(
        ServiceSpec::new(
            "svc",
            PloSpec::LatencyP99 { target_ms: 100.0 },
            class,
            ResourceVec::new(1_000.0, 1_024.0, 10.0, 10.0),
        )
        .with_initial_replicas(2),
        LoadSpec::Constant { rate: 20.0 },
    );
    let mut sim = Simulation::new(SimulationConfig::default(), cluster(2), &mix, 8);
    bind_all(&mut sim);
    sim.run_until(SimTime::from_secs(10));
    let victim =
        sim.cluster().pods().find(|p| p.is_running()).map(|p| p.id).expect("running replica");
    sim.preempt_pod(victim).unwrap();
    // A replacement pending pod must exist immediately.
    assert_eq!(sim.cluster().pending_pods().count(), 1);
    bind_all(&mut sim);
    sim.run_until(SimTime::from_secs(30));
    let w = sim.take_window(sim.apps()[0].id).unwrap();
    assert_eq!(w.running_replicas, 2);
    // The killed replica's in-flight requests count as drops.
    assert!(w.timeouts <= 5, "only the in-flight requests die: {}", w.timeouts);
    sim.cluster().check_invariants();
}

#[test]
fn window_alloc_per_replica_reflects_resizes() {
    let class = RequestClass::new(
        "rq",
        ResourceVec::new(10.0, 2.0, 0.0, 0.0),
        0.0,
        SimDuration::from_secs(10),
    );
    let mix = WorkloadMix::new().with_service(
        ServiceSpec::new(
            "svc",
            PloSpec::LatencyP99 { target_ms: 100.0 },
            class,
            ResourceVec::new(1_000.0, 1_024.0, 10.0, 10.0),
        )
        .with_initial_replicas(3),
        LoadSpec::Constant { rate: 30.0 },
    );
    let mut sim = Simulation::new(SimulationConfig::default(), cluster(2), &mix, 9);
    bind_all(&mut sim);
    sim.run_until(SimTime::from_secs(10));
    let app = sim.apps()[0].id;
    sim.take_window(app).unwrap();
    sim.set_service_target(app, 3, ResourceVec::new(2_500.0, 2_048.0, 20.0, 20.0)).unwrap();
    sim.run_until(SimTime::from_secs(20));
    let w = sim.take_window(app).unwrap();
    assert!((w.alloc_per_replica.cpu() - 2_500.0).abs() < 1.0);
    assert!((w.alloc.cpu() - 7_500.0).abs() < 1.0);
}

#[test]
fn events_processed_increases_monotonically() {
    let class = RequestClass::new(
        "rq",
        ResourceVec::new(10.0, 2.0, 0.0, 0.0),
        0.5,
        SimDuration::from_secs(10),
    );
    let mix = WorkloadMix::new().with_service(
        ServiceSpec::new(
            "svc",
            PloSpec::LatencyP99 { target_ms: 100.0 },
            class,
            ResourceVec::new(2_000.0, 1_024.0, 10.0, 10.0),
        ),
        LoadSpec::Constant { rate: 100.0 },
    );
    let mut sim = Simulation::new(SimulationConfig::default(), cluster(1), &mix, 10);
    bind_all(&mut sim);
    let mut last = 0;
    for step in 1..=5u64 {
        sim.run_until(SimTime::from_secs(step * 5));
        let now = sim.events_processed();
        assert!(now > last, "no progress in step {step}");
        last = now;
    }
}
