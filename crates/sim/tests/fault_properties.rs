//! Property tests for the fault-injection subsystem: randomized
//! `FaultPlan`s (scheduled and stochastic) realized through the
//! `FaultInjector` and interleaved with scheduling and resize traffic
//! must never corrupt cluster accounting, leave pods on unready nodes,
//! or panic.

use evolve_sim::{
    ClusterConfig, FaultInjector, FaultPlan, NodeShape, Simulation, SimulationConfig,
    StochasticFaults,
};
use evolve_types::{NodeId, PodId, ResourceVec, SimDuration, SimTime};
use evolve_workload::{HpcJobSpec, LoadSpec, PloSpec, RequestClass, ServiceSpec, WorkloadMix};
use proptest::prelude::*;

const NODES: usize = 4;
const HORIZON_SECS: u64 = 300;

/// One scheduled fault, in generator-friendly form.
#[derive(Debug, Clone, Copy)]
enum PlannedFault {
    Crash { node: u8, at: u64, downtime: Option<u64> },
    Blackout { at: u64, duration: u64 },
    Noise { at: u64, duration: u64, cv: f64 },
    Stall { at: u64, duration: u64 },
    ActDrop { at: u64, duration: u64 },
    ActDelay { at: u64, duration: u64, lag: u64 },
    ActPartial { at: u64, duration: u64, fraction: f64 },
    Flap { node: u8, at: u64, cycles: u8, period: u64 },
}

fn arb_fault() -> impl Strategy<Value = PlannedFault> {
    prop_oneof![
        (0u8..NODES as u8, 1u64..HORIZON_SECS, 5u64..120, any::<bool>()).prop_map(
            |(node, at, downtime, permanent)| PlannedFault::Crash {
                node,
                at,
                downtime: (!permanent).then_some(downtime),
            }
        ),
        (1u64..HORIZON_SECS, 5u64..90)
            .prop_map(|(at, duration)| PlannedFault::Blackout { at, duration }),
        (1u64..HORIZON_SECS, 5u64..90, 0.05f64..0.8)
            .prop_map(|(at, duration, cv)| PlannedFault::Noise { at, duration, cv }),
        (1u64..HORIZON_SECS, 5u64..60)
            .prop_map(|(at, duration)| PlannedFault::Stall { at, duration }),
        (1u64..HORIZON_SECS, 5u64..60)
            .prop_map(|(at, duration)| PlannedFault::ActDrop { at, duration }),
        (1u64..HORIZON_SECS, 5u64..60, 1u64..30)
            .prop_map(|(at, duration, lag)| PlannedFault::ActDelay { at, duration, lag }),
        (1u64..HORIZON_SECS, 5u64..60, 0.1f64..1.0).prop_map(|(at, duration, fraction)| {
            PlannedFault::ActPartial { at, duration, fraction }
        }),
        (0u8..NODES as u8, 1u64..HORIZON_SECS, 1u8..5, 4u64..30)
            .prop_map(|(node, at, cycles, period)| PlannedFault::Flap { node, at, cycles, period }),
    ]
}

fn build_plan(faults: &[PlannedFault], stochastic: bool) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for f in faults {
        plan = match *f {
            PlannedFault::Crash { node, at, downtime } => plan.with_node_crash(
                NodeId::new(u32::from(node)),
                SimTime::from_secs(at),
                downtime.map(SimDuration::from_secs),
            ),
            PlannedFault::Blackout { at, duration } => {
                plan.with_scrape_blackout(SimTime::from_secs(at), SimDuration::from_secs(duration))
            }
            PlannedFault::Noise { at, duration, cv } => {
                plan.with_metric_noise(SimTime::from_secs(at), SimDuration::from_secs(duration), cv)
            }
            PlannedFault::Stall { at, duration } => {
                plan.with_control_stall(SimTime::from_secs(at), SimDuration::from_secs(duration))
            }
            PlannedFault::ActDrop { at, duration } => {
                plan.with_actuation_drop(SimTime::from_secs(at), SimDuration::from_secs(duration))
            }
            PlannedFault::ActDelay { at, duration, lag } => plan.with_actuation_delay(
                SimTime::from_secs(at),
                SimDuration::from_secs(duration),
                SimDuration::from_secs(lag),
            ),
            PlannedFault::ActPartial { at, duration, fraction } => plan.with_actuation_partial(
                SimTime::from_secs(at),
                SimDuration::from_secs(duration),
                fraction,
            ),
            PlannedFault::Flap { node, at, cycles, period } => plan.with_node_flap(
                NodeId::new(u32::from(node)),
                SimTime::from_secs(at),
                u32::from(cycles),
                SimDuration::from_secs(period),
            ),
        };
    }
    if stochastic {
        plan = plan.with_stochastic(StochasticFaults {
            node_crashes_per_hour: 30.0,
            mean_downtime: SimDuration::from_secs(60),
            blackouts_per_hour: 40.0,
            stalls_per_hour: 20.0,
            actuation_drops_per_hour: 25.0,
            ..StochasticFaults::default()
        });
    }
    plan
}

/// A service plus a 2-rank HPC gang, so node crashes hit both lone
/// replicas and partial gangs.
fn workload() -> WorkloadMix {
    let class = RequestClass::new(
        "rq",
        ResourceVec::new(15.0, 4.0, 0.5, 0.5),
        0.6,
        SimDuration::from_secs(8),
    );
    WorkloadMix::new()
        .with_service(
            ServiceSpec::new(
                "svc",
                PloSpec::LatencyP99 { target_ms: 100.0 },
                class,
                ResourceVec::new(1_500.0, 1_536.0, 20.0, 20.0),
            )
            .with_initial_replicas(2),
            LoadSpec::Constant { rate: 40.0 },
        )
        .with_hpc_job(
            HpcJobSpec::new(
                "h",
                2,
                20,
                ResourceVec::new(2_000.0, 512.0, 5.0, 10.0),
                ResourceVec::new(2_000.0, 1_024.0, 10.0, 20.0),
                SimDuration::from_secs(600),
            ),
            SimTime::from_secs(10),
        )
}

fn bind_first_fit(sim: &mut Simulation) {
    let pending: Vec<PodId> = sim.cluster().pending_pods().map(|p| p.id).collect();
    for pod in pending {
        let request = sim.cluster().pod(pod).expect("pending pod").spec.request;
        let node =
            sim.cluster().nodes().iter().find(|n| n.can_fit(&request)).map(evolve_sim::Node::id);
        if let Some(node) = node {
            sim.bind_pod(pod, node).expect("first-fit binding");
        }
    }
}

/// No pod may sit on (or hold capacity of) a node that is not ready.
fn assert_no_pods_on_unready_nodes(sim: &Simulation) {
    for node in sim.cluster().nodes() {
        if !node.is_ready() {
            assert!(
                node.pods().is_empty(),
                "unready node {:?} still hosts pods {:?}",
                node.id(),
                node.pods()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn random_fault_plans_preserve_invariants(
        seed in 0u64..1_000,
        faults in prop::collection::vec(arb_fault(), 0..10),
        stochastic in any::<bool>(),
    ) {
        let plan = build_plan(&faults, stochastic);
        let mut sim = Simulation::new(
            SimulationConfig::default(),
            ClusterConfig::uniform(NODES, NodeShape::default()),
            &workload(),
            seed,
        );
        let service = sim.apps()[0].id;
        let mut injector = FaultInjector::new(
            &plan,
            seed,
            SimDuration::from_secs(HORIZON_SECS),
            NODES,
        );
        injector.arm(&mut sim);

        // A 5 s control loop interleaving scheduling and resize traffic
        // with the armed fault schedule.
        let mut now = SimTime::ZERO;
        let mut tick = 0u64;
        while now < SimTime::from_secs(HORIZON_SECS) {
            now += SimDuration::from_secs(5);
            tick += 1;
            sim.run_until(now);
            sim.cluster().check_invariants();
            assert_no_pods_on_unready_nodes(&sim);
            if injector.controller_stalled(now) {
                continue; // stalled control plane: no decisions this tick
            }
            bind_first_fit(&mut sim);
            if injector.scrape_available(service, now) {
                if let Ok(mut w) = sim.take_window(service) {
                    injector.distort_window(service, &mut w);
                    prop_assert!(w.usage.is_valid(), "distorted usage invalid: {:?}", w.usage);
                    prop_assert!(w.alloc.is_valid(), "distorted alloc invalid: {:?}", w.alloc);
                }
            }
            // Periodic resize/scale pressure so crashes interleave with
            // actuation, not just passive load.
            if tick.is_multiple_of(3) {
                let replicas = (tick % 4) as u32 + 1;
                let cpu = 800.0 + (tick % 5) as f64 * 150.0;
                let _ = sim.set_service_target(
                    service,
                    replicas,
                    ResourceVec::new(cpu, 1_536.0, 20.0, 20.0),
                );
            }
            sim.cluster().check_invariants();
            assert_no_pods_on_unready_nodes(&sim);
        }
        // Quiet drain: recoveries past the horizon may still be queued.
        sim.run_until(now + SimDuration::from_secs(180));
        sim.cluster().check_invariants();
        assert_no_pods_on_unready_nodes(&sim);
    }

    /// The injector's realization is a pure function of (plan, seed):
    /// two injectors built from the same inputs agree on every query.
    #[test]
    fn injector_realization_is_deterministic(
        seed in 0u64..1_000,
        faults in prop::collection::vec(arb_fault(), 0..6),
    ) {
        let plan = build_plan(&faults, true);
        let horizon = SimDuration::from_secs(HORIZON_SECS);
        let a = FaultInjector::new(&plan, seed, horizon, NODES);
        let b = FaultInjector::new(&plan, seed, horizon, NODES);
        prop_assert_eq!(a.crash_schedule(), b.crash_schedule());
        prop_assert_eq!(a.timeline(), b.timeline());
        let app = evolve_types::AppId::new(0);
        for s in (0..HORIZON_SECS).step_by(5) {
            let t = SimTime::from_secs(s);
            prop_assert_eq!(a.scrape_available(app, t), b.scrape_available(app, t));
            prop_assert_eq!(a.controller_stalled(t), b.controller_stalled(t));
            prop_assert_eq!(a.noise_cv(app, t), b.noise_cv(app, t));
            prop_assert_eq!(a.actuation_dropped(t), b.actuation_dropped(t));
            prop_assert_eq!(a.actuation_lag(t), b.actuation_lag(t));
            prop_assert_eq!(a.actuation_fraction(t), b.actuation_fraction(t));
            prop_assert_eq!(a.active_count(t), b.active_count(t));
        }
    }
}
