//! Shared helpers for the experiment binaries (one per paper table or
//! figure; see EXPERIMENTS.md for the index) and the Criterion benches.

use std::path::PathBuf;

use evolve_core::{ReplicatedOutcome, RunOutcome, Summary};
use evolve_types::SimTime;

/// Where experiment CSVs land (`experiments_out/` under the workspace).
#[must_use]
pub fn output_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    // When invoked via `cargo run -p evolve-bench`, cwd is the workspace
    // root already; fall back gracefully otherwise.
    dir.push("experiments_out");
    dir
}

/// The first seed every experiment binary replicates from.
pub const BASE_SEED: u64 = 42;

/// How many seeds to replicate over: the first CLI argument if it parses
/// as a positive integer, else the `EVOLVE_SEEDS` environment variable,
/// else `default`.
#[must_use]
pub fn cli_seed_count(default: usize) -> usize {
    let parse = |s: &str| s.trim().parse::<usize>().ok().filter(|n| *n > 0);
    std::env::args()
        .nth(1)
        .as_deref()
        .and_then(parse)
        .or_else(|| std::env::var("EVOLVE_SEEDS").ok().as_deref().and_then(parse))
        .unwrap_or(default)
}

/// `count` consecutive seeds starting at [`BASE_SEED`].
#[must_use]
pub fn seed_list(count: usize) -> Vec<u64> {
    (0..count as u64).map(|i| BASE_SEED + i).collect()
}

/// Whether the `EVOLVE_SMOKE` environment variable requests a shortened
/// CI smoke run. The *value* matters, not mere presence: `0`, `false`,
/// `off`, `no` and the empty string disable smoke mode, anything else
/// enables it (checking only `is_ok()` made `EVOLVE_SMOKE=0` enable
/// smoke mode — exactly backwards).
#[must_use]
pub fn smoke_mode() -> bool {
    match std::env::var("EVOLVE_SMOKE") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v.is_empty() || v == "0" || v == "false" || v == "off" || v == "no")
        }
        Err(_) => false,
    }
}

/// Settling analysis of a latency series after a disturbance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Settling {
    /// Seconds from the disturbance until the signal stayed below the
    /// target for `hold` consecutive samples; `None` when it never
    /// settled.
    pub settle_secs: Option<f64>,
    /// Worst excursion above the target after the disturbance (relative,
    /// e.g. 1.5 = 150% above target).
    pub overshoot: f64,
    /// Number of samples inspected.
    pub samples: usize,
}

/// Computes settling time and overshoot of `(seconds, value)` samples
/// after `disturbance_at`, against an upper-bound `target`.
///
/// # Panics
///
/// Panics when `hold` is zero.
#[must_use]
pub fn settling_analysis(
    points: &[(f64, f64)],
    disturbance_at: SimTime,
    target: f64,
    hold: usize,
) -> Settling {
    assert!(hold > 0, "hold must be positive");
    let t0 = disturbance_at.as_secs_f64();
    let after: Vec<(f64, f64)> = points.iter().copied().filter(|(t, _)| *t >= t0).collect();
    let mut overshoot: f64 = 0.0;
    let mut settle_secs = None;
    let mut streak = 0usize;
    for (t, v) in &after {
        overshoot = overshoot.max((v - target) / target);
        if *v <= target {
            streak += 1;
            if streak >= hold && settle_secs.is_none() {
                settle_secs = Some(t - t0);
            }
        } else {
            streak = 0;
            // A later excursion above target invalidates an earlier
            // "settled" verdict only if we had not yet held long enough;
            // classical settling time keeps the first sustained entry.
        }
    }
    Settling { settle_secs, overshoot: overshoot.max(0.0), samples: after.len() }
}

/// One row of the headline comparison, extracted from a run.
#[must_use]
pub fn headline_row(outcome: &RunOutcome) -> Vec<String> {
    let (hits, total) = outcome.deadline_hits();
    vec![
        outcome.manager.clone(),
        outcome.total_windows().to_string(),
        outcome.total_violations().to_string(),
        format!("{:.3}", outcome.total_violation_rate()),
        format!("{:.3}", outcome.utilization.mean_allocated()),
        format!("{:.3}", outcome.utilization.mean_used()),
        format!("{hits}/{total}"),
        outcome.preemptions.to_string(),
    ]
}

/// The headline table's column names (matches [`headline_row`] and
/// [`headline_summary_row`]).
#[must_use]
pub fn headline_headers() -> Vec<String> {
    [
        "policy",
        "windows",
        "violations",
        "viol rate",
        "alloc share",
        "used share",
        "deadlines",
        "preempt",
    ]
    .map(String::from)
    .to_vec()
}

/// One row of the headline comparison aggregated across seeds
/// (mean ± 95 % CI where the spread is meaningful).
#[must_use]
pub fn headline_summary_row(rep: &ReplicatedOutcome) -> Vec<String> {
    vec![
        rep.manager().to_string(),
        format!("{:.0}", rep.summarize(|r| r.total_windows() as f64).mean),
        rep.summarize(|r| r.total_violations() as f64).display(1),
        rep.violation_rate().display(3),
        rep.alloc_share().display(3),
        rep.used_share().display(3),
        rep.deadline_hit_rate().display(2),
        rep.preemptions().display(1),
    ]
}

/// Settling statistics across replicated runs.
#[derive(Debug, Clone)]
pub struct ReplicatedSettling {
    /// Settle-time summary over the runs that settled (`None` when none
    /// did).
    pub settle: Option<Summary>,
    /// How many runs settled.
    pub settled_runs: usize,
    /// Total runs analysed.
    pub runs: usize,
    /// Overshoot summary over all runs.
    pub overshoot: Summary,
}

impl ReplicatedSettling {
    /// Settle time as `mean ± ci (settled/total)`, or `never (0/n)`.
    #[must_use]
    pub fn settle_display(&self) -> String {
        match &self.settle {
            Some(s) => format!("{} ({}/{})", s.display(0), self.settled_runs, self.runs),
            None => format!("never (0/{})", self.runs),
        }
    }

    /// Mean settle seconds for CSV export (−1 when no run settled).
    #[must_use]
    pub fn settle_mean_or_neg(&self) -> f64 {
        self.settle.as_ref().map_or(-1.0, |s| s.mean)
    }
}

/// Runs [`settling_analysis`] on the named series of every replicated
/// run and aggregates: settle time over the runs that settled, overshoot
/// over all runs.
#[must_use]
pub fn replicated_settling(
    rep: &ReplicatedOutcome,
    series: &str,
    disturbance_at: SimTime,
    target: f64,
    hold: usize,
) -> ReplicatedSettling {
    let per_run: Vec<Settling> = rep
        .runs
        .iter()
        .map(|r| {
            let points = r.registry.series(series).map(|s| s.to_points()).unwrap_or_default();
            settling_analysis(&points, disturbance_at, target, hold)
        })
        .collect();
    let settled: Vec<f64> = per_run.iter().filter_map(|s| s.settle_secs).collect();
    let overshoots: Vec<f64> = per_run.iter().map(|s| s.overshoot).collect();
    ReplicatedSettling {
        settle: if settled.is_empty() { None } else { Some(Summary::from_samples(&settled)) },
        settled_runs: settled.len(),
        runs: per_run.len(),
        overshoot: Summary::from_samples(&overshoots),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settling_detects_recovery() {
        let pts = vec![
            (0.0, 50.0),
            (10.0, 300.0), // disturbance at t=10
            (20.0, 250.0),
            (30.0, 120.0),
            (40.0, 90.0),
            (50.0, 80.0),
            (60.0, 85.0),
        ];
        let s = settling_analysis(&pts, SimTime::from_secs(10), 100.0, 2);
        assert_eq!(s.settle_secs, Some(40.0));
        assert!((s.overshoot - 2.0).abs() < 1e-9);
        assert_eq!(s.samples, 6);
    }

    #[test]
    fn settling_none_when_never_recovers() {
        let pts = vec![(0.0, 200.0), (10.0, 220.0), (20.0, 210.0)];
        let s = settling_analysis(&pts, SimTime::ZERO, 100.0, 3);
        assert_eq!(s.settle_secs, None);
        assert!(s.overshoot > 1.0);
    }

    #[test]
    fn settling_requires_hold() {
        // One good sample between violations must not count as settled.
        let pts =
            vec![(0.0, 150.0), (1.0, 90.0), (2.0, 150.0), (3.0, 90.0), (4.0, 80.0), (5.0, 70.0)];
        let s = settling_analysis(&pts, SimTime::ZERO, 100.0, 3);
        assert_eq!(s.settle_secs, Some(5.0));
    }

    #[test]
    fn headers_match_row_width() {
        assert_eq!(headline_headers().len(), 8);
    }
}
