//! Shared helpers for the experiment binaries (one per paper table or
//! figure; see EXPERIMENTS.md for the index) and the Criterion benches.

use std::path::PathBuf;

use evolve_core::{ReplicatedOutcome, RunOutcome, Summary};
use evolve_types::SimTime;
use evolve_workload::ScenarioSpec;

/// The first seed every experiment binary replicates from.
pub const BASE_SEED: u64 = 42;

/// The one CLI/environment surface every experiment binary shares.
///
/// Replaces the former scattered helpers (`cli_seed_count`, `seed_list`,
/// `smoke_mode`, `output_dir`) with a single parser:
///
/// * a bare positive-integer argument or `--seeds N` sets the replication
///   count (falling back to `EVOLVE_SEEDS`, then the binary's default);
/// * `--scenario <file>` loads a declarative `scenarios/*.toml` spec
///   through [`ScenarioSpec::from_file`] — a bad file exits with status 2
///   and the typed error on stderr;
/// * `--out <dir>` (or `EVOLVE_OUT`) overrides where CSV/HTML artifacts
///   land (default `experiments_out/` under the working directory);
/// * `EVOLVE_SMOKE` requests a shortened CI smoke run — the *value*
///   matters, not mere presence: `0`, `false`, `off`, `no` and the empty
///   string disable it;
/// * anything unrecognized is passed through in [`BenchArgs::rest`] for
///   binary-specific flags (`--replay`, series names, …).
#[derive(Debug)]
pub struct BenchArgs {
    /// Seeds to replicate over: `count` consecutive seeds from
    /// [`BASE_SEED`].
    pub seeds: Vec<u64>,
    /// Shortened CI smoke run requested via `EVOLVE_SMOKE`.
    pub smoke: bool,
    /// Declarative scenario loaded from `--scenario <file>`, if given.
    pub scenario: Option<ScenarioSpec>,
    /// The path `--scenario` was loaded from (for labels/logs).
    pub scenario_path: Option<PathBuf>,
    /// Where experiment artifacts land.
    pub out_dir: PathBuf,
    /// Unrecognized arguments, in order.
    pub rest: Vec<String>,
    /// The replication count given explicitly (CLI or `EVOLVE_SEEDS`),
    /// before the binary's default applied. Binaries that reuse the
    /// positional count for something else (fuzz budget, iterations)
    /// read this.
    pub explicit_count: Option<usize>,
}

impl BenchArgs {
    /// Parses the process arguments and environment.
    ///
    /// Exits with status 2 (usage error) on a malformed flag or an
    /// invalid `--scenario` file.
    #[must_use]
    pub fn parse(default_seeds: usize) -> BenchArgs {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match BenchArgs::try_parse(&argv, default_seeds) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// The fallible core of [`BenchArgs::parse`], separated for tests.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a flag is malformed or the
    /// `--scenario` file fails to load/validate.
    pub fn try_parse(argv: &[String], default_seeds: usize) -> Result<BenchArgs, String> {
        let parse_count = |s: &str| {
            s.trim()
                .parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("`{s}` is not a positive integer"))
        };
        let mut explicit_count = None;
        let mut scenario_path: Option<PathBuf> = None;
        let mut out_flag: Option<PathBuf> = None;
        let mut rest = Vec::new();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
                _ => (arg.as_str(), None),
            };
            let mut value = |name: &str| -> Result<String, String> {
                match inline.clone() {
                    Some(v) => Ok(v),
                    None => it.next().cloned().ok_or_else(|| format!("{name} requires a value")),
                }
            };
            match flag {
                "--seeds" => explicit_count = Some(parse_count(&value("--seeds")?)?),
                "--scenario" => scenario_path = Some(PathBuf::from(value("--scenario")?)),
                "--out" => out_flag = Some(PathBuf::from(value("--out")?)),
                _ => {
                    // Back-compat: a bare positive integer is the
                    // replication count (first one wins).
                    if explicit_count.is_none() && !arg.starts_with('-') {
                        if let Ok(n) = parse_count(arg) {
                            explicit_count = Some(n);
                            continue;
                        }
                    }
                    rest.push(arg.clone());
                }
            }
        }
        let env_count = std::env::var("EVOLVE_SEEDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok().filter(|n| *n > 0));
        let explicit_count = explicit_count.or(env_count);
        let count = explicit_count.unwrap_or(default_seeds);
        let scenario = match &scenario_path {
            Some(path) => Some(ScenarioSpec::from_file(path).map_err(|err| err.to_string())?),
            None => None,
        };
        let out_dir = out_flag
            .or_else(|| {
                std::env::var("EVOLVE_OUT").ok().filter(|v| !v.trim().is_empty()).map(PathBuf::from)
            })
            .unwrap_or_else(|| {
                // When invoked via `cargo run -p evolve-bench`, cwd is the
                // workspace root already; fall back gracefully otherwise.
                let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
                dir.push("experiments_out");
                dir
            });
        Ok(BenchArgs {
            seeds: (0..count as u64).map(|i| BASE_SEED + i).collect(),
            smoke: smoke_env(),
            scenario,
            scenario_path,
            out_dir,
            rest,
            explicit_count,
        })
    }

    /// Number of seeds to replicate over.
    #[must_use]
    pub fn seed_count(&self) -> usize {
        self.seeds.len()
    }

    /// The loaded `--scenario` spec, if any.
    #[must_use]
    pub fn scenario(&self) -> Option<&ScenarioSpec> {
        self.scenario.as_ref()
    }
}

/// `EVOLVE_SMOKE` semantics shared by [`BenchArgs`] and the Criterion
/// benches: the value matters, not mere presence.
fn smoke_env() -> bool {
    match std::env::var("EVOLVE_SMOKE") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v.is_empty() || v == "0" || v == "false" || v == "off" || v == "no")
        }
        Err(_) => false,
    }
}

/// Settling analysis of a latency series after a disturbance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Settling {
    /// Seconds from the disturbance until the signal stayed below the
    /// target for `hold` consecutive samples; `None` when it never
    /// settled.
    pub settle_secs: Option<f64>,
    /// Worst excursion above the target after the disturbance (relative,
    /// e.g. 1.5 = 150% above target).
    pub overshoot: f64,
    /// Number of samples inspected.
    pub samples: usize,
}

/// Computes settling time and overshoot of `(seconds, value)` samples
/// after `disturbance_at`, against an upper-bound `target`.
///
/// # Panics
///
/// Panics when `hold` is zero.
#[must_use]
pub fn settling_analysis(
    points: &[(f64, f64)],
    disturbance_at: SimTime,
    target: f64,
    hold: usize,
) -> Settling {
    assert!(hold > 0, "hold must be positive");
    let t0 = disturbance_at.as_secs_f64();
    let after: Vec<(f64, f64)> = points.iter().copied().filter(|(t, _)| *t >= t0).collect();
    let mut overshoot: f64 = 0.0;
    let mut settle_secs = None;
    let mut streak = 0usize;
    for (t, v) in &after {
        overshoot = overshoot.max((v - target) / target);
        if *v <= target {
            streak += 1;
            if streak >= hold && settle_secs.is_none() {
                settle_secs = Some(t - t0);
            }
        } else {
            streak = 0;
            // A later excursion above target invalidates an earlier
            // "settled" verdict only if we had not yet held long enough;
            // classical settling time keeps the first sustained entry.
        }
    }
    Settling { settle_secs, overshoot: overshoot.max(0.0), samples: after.len() }
}

/// One row of the headline comparison, extracted from a run.
#[must_use]
pub fn headline_row(outcome: &RunOutcome) -> Vec<String> {
    let (hits, total) = outcome.deadline_hits();
    vec![
        outcome.manager.clone(),
        outcome.total_windows().to_string(),
        outcome.total_violations().to_string(),
        format!("{:.3}", outcome.total_violation_rate()),
        format!("{:.3}", outcome.utilization.mean_allocated()),
        format!("{:.3}", outcome.utilization.mean_used()),
        format!("{hits}/{total}"),
        outcome.preemptions.to_string(),
    ]
}

/// The headline table's column names (matches [`headline_row`] and
/// [`headline_summary_row`]).
#[must_use]
pub fn headline_headers() -> Vec<String> {
    [
        "policy",
        "windows",
        "violations",
        "viol rate",
        "alloc share",
        "used share",
        "deadlines",
        "preempt",
    ]
    .map(String::from)
    .to_vec()
}

/// One row of the headline comparison aggregated across seeds
/// (mean ± 95 % CI where the spread is meaningful).
#[must_use]
pub fn headline_summary_row(rep: &ReplicatedOutcome) -> Vec<String> {
    vec![
        rep.manager().to_string(),
        format!("{:.0}", rep.summarize(|r| r.total_windows() as f64).mean),
        rep.summarize(|r| r.total_violations() as f64).display(1),
        rep.violation_rate().display(3),
        rep.alloc_share().display(3),
        rep.used_share().display(3),
        rep.deadline_hit_rate().display(2),
        rep.preemptions().display(1),
    ]
}

/// Settling statistics across replicated runs.
#[derive(Debug, Clone)]
pub struct ReplicatedSettling {
    /// Settle-time summary over the runs that settled (`None` when none
    /// did).
    pub settle: Option<Summary>,
    /// How many runs settled.
    pub settled_runs: usize,
    /// Total runs analysed.
    pub runs: usize,
    /// Overshoot summary over all runs.
    pub overshoot: Summary,
}

impl ReplicatedSettling {
    /// Settle time as `mean ± ci (settled/total)`, or `never (0/n)`.
    #[must_use]
    pub fn settle_display(&self) -> String {
        match &self.settle {
            Some(s) => format!("{} ({}/{})", s.display(0), self.settled_runs, self.runs),
            None => format!("never (0/{})", self.runs),
        }
    }

    /// Mean settle seconds for CSV export (−1 when no run settled).
    #[must_use]
    pub fn settle_mean_or_neg(&self) -> f64 {
        self.settle.as_ref().map_or(-1.0, |s| s.mean)
    }
}

/// Runs [`settling_analysis`] on the named series of every replicated
/// run and aggregates: settle time over the runs that settled, overshoot
/// over all runs.
#[must_use]
pub fn replicated_settling(
    rep: &ReplicatedOutcome,
    series: &str,
    disturbance_at: SimTime,
    target: f64,
    hold: usize,
) -> ReplicatedSettling {
    let per_run: Vec<Settling> = rep
        .runs
        .iter()
        .map(|r| {
            let points = r.registry.series(series).map(|s| s.to_points()).unwrap_or_default();
            settling_analysis(&points, disturbance_at, target, hold)
        })
        .collect();
    let settled: Vec<f64> = per_run.iter().filter_map(|s| s.settle_secs).collect();
    let overshoots: Vec<f64> = per_run.iter().map(|s| s.overshoot).collect();
    ReplicatedSettling {
        settle: if settled.is_empty() { None } else { Some(Summary::from_samples(&settled)) },
        settled_runs: settled.len(),
        runs: per_run.len(),
        overshoot: Summary::from_samples(&overshoots),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settling_detects_recovery() {
        let pts = vec![
            (0.0, 50.0),
            (10.0, 300.0), // disturbance at t=10
            (20.0, 250.0),
            (30.0, 120.0),
            (40.0, 90.0),
            (50.0, 80.0),
            (60.0, 85.0),
        ];
        let s = settling_analysis(&pts, SimTime::from_secs(10), 100.0, 2);
        assert_eq!(s.settle_secs, Some(40.0));
        assert!((s.overshoot - 2.0).abs() < 1e-9);
        assert_eq!(s.samples, 6);
    }

    #[test]
    fn settling_none_when_never_recovers() {
        let pts = vec![(0.0, 200.0), (10.0, 220.0), (20.0, 210.0)];
        let s = settling_analysis(&pts, SimTime::ZERO, 100.0, 3);
        assert_eq!(s.settle_secs, None);
        assert!(s.overshoot > 1.0);
    }

    #[test]
    fn settling_requires_hold() {
        // One good sample between violations must not count as settled.
        let pts =
            vec![(0.0, 150.0), (1.0, 90.0), (2.0, 150.0), (3.0, 90.0), (4.0, 80.0), (5.0, 70.0)];
        let s = settling_analysis(&pts, SimTime::ZERO, 100.0, 3);
        assert_eq!(s.settle_secs, Some(5.0));
    }

    #[test]
    fn headers_match_row_width() {
        assert_eq!(headline_headers().len(), 8);
    }

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn bench_args_default_and_positional_count() {
        let a = BenchArgs::try_parse(&argv(&[]), 5).unwrap();
        assert_eq!(a.seeds, vec![42, 43, 44, 45, 46]);
        assert_eq!(a.explicit_count, None);
        let b = BenchArgs::try_parse(&argv(&["3"]), 5).unwrap();
        assert_eq!(b.seeds, vec![42, 43, 44]);
        assert_eq!(b.explicit_count, Some(3));
    }

    #[test]
    fn bench_args_flags_and_rest_passthrough() {
        let a = BenchArgs::try_parse(
            &argv(&["--seeds", "2", "--out", "/tmp/x", "--replay", "f.json"]),
            5,
        )
        .unwrap();
        assert_eq!(a.seed_count(), 2);
        assert_eq!(a.out_dir, std::path::Path::new("/tmp/x"));
        assert_eq!(a.rest, vec!["--replay", "f.json"]);
        let b = BenchArgs::try_parse(&argv(&["--seeds=4"]), 5).unwrap();
        assert_eq!(b.seed_count(), 4);
    }

    #[test]
    fn bench_args_rejects_bad_values() {
        assert!(BenchArgs::try_parse(&argv(&["--seeds", "zero"]), 5).is_err());
        assert!(BenchArgs::try_parse(&argv(&["--seeds"]), 5).is_err());
        assert!(BenchArgs::try_parse(&argv(&["--scenario", "/no/such/file.toml"]), 5).is_err());
    }

    #[test]
    fn bench_args_loads_scenario_file() {
        let dir = std::env::temp_dir().join("evolve_bench_args_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.toml");
        std::fs::write(
            &path,
            evolve_workload::ScenarioSpec::builtin("overload").unwrap().to_toml(),
        )
        .unwrap();
        let a = BenchArgs::try_parse(&argv(&["--scenario", path.to_str().unwrap()]), 5).unwrap();
        let spec = a.scenario().unwrap();
        assert_eq!(spec.name, "overload-1.00");
        assert_eq!(spec.cluster.nodes, 4);
        assert_eq!(a.scenario_path.as_deref(), Some(path.as_path()));
    }
}
