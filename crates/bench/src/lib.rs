//! Shared helpers for the experiment binaries (one per paper table or
//! figure; see EXPERIMENTS.md for the index) and the Criterion benches.

use std::path::PathBuf;

use evolve_core::RunOutcome;
use evolve_types::SimTime;

/// Where experiment CSVs land (`experiments_out/` under the workspace).
#[must_use]
pub fn output_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    // When invoked via `cargo run -p evolve-bench`, cwd is the workspace
    // root already; fall back gracefully otherwise.
    dir.push("experiments_out");
    dir
}

/// Settling analysis of a latency series after a disturbance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Settling {
    /// Seconds from the disturbance until the signal stayed below the
    /// target for `hold` consecutive samples; `None` when it never
    /// settled.
    pub settle_secs: Option<f64>,
    /// Worst excursion above the target after the disturbance (relative,
    /// e.g. 1.5 = 150% above target).
    pub overshoot: f64,
    /// Number of samples inspected.
    pub samples: usize,
}

/// Computes settling time and overshoot of `(seconds, value)` samples
/// after `disturbance_at`, against an upper-bound `target`.
///
/// # Panics
///
/// Panics when `hold` is zero.
#[must_use]
pub fn settling_analysis(
    points: &[(f64, f64)],
    disturbance_at: SimTime,
    target: f64,
    hold: usize,
) -> Settling {
    assert!(hold > 0, "hold must be positive");
    let t0 = disturbance_at.as_secs_f64();
    let after: Vec<(f64, f64)> = points.iter().copied().filter(|(t, _)| *t >= t0).collect();
    let mut overshoot: f64 = 0.0;
    let mut settle_secs = None;
    let mut streak = 0usize;
    for (t, v) in &after {
        overshoot = overshoot.max((v - target) / target);
        if *v <= target {
            streak += 1;
            if streak >= hold && settle_secs.is_none() {
                settle_secs = Some(t - t0);
            }
        } else {
            streak = 0;
            // A later excursion above target invalidates an earlier
            // "settled" verdict only if we had not yet held long enough;
            // classical settling time keeps the first sustained entry.
        }
    }
    Settling { settle_secs, overshoot: overshoot.max(0.0), samples: after.len() }
}

/// One row of the headline comparison, extracted from a run.
#[must_use]
pub fn headline_row(outcome: &RunOutcome) -> Vec<String> {
    let (hits, total) = outcome.deadline_hits();
    vec![
        outcome.manager.clone(),
        outcome.total_windows().to_string(),
        outcome.total_violations().to_string(),
        format!("{:.3}", outcome.total_violation_rate()),
        format!("{:.3}", outcome.utilization.mean_allocated()),
        format!("{:.3}", outcome.utilization.mean_used()),
        format!("{hits}/{total}"),
        outcome.preemptions.to_string(),
    ]
}

/// The headline table's column names (matches [`headline_row`]).
#[must_use]
pub fn headline_headers() -> Vec<String> {
    ["policy", "windows", "violations", "viol rate", "alloc share", "used share", "deadlines", "preempt"]
        .map(String::from)
        .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settling_detects_recovery() {
        let pts = vec![
            (0.0, 50.0),
            (10.0, 300.0), // disturbance at t=10
            (20.0, 250.0),
            (30.0, 120.0),
            (40.0, 90.0),
            (50.0, 80.0),
            (60.0, 85.0),
        ];
        let s = settling_analysis(&pts, SimTime::from_secs(10), 100.0, 2);
        assert_eq!(s.settle_secs, Some(40.0));
        assert!((s.overshoot - 2.0).abs() < 1e-9);
        assert_eq!(s.samples, 6);
    }

    #[test]
    fn settling_none_when_never_recovers() {
        let pts = vec![(0.0, 200.0), (10.0, 220.0), (20.0, 210.0)];
        let s = settling_analysis(&pts, SimTime::ZERO, 100.0, 3);
        assert_eq!(s.settle_secs, None);
        assert!(s.overshoot > 1.0);
    }

    #[test]
    fn settling_requires_hold() {
        // One good sample between violations must not count as settled.
        let pts = vec![(0.0, 150.0), (1.0, 90.0), (2.0, 150.0), (3.0, 90.0), (4.0, 80.0), (5.0, 70.0)];
        let s = settling_analysis(&pts, SimTime::ZERO, 100.0, 3);
        assert_eq!(s.settle_secs, Some(5.0));
    }

    #[test]
    fn headers_match_row_width() {
        assert_eq!(headline_headers().len(), 8);
    }
}
