//! **Macro benchmark and perf-regression gate.** Runs the standard
//! headline scenario end to end (EVOLVE manager, 20 nodes, seed 42,
//! series recording on — the same configuration every table regenerates),
//! reports the [`RunPerf`] block of each iteration, and writes a
//! machine-readable `BENCH.json` with the best observed
//! simulated-seconds-per-wall-second. When a committed baseline exists the
//! binary exits non-zero on a regression beyond the tolerance, which is
//! what CI's `perf-smoke` job enforces.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin perf_macro [iters]
//! ```
//!
//! Environment:
//!
//! * `EVOLVE_SMOKE=1` — shorten the horizon to 3 simulated minutes (CI).
//! * `EVOLVE_PERF_BASELINE` — baseline JSON path (default
//!   `crates/bench/perf_baseline.json`).
//! * `EVOLVE_PERF_TOLERANCE` — allowed fractional regression (default
//!   `0.25`, i.e. fail below 75 % of the baseline throughput).
//! * `EVOLVE_PERF_GATE=off` — measure and emit BENCH.json but never fail,
//!   for hardware where the committed baseline is meaningless.
//! * `EVOLVE_BENCH_JSON` — output path (default `BENCH.json` in the
//!   working directory).

use evolve::prelude::*;
use evolve_bench::{smoke_mode, BASE_SEED};
use std::path::PathBuf;
use std::process::ExitCode;

fn env_or(name: &str, default: &str) -> String {
    std::env::var(name).ok().filter(|v| !v.trim().is_empty()).unwrap_or_else(|| default.into())
}

/// Minimal flat-JSON number lookup (`"key": 123.4`) — the vendored serde
/// is a no-op stub, so the baseline file is parsed by hand. Good enough
/// for the flat object this binary itself writes.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn print_perf(label: &str, p: &RunPerf) {
    println!(
        "{label}: {:.1} sim-s/wall-s ({:.3}s wall, {} ticks, {} events, \
         peak {} running pods, {} fast-path metric records)",
        p.sim_secs_per_wall_sec,
        p.wall_secs,
        p.ticks,
        p.events,
        p.peak_running_pods,
        p.fast_metric_records,
    );
}

fn main() -> ExitCode {
    let iters: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).filter(|n| *n > 0).unwrap_or(3);
    let smoke = smoke_mode();
    let mut scenario = Scenario::headline(1.0);
    if smoke {
        scenario.horizon = SimDuration::from_mins(3);
    }
    let mode = if smoke { "smoke" } else { "full" };
    let sim_secs = scenario.horizon.as_secs_f64();
    eprintln!(
        "perf_macro: headline scenario, {mode} mode ({sim_secs:.0} sim-s), \
         seed {BASE_SEED}, best of {iters} iteration(s)"
    );

    // Best-of-N on wall time: the simulation itself is deterministic, so
    // iterations differ only by machine noise and the fastest one is the
    // least-perturbed measurement.
    let mut best: Option<RunPerf> = None;
    for i in 0..iters {
        let cfg = RunConfig::builder(scenario.clone(), ManagerKind::Evolve).seed(BASE_SEED).build();
        let outcome = ExperimentRunner::new(cfg).run();
        print_perf(&format!("iter {}", i + 1), &outcome.perf);
        if best.is_none()
            || outcome.perf.sim_secs_per_wall_sec
                > best.as_ref().expect("checked").sim_secs_per_wall_sec
        {
            best = Some(outcome.perf);
        }
    }
    let best = best.expect("at least one iteration");
    print_perf("best", &best);

    // Regression gate against the committed baseline.
    let tolerance: f64 = env_or("EVOLVE_PERF_TOLERANCE", "0.25")
        .parse()
        .ok()
        .filter(|t| (0.0..1.0).contains(t))
        .unwrap_or(0.25);
    let gate_on = !env_or("EVOLVE_PERF_GATE", "on").eq_ignore_ascii_case("off");
    let baseline_path =
        PathBuf::from(env_or("EVOLVE_PERF_BASELINE", "crates/bench/perf_baseline.json"));
    let baseline_key = format!("{mode}_sim_secs_per_wall_sec");
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|text| json_number(&text, &baseline_key));

    let (pass, verdict) = match baseline {
        Some(base) => {
            let floor = base * (1.0 - tolerance);
            let ok = best.sim_secs_per_wall_sec >= floor;
            let ratio = best.sim_secs_per_wall_sec / base;
            println!(
                "baseline({mode}) {base:.1} sim-s/wall-s, floor {floor:.1} \
                 (tolerance {:.0}%), measured {:.1} ({ratio:.2}x) => {}",
                tolerance * 100.0,
                best.sim_secs_per_wall_sec,
                if ok { "PASS" } else { "REGRESSION" },
            );
            (ok, if ok { "pass" } else { "regression" })
        }
        None => {
            eprintln!("no baseline `{baseline_key}` in {} — gate skipped", baseline_path.display());
            (true, "no-baseline")
        }
    };

    // Machine-readable artifact for CI and for trend tracking.
    let json = format!(
        "{{\n  \"benchmark\": \"perf_macro\",\n  \"scenario\": \"{}\",\n  \"mode\": \"{mode}\",\n  \
         \"seed\": {BASE_SEED},\n  \"iterations\": {iters},\n  \"sim_secs\": {sim_secs:.1},\n  \
         \"ticks\": {},\n  \"events\": {},\n  \"wall_secs\": {:.4},\n  \
         \"sim_secs_per_wall_sec\": {:.1},\n  \"peak_running_pods\": {},\n  \
         \"fast_metric_records\": {},\n  \"baseline_sim_secs_per_wall_sec\": {},\n  \
         \"tolerance\": {tolerance},\n  \"gate\": \"{}\",\n  \"verdict\": \"{verdict}\"\n}}\n",
        scenario.name,
        best.ticks,
        best.events,
        best.wall_secs,
        best.sim_secs_per_wall_sec,
        best.peak_running_pods,
        best.fast_metric_records,
        baseline.map_or_else(|| "null".into(), |b| format!("{b:.1}")),
        if gate_on { "on" } else { "off" },
    );
    let out_path = PathBuf::from(env_or("EVOLVE_BENCH_JSON", "BENCH.json"));
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {}", out_path.display()),
        Err(err) => {
            eprintln!("could not write {}: {err}", out_path.display());
            return ExitCode::FAILURE;
        }
    }

    if !pass && gate_on {
        eprintln!("perf gate FAILED (set EVOLVE_PERF_GATE=off to ignore)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::json_number;

    #[test]
    fn json_number_finds_flat_keys() {
        let text = "{\n  \"a\": 1.5,\n  \"full_sim_secs_per_wall_sec\": 3100,\n  \"b\": -2e3\n}";
        assert_eq!(json_number(text, "a"), Some(1.5));
        assert_eq!(json_number(text, "full_sim_secs_per_wall_sec"), Some(3100.0));
        assert_eq!(json_number(text, "b"), Some(-2000.0));
        assert_eq!(json_number(text, "missing"), None);
    }
}
