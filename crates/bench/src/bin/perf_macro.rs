//! **Macro benchmark and perf-regression gate.** Runs one of two profiles
//! end to end, reports the [`RunPerf`] block of each iteration, and
//! updates the machine-readable `BENCH.json` with the best observed
//! simulated-seconds-per-wall-second. When a committed baseline exists the
//! binary exits non-zero on a regression beyond the tolerance, which is
//! what CI's `perf-smoke` and `scale-smoke` jobs enforce.
//!
//! Profiles (selected with `EVOLVE_PERF_SCENARIO`):
//!
//! * `headline` (default) — the standard headline scenario (EVOLVE
//!   manager, 20 nodes, seed 42, series recording on — the same
//!   configuration every table regenerates).
//! * `scaled` — the T8 `cluster_scale` scenario (1 000 nodes full /
//!   250 smoke, static replica management, indexed scheduling), guarding
//!   the large-cluster regime the feasibility index exists for.
//!
//! Each profile writes its own block into `BENCH.json`; the other
//! profile's block is preserved, so CI jobs can update them independently.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin perf_macro [iters]
//! ```
//!
//! Environment:
//!
//! * `EVOLVE_SMOKE=1` — shorten the horizon (and the scaled cluster) for
//!   CI.
//! * `EVOLVE_PERF_SCENARIO` — `headline` (default) or `scaled`.
//! * `EVOLVE_PERF_BASELINE` — baseline JSON path (default
//!   `crates/bench/perf_baseline.json`).
//! * `EVOLVE_PERF_TOLERANCE` — allowed fractional regression (default
//!   `0.25`, i.e. fail below 75 % of the baseline throughput).
//! * `EVOLVE_PERF_GATE=off` — measure and emit BENCH.json but never fail,
//!   for hardware where the committed baseline is meaningless.
//! * `EVOLVE_BENCH_JSON` — output path (default `BENCH.json` in the
//!   working directory).

use evolve::prelude::*;
use evolve_bench::{BenchArgs, BASE_SEED};
use std::path::PathBuf;
use std::process::ExitCode;

fn env_or(name: &str, default: &str) -> String {
    std::env::var(name).ok().filter(|v| !v.trim().is_empty()).unwrap_or_else(|| default.into())
}

/// Minimal flat-JSON number lookup (`"key": 123.4`) — the vendored serde
/// is a no-op stub, so the baseline file is parsed by hand. Good enough
/// for the flat objects this repo commits.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the balanced `{ … }` object following `"name":` — hand-rolled
/// for the same reason as [`json_number`]. Returns the block including its
/// braces. The blocks this binary writes contain no string-embedded
/// braces, so a plain depth counter suffices.
fn extract_block(text: &str, name: &str) -> Option<String> {
    let needle = format!("\"{name}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[..=i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn print_perf(label: &str, p: &RunPerf) {
    println!(
        "{label}: {:.1} sim-s/wall-s ({:.3}s wall, {} ticks, {} events, \
         peak {} running pods, {} fast-path metric records)",
        p.sim_secs_per_wall_sec,
        p.wall_secs,
        p.ticks,
        p.events,
        p.peak_running_pods,
        p.fast_metric_records,
    );
}

fn main() -> ExitCode {
    let args = BenchArgs::parse(3);
    // The positional count sets the number of timed iterations here (no
    // simulation RNG is involved, so there is no seed set to speak of).
    let iters = args.seed_count();
    let smoke = args.smoke;
    let profile = env_or("EVOLVE_PERF_SCENARIO", "headline");
    let scaled = match profile.as_str() {
        "headline" => false,
        "scaled" => true,
        other => {
            eprintln!("unknown EVOLVE_PERF_SCENARIO `{other}` (use `headline` or `scaled`)");
            return ExitCode::FAILURE;
        }
    };
    let mode = if smoke { "smoke" } else { "full" };
    let (scenario, manager, nodes) = if scaled {
        let nodes = if smoke { 250 } else { 1_000 };
        let apps = if smoke { 10 } else { 40 };
        let horizon = SimDuration::from_mins(if smoke { 2 } else { 10 });
        (Scenario::cluster_scale(nodes, apps, horizon), ManagerKind::KubeStatic, Some(nodes))
    } else {
        let mut scenario = Scenario::headline(1.0);
        if smoke {
            scenario.horizon = SimDuration::from_mins(3);
        }
        (scenario, ManagerKind::Evolve, None)
    };
    let sim_secs = scenario.horizon.as_secs_f64();
    eprintln!(
        "perf_macro: {profile} scenario, {mode} mode ({sim_secs:.0} sim-s), \
         seed {BASE_SEED}, best of {iters} iteration(s)"
    );

    // Best-of-N on wall time: the simulation itself is deterministic, so
    // iterations differ only by machine noise and the fastest one is the
    // least-perturbed measurement.
    let mut best: Option<RunPerf> = None;
    for i in 0..iters {
        let mut builder = RunConfig::builder(scenario.clone(), manager.clone()).seed(BASE_SEED);
        if let Some(n) = nodes {
            builder = builder.nodes(n).scheduler(SchedulerProfile::Evolve).record_series(false);
        }
        let outcome = ExperimentRunner::new(builder.build()).run();
        print_perf(&format!("iter {}", i + 1), &outcome.perf);
        if best.is_none()
            || outcome.perf.sim_secs_per_wall_sec
                > best.as_ref().expect("checked").sim_secs_per_wall_sec
        {
            best = Some(outcome.perf);
        }
    }
    let best = best.expect("at least one iteration");
    print_perf("best", &best);

    // Regression gate against the committed baseline. Headline keeps its
    // historical key names; the scaled profile prefixes its own.
    let tolerance: f64 = env_or("EVOLVE_PERF_TOLERANCE", "0.25")
        .parse()
        .ok()
        .filter(|t| (0.0..1.0).contains(t))
        .unwrap_or(0.25);
    let gate_on = !env_or("EVOLVE_PERF_GATE", "on").eq_ignore_ascii_case("off");
    let baseline_path =
        PathBuf::from(env_or("EVOLVE_PERF_BASELINE", "crates/bench/perf_baseline.json"));
    let baseline_key = if scaled {
        format!("scaled_{mode}_sim_secs_per_wall_sec")
    } else {
        format!("{mode}_sim_secs_per_wall_sec")
    };
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|text| json_number(&text, &baseline_key));

    let (pass, verdict) = match baseline {
        Some(base) => {
            let floor = base * (1.0 - tolerance);
            let ok = best.sim_secs_per_wall_sec >= floor;
            let ratio = best.sim_secs_per_wall_sec / base;
            println!(
                "baseline({profile}/{mode}) {base:.1} sim-s/wall-s, floor {floor:.1} \
                 (tolerance {:.0}%), measured {:.1} ({ratio:.2}x) => {}",
                tolerance * 100.0,
                best.sim_secs_per_wall_sec,
                if ok { "PASS" } else { "REGRESSION" },
            );
            (ok, if ok { "pass" } else { "regression" })
        }
        None => {
            eprintln!("no baseline `{baseline_key}` in {} — gate skipped", baseline_path.display());
            (true, "no-baseline")
        }
    };

    // Machine-readable artifact for CI and for trend tracking: one block
    // per profile, the other profile's block carried over verbatim.
    let block = format!(
        "{{\n    \"scenario\": \"{}\",\n    \"mode\": \"{mode}\",\n    \"seed\": {BASE_SEED},\n    \
         \"iterations\": {iters},\n    \"sim_secs\": {sim_secs:.1},\n    \
         \"ticks\": {},\n    \"events\": {},\n    \"wall_secs\": {:.4},\n    \
         \"sim_secs_per_wall_sec\": {:.1},\n    \"peak_running_pods\": {},\n    \
         \"filter_evals\": {},\n    \"feasibility_probes\": {},\n    \
         \"fast_metric_records\": {},\n    \"baseline_sim_secs_per_wall_sec\": {},\n    \
         \"tolerance\": {tolerance},\n    \"gate\": \"{}\",\n    \"verdict\": \"{verdict}\"\n  }}",
        scenario.name,
        best.ticks,
        best.events,
        best.wall_secs,
        best.sim_secs_per_wall_sec,
        best.peak_running_pods,
        best.filter_evals,
        best.feasibility_probes,
        best.fast_metric_records,
        baseline.map_or_else(|| "null".into(), |b| format!("{b:.1}")),
        if gate_on { "on" } else { "off" },
    );
    let out_path = PathBuf::from(env_or("EVOLVE_BENCH_JSON", "BENCH.json"));
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let other_name = if scaled { "headline" } else { "scaled" };
    let other = extract_block(&existing, other_name);
    let mut json = String::from("{\n  \"benchmark\": \"perf_macro\",\n");
    let (first, second) =
        if scaled { (other_name, profile.as_str()) } else { (profile.as_str(), other_name) };
    for name in [first, second] {
        let body = if name == profile { Some(&block) } else { other.as_ref() };
        if let Some(body) = body {
            json.push_str(&format!("  \"{name}\": {body},\n"));
        }
    }
    json.truncate(json.trim_end_matches(",\n").len());
    json.push_str("\n}\n");
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {} ({profile} block)", out_path.display()),
        Err(err) => {
            eprintln!("could not write {}: {err}", out_path.display());
            return ExitCode::FAILURE;
        }
    }

    if !pass && gate_on {
        eprintln!("perf gate FAILED (set EVOLVE_PERF_GATE=off to ignore)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{extract_block, json_number};

    #[test]
    fn json_number_finds_flat_keys() {
        let text = "{\n  \"a\": 1.5,\n  \"full_sim_secs_per_wall_sec\": 3100,\n  \"b\": -2e3\n}";
        assert_eq!(json_number(text, "a"), Some(1.5));
        assert_eq!(json_number(text, "full_sim_secs_per_wall_sec"), Some(3100.0));
        assert_eq!(json_number(text, "b"), Some(-2000.0));
        assert_eq!(json_number(text, "missing"), None);
    }

    #[test]
    fn extract_block_returns_balanced_objects() {
        let text = "{\n  \"benchmark\": \"perf_macro\",\n  \"headline\": {\n    \"mode\": \
                    \"smoke\",\n    \"nested\": { \"x\": 1 }\n  },\n  \"scaled\": { \"y\": 2 }\n}";
        let headline = extract_block(text, "headline").expect("headline block");
        assert!(headline.starts_with('{') && headline.ends_with('}'));
        assert!(headline.contains("\"nested\": { \"x\": 1 }"));
        assert_eq!(extract_block(text, "scaled").as_deref(), Some("{ \"y\": 2 }"));
        assert_eq!(extract_block(text, "missing"), None);
        assert_eq!(extract_block("{ \"headline\": [1, 2] }", "headline"), None);
    }
}
