//! **T5 — ablation.** What each piece of the EVOLVE controller buys:
//! full EVOLVE vs CPU-only PID (classical 1-D control) vs fixed gains
//! (no on-line adaptation) vs threshold HPA, on the bottleneck-rotation
//! mix where each service binds on a *different* resource dimension.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin tab5_ablation
//! ```

use evolve_bench::output_dir;
use evolve_core::{
    write_csv, EvolvePolicyConfig, ExperimentRunner, ManagerKind, RunConfig, Table,
};
use evolve_workload::Scenario;

fn main() {
    let variants: Vec<(&str, ManagerKind)> = vec![
        ("evolve (full)", ManagerKind::Evolve),
        (
            "evolve cpu-only",
            ManagerKind::EvolveWith(EvolvePolicyConfig::default().cpu_only()),
        ),
        (
            "evolve fixed-gains",
            ManagerKind::EvolveWith(EvolvePolicyConfig::default().fixed_gains()),
        ),
        ("hpa", ManagerKind::Hpa { target_utilization: 0.6 }),
        ("kube-static", ManagerKind::KubeStatic),
    ];
    let mut table = Table::new(
        ["variant", "cpu-svc", "disk-svc", "net-svc", "mem-svc", "aggregate", "oom kills"]
            .map(String::from)
            .to_vec(),
    );
    for (label, manager) in variants {
        eprintln!("running {label} …");
        let outcome = ExperimentRunner::new(
            RunConfig::new(Scenario::bottleneck_rotation(), manager)
                .with_nodes(12)
                .with_seed(42)
                .without_series(),
        )
        .run();
        let mut row = vec![label.to_string()];
        for app in outcome.apps.iter().take(4) {
            row.push(format!("{:.3}", app.violation_rate()));
        }
        row.push(format!("{:.3}", outcome.total_violation_rate()));
        row.push(outcome.apps.iter().map(|a| a.oom_kills).sum::<u64>().to_string());
        table.add_row(row);
    }
    println!("\nT5 — ablation on the bottleneck-rotation mix (violation rate per service)\n");
    println!("{table}");
    println!("expected shape: the CPU-only controller defends cpu-svc but fails the disk/net/");
    println!("mem services (it cannot see their bottleneck); fixed gains oscillate or react");
    println!("sluggishly under the bursty MMPP load; full EVOLVE is lowest across the board.");
    if let Err(err) = write_csv(&output_dir(), "tab5_ablation", &table.to_csv()) {
        eprintln!("could not write CSV: {err}");
    }
}
