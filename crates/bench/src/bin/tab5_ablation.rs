//! **T5 — ablation.** What each piece of the EVOLVE controller buys:
//! full EVOLVE vs CPU-only PID (classical 1-D control) vs fixed gains
//! (no on-line adaptation) vs threshold HPA, on the bottleneck-rotation
//! mix where each service binds on a *different* resource dimension.
//! Replicated across seeds (mean ± 95 % CI).
//!
//! ```text
//! cargo run --release -p evolve-bench --bin tab5_ablation [seed-count]
//! ```

use evolve::prelude::*;
use evolve_bench::BenchArgs;
use evolve_core::EvolvePolicyConfig;

fn main() {
    let args = BenchArgs::parse(5);
    let seeds = &args.seeds;
    let variants: Vec<(&str, ManagerKind)> = vec![
        ("evolve (full)", ManagerKind::Evolve),
        ("evolve cpu-only", ManagerKind::EvolveWith(EvolvePolicyConfig::default().cpu_only())),
        (
            "evolve fixed-gains",
            ManagerKind::EvolveWith(EvolvePolicyConfig::default().fixed_gains()),
        ),
        ("hpa", ManagerKind::Hpa { target_utilization: 0.6 }),
        ("kube-static", ManagerKind::KubeStatic),
    ];
    let configs: Vec<RunConfig> = variants
        .iter()
        .map(|(_, manager)| {
            match args.scenario() {
                Some(spec) => RunConfig::from_spec(spec, manager.clone()),
                None => {
                    RunConfig::builder(Scenario::bottleneck_rotation(), manager.clone()).nodes(12)
                }
            }
            .record_series(false)
            .build()
        })
        .collect();
    eprintln!("running {} variants × {} seeds …", configs.len(), seeds.len());
    let reps = Harness::new().run_matrix(&configs, seeds);

    let mut table = Table::new(
        ["variant", "cpu-svc", "disk-svc", "net-svc", "mem-svc", "aggregate", "oom kills"]
            .map(String::from)
            .to_vec(),
    );
    for ((label, _), rep) in variants.iter().zip(&reps) {
        let mut row = vec![(*label).to_string()];
        // The first four apps in the rotation mix are the cpu/disk/net/mem
        // services, in declaration order (identical across seeds).
        for i in 0..4 {
            row.push(rep.summarize(|r| r.apps[i].violation_rate()).display(3));
        }
        row.push(rep.violation_rate().display(3));
        row.push(
            rep.summarize(|r| r.apps.iter().map(|a| a.oom_kills).sum::<u64>() as f64).display(1),
        );
        table.add_row(row);
    }
    println!(
        "\nT5 — ablation on the bottleneck-rotation mix (violation rate per service, {} seed(s))\n",
        seeds.len()
    );
    println!("{table}");
    println!("expected shape: the CPU-only controller defends cpu-svc but fails the disk/net/");
    println!("mem services (it cannot see their bottleneck); fixed gains oscillate or react");
    println!("sluggishly under the bursty MMPP load; full EVOLVE is lowest across the board.");
    if let Err(err) = write_csv(&args.out_dir, "tab5_ablation", &table.to_csv()) {
        eprintln!("could not write CSV: {err}");
    }
}
