//! **F3 — violation rate vs offered load.** Sweep the offered load from
//! 20% to 140% of nominal capacity and plot each policy's violation rate.
//! The interesting feature is the *crossover*: where the static baseline
//! collapses while EVOLVE keeps absorbing load by rescaling.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin fig3_sweep
//! ```

use evolve_bench::output_dir;
use evolve_core::{write_csv, ExperimentRunner, ManagerKind, RunConfig, Table};
use evolve_workload::Scenario;

fn main() {
    let offered = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4];
    let managers = [
        ManagerKind::Evolve,
        ManagerKind::KubeStatic,
        ManagerKind::Hpa { target_utilization: 0.6 },
    ];
    let mut table = Table::new({
        let mut h = vec!["offered".to_string()];
        h.extend(managers.iter().map(|m| m.label()));
        h
    });
    let mut csv = String::from("offered,evolve,kube_static,hpa\n");
    for x in offered {
        let mut row = vec![format!("{x:.1}")];
        let mut csv_row = format!("{x:.2}");
        for manager in &managers {
            eprintln!("offered {x:.1} under {} …", manager.label());
            let outcome = ExperimentRunner::new(
                RunConfig::new(Scenario::load_sweep(x), manager.clone())
                    .with_nodes(10)
                    .with_seed(42)
                    .without_series(),
            )
            .run();
            let rate = outcome.total_violation_rate();
            row.push(format!("{rate:.3}"));
            csv_row.push_str(&format!(",{rate:.4}"));
        }
        csv.push_str(&csv_row);
        csv.push('\n');
        table.add_row(row);
    }
    println!("\nF3 — violation rate vs offered load (fraction of nominal capacity)\n");
    println!("{table}");
    println!("expected shape: all policies near zero at low load; the static baseline's");
    println!("curve breaks upward first (its fixed request saturates), the HPA next (it");
    println!("scales only on CPU averages), EVOLVE last — and most gently.");
    if let Err(err) = write_csv(&output_dir(), "fig3_sweep", &csv) {
        eprintln!("could not write CSV: {err}");
    }
}
