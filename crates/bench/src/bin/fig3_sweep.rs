//! **F3 — violation rate vs offered load.** Sweep the offered load from
//! 20% to 140% of nominal capacity and plot each policy's violation rate
//! (mean ± 95 % CI across seeds). The interesting feature is the
//! *crossover*: where the static baseline collapses while EVOLVE keeps
//! absorbing load by rescaling.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin fig3_sweep [seed-count]
//! ```

use evolve::prelude::*;
use evolve_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse(5);
    let seeds = &args.seeds;
    let offered = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4];
    let managers = [
        ManagerKind::Evolve,
        ManagerKind::KubeStatic,
        ManagerKind::Hpa { target_utilization: 0.6 },
    ];
    // One config per (load, manager) cell, all fanned out together. With
    // `--scenario`, the sweep scales the declared load profiles instead
    // of the builtin load_sweep mix.
    let configs: Vec<RunConfig> = offered
        .iter()
        .flat_map(|x| {
            managers.iter().map(|m| {
                match args.scenario() {
                    Some(spec) => RunConfig::from_spec(&spec.scaled_loads(*x), m.clone()),
                    None => RunConfig::builder(Scenario::load_sweep(*x), m.clone()).nodes(10),
                }
                .record_series(false)
                .build()
            })
        })
        .collect();
    eprintln!(
        "sweeping {} loads × {} policies × {} seeds …",
        offered.len(),
        managers.len(),
        seeds.len()
    );
    let reps = Harness::new().run_matrix(&configs, seeds);

    let mut table = Table::new({
        let mut h = vec!["offered".to_string()];
        h.extend(managers.iter().map(|m| m.label()));
        h
    });
    let mut csv = String::from("offered,evolve,evolve_ci,kube_static,kube_static_ci,hpa,hpa_ci\n");
    let mut cells = reps.iter();
    for x in offered {
        let mut row = vec![format!("{x:.1}")];
        let mut csv_row = format!("{x:.2}");
        for _ in &managers {
            let rep = cells.next().expect("one replicated outcome per cell");
            let rate = rep.violation_rate();
            row.push(rate.display(3));
            csv_row.push_str(&format!(",{:.4},{:.4}", rate.mean, rate.ci95));
        }
        csv.push_str(&csv_row);
        csv.push('\n');
        table.add_row(row);
    }
    println!(
        "\nF3 — violation rate vs offered load (fraction of nominal capacity, {} seed(s))\n",
        seeds.len()
    );
    println!("{table}");
    println!("expected shape: all policies near zero at low load; the static baseline's");
    println!("curve breaks upward first (its fixed request saturates), the HPA next (it");
    println!("scales only on CPU averages), EVOLVE last — and most gently.");
    if let Err(err) = write_csv(&args.out_dir, "fig3_sweep", &csv) {
        eprintln!("could not write CSV: {err}");
    }
}
