//! **F6 — interference / slack harvesting.** Two latency-critical
//! services colocated with oversized batch and HPC jobs. With priority
//! preemption (the EVOLVE scheduler profile), batch work should harvest
//! slack without breaking the services' PLOs; without preemption the
//! services queue behind batch allocations.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin fig6_interference
//! ```

use evolve_bench::output_dir;
use evolve_core::{
    write_csv, ExperimentRunner, ManagerKind, RunConfig, SchedulerProfile, Table,
};
use evolve_workload::{Scenario, WorldClass};

fn main() {
    let variants: Vec<(&str, ManagerKind, SchedulerProfile)> = vec![
        ("evolve + preemption", ManagerKind::Evolve, SchedulerProfile::Evolve),
        ("evolve, no preemption", ManagerKind::Evolve, SchedulerProfile::KubeDefault),
        ("kube-static", ManagerKind::KubeStatic, SchedulerProfile::KubeDefault),
    ];
    let mut table = Table::new(
        [
            "variant",
            "svc viol rate",
            "svc timeouts",
            "jobs finished",
            "deadlines met",
            "used share",
            "preemptions",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (label, manager, profile) in variants {
        eprintln!("running {label} …");
        let outcome = ExperimentRunner::new(
            RunConfig::new(Scenario::interference(), manager)
                .with_nodes(10)
                .with_seed(42)
                .with_scheduler(profile)
                .without_series(),
        )
        .run();
        let svc_windows: u64 = outcome
            .apps
            .iter()
            .filter(|a| a.world == WorldClass::Microservice)
            .map(|a| a.windows)
            .sum();
        let svc_violations: u64 = outcome
            .apps
            .iter()
            .filter(|a| a.world == WorldClass::Microservice)
            .map(|a| a.violations)
            .sum();
        let svc_timeouts: u64 = outcome
            .apps
            .iter()
            .filter(|a| a.world == WorldClass::Microservice)
            .map(|a| a.timeouts)
            .sum();
        let finished = outcome.jobs.iter().filter(|j| j.finished.is_some()).count();
        let (hits, total) = outcome.deadline_hits();
        table.add_row(vec![
            label.to_string(),
            format!(
                "{:.3}",
                if svc_windows == 0 { 0.0 } else { svc_violations as f64 / svc_windows as f64 }
            ),
            svc_timeouts.to_string(),
            format!("{finished}/{total}"),
            format!("{hits}/{total}"),
            format!("{:.3}", outcome.utilization.mean_used()),
            outcome.preemptions.to_string(),
        ]);
    }
    println!("\nF6 — colocating latency services with aggressive batch/HPC (10 nodes)\n");
    println!("{table}");
    println!("expected shape: with preemption the services stay compliant and batch still");
    println!("finishes (harvesting slack, losing some work to preemption); without it, the");
    println!("services suffer when batch got there first.");
    if let Err(err) = write_csv(&output_dir(), "fig6_interference", &table.to_csv()) {
        eprintln!("could not write CSV: {err}");
    }
}
