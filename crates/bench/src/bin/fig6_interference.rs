//! **F6 — interference / slack harvesting.** Two latency-critical
//! services colocated with oversized batch and HPC jobs. With priority
//! preemption (the EVOLVE scheduler profile), batch work should harvest
//! slack without breaking the services' PLOs; without preemption the
//! services queue behind batch allocations. Replicated across seeds
//! (mean ± 95 % CI).
//!
//! ```text
//! cargo run --release -p evolve-bench --bin fig6_interference [seed-count]
//! ```

use evolve::prelude::*;
use evolve_bench::BenchArgs;
use evolve_workload::WorldClass;

fn svc_violation_rate(r: &RunOutcome) -> f64 {
    fn svc(r: &RunOutcome) -> impl Iterator<Item = &evolve_core::AppSummary> {
        r.apps.iter().filter(|a| a.world == WorldClass::Microservice)
    }
    let windows: u64 = svc(r).map(|a| a.windows).sum();
    let violations: u64 = svc(r).map(|a| a.violations).sum();
    if windows == 0 {
        0.0
    } else {
        violations as f64 / windows as f64
    }
}

fn main() {
    let args = BenchArgs::parse(5);
    let seeds = &args.seeds;
    let variants: Vec<(&str, ManagerKind, SchedulerProfile)> = vec![
        ("evolve + preemption", ManagerKind::Evolve, SchedulerProfile::Evolve),
        ("evolve, no preemption", ManagerKind::Evolve, SchedulerProfile::KubeDefault),
        ("kube-static", ManagerKind::KubeStatic, SchedulerProfile::KubeDefault),
    ];
    let configs: Vec<RunConfig> = variants
        .iter()
        .map(|(_, manager, profile)| {
            match args.scenario() {
                Some(spec) => RunConfig::from_spec(spec, manager.clone()),
                None => RunConfig::builder(Scenario::interference(), manager.clone()).nodes(10),
            }
            .scheduler(*profile)
            .record_series(false)
            .build()
        })
        .collect();
    eprintln!("running {} variants × {} seeds …", configs.len(), seeds.len());
    let reps = Harness::new().run_matrix(&configs, seeds);

    let mut table = Table::new(
        [
            "variant",
            "svc viol rate",
            "svc timeouts",
            "jobs finished",
            "deadline rate",
            "used share",
            "preemptions",
        ]
        .map(String::from)
        .to_vec(),
    );
    for ((label, _, _), rep) in variants.iter().zip(&reps) {
        let svc_timeouts = rep.summarize(|r| {
            r.apps
                .iter()
                .filter(|a| a.world == WorldClass::Microservice)
                .map(|a| a.timeouts)
                .sum::<u64>() as f64
        });
        let finished =
            rep.summarize(|r| r.jobs.iter().filter(|j| j.finished.is_some()).count() as f64);
        let total_jobs = rep.representative().jobs.len();
        table.add_row(vec![
            (*label).to_string(),
            rep.summarize(svc_violation_rate).display(3),
            svc_timeouts.display(0),
            format!("{}/{total_jobs}", finished.display(1)),
            rep.deadline_hit_rate().display(2),
            rep.used_share().display(3),
            rep.preemptions().display(1),
        ]);
    }
    println!(
        "\nF6 — colocating latency services with aggressive batch/HPC (10 nodes, {} seed(s))\n",
        seeds.len()
    );
    println!("{table}");
    println!("expected shape: with preemption the services stay compliant and batch still");
    println!("finishes (harvesting slack, losing some work to preemption); without it, the");
    println!("services suffer when batch got there first.");
    if let Err(err) = write_csv(&args.out_dir, "fig6_interference", &table.to_csv()) {
        eprintln!("could not write CSV: {err}");
    }
}
