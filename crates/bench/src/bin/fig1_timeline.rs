//! **F1 — diurnal timeline.** One latency-critical service through a
//! compressed diurnal day under EVOLVE: offered load, replica count,
//! total CPU allocation, measured CPU usage and p99 latency, per control
//! window. The plotted trace comes from the first seed (reproducible);
//! the summary line aggregates all seeds. Emits
//! `experiments_out/fig1_timeline.csv` and prints a sampled trace.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin fig1_timeline [seed-count]
//! ```

use evolve::prelude::*;
use evolve_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse(5);
    let seeds = &args.seeds;
    eprintln!("running the diurnal day under EVOLVE ({} seed(s)) …", seeds.len());
    let config = match args.scenario() {
        Some(spec) => RunConfig::from_spec(spec, ManagerKind::Evolve),
        None => RunConfig::builder(Scenario::single_diurnal(), ManagerKind::Evolve).nodes(6),
    }
    .build();
    let rep = Harness::new().run_seeds(&config, seeds);
    let outcome = rep.representative();
    let names =
        ["app0/rate_rps", "app0/replicas", "app0/alloc_cpu", "app0/usage_cpu", "app0/p99_ms"];
    let csv = outcome.registry.wide_csv(&names);
    if let Err(err) = write_csv(&args.out_dir, "fig1_timeline", &csv) {
        eprintln!("could not write CSV: {err}");
    }
    println!("\nF1 — diurnal timeline (every 6th control window shown, seed {})\n", rep.seeds[0]);
    println!(
        "{:>8} {:>10} {:>9} {:>11} {:>11} {:>9}",
        "t (s)", "rate rps", "replicas", "alloc mcore", "used mcore", "p99 ms"
    );
    let get = |n: &str| outcome.registry.series(n).map(|s| s.to_points()).unwrap_or_default();
    let rate = get(names[0]);
    let replicas = get(names[1]);
    let alloc = get(names[2]);
    let usage = get(names[3]);
    let p99 = get(names[4]);
    for (i, (t, r)) in rate.iter().enumerate() {
        if i % 6 != 0 {
            continue;
        }
        let find =
            |col: &[(f64, f64)]| col.iter().find(|(pt, _)| (pt - t).abs() < 1e-6).map(|(_, v)| *v);
        println!(
            "{t:>8.0} {r:>10.1} {:>9} {:>11} {:>11} {:>9}",
            find(&replicas).map_or("-".into(), |v| format!("{v:.0}")),
            find(&alloc).map_or("-".into(), |v| format!("{v:.0}")),
            find(&usage).map_or("-".into(), |v| format!("{v:.0}")),
            find(&p99).map_or("-".into(), |v| format!("{v:.1}")),
        );
    }
    let viol = rep.violation_rate();
    println!(
        "\nviolation rate across {} seed(s): {} — allocation should track the sinusoidal\n\
         load with a small lead (the Holt predictor) while p99 stays under the 100 ms objective",
        viol.n,
        viol.display(3)
    );
    println!("CSV: experiments_out/fig1_timeline.csv");
}
