//! **T2 — convergence vs silos.** The same workload run (a) converged on
//! one 20-node cluster under EVOLVE, vs (b) split into three dedicated
//! silos (cloud 8 / big-data 6 / HPC 6 nodes) under the same controller.
//! Convergence should match per-world PLO attainment while using the
//! hardware better — idle silo capacity cannot help the busy world.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin tab2_convergence
//! ```

use evolve_bench::output_dir;
use evolve_core::{write_csv, ExperimentRunner, ManagerKind, RunConfig, RunOutcome, Table};
use evolve_workload::{Scenario, WorkloadMix};

/// Splits the headline mix into per-world scenarios.
fn silo_scenarios() -> [(String, Scenario, usize); 3] {
    let full = Scenario::headline(1.0);
    let mut cloud = WorkloadMix::new();
    for (svc, load) in full.mix.services() {
        cloud = cloud.with_service(svc.clone(), load.clone());
    }
    let mut bigdata = WorkloadMix::new();
    for (job, at) in full.mix.batch_jobs() {
        bigdata = bigdata.with_batch_job(job.clone(), *at);
    }
    let mut hpc = WorkloadMix::new();
    for (job, at) in full.mix.hpc_jobs() {
        hpc = hpc.with_hpc_job(job.clone(), *at);
    }
    let mk = |name: &str, mix: WorkloadMix| Scenario {
        name: format!("silo-{name}"),
        description: format!("{name} silo of the headline mix"),
        mix,
        horizon: full.horizon,
    };
    [
        ("cloud".into(), mk("cloud", cloud), 8),
        ("bigdata".into(), mk("bigdata", bigdata), 6),
        ("hpc".into(), mk("hpc", hpc), 6),
    ]
}

fn world_rows(label: &str, outcome: &RunOutcome, table: &mut Table) {
    let [cloud, bigdata, hpc] = outcome.violation_rate_by_world();
    let (hits, total) = outcome.deadline_hits();
    table.add_row(vec![
        label.to_string(),
        format!("{cloud:.3}"),
        format!("{bigdata:.3}"),
        format!("{hpc:.3}"),
        format!("{hits}/{total}"),
        format!("{:.3}", outcome.utilization.mean_allocated()),
        format!("{:.3}", outcome.utilization.mean_used()),
    ]);
}

fn main() {
    let mut table = Table::new(
        ["deployment", "cloud viol", "bigdata viol", "hpc viol", "deadlines", "alloc share", "used share"]
            .map(String::from)
            .to_vec(),
    );

    eprintln!("running converged (20 nodes) …");
    let converged = ExperimentRunner::new(
        RunConfig::new(Scenario::headline(1.0), ManagerKind::Evolve)
            .with_nodes(20)
            .with_seed(42)
            .without_series(),
    )
    .run();
    world_rows("converged-20", &converged, &mut table);

    // Silos: aggregate three independent runs.
    let mut silo_apps = Vec::new();
    let mut silo_jobs = Vec::new();
    let mut alloc_share = 0.0;
    let mut used_share = 0.0;
    let mut nodes_total = 0usize;
    for (name, scenario, nodes) in silo_scenarios() {
        eprintln!("running silo {name} ({nodes} nodes) …");
        let outcome = ExperimentRunner::new(
            RunConfig::new(scenario, ManagerKind::Evolve)
                .with_nodes(nodes)
                .with_seed(42)
                .without_series(),
        )
        .run();
        // Weight utilization by silo size.
        alloc_share += outcome.utilization.mean_allocated() * nodes as f64;
        used_share += outcome.utilization.mean_used() * nodes as f64;
        nodes_total += nodes;
        silo_apps.extend(outcome.apps);
        silo_jobs.extend(outcome.jobs);
    }
    // Synthesize an aggregate row.
    let windows: u64 = silo_apps.iter().map(|a| a.windows).sum();
    let violations: u64 = silo_apps.iter().map(|a| a.violations).sum();
    let mut by_world = [[0u64; 2]; 3];
    for a in &silo_apps {
        let i = match a.world {
            evolve_workload::WorldClass::Microservice => 0,
            evolve_workload::WorldClass::BigData => 1,
            evolve_workload::WorldClass::Hpc => 2,
        };
        by_world[i][0] += a.windows;
        by_world[i][1] += a.violations;
    }
    let rate = |i: usize| {
        if by_world[i][0] == 0 {
            0.0
        } else {
            by_world[i][1] as f64 / by_world[i][0] as f64
        }
    };
    let hits = silo_jobs.iter().filter(|j| j.met_deadline()).count();
    table.add_row(vec![
        "silos-8/6/6".into(),
        format!("{:.3}", rate(0)),
        format!("{:.3}", rate(1)),
        format!("{:.3}", rate(2)),
        format!("{hits}/{}", silo_jobs.len()),
        format!("{:.3}", alloc_share / nodes_total as f64),
        format!("{:.3}", used_share / nodes_total as f64),
    ]);

    println!("\nT2 — converged cluster vs per-world silos (EVOLVE manager in both)\n");
    println!("{table}");
    println!(
        "aggregate violation rate: converged {:.3} vs silos {:.3}",
        converged.total_violation_rate(),
        if windows == 0 { 0.0 } else { violations as f64 / windows as f64 }
    );
    if let Err(err) = write_csv(&output_dir(), "tab2_convergence", &table.to_csv()) {
        eprintln!("could not write CSV: {err}");
    }
}
