//! **T2 — convergence vs silos.** The same workload run (a) converged on
//! one 20-node cluster under EVOLVE, vs (b) split into three dedicated
//! silos (cloud 8 / big-data 6 / HPC 6 nodes) under the same controller.
//! Convergence should match per-world PLO attainment while using the
//! hardware better — idle silo capacity cannot help the busy world.
//! Replicated across seeds; silo runs are paired per seed before
//! aggregation so each seed yields one converged and one silo sample.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin tab2_convergence [seed-count]
//! ```

use evolve::prelude::*;
use evolve_bench::BenchArgs;
use evolve_workload::{WorkloadMix, WorldClass};

/// Splits the headline mix into per-world scenarios.
fn silo_scenarios() -> [(String, Scenario, usize); 3] {
    let full = Scenario::headline(1.0);
    let mut cloud = WorkloadMix::new();
    for (svc, load) in full.mix.services() {
        cloud = cloud.with_service(svc.clone(), load.clone());
    }
    let mut bigdata = WorkloadMix::new();
    for (job, at) in full.mix.batch_jobs() {
        bigdata = bigdata.with_batch_job(job.clone(), *at);
    }
    let mut hpc = WorkloadMix::new();
    for (job, at) in full.mix.hpc_jobs() {
        hpc = hpc.with_hpc_job(job.clone(), *at);
    }
    let mk = |name: &str, mix: WorkloadMix| Scenario {
        name: format!("silo-{name}"),
        description: format!("{name} silo of the headline mix"),
        mix,
        horizon: full.horizon,
    };
    [
        ("cloud".into(), mk("cloud", cloud), 8),
        ("bigdata".into(), mk("bigdata", bigdata), 6),
        ("hpc".into(), mk("hpc", hpc), 6),
    ]
}

/// Per-seed aggregate of one deployment: the metrics the table reports.
struct DeploymentSample {
    by_world: [f64; 3],
    deadline_rate: f64,
    alloc_share: f64,
    used_share: f64,
    violation_rate: f64,
}

fn converged_sample(run: &RunOutcome) -> DeploymentSample {
    let (hits, total) = run.deadline_hits();
    DeploymentSample {
        by_world: run.violation_rate_by_world(),
        deadline_rate: if total == 0 { 1.0 } else { hits as f64 / total as f64 },
        alloc_share: run.utilization.mean_allocated(),
        used_share: run.utilization.mean_used(),
        violation_rate: run.total_violation_rate(),
    }
}

/// Combines the three silo runs of one seed into one sample: app windows
/// pool directly; utilization is weighted by silo size.
fn silo_sample(runs: [&RunOutcome; 3], nodes: [usize; 3]) -> DeploymentSample {
    let apps = runs.iter().flat_map(|r| r.apps.iter());
    let mut by_world = [[0u64; 2]; 3];
    for a in apps {
        let i = match a.world {
            WorldClass::Microservice => 0,
            WorldClass::BigData => 1,
            WorldClass::Hpc => 2,
        };
        by_world[i][0] += a.windows;
        by_world[i][1] += a.violations;
    }
    let rate = |w: [u64; 2]| if w[0] == 0 { 0.0 } else { w[1] as f64 / w[0] as f64 };
    let windows: u64 = by_world.iter().map(|w| w[0]).sum();
    let violations: u64 = by_world.iter().map(|w| w[1]).sum();
    let jobs: Vec<_> = runs.iter().flat_map(|r| r.jobs.iter()).collect();
    let hits = jobs.iter().filter(|j| j.met_deadline()).count();
    let nodes_total: usize = nodes.iter().sum();
    let weighted = |f: fn(&RunOutcome) -> f64| {
        runs.iter().zip(nodes).map(|(r, n)| f(r) * n as f64).sum::<f64>() / nodes_total as f64
    };
    DeploymentSample {
        by_world: [rate(by_world[0]), rate(by_world[1]), rate(by_world[2])],
        deadline_rate: if jobs.is_empty() { 1.0 } else { hits as f64 / jobs.len() as f64 },
        alloc_share: weighted(|r| r.utilization.mean_allocated()),
        used_share: weighted(|r| r.utilization.mean_used()),
        violation_rate: if windows == 0 { 0.0 } else { violations as f64 / windows as f64 },
    }
}

fn summary_row(label: &str, samples: &[DeploymentSample], table: &mut Table) {
    let col = |f: fn(&DeploymentSample) -> f64| {
        Summary::from_samples(&samples.iter().map(f).collect::<Vec<_>>())
    };
    table.add_row(vec![
        label.to_string(),
        col(|s| s.by_world[0]).display(3),
        col(|s| s.by_world[1]).display(3),
        col(|s| s.by_world[2]).display(3),
        col(|s| s.deadline_rate).display(2),
        col(|s| s.alloc_share).display(3),
        col(|s| s.used_share).display(3),
    ]);
}

fn main() {
    let args = BenchArgs::parse(5);
    let seeds = args.seeds.clone();
    let harness = Harness::new();
    let mut table = Table::new(
        [
            "deployment",
            "cloud viol",
            "bigdata viol",
            "hpc viol",
            "deadline rate",
            "alloc share",
            "used share",
        ]
        .map(String::from)
        .to_vec(),
    );

    eprintln!("running converged (20 nodes) × {} seeds …", seeds.len());
    let converged_config = match args.scenario() {
        Some(spec) => RunConfig::from_spec(spec, ManagerKind::Evolve),
        None => RunConfig::builder(Scenario::headline(1.0), ManagerKind::Evolve).nodes(20),
    }
    .record_series(false)
    .build();
    let converged = harness.run_seeds(&converged_config, &seeds);
    let converged_samples: Vec<DeploymentSample> =
        converged.runs.iter().map(converged_sample).collect();
    summary_row("converged-20", &converged_samples, &mut table);

    let silos = silo_scenarios();
    let silo_nodes = [silos[0].2, silos[1].2, silos[2].2];
    let silo_configs: Vec<RunConfig> = silos
        .iter()
        .map(|(_, scenario, nodes)| {
            RunConfig::builder(scenario.clone(), ManagerKind::Evolve)
                .nodes(*nodes)
                .record_series(false)
                .build()
        })
        .collect();
    eprintln!("running 3 silos × {} seeds …", seeds.len());
    let silo_reps = harness.run_matrix(&silo_configs, &seeds);
    // Pair the three silo runs of each seed into one aggregate sample.
    let silo_samples: Vec<DeploymentSample> = (0..seeds.len())
        .map(|k| {
            silo_sample(
                [&silo_reps[0].runs[k], &silo_reps[1].runs[k], &silo_reps[2].runs[k]],
                silo_nodes,
            )
        })
        .collect();
    summary_row("silos-8/6/6", &silo_samples, &mut table);

    println!(
        "\nT2 — converged cluster vs per-world silos (EVOLVE manager in both, {} seed(s))\n",
        seeds.len()
    );
    println!("{table}");
    let agg = |samples: &[DeploymentSample]| {
        Summary::from_samples(&samples.iter().map(|s| s.violation_rate).collect::<Vec<_>>())
    };
    println!(
        "aggregate violation rate: converged {} vs silos {}",
        agg(&converged_samples).display(3),
        agg(&silo_samples).display(3)
    );
    if let Err(err) = write_csv(&args.out_dir, "tab2_convergence", &table.to_csv()) {
        eprintln!("could not write CSV: {err}");
    }
}
