//! **T3 — scheduler scalability.** Scheduling throughput (pods/s) and
//! per-pod decision latency of the framework as the cluster grows from
//! 100 to 5 000 nodes, for the stock profile and the EVOLVE profile
//! (preemption enabled). This benchmark times real scheduling work (no
//! simulation RNG), so the seed count sets the number of timed
//! repetitions feeding the mean ± 95 % CI. Set `EVOLVE_SMOKE=1` for a
//! shortened 100/250-node grid in CI.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin tab3_sched_scale [rep-count]
//! ```

use std::time::Instant;

use evolve_bench::BenchArgs;
use evolve_core::{write_csv, Summary, Table};
use evolve_scheduler::SchedulerFramework;
use evolve_sim::{ClusterConfig, ClusterState, NodeShape, PodKind, PodSpec};
use evolve_types::{AppId, ResourceVec, SimTime};

fn populated_cluster(nodes: usize, fill: f64, pending: usize) -> ClusterState {
    let mut cluster = ClusterState::new(&ClusterConfig::uniform(nodes, NodeShape::default()));
    // Pre-fill each node to `fill` of its CPU with existing pods.
    let per_node = ResourceVec::new(16_000.0 * fill, 16_384.0 * fill, 100.0 * fill, 200.0 * fill);
    for i in 0..nodes {
        let pod = cluster.create_pod(
            PodSpec::new(PodKind::ServiceReplica { app: AppId::new(9_999) }, per_node, 10),
            SimTime::ZERO,
        );
        cluster.bind_pod(pod, cluster.nodes()[i].id()).expect("fits");
    }
    for k in 0..pending {
        cluster.create_pod(
            PodSpec::new(
                PodKind::ServiceReplica { app: AppId::new((k % 50) as u32) },
                ResourceVec::new(1_000.0, 1_024.0, 10.0, 20.0),
                100,
            ),
            SimTime::from_micros(k as u64),
        );
    }
    cluster
}

fn main() {
    let args = BenchArgs::parse(5);
    let reps = args.seed_count();
    let mut table = Table::new(
        ["profile", "nodes", "pending", "bound", "cycle ms", "pods/s", "µs/pod"]
            .map(String::from)
            .to_vec(),
    );
    let pending = 500usize;
    let grid: &[usize] =
        if args.smoke { &[100, 250] } else { &[100, 250, 500, 1_000, 2_500, 5_000] };
    for profile_name in ["kube-default", "evolve"] {
        for &nodes in grid {
            let cluster = populated_cluster(nodes, 0.5, pending);
            let scheduler = match profile_name {
                "kube-default" => SchedulerFramework::kube_default(),
                _ => SchedulerFramework::evolve_default(),
            };
            // Warm-up pass, then `reps` independently timed passes.
            let _ = scheduler.schedule_cycle(&cluster);
            let mut bound = 0usize;
            let samples: Vec<f64> = (0..reps)
                .map(|_| {
                    let start = Instant::now();
                    bound = scheduler.schedule_cycle(&cluster).bindings.len();
                    start.elapsed().as_secs_f64()
                })
                .collect();
            let cycle_s = Summary::from_samples(&samples);
            let cycle_ms =
                Summary::from_samples(&samples.iter().map(|s| s * 1e3).collect::<Vec<_>>());
            let pods_per_s = pending as f64 / cycle_s.mean;
            table.add_row(vec![
                profile_name.to_string(),
                nodes.to_string(),
                pending.to_string(),
                bound.to_string(),
                cycle_ms.display(2),
                format!("{pods_per_s:.0}"),
                format!("{:.1}", cycle_s.mean / pending as f64 * 1e6),
            ]);
            eprintln!("{profile_name} @ {nodes} nodes: {} ms/cycle", cycle_ms.display(2));
        }
    }
    println!("\nT3 — scheduling one 500-pod cycle on half-full clusters ({reps} timed rep(s))\n");
    println!("{table}");
    if let Err(err) = write_csv(&args.out_dir, "tab3_sched_scale", &table.to_csv()) {
        eprintln!("could not write CSV: {err}");
    }
}
