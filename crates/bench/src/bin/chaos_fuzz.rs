//! **chaos_fuzz** — randomized fault-schedule fuzzing with automatic
//! shrinking (the FoundationDB simulation-testing loop; DESIGN.md
//! decision 12).
//!
//! Each case draws a seeded random fault schedule over a workload
//! profile, runs it through the normal [`RunConfig`] path with the
//! [`ChaosOracle`] invariant battery enabled, and — on any violation —
//! delta-debugs the schedule to a locally minimal reproducer, written as
//! deterministic JSON to `experiments_out/chaos_repro.json`.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin chaos_fuzz [runs]
//! cargo run --release -p evolve-bench --bin chaos_fuzz -- --replay experiments_out/chaos_repro.json
//! EVOLVE_SMOKE=1 …        # short horizon for CI smoke runs
//! EVOLVE_CHAOS_RUNS=500 … # fuzz budget without a CLI argument
//! ```
//!
//! Exit status: 0 when every case is clean (or a replay no longer
//! fails), 1 when a violation was found (fuzz) or reproduced (replay).

use std::path::Path;

use evolve::prelude::*;
use evolve_bench::{BenchArgs, BASE_SEED};
use evolve_sim::chaos::{plan_from_events, random_fault_events, shrink_events};
use evolve_types::SimDuration;

/// Workload profiles the fuzzer cycles through. Names are stored in the
/// reproducer, so keep them stable.
const PROFILES: [&str; 4] = ["single_diurnal", "headline", "interference", "overload"];

/// Resolves a profile name to its scenario, with the fuzz horizon.
fn scenario_for(profile: &str, horizon: SimDuration) -> Option<Scenario> {
    let mut scenario = match profile {
        "single_diurnal" => Scenario::single_diurnal(),
        "headline" => Scenario::headline(0.2),
        "interference" => Scenario::interference(),
        "overload" => Scenario::overload(1.5),
        _ => return None,
    };
    scenario.horizon = horizon;
    Some(scenario)
}

/// The overload profile runs with the capacity arbiter installed (that is
/// the code path it exists to fuzz) on the small reference cluster the
/// scenario is sized against; faults then push an already-saturated
/// arbiter through node losses and actuation failures.
fn profile_nodes(profile: &str, default_nodes: u32) -> u32 {
    if profile == "overload" {
        4
    } else {
        default_nodes
    }
}

/// Runs one oracle-enabled case and returns the oracle's report.
fn run_case(
    profile: &str,
    seed: u64,
    horizon: SimDuration,
    nodes: u32,
    events: &[FaultEvent],
) -> OracleReport {
    let scenario = scenario_for(profile, horizon).expect("known profile");
    let mut builder = RunConfig::builder(scenario, ManagerKind::Evolve)
        .nodes(nodes as usize)
        .seed(seed)
        .record_series(false)
        .faults(plan_from_events(events))
        .oracle(true);
    if profile == "overload" {
        builder = builder.arbiter(ArbiterConfig::default());
    }
    ExperimentRunner::new(builder.build()).run().oracle.expect("oracle was enabled")
}

/// Shrinks a failing schedule and writes the JSON reproducer; returns
/// the reproducer path.
fn minimize_and_write(
    profile: &str,
    seed: u64,
    horizon: SimDuration,
    nodes: u32,
    events: &[FaultEvent],
    violation: &str,
    out_dir: &Path,
) -> std::path::PathBuf {
    let minimal =
        shrink_events(events, |cand| !run_case(profile, seed, horizon, nodes, cand).is_clean());
    // The shrunk schedule may trip a different (earlier) check; record
    // what it actually fires now.
    let report = run_case(profile, seed, horizon, nodes, &minimal);
    let fired = report.failed_checks().first().cloned().unwrap_or_else(|| violation.to_string());
    let repro = Reproducer {
        seed,
        profile: profile.to_string(),
        horizon,
        nodes,
        events: minimal,
        violation: fired,
    };
    let _ = std::fs::create_dir_all(out_dir);
    let path = out_dir.join("chaos_repro.json");
    if let Err(err) = std::fs::write(&path, repro.to_json()) {
        eprintln!("warning: failed to write reproducer {}: {err}", path.display());
    }
    path
}

/// Replays a reproducer file; returns the process exit code.
fn replay(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("error: cannot read {path}: {err}");
            return 2;
        }
    };
    let repro = match Reproducer::from_json(&text) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("error: {path} is not a valid reproducer: {err}");
            return 2;
        }
    };
    if scenario_for(&repro.profile, repro.horizon).is_none() {
        eprintln!("error: unknown profile {:?}", repro.profile);
        return 2;
    }
    println!(
        "replaying {path}: profile={} seed={} nodes={} events={} (expected: {})",
        repro.profile,
        repro.seed,
        repro.nodes,
        repro.events.len(),
        repro.violation
    );
    let report = run_case(&repro.profile, repro.seed, repro.horizon, repro.nodes, &repro.events);
    if report.is_clean() {
        println!(
            "clean: the violation no longer reproduces ({} ticks checked)",
            report.ticks_checked
        );
        0
    } else {
        println!("reproduced {} violation(s):", report.total_violations);
        for v in &report.violations {
            println!("  [{}] {}: {}", v.at, v.check, v.detail);
        }
        1
    }
}

fn main() {
    let args = BenchArgs::parse(1);
    if let Some(i) = args.rest.iter().position(|a| a == "--replay") {
        let Some(path) = args.rest.get(i + 1) else {
            eprintln!("usage: chaos_fuzz --replay <file>");
            std::process::exit(2);
        };
        std::process::exit(replay(path));
    }

    let parse = |s: &str| s.trim().parse::<usize>().ok().filter(|n| *n > 0);
    let runs = args
        .explicit_count
        .or_else(|| std::env::var("EVOLVE_CHAOS_RUNS").ok().as_deref().and_then(parse))
        .unwrap_or(200);
    let horizon =
        if args.smoke { SimDuration::from_secs(240) } else { SimDuration::from_secs(600) };
    let nodes = 8u32;

    println!("chaos_fuzz: {runs} runs, horizon {}s, {nodes} nodes", horizon.as_secs_f64());
    let mut clean = 0usize;
    for i in 0..runs as u64 {
        let seed = BASE_SEED + i;
        let profile = PROFILES[(i % PROFILES.len() as u64) as usize];
        let case_nodes = profile_nodes(profile, nodes);
        let scenario = scenario_for(profile, horizon).expect("known profile");
        let apps = scenario.mix.len();
        let events = random_fault_events(seed, horizon, case_nodes as usize, apps, 5);
        let report = run_case(profile, seed, horizon, case_nodes, &events);
        if report.is_clean() {
            clean += 1;
            if (i + 1).is_multiple_of(25) {
                println!("  {}/{runs} clean", i + 1);
            }
            continue;
        }
        let fired = report.failed_checks().join(", ");
        println!(
            "violation after {clean} clean runs: profile={profile} seed={seed} checks=[{fired}]"
        );
        println!("shrinking {} events…", events.len());
        let path = minimize_and_write(
            profile,
            seed,
            horizon,
            case_nodes,
            &events,
            report.failed_checks().first().map_or("unknown", String::as_str),
            &args.out_dir,
        );
        println!("minimized reproducer written to {}", path.display());
        println!("replay with: chaos_fuzz --replay {}", path.display());
        std::process::exit(1);
    }
    println!("all {clean}/{runs} runs clean — no oracle violations");
}
