//! **Scenario suite.** Sweeps every checked-in `scenarios/*.toml` through
//! the declarative loading path: each file is parsed and validated, run
//! under stock Kubernetes (static replicas) and under EVOLVE (plus the
//! capacity arbiter when the spec declares one), replicated across the
//! seed set, and summarized in one cross-scenario CSV plus a
//! self-contained HTML overview — per-scenario violation rates,
//! utilization, simulated-seconds-per-wall-second, and the capacity knee
//! for specs that carry a `[probe]` table.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin scenario_suite [seed-count]
//! cargo run --release -p evolve-bench --bin scenario_suite -- --dir scenarios
//! EVOLVE_SMOKE=1 … # cap horizons at 120 s for CI smoke runs
//! ```
//!
//! Exits non-zero when any scenario file fails to parse or validate (the
//! typed errors are listed first — this is what CI's scenario smoke job
//! gates on). Writes `experiments_out/scenario_suite.csv` and
//! `experiments_out/scenario_suite.html`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use evolve::prelude::*;
use evolve_bench::BenchArgs;
use evolve_workload::WorldClass;

/// Knee detection: a system is past its knee once its service violation
/// rate exceeds the probe threshold this many ramp steps in a row.
const CONSECUTIVE_BAD: usize = 2;

struct SystemResult {
    system: &'static str,
    violation_rate: Summary,
    service_rate: Summary,
    deadline_rate: Summary,
    used_share: Summary,
    preemptions: Summary,
    sim_per_wall: f64,
}

struct ScenarioResult {
    file: String,
    name: String,
    apps: usize,
    nodes: usize,
    horizon_secs: f64,
    offered_rps: f64,
    systems: Vec<SystemResult>,
    knee_rps: Option<Option<f64>>,
}

fn service_rate(outcome: &RunOutcome) -> f64 {
    let (viol, wins) = outcome
        .apps
        .iter()
        .filter(|a| a.world == WorldClass::Microservice)
        .fold((0u64, 0u64), |(v, w), a| (v + a.violations, w + a.windows));
    if wins == 0 {
        0.0
    } else {
        viol as f64 / wins as f64
    }
}

fn run_system(
    spec: &evolve_workload::ScenarioSpec,
    manager: ManagerKind,
    label: &'static str,
    seeds: &[u64],
    horizon_cap: Option<SimDuration>,
) -> SystemResult {
    let mut config = RunConfig::from_spec(spec, manager).record_series(false).build();
    if let Some(cap) = horizon_cap {
        config.scenario.horizon = config.scenario.horizon.min(cap);
    }
    let rep = Harness::new().run_seeds(&config, seeds);
    let sim_per_wall = rep.runs.iter().map(|r| r.perf.sim_secs_per_wall_sec).fold(0.0f64, f64::max);
    SystemResult {
        system: label,
        violation_rate: rep.violation_rate(),
        service_rate: rep.summarize(service_rate),
        deadline_rate: rep.deadline_hit_rate(),
        used_share: rep.used_share(),
        preemptions: rep.preemptions(),
        sim_per_wall,
    }
}

/// The capacity knee of the EVOLVE system on a spec with a `[probe]`
/// table: the highest offered rate sustained before the service violation
/// rate stayed over the threshold for [`CONSECUTIVE_BAD`] steps. Uses the
/// first seed only — the knee column is an overview, the dedicated
/// `capacity_probe` binary owns the replicated analysis.
fn probe_knee(
    spec: &evolve_workload::ScenarioSpec,
    seeds: &[u64],
    smoke: bool,
    horizon_cap: Option<SimDuration>,
) -> Option<f64> {
    let probe = spec.probe.as_ref()?;
    let (initial, step, max) =
        if smoke { (0.5, 0.5, 2.0) } else { (probe.initial, probe.step, probe.max) };
    let reference_rps = probe.reference_rps.unwrap_or_else(|| spec.offered_rps());
    let seeds = &seeds[..1.min(seeds.len())];
    let mut knee = None;
    let mut bad_streak = 0usize;
    let mut offered = initial;
    while offered <= max + 1e-9 {
        let scaled = spec.scaled_loads(offered);
        let mut config =
            RunConfig::from_spec(&scaled, ManagerKind::Evolve).record_series(false).build();
        if let Some(cap) = horizon_cap {
            config.scenario.horizon = config.scenario.horizon.min(cap);
        }
        let rep = Harness::new().run_seeds(&config, seeds);
        if rep.summarize(service_rate).mean <= probe.threshold {
            bad_streak = 0;
            knee = Some(reference_rps * offered);
        } else {
            bad_streak += 1;
            if bad_streak >= CONSECUTIVE_BAD {
                break;
            }
        }
        offered += step;
    }
    knee
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// One self-contained HTML page: summary header, a bar-annotated results
/// table, and the stock-vs-EVOLVE verdict per scenario. Deliberately
/// timestamp-free so reruns of identical code produce identical bytes.
fn render_html(results: &[ScenarioResult], seeds: usize, smoke: bool) -> String {
    let mut h = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>EVOLVE scenario suite</title>\n<style>\n\
         body{font-family:system-ui,sans-serif;margin:2rem;color:#1a1a2e;max-width:75rem}\n\
         h1{font-size:1.4rem}\n\
         table{border-collapse:collapse;width:100%;font-size:0.85rem}\n\
         th,td{border:1px solid #d0d0e0;padding:0.3rem 0.5rem;text-align:right;\
         white-space:nowrap}\n\
         th{background:#f0f0fa}\ntd.l,th.l{text-align:left}\n\
         tr.evolve{background:#f6fff6}\n\
         .bar{display:inline-block;height:0.7rem;background:#c0392b;vertical-align:middle;\
         margin-right:0.3rem}\n\
         .win{color:#1e7e34;font-weight:600}\n.loss{color:#c0392b}\n\
         p.note{color:#555;font-size:0.85rem}\n</style>\n</head>\n<body>\n",
    );
    let _ = writeln!(h, "<h1>EVOLVE scenario suite — {} scenarios</h1>", results.len());
    let _ = writeln!(
        h,
        "<p class=\"note\">Every checked-in <code>scenarios/*.toml</code>, loaded through the \
         declarative spec parser and replicated over {seeds} seed(s){}. Violation rate is the \
         fraction of PLO windows violated (lower is better); the knee is the highest offered \
         request rate the EVOLVE system sustained on the spec's probe ramp.</p>",
        if smoke { ", horizons capped at 120 s (smoke mode)" } else { "" }
    );
    h.push_str(
        "<table>\n<tr><th class=\"l\">scenario</th><th class=\"l\">system</th>\
         <th>apps</th><th>nodes</th><th>horizon (s)</th><th>offered rps</th>\
         <th>violation rate</th><th>service viol</th><th>deadline rate</th>\
         <th>used share</th><th>preemptions</th><th>sim-s/wall-s</th>\
         <th>knee (rps)</th></tr>\n",
    );
    for r in results {
        let stock = r.systems.iter().find(|s| s.system == "kube-static");
        for s in &r.systems {
            let evolve_row = s.system != "kube-static";
            let verdict = match (evolve_row, stock) {
                (true, Some(st)) if s.violation_rate.mean <= st.violation_rate.mean => {
                    " <span class=\"win\">&#x2713;</span>"
                }
                (true, Some(_)) => " <span class=\"loss\">&#x2717;</span>",
                _ => "",
            };
            let bar = (s.violation_rate.mean.min(1.0) * 60.0).round();
            let knee = match r.knee_rps {
                Some(Some(k)) if evolve_row => format!("{k:.0}"),
                Some(None) if evolve_row => "none".into(),
                _ => "&mdash;".into(),
            };
            let _ = writeln!(
                h,
                "<tr{}><td class=\"l\">{}</td><td class=\"l\">{}</td><td>{}</td><td>{}</td>\
                 <td>{:.0}</td><td>{:.0}</td>\
                 <td><span class=\"bar\" style=\"width:{bar}px\"></span>{}{verdict}</td>\
                 <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{:.0}</td><td>{knee}</td></tr>",
                if evolve_row { " class=\"evolve\"" } else { "" },
                html_escape(&r.name),
                s.system,
                r.apps,
                r.nodes,
                r.horizon_secs,
                r.offered_rps,
                s.violation_rate.display(3),
                s.service_rate.display(3),
                s.deadline_rate.display(2),
                s.used_share.display(3),
                s.preemptions.display(1),
                s.sim_per_wall,
            );
        }
    }
    h.push_str("</table>\n");
    h.push_str(
        "<p class=\"note\">Source files: <code>scenarios/*.toml</code> — authoring reference in \
         EXPERIMENTS.md &sect; Authoring scenarios. Regenerate with \
         <code>cargo run --release -p evolve-bench --bin scenario_suite</code>.</p>\n",
    );
    h.push_str("</body>\n</html>\n");
    h
}

fn main() -> ExitCode {
    let args = BenchArgs::parse(3);
    let seeds = &args.seeds;
    let dir = args
        .rest
        .iter()
        .position(|a| a == "--dir")
        .and_then(|i| args.rest.get(i + 1))
        .map_or_else(|| PathBuf::from("scenarios"), PathBuf::from);
    let horizon_cap = args.smoke.then(|| SimDuration::from_secs(120));

    // Discover and parse every scenario file up front; any failure lists
    // its typed error and fails the whole suite before a single run.
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "toml"))
            .collect(),
        Err(err) => {
            eprintln!("error: cannot read scenario directory {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    paths.sort();
    if paths.is_empty() {
        eprintln!("error: no *.toml files in {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut specs = Vec::new();
    let mut failures = Vec::new();
    for path in &paths {
        match ScenarioSpec::from_file(path) {
            Ok(spec) => specs.push((path.clone(), spec)),
            Err(err) => failures.push((path.clone(), err)),
        }
    }
    if !failures.is_empty() {
        eprintln!("{} scenario file(s) failed to load:", failures.len());
        for (path, err) in &failures {
            eprintln!("  {}: {err}", path.display());
        }
        return ExitCode::FAILURE;
    }
    eprintln!(
        "scenario_suite: {} scenarios from {}, {} seed(s){}",
        specs.len(),
        dir.display(),
        seeds.len(),
        if args.smoke { ", smoke horizons" } else { "" }
    );

    let mut results = Vec::new();
    for (path, spec) in &specs {
        let file = path
            .file_name()
            .map_or_else(|| path.display().to_string(), |f| f.to_string_lossy().into_owned());
        eprintln!(
            "{file}: {} ({} apps, {} nodes) …",
            spec.name,
            spec.services.len() + spec.batch_jobs.len() + spec.hpc_jobs.len(),
            spec.cluster.nodes
        );
        let systems = vec![
            run_system(spec, ManagerKind::KubeStatic, "kube-static", seeds, horizon_cap),
            run_system(spec, ManagerKind::Evolve, "evolve", seeds, horizon_cap),
        ];
        let knee_rps =
            spec.probe.is_some().then(|| probe_knee(spec, seeds, args.smoke, horizon_cap));
        results.push(ScenarioResult {
            file,
            name: spec.name.clone(),
            apps: spec.services.len() + spec.batch_jobs.len() + spec.hpc_jobs.len(),
            nodes: spec.cluster.nodes,
            horizon_secs: horizon_cap
                .map_or(spec.horizon, |cap| spec.horizon.min(cap))
                .as_secs_f64(),
            offered_rps: spec.offered_rps(),
            systems,
            knee_rps,
        });
    }

    // Cross-scenario CSV: one row per (scenario, system).
    let mut csv = String::from(
        "file,scenario,system,apps,nodes,horizon_s,offered_rps,violation_rate_mean,\
         violation_rate_ci95,service_violation_rate_mean,deadline_rate_mean,used_share_mean,\
         preemptions_mean,sim_s_per_wall_s,knee_rps\n",
    );
    let mut table = Table::new(
        ["scenario", "system", "viol rate", "svc viol", "deadline", "used", "sim-s/wall-s", "knee"]
            .map(String::from)
            .to_vec(),
    );
    for r in &results {
        for s in &r.systems {
            let knee = match (s.system, r.knee_rps) {
                ("evolve", Some(Some(k))) => format!("{k:.0}"),
                ("evolve", Some(None)) => "none".into(),
                _ => String::new(),
            };
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{:.0},{:.1},{:.4},{:.4},{:.4},{:.4},{:.4},{:.1},{:.0},{knee}",
                r.file,
                r.name,
                s.system,
                r.apps,
                r.nodes,
                r.horizon_secs,
                r.offered_rps,
                s.violation_rate.mean,
                s.violation_rate.ci95,
                s.service_rate.mean,
                s.deadline_rate.mean,
                s.used_share.mean,
                s.preemptions.mean,
                s.sim_per_wall,
            );
            table.add_row(vec![
                r.name.clone(),
                s.system.to_string(),
                s.violation_rate.display(3),
                s.service_rate.display(3),
                s.deadline_rate.display(2),
                s.used_share.display(3),
                format!("{:.0}", s.sim_per_wall),
                if knee.is_empty() { "—".into() } else { knee },
            ]);
        }
    }
    println!(
        "\nScenario suite — {} scenarios × (kube-static, evolve), {} seed(s)\n",
        results.len(),
        seeds.len()
    );
    println!("{table}");

    if let Err(err) = write_csv(&args.out_dir, "scenario_suite", &csv) {
        eprintln!("could not write CSV: {err}");
        return ExitCode::FAILURE;
    }
    let html = render_html(&results, seeds.len(), args.smoke);
    let html_path = args.out_dir.join("scenario_suite.html");
    if let Err(err) = std::fs::write(&html_path, html) {
        eprintln!("could not write {}: {err}", html_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}/scenario_suite.csv and {}", args.out_dir.display(), html_path.display());
    ExitCode::SUCCESS
}
