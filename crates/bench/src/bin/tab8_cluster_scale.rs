//! **T8 — cluster-scale end-to-end scheduling.** Full simulation runs
//! (engine, manager, scheduler, telemetry — not isolated cycles like T3)
//! over the slot-packed `cluster_scale` scenario: every node filled to
//! its 12-pod capacity, an oversubscribed batch backlog keeping the
//! pending queue warm, and ~1.2 × nodes placements per control tick.
//! Each grid cell runs twice — naive full-node-scan scheduling and the
//! incremental feasibility index — and reports µs per scheduled pod,
//! feasibility work per pod (filter evaluations + index probes) and the
//! measured reduction factor of the index over the scan.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin tab8_cluster_scale
//! ```
//!
//! `EVOLVE_SMOKE=1` shrinks the grid to 100–250 nodes and a 2-minute
//! horizon so CI's `scale-smoke` job finishes quickly. The naive mode is
//! skipped at 5 000 nodes (its quadratic cost dominates the whole bench);
//! the indexed column still reports, which is the point of the table.

use evolve::prelude::*;
use evolve_bench::{BenchArgs, BASE_SEED};

struct Cell {
    nodes: usize,
    apps: usize,
    mode: &'static str,
    bound: u64,
    us_per_pod: f64,
    evals_per_pod: f64,
    probes_per_pod: f64,
    sim_per_wall: f64,
    peak_running: u32,
}

fn run_cell(nodes: usize, apps: usize, horizon: SimDuration, indexed: bool) -> Cell {
    let scenario = Scenario::cluster_scale(nodes, apps, horizon);
    let cfg = RunConfig::builder(scenario, ManagerKind::KubeStatic)
        .nodes(nodes)
        .scheduler(SchedulerProfile::Evolve)
        .seed(BASE_SEED)
        .record_series(false)
        .indexed_scheduling(indexed)
        .build();
    let outcome = ExperimentRunner::new(cfg).run();
    let bound = outcome.bindings.max(1);
    Cell {
        nodes,
        apps,
        mode: if indexed { "indexed" } else { "naive" },
        bound: outcome.bindings,
        us_per_pod: outcome.perf.sched_wall_ns as f64 / 1e3 / bound as f64,
        evals_per_pod: outcome.perf.filter_evals as f64 / bound as f64,
        probes_per_pod: outcome.perf.feasibility_probes as f64 / bound as f64,
        sim_per_wall: outcome.perf.sim_secs_per_wall_sec,
        peak_running: outcome.perf.peak_running_pods,
    }
}

fn main() {
    let args = BenchArgs::parse(1);
    let smoke = args.smoke;
    // (nodes, service apps, simulated horizon, run the naive baseline?).
    // Naive at 2 500 nodes already costs hundreds of millions of filter
    // evaluations; at 5 000 it would dominate the entire bench, so only
    // the indexed mode runs there.
    let grid: Vec<(usize, usize, u64, bool)> = if smoke {
        vec![(100, 10, 120, true), (250, 10, 120, true)]
    } else {
        vec![
            (100, 10, 600, true),
            (500, 20, 600, true),
            (1_000, 40, 600, true),
            (2_500, 40, 600, true),
            (5_000, 40, 300, false),
        ]
    };
    let mut table = Table::new(
        [
            "nodes",
            "apps",
            "mode",
            "pods bound",
            "µs/pod",
            "evals/pod",
            "probes/pod",
            "reduction",
            "sim-s/wall-s",
            "peak running",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (nodes, apps, horizon_secs, with_naive) in grid {
        let horizon = SimDuration::from_secs(horizon_secs);
        let naive = with_naive.then(|| run_cell(nodes, apps, horizon, false));
        let indexed = run_cell(nodes, apps, horizon, true);
        // Feasibility work per scheduled pod: the naive scan pays filter
        // evaluations only; the index pays (few) filter evaluations plus
        // tree probes. The ratio is the headline reduction.
        let indexed_work = indexed.evals_per_pod + indexed.probes_per_pod;
        for cell in naive.iter().chain(std::iter::once(&indexed)) {
            let reduction = match (cell.mode, &naive) {
                ("indexed", Some(n)) if indexed_work > 0.0 => {
                    format!("{:.1}x", n.evals_per_pod / indexed_work)
                }
                _ => "—".into(),
            };
            table.add_row(vec![
                cell.nodes.to_string(),
                cell.apps.to_string(),
                cell.mode.to_string(),
                cell.bound.to_string(),
                format!("{:.1}", cell.us_per_pod),
                format!("{:.1}", cell.evals_per_pod),
                format!("{:.1}", cell.probes_per_pod),
                reduction,
                format!("{:.0}", cell.sim_per_wall),
                cell.peak_running.to_string(),
            ]);
            eprintln!(
                "{} nodes {}: {} pods bound, {:.1} µs/pod, {:.1} evals/pod, \
                 {:.1} probes/pod, {:.0} sim-s/wall-s",
                cell.nodes,
                cell.mode,
                cell.bound,
                cell.us_per_pod,
                cell.evals_per_pod,
                cell.probes_per_pod,
                cell.sim_per_wall,
            );
        }
    }
    let label = if smoke { " (smoke grid)" } else { "" };
    println!(
        "\nT8 — end-to-end cluster-scale scheduling, naive scan vs feasibility index{label}\n"
    );
    println!("{table}");
    if let Err(err) = write_csv(&args.out_dir, "tab8_cluster_scale", &table.to_csv()) {
        eprintln!("could not write CSV: {err}");
    }
}
