//! **T1 — headline comparison.** PLO violations and cluster utilization
//! for EVOLVE vs stock Kubernetes, threshold HPA and a VPA-like vertical
//! scaler, on the converged headline mix (6 dynamic services + 3 batch
//! jobs + 2 HPC gangs on 20 nodes).
//!
//! ```text
//! cargo run --release -p evolve-bench --bin tab1_headline
//! ```

use evolve_bench::{headline_headers, headline_row, output_dir};
use evolve_core::{write_csv, ExperimentRunner, ManagerKind, RunConfig, Table};
use evolve_workload::Scenario;

fn main() {
    let managers = [
        ManagerKind::Evolve,
        ManagerKind::KubeStatic,
        ManagerKind::Hpa { target_utilization: 0.6 },
        ManagerKind::Vpa { margin: 0.3 },
    ];
    let mut table = Table::new(headline_headers());
    let mut evolve_rate = None;
    let mut static_rate = None;
    for manager in managers {
        let label = manager.label();
        eprintln!("running {label} …");
        let outcome = ExperimentRunner::new(
            RunConfig::new(Scenario::headline(1.0), manager).with_seed(42).without_series(),
        )
        .run();
        match label.as_str() {
            "evolve" => evolve_rate = Some(outcome.total_violation_rate()),
            "kube-static" => static_rate = Some(outcome.total_violation_rate()),
            _ => {}
        }
        table.add_row(headline_row(&outcome));
    }
    println!("\nT1 — headline: converged mix, 20 nodes, 20 simulated minutes\n");
    println!("{table}");
    if let (Some(e), Some(k)) = (evolve_rate, static_rate) {
        if e > 0.0 {
            println!("violation-rate improvement over stock Kubernetes: {:.1}x", k / e);
        } else {
            println!("EVOLVE had zero violation windows (stock Kubernetes: {k:.3})");
        }
    }
    if let Err(err) = write_csv(&output_dir(), "tab1_headline", &table.to_csv()) {
        eprintln!("could not write CSV: {err}");
    }
}
