//! **T1 — headline comparison.** PLO violations and cluster utilization
//! for EVOLVE vs stock Kubernetes, threshold HPA and a VPA-like vertical
//! scaler, on the converged headline mix (6 dynamic services + 3 batch
//! jobs + 2 HPC gangs on 20 nodes). Each policy is replicated across
//! seeds in parallel and reported as mean ± 95 % CI.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin tab1_headline [seed-count]
//! ```

use evolve::prelude::*;
use evolve_bench::{headline_headers, headline_summary_row, BenchArgs};

fn main() {
    let args = BenchArgs::parse(5);
    let seeds = &args.seeds;
    let managers = [
        ManagerKind::Evolve,
        ManagerKind::KubeStatic,
        ManagerKind::Hpa { target_utilization: 0.6 },
        ManagerKind::Vpa { margin: 0.3 },
    ];
    let configs: Vec<RunConfig> = managers
        .iter()
        .map(|m| {
            match args.scenario() {
                Some(spec) => RunConfig::from_spec(spec, m.clone()),
                None => RunConfig::builder(Scenario::headline(1.0), m.clone()),
            }
            .record_series(false)
            .build()
        })
        .collect();
    eprintln!("running {} policies × {} seeds …", configs.len(), seeds.len());
    let reps = Harness::new().run_matrix(&configs, seeds);

    let mut table = Table::new(headline_headers());
    let mut evolve_rate = None;
    let mut static_rate = None;
    for rep in &reps {
        match rep.manager() {
            "evolve" => evolve_rate = Some(rep.violation_rate().mean),
            "kube-static" => static_rate = Some(rep.violation_rate().mean),
            _ => {}
        }
        table.add_row(headline_summary_row(rep));
    }
    println!(
        "\nT1 — headline: converged mix, 20 nodes, 20 simulated minutes, {} seed(s)\n",
        seeds.len()
    );
    println!("{table}");
    if let (Some(e), Some(k)) = (evolve_rate, static_rate) {
        if e > 0.0 {
            println!("violation-rate improvement over stock Kubernetes: {:.1}x", k / e);
        } else {
            println!("EVOLVE had zero violation windows (stock Kubernetes: {k:.3})");
        }
    }
    if let Err(err) = write_csv(&args.out_dir, "tab1_headline", &table.to_csv()) {
        eprintln!("could not write CSV: {err}");
    }
}
