//! **F5 — flash crowd.** A 5× spike hits at t=120 s for 150 s. Measure
//! the time to recover the PLO, the worst excursion, and the requests
//! lost, per policy.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin fig5_flashcrowd
//! ```

use evolve_bench::{output_dir, settling_analysis};
use evolve_core::{write_csv, ExperimentRunner, ManagerKind, RunConfig, Table};
use evolve_types::SimTime;
use evolve_workload::Scenario;

fn main() {
    let spike_at = SimTime::from_secs(120);
    let target_ms = 100.0;
    let managers = [
        ManagerKind::Evolve,
        ManagerKind::Hpa { target_utilization: 0.6 },
        ManagerKind::KubeStatic,
    ];
    let mut table = Table::new(
        ["policy", "recovery (s)", "worst p99", "timeouts", "violations"]
            .map(String::from)
            .to_vec(),
    );
    let mut csv = String::from("policy,recovery_s,overshoot,timeouts\n");
    for manager in managers {
        let label = manager.label();
        eprintln!("running {label} …");
        let outcome = ExperimentRunner::new(
            RunConfig::new(Scenario::flash_crowd(5.0), manager).with_nodes(8).with_seed(42),
        )
        .run();
        let p99 = outcome
            .registry
            .series("app0/p99_ms")
            .map(|s| s.to_points())
            .unwrap_or_default();
        let s = settling_analysis(&p99, spike_at, target_ms, 3);
        let timeouts: u64 = outcome.apps.iter().map(|a| a.timeouts).sum();
        table.add_row(vec![
            label.clone(),
            s.settle_secs.map_or("never".into(), |v| format!("{v:.0}")),
            format!("{:.0} ms", target_ms * (1.0 + s.overshoot)),
            timeouts.to_string(),
            outcome.total_violations().to_string(),
        ]);
        csv.push_str(&format!(
            "{label},{},{:.3},{timeouts}\n",
            s.settle_secs.map_or(-1.0, |v| v),
            s.overshoot
        ));
    }
    println!("\nF5 — 5× flash crowd at t=120 s (150 s long), PLO p99 ≤ 100 ms\n");
    println!("{table}");
    println!("expected shape: EVOLVE recovers within a handful of control periods (vertical");
    println!("resize absorbs the first seconds, replicas follow); the HPA needs its");
    println!("utilization averages to move; the static baseline never recovers until the");
    println!("spike ends.");
    if let Err(err) = write_csv(&output_dir(), "fig5_flashcrowd", &csv) {
        eprintln!("could not write CSV: {err}");
    }
}
