//! **F5 — flash crowd.** A 5× spike hits at t=120 s for 150 s. Measure
//! the time to recover the PLO, the worst excursion, and the requests
//! lost, per policy, replicated across seeds (mean ± 95 % CI).
//!
//! ```text
//! cargo run --release -p evolve-bench --bin fig5_flashcrowd [seed-count]
//! ```

use evolve::prelude::*;
use evolve_bench::{replicated_settling, BenchArgs};

fn main() {
    let args = BenchArgs::parse(5);
    let seeds = &args.seeds;
    let spike_at = SimTime::from_secs(120);
    let target_ms = 100.0;
    let managers = [
        ManagerKind::Evolve,
        ManagerKind::Hpa { target_utilization: 0.6 },
        ManagerKind::KubeStatic,
    ];
    // Recovery analysis needs the per-tick p99 series, so series stay on.
    let configs: Vec<RunConfig> = managers
        .iter()
        .map(|m| {
            match args.scenario() {
                Some(spec) => RunConfig::from_spec(spec, m.clone()),
                None => RunConfig::builder(Scenario::flash_crowd(5.0), m.clone()).nodes(8),
            }
            .build()
        })
        .collect();
    eprintln!("running {} policies × {} seeds …", configs.len(), seeds.len());
    let reps = Harness::new().run_matrix(&configs, seeds);

    let mut table = Table::new(
        ["policy", "recovery (s)", "worst p99", "timeouts", "viol rate"].map(String::from).to_vec(),
    );
    let mut csv = String::from("policy,recovery_s_mean,recovery_ci,overshoot_mean,timeouts_mean\n");
    for rep in &reps {
        let label = rep.manager().to_string();
        let s = replicated_settling(rep, "app0/p99_ms", spike_at, target_ms, 3);
        let timeouts = rep.timeouts();
        table.add_row(vec![
            label.clone(),
            s.settle_display(),
            format!("{:.0} ms", target_ms * (1.0 + s.overshoot.mean)),
            timeouts.display(0),
            rep.violation_rate().display(3),
        ]);
        csv.push_str(&format!(
            "{label},{:.1},{:.1},{:.3},{:.0}\n",
            s.settle_mean_or_neg(),
            s.settle.as_ref().map_or(0.0, |v| v.ci95),
            s.overshoot.mean,
            timeouts.mean,
        ));
    }
    println!(
        "\nF5 — 5× flash crowd at t=120 s (150 s long), PLO p99 ≤ 100 ms, {} seed(s)\n",
        seeds.len()
    );
    println!("{table}");
    println!("expected shape: EVOLVE recovers within a handful of control periods (vertical");
    println!("resize absorbs the first seconds, replicas follow); the HPA needs its");
    println!("utilization averages to move; the static baseline never recovers until the");
    println!("spike ends.");
    if let Err(err) = write_csv(&args.out_dir, "fig5_flashcrowd", &csv) {
        eprintln!("could not write CSV: {err}");
    }
}
