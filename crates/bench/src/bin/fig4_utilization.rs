//! **F4 — utilization.** Per-resource allocated/used shares on the
//! headline mix for each policy, plus the cluster CPU-share time series
//! (CSV) that the utilization figure plots.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin fig4_utilization
//! ```

use evolve_bench::output_dir;
use evolve_core::{write_csv, ExperimentRunner, ManagerKind, RunConfig, Table};
use evolve_types::Resource;
use evolve_workload::Scenario;

fn main() {
    let managers = [
        ManagerKind::Evolve,
        ManagerKind::KubeStatic,
        ManagerKind::Hpa { target_utilization: 0.6 },
    ];
    let mut table = Table::new(
        [
            "policy",
            "alloc cpu",
            "alloc mem",
            "alloc disk",
            "alloc net",
            "used cpu",
            "eff cpu",
            "viol rate",
        ]
        .map(String::from)
        .to_vec(),
    );
    for manager in managers {
        let label = manager.label();
        eprintln!("running {label} …");
        let outcome = ExperimentRunner::new(
            RunConfig::new(Scenario::headline(1.0), manager).with_seed(42),
        )
        .run();
        let u = outcome.utilization;
        table.add_row(vec![
            label.clone(),
            format!("{:.3}", u.allocated_share[Resource::Cpu]),
            format!("{:.3}", u.allocated_share[Resource::Memory]),
            format!("{:.3}", u.allocated_share[Resource::DiskIo]),
            format!("{:.3}", u.allocated_share[Resource::NetIo]),
            format!("{:.3}", u.used_share[Resource::Cpu]),
            format!("{:.3}", u.efficiency[Resource::Cpu]),
            format!("{:.3}", outcome.total_violation_rate()),
        ]);
        let csv = outcome
            .registry
            .wide_csv(&["cluster/allocated_cpu_share", "cluster/used_cpu_share", "cluster/pods_pending"]);
        if let Err(err) = write_csv(&output_dir(), &format!("fig4_utilization_{label}"), &csv) {
            eprintln!("could not write CSV: {err}");
        }
    }
    println!("\nF4 — time-averaged utilization on the headline mix\n");
    println!("{table}");
    println!("the claim under test: EVOLVE converts reservation into useful work — its");
    println!("used/allocated efficiency should be the highest while violations stay lowest.");
}
