//! **F4 — utilization.** Per-resource allocated/used shares on the
//! headline mix for each policy (mean ± 95 % CI across seeds), plus the
//! cluster CPU-share time series (CSV, first seed) that the utilization
//! figure plots.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin fig4_utilization [seed-count]
//! ```

use evolve::prelude::*;
use evolve_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse(5);
    let seeds = &args.seeds;
    let managers = [
        ManagerKind::Evolve,
        ManagerKind::KubeStatic,
        ManagerKind::Hpa { target_utilization: 0.6 },
    ];
    // The CSV wants the cluster time series, so series stay on.
    let configs: Vec<RunConfig> = managers
        .iter()
        .map(|m| {
            match args.scenario() {
                Some(spec) => RunConfig::from_spec(spec, m.clone()),
                None => RunConfig::builder(Scenario::headline(1.0), m.clone()),
            }
            .build()
        })
        .collect();
    eprintln!("running {} policies × {} seeds …", configs.len(), seeds.len());
    let reps = Harness::new().run_matrix(&configs, seeds);

    let mut table = Table::new(
        [
            "policy",
            "alloc cpu",
            "alloc mem",
            "alloc disk",
            "alloc net",
            "used cpu",
            "eff cpu",
            "viol rate",
        ]
        .map(String::from)
        .to_vec(),
    );
    for rep in &reps {
        let label = rep.manager().to_string();
        table.add_row(vec![
            label.clone(),
            rep.summarize(|r| r.utilization.allocated_share[Resource::Cpu]).display(3),
            rep.summarize(|r| r.utilization.allocated_share[Resource::Memory]).display(3),
            rep.summarize(|r| r.utilization.allocated_share[Resource::DiskIo]).display(3),
            rep.summarize(|r| r.utilization.allocated_share[Resource::NetIo]).display(3),
            rep.summarize(|r| r.utilization.used_share[Resource::Cpu]).display(3),
            rep.summarize(|r| r.utilization.efficiency[Resource::Cpu]).display(3),
            rep.violation_rate().display(3),
        ]);
        let csv = rep.representative().registry.wide_csv(&[
            "cluster/allocated_cpu_share",
            "cluster/used_cpu_share",
            "cluster/pods_pending",
        ]);
        if let Err(err) = write_csv(&args.out_dir, &format!("fig4_utilization_{label}"), &csv) {
            eprintln!("could not write CSV: {err}");
        }
    }
    println!("\nF4 — time-averaged utilization on the headline mix ({} seed(s))\n", seeds.len());
    println!("{table}");
    println!("the claim under test: EVOLVE converts reservation into useful work — its");
    println!("used/allocated efficiency should be the highest while violations stay lowest.");
}
