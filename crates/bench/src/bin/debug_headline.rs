//! Scratch diagnostics: per-app allocation/usage traces on the headline
//! mix under EVOLVE.

use evolve::prelude::*;

fn main() {
    let outcome = ExperimentRunner::new(
        RunConfig::builder(Scenario::headline(1.0), ManagerKind::Evolve).seed(42).build(),
    )
    .run();
    println!("app summaries:");
    for a in &outcome.apps {
        println!(
            "  {:12} {:8} windows {:4} viol {:4} compl {:8} timeouts {:5}",
            a.name,
            a.world.to_string(),
            a.windows,
            a.violations,
            a.completions,
            a.timeouts
        );
    }
    // Mean alloc_cpu and replicas per app over the run.
    for i in 0..11u32 {
        let alloc = outcome.registry.series(&format!("app{i}/alloc_cpu"));
        let reps = outcome.registry.series(&format!("app{i}/replicas"));
        let p99 = outcome.registry.series(&format!("app{i}/p99_ms"));
        if let (Some(alloc), Some(reps)) = (alloc, reps) {
            let mean_alloc = alloc.mean().unwrap_or(0.0);
            let max_alloc = alloc.iter().map(|s| s.value).fold(0.0f64, f64::max);
            let mean_reps = reps.mean().unwrap_or(0.0);
            let max_reps = reps.iter().map(|s| s.value).fold(0.0f64, f64::max);
            let mean_p99 = p99.and_then(|s| s.mean()).unwrap_or(-1.0);
            println!(
                "app{i}: mean_alloc_cpu {mean_alloc:9.0} max {max_alloc:9.0} mean_reps {mean_reps:5.2} max_reps {max_reps:3.0} mean_p99 {mean_p99:8.1}"
            );
        }
    }
}
