//! **T6 — resilience.** Recovery of the PLO after injected faults — a
//! node crash with recovery, a full scrape blackout, and a control-plane
//! stall — for EVOLVE vs the threshold HPA and the static baseline,
//! replicated across seeds. Reports the time to re-enter PLO compliance
//! after the fault lands and the violating windows inside the fault span
//! (fault start → fault end + 120 s of aftermath).
//!
//! ```text
//! cargo run --release -p evolve-bench --bin tab6_resilience [seed-count]
//! EVOLVE_SMOKE=1 … # short horizon for CI smoke runs
//! ```

use evolve::prelude::*;
use evolve_bench::{replicated_settling, BenchArgs};

struct FaultCase {
    name: &'static str,
    plan: FaultPlan,
    fault_at: u64,
    fault_end: u64,
}

/// Violating p99 windows inside `[from, to]`, averaged across seeds.
fn violations_during(rep: &ReplicatedOutcome, from: u64, to: u64, target_ms: f64) -> Summary {
    let per_run: Vec<f64> = rep
        .runs
        .iter()
        .map(|r| {
            r.registry
                .series("app0/p99_ms")
                .map(|s| {
                    s.to_points()
                        .iter()
                        .filter(|&&(t, v)| t >= from as f64 && t <= to as f64 && v > target_ms)
                        .count() as f64
                })
                .unwrap_or(0.0)
        })
        .collect();
    Summary::from_samples(&per_run)
}

fn main() {
    let args = BenchArgs::parse(5);
    let seeds = &args.seeds;
    let (horizon, fault_at) = if args.smoke { (360u64, 120u64) } else { (900u64, 300u64) };
    let target_ms = 100.0;
    let cases = [
        FaultCase {
            name: "node crash (120 s)",
            plan: FaultPlan::new().with_node_crash(
                NodeId::new(0),
                SimTime::from_secs(fault_at),
                Some(SimDuration::from_secs(120)),
            ),
            fault_at,
            fault_end: fault_at + 120,
        },
        FaultCase {
            name: "scrape blackout (90 s)",
            plan: FaultPlan::new()
                .with_scrape_blackout(SimTime::from_secs(fault_at), SimDuration::from_secs(90)),
            fault_at,
            fault_end: fault_at + 90,
        },
        FaultCase {
            name: "control stall (60 s)",
            plan: FaultPlan::new()
                .with_control_stall(SimTime::from_secs(fault_at), SimDuration::from_secs(60)),
            fault_at,
            fault_end: fault_at + 60,
        },
    ];
    let managers = [
        ManagerKind::Evolve,
        ManagerKind::Hpa { target_utilization: 0.6 },
        ManagerKind::KubeStatic,
    ];

    let mut table = Table::new(
        ["fault", "policy", "recovery (s)", "viol in fault", "viol rate", "timeouts"]
            .map(String::from)
            .to_vec(),
    );
    let mut csv = String::from(
        "fault,policy,recovery_s_mean,recovery_ci,viol_in_fault_mean,viol_in_fault_ci,viol_rate_mean,timeouts_mean\n",
    );
    for case in &cases {
        let configs: Vec<RunConfig> = managers
            .iter()
            .map(|m| {
                // With `--scenario`, the spec supplies the workload and
                // cluster shape; each case still injects its own fault.
                let mut config = match args.scenario() {
                    Some(spec) => RunConfig::from_spec(spec, m.clone()),
                    None => RunConfig::builder(Scenario::single_diurnal(), m.clone()).nodes(6),
                }
                .faults(case.plan.clone())
                .build();
                config.scenario.horizon = SimDuration::from_secs(horizon);
                config
            })
            .collect();
        eprintln!("{}: {} policies × {} seeds …", case.name, configs.len(), seeds.len());
        let reps = Harness::new().run_matrix(&configs, seeds);
        for rep in &reps {
            let label = rep.manager().to_string();
            let settle = replicated_settling(
                rep,
                "app0/p99_ms",
                SimTime::from_secs(case.fault_at),
                target_ms,
                3,
            );
            let in_fault = violations_during(rep, case.fault_at, case.fault_end + 120, target_ms);
            let timeouts = rep.timeouts();
            table.add_row(vec![
                case.name.to_string(),
                label.clone(),
                settle.settle_display(),
                in_fault.display(1),
                rep.violation_rate().display(3),
                timeouts.display(0),
            ]);
            csv.push_str(&format!(
                "{},{label},{:.1},{:.1},{:.2},{:.2},{:.4},{:.0}\n",
                case.name.replace(',', ";"),
                settle.settle_mean_or_neg(),
                settle.settle.as_ref().map_or(0.0, |s| s.ci95),
                in_fault.mean,
                in_fault.ci95,
                rep.violation_rate().mean,
                timeouts.mean,
            ));
        }
    }
    println!(
        "\nT6 — resilience under injected faults (PLO p99 ≤ {target_ms:.0} ms, horizon {horizon} s, fault at t={fault_at} s, {} seed(s))\n",
        seeds.len()
    );
    println!("{table}");
    println!("expected shape: EVOLVE re-enters compliance fastest after the node crash");
    println!("(evicted replicas requeue with backoff and the controller re-grows capacity)");
    println!("with fewer violating windows than the HPA or the static baseline; the scrape");
    println!("blackout costs EVOLVE nothing (hold-last-safe keeps the pre-fault allocation,");
    println!("windows are simply missing); the stall only delays actuation by its length.");
    if let Err(err) = write_csv(&args.out_dir, "tab6_resilience", &table.to_csv()) {
        eprintln!("could not write CSV: {err}");
    }
    if let Err(err) = write_csv(&args.out_dir, "tab6_resilience_raw", &csv) {
        eprintln!("could not write CSV: {err}");
    }
}
