//! **F2 — step response.** A 4× load step hits one service; measure
//! settling time (back under the 100 ms PLO for 3 consecutive windows)
//! and overshoot, for adaptive vs fixed-gain EVOLVE and the HPA.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin fig2_step
//! ```

use evolve_bench::{output_dir, settling_analysis};
use evolve_core::{
    write_csv, EvolvePolicyConfig, ExperimentRunner, ManagerKind, RunConfig, Table,
};
use evolve_types::SimTime;
use evolve_workload::Scenario;

fn main() {
    let step_at = SimTime::from_secs(240); // from Scenario::step_response
    let target_ms = 100.0;
    let variants: Vec<(&str, ManagerKind)> = vec![
        ("evolve adaptive", ManagerKind::Evolve),
        (
            "evolve fixed-gains",
            ManagerKind::EvolveWith(EvolvePolicyConfig::default().fixed_gains()),
        ),
        ("hpa", ManagerKind::Hpa { target_utilization: 0.6 }),
    ];
    let mut table = Table::new(
        ["variant", "settle (s)", "overshoot", "violations", "windows"]
            .map(String::from)
            .to_vec(),
    );
    let mut csv = String::from("variant,settle_s,overshoot\n");
    for (label, manager) in variants {
        eprintln!("running {label} …");
        let outcome = ExperimentRunner::new(
            RunConfig::new(Scenario::step_response(4.0), manager).with_nodes(8).with_seed(42),
        )
        .run();
        let p99 = outcome
            .registry
            .series("app0/p99_ms")
            .map(|s| s.to_points())
            .unwrap_or_default();
        let s = settling_analysis(&p99, step_at, target_ms, 3);
        let settle = s.settle_secs.map_or("never".into(), |v| format!("{v:.0}"));
        table.add_row(vec![
            label.to_string(),
            settle.clone(),
            format!("{:.2}x", s.overshoot),
            outcome.total_violations().to_string(),
            outcome.total_windows().to_string(),
        ]);
        csv.push_str(&format!(
            "{label},{},{:.3}\n",
            s.settle_secs.map_or(-1.0, |v| v),
            s.overshoot
        ));
    }
    println!("\nF2 — response to a 4× load step at t=240 s (PLO: p99 ≤ 100 ms)\n");
    println!("{table}");
    println!("expected shape: adaptive gains settle fastest with the smallest overshoot;");
    println!("fixed gains settle slower (or oscillate); the HPA trails both because it");
    println!("only reacts once CPU-utilization averages move.");
    if let Err(err) = write_csv(&output_dir(), "fig2_step", &csv) {
        eprintln!("could not write CSV: {err}");
    }
}
