//! **F2 — step response.** A 4× load step hits one service; measure
//! settling time (back under the 100 ms PLO for 3 consecutive windows)
//! and overshoot, for adaptive vs fixed-gain EVOLVE and the HPA,
//! replicated across seeds (mean ± 95 % CI).
//!
//! ```text
//! cargo run --release -p evolve-bench --bin fig2_step [seed-count]
//! ```

use evolve::prelude::*;
use evolve_bench::{replicated_settling, BenchArgs};
use evolve_core::EvolvePolicyConfig;

fn main() {
    let args = BenchArgs::parse(5);
    let seeds = &args.seeds;
    let step_at = SimTime::from_secs(240); // from Scenario::step_response
    let target_ms = 100.0;
    let variants: Vec<(&str, ManagerKind)> = vec![
        ("evolve adaptive", ManagerKind::Evolve),
        (
            "evolve fixed-gains",
            ManagerKind::EvolveWith(EvolvePolicyConfig::default().fixed_gains()),
        ),
        ("hpa", ManagerKind::Hpa { target_utilization: 0.6 }),
    ];
    // Settling needs the per-tick p99 series, so series stay on.
    let configs: Vec<RunConfig> = variants
        .iter()
        .map(|(_, m)| {
            match args.scenario() {
                Some(spec) => RunConfig::from_spec(spec, m.clone()),
                None => RunConfig::builder(Scenario::step_response(4.0), m.clone()).nodes(8),
            }
            .build()
        })
        .collect();
    eprintln!("running {} variants × {} seeds …", configs.len(), seeds.len());
    let reps = Harness::new().run_matrix(&configs, seeds);

    let mut table = Table::new(
        ["variant", "settle (s)", "overshoot", "viol rate", "windows"].map(String::from).to_vec(),
    );
    let mut csv = String::from("variant,settle_s_mean,settle_ci,overshoot_mean,overshoot_ci\n");
    for ((label, _), rep) in variants.iter().zip(&reps) {
        let s = replicated_settling(rep, "app0/p99_ms", step_at, target_ms, 3);
        table.add_row(vec![
            (*label).to_string(),
            s.settle_display(),
            format!("{}x", s.overshoot.display(2)),
            rep.violation_rate().display(3),
            format!("{:.0}", rep.summarize(|r| r.total_windows() as f64).mean),
        ]);
        csv.push_str(&format!(
            "{label},{:.1},{:.1},{:.3},{:.3}\n",
            s.settle_mean_or_neg(),
            s.settle.as_ref().map_or(0.0, |v| v.ci95),
            s.overshoot.mean,
            s.overshoot.ci95,
        ));
    }
    println!(
        "\nF2 — response to a 4× load step at t=240 s (PLO: p99 ≤ 100 ms, {} seed(s))\n",
        seeds.len()
    );
    println!("{table}");
    println!("expected shape: adaptive gains settle fastest with the smallest overshoot;");
    println!("fixed gains settle slower (or oscillate); the HPA trails both because it");
    println!("only reacts once CPU-utilization averages move.");
    if let Err(err) = write_csv(&args.out_dir, "fig2_step", &csv) {
        eprintln!("could not write CSV: {err}");
    }
}
