//! **T7 — controller crash recovery.** A controller crash destroys the
//! control plane's in-memory state mid-run; this table compares the
//! recovery strategies — checkpoint restore, level-triggered cold
//! reconstruction, naive reset — against the uninterrupted run, on PLO
//! violation windows after the crash, time to re-enter compliance, and
//! the post-crash replica floor (a good recovery never collapses a
//! running service). Emits `experiments_out/tab7_recovery.csv`.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin tab7_recovery [seed-count]
//! EVOLVE_SMOKE=1 … # short horizon for CI smoke runs
//! ```

use evolve::prelude::*;
use evolve_bench::{replicated_settling, BenchArgs};

/// Violating windows inside `[from, to]`, averaged across seeds. A window
/// violates when its measured p99 exceeds the target **or** it dropped
/// requests: a collapsed service completes nothing, so its p99 of
/// survivors looks clean while every timeout is a violated objective —
/// counting p99 alone would flatter exactly the worst recovery.
fn violations_during(rep: &ReplicatedOutcome, from: u64, to: u64, target_ms: f64) -> Summary {
    let in_range = |t: f64| t >= from as f64 && t <= to as f64;
    let per_run: Vec<f64> = rep
        .runs
        .iter()
        .map(|r| {
            let points = |n: &str| r.registry.series(n).map(|s| s.to_points()).unwrap_or_default();
            let p99 = points("app0/p99_ms");
            let timeouts = points("app0/timeouts");
            let mut bad: std::collections::BTreeSet<u64> = p99
                .iter()
                .filter(|&&(t, v)| in_range(t) && v > target_ms)
                .map(|&(t, _)| t.to_bits())
                .collect();
            bad.extend(
                timeouts
                    .iter()
                    .filter(|&&(t, v)| in_range(t) && v > 0.0)
                    .map(|&(t, _)| t.to_bits()),
            );
            bad.len() as f64
        })
        .collect();
    Summary::from_samples(&per_run)
}

/// Minimum of the replicas series inside `[from, to]`, averaged across
/// seeds (`0` would mean a recovery scaled a running service to zero).
fn min_replicas_during(rep: &ReplicatedOutcome, from: u64, to: u64) -> Summary {
    let per_run: Vec<f64> = rep
        .runs
        .iter()
        .map(|r| {
            r.registry
                .series("app0/replicas")
                .map(|s| {
                    s.to_points()
                        .iter()
                        .filter(|&&(t, _)| t >= from as f64 && t <= to as f64)
                        .map(|&(_, v)| v)
                        .fold(f64::INFINITY, f64::min)
                })
                .filter(|v| v.is_finite())
                .unwrap_or(0.0)
        })
        .collect();
    Summary::from_samples(&per_run)
}

fn main() {
    let args = BenchArgs::parse(5);
    let seeds = &args.seeds;
    let (horizon, crash_at) = if args.smoke { (360u64, 180u64) } else { (900u64, 450u64) };
    let target_ms = 100.0;
    let crash_plan = || FaultPlan::new().with_controller_crash(SimTime::from_secs(crash_at));
    let cases: [(&str, FaultPlan, RecoveryStrategy); 4] = [
        ("uninterrupted", FaultPlan::new(), RecoveryStrategy::Restore),
        ("restore", crash_plan(), RecoveryStrategy::Restore),
        ("cold-reconstruct", crash_plan(), RecoveryStrategy::ColdReconstruct),
        ("naive-reset", crash_plan(), RecoveryStrategy::NaiveReset),
    ];

    let mut table = Table::new(
        ["recovery", "restarts", "re-comply (s)", "viol after crash", "min replicas", "viol rate"]
            .map(String::from)
            .to_vec(),
    );
    let mut csv = String::from(
        "recovery,restarts_mean,recomply_s_mean,recomply_ci,viol_after_mean,viol_after_ci,min_replicas_mean,viol_rate_mean,timeouts_mean\n",
    );
    for (name, plan, recovery) in &cases {
        // With `--scenario`, the spec supplies the workload and cluster
        // shape; each case still overrides the fault plan and recovery
        // strategy (that is the comparison under test).
        let mut config = match args.scenario() {
            Some(spec) => RunConfig::from_spec(spec, ManagerKind::Evolve),
            None => RunConfig::builder(Scenario::single_diurnal(), ManagerKind::Evolve).nodes(6),
        }
        .faults(plan.clone())
        .recovery(*recovery)
        .build();
        config.scenario.horizon = SimDuration::from_secs(horizon);
        eprintln!("{name}: {} seed(s) …", seeds.len());
        let rep = Harness::new().run_seeds(&config, seeds);
        let restarts = Summary::from_samples(
            &rep.runs.iter().map(|r| r.controller_restarts as f64).collect::<Vec<_>>(),
        );
        let settle =
            replicated_settling(&rep, "app0/p99_ms", SimTime::from_secs(crash_at), target_ms, 3);
        let after = violations_during(&rep, crash_at, horizon, target_ms);
        let floor = min_replicas_during(&rep, crash_at, horizon);
        table.add_row(vec![
            (*name).to_string(),
            format!("{:.0}", restarts.mean),
            settle.settle_display(),
            after.display(1),
            floor.display(1),
            rep.violation_rate().display(3),
        ]);
        csv.push_str(&format!(
            "{name},{:.1},{:.1},{:.1},{:.2},{:.2},{:.1},{:.4},{:.0}\n",
            restarts.mean,
            settle.settle_mean_or_neg(),
            settle.settle.as_ref().map_or(0.0, |s| s.ci95),
            after.mean,
            after.ci95,
            floor.mean,
            rep.violation_rate().mean,
            rep.timeouts().mean,
        ));
    }
    println!(
        "\nT7 — controller crash at t={crash_at} s (PLO p99 ≤ {target_ms:.0} ms, horizon {horizon} s, {} seed(s))\n",
        seeds.len()
    );
    println!("{table}");
    println!("expected shape: checkpoint restore matches the uninterrupted run (per-tick");
    println!("checkpoints make the resumed trajectory bit-identical); cold reconstruction");
    println!("re-attains compliance within a bounded window — it re-engages slew-limited");
    println!("from the observed allocation, never scaling a running service to zero;");
    println!("naive reset is worst: it actuates spec defaults, collapses capacity and");
    println!("re-learns on live traffic.");
    if let Err(err) = write_csv(&args.out_dir, "tab7_recovery", &table.to_csv()) {
        eprintln!("could not write CSV: {err}");
    }
    if let Err(err) = write_csv(&args.out_dir, "tab7_recovery_raw", &csv) {
        eprintln!("could not write CSV: {err}");
    }
}
