//! **F7 — fault timeline.** One latency-critical service under EVOLVE
//! through a node crash and recovery: p99 latency, replica count, total
//! CPU allocation, ready nodes and pending pods per control window. The
//! plotted trace comes from the first seed; the summary line aggregates
//! all seeds. Emits `experiments_out/fig7_faults.csv`.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin fig7_faults [seed-count]
//! EVOLVE_SMOKE=1 … # short horizon for CI smoke runs
//! ```

use evolve::prelude::*;
use evolve_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse(5);
    let seeds = &args.seeds;
    let smoke = args.smoke;
    let (horizon, crash_at, downtime) =
        if smoke { (360u64, 120u64, 90u64) } else { (720u64, 240u64, 120u64) };
    // With `--scenario`, the spec's own `[[fault]]` plan (and cluster
    // shape) replaces the builtin crash schedule.
    let mut config = match args.scenario() {
        Some(spec) => RunConfig::from_spec(spec, ManagerKind::Evolve).build(),
        None => {
            let faults = FaultPlan::new().with_node_crash(
                NodeId::new(0),
                SimTime::from_secs(crash_at),
                Some(SimDuration::from_secs(downtime)),
            );
            let mut config = RunConfig::builder(Scenario::single_diurnal(), ManagerKind::Evolve)
                .nodes(6)
                .faults(faults)
                .build();
            config.scenario.horizon = SimDuration::from_secs(horizon);
            config
        }
    };
    if smoke {
        config.scenario.horizon = config.scenario.horizon.min(SimDuration::from_secs(horizon));
    }
    eprintln!(
        "EVOLVE through a node crash at t={crash_at} s ({downtime} s down, {} seed(s)) …",
        seeds.len()
    );
    let rep = Harness::new().run_seeds(&config, seeds);
    let outcome = rep.representative();
    let names = [
        "app0/p99_ms",
        "app0/replicas",
        "app0/alloc_cpu",
        "cluster/nodes_ready",
        "cluster/pods_pending",
    ];
    let csv = outcome.registry.wide_csv(&names);
    if let Err(err) = write_csv(&args.out_dir, "fig7_faults", &csv) {
        eprintln!("could not write CSV: {err}");
    }
    println!(
        "\nF7 — node crash at t={crash_at} s, recovery at t={} s (every 4th window, seed {})\n",
        crash_at + downtime,
        rep.seeds[0]
    );
    println!(
        "{:>8} {:>9} {:>9} {:>11} {:>7} {:>9}",
        "t (s)", "p99 ms", "replicas", "alloc mcore", "ready", "pending"
    );
    let get = |n: &str| outcome.registry.series(n).map(|s| s.to_points()).unwrap_or_default();
    let p99 = get(names[0]);
    let replicas = get(names[1]);
    let alloc = get(names[2]);
    let ready = get(names[3]);
    let pending = get(names[4]);
    for (i, (t, r)) in ready.iter().enumerate() {
        if i % 4 != 0 {
            continue;
        }
        let find =
            |col: &[(f64, f64)]| col.iter().find(|(pt, _)| (pt - t).abs() < 1e-6).map(|(_, v)| *v);
        println!(
            "{t:>8.0} {:>9} {:>9} {:>11} {r:>7.0} {:>9}",
            find(&p99).map_or("-".into(), |v| format!("{v:.1}")),
            find(&replicas).map_or("-".into(), |v| format!("{v:.0}")),
            find(&alloc).map_or("-".into(), |v| format!("{v:.0}")),
            find(&pending).map_or("-".into(), |v| format!("{v:.0}")),
        );
    }
    let viol = rep.violation_rate();
    println!(
        "\nviolation rate across {} seed(s): {} — expected shape: ready nodes dip 6→5 at the\n\
         crash, evicted replicas requeue (pending spike) and rebind on survivors within a few\n\
         control periods, p99 spikes then recovers, and the node's return restores headroom",
        viol.n,
        viol.display(3)
    );
    println!("CSV: experiments_out/fig7_faults.csv");
}
