//! **Decision-trace explorer.** Runs the headline scenario with the
//! decision-trace ring dumped to JSONL, then reconstructs the full
//! decision chain — PID term breakdown → degradation-guard verdict →
//! actuation outcome → scheduler placements — for one app around one
//! moment, *from the dump file itself* (proving the JSONL is queryable
//! offline). With no arguments it auto-selects the worst violating
//! control window of the run; pass an app id and a time to aim it.
//!
//! With `--overload` it runs the overload scenario with the capacity
//! arbiter instead, and the timeline gains the arbitration chain
//! (requested → granted → decision) for every arbitrated tick in the
//! window — the first thing to read when a violation coincides with a
//! capacity crunch.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin trace_explain [--overload] [--app N] [--at T_S] [--window HALF_S]
//! EVOLVE_SMOKE=1 … # short horizon for CI smoke runs
//! ```
//!
//! `--scenario <file>` swaps the workload for a declarative spec (the
//! spec's cluster shape and arbiter settings apply; `--overload` is then
//! only a hint for the arbitration legend). Exits non-zero when the dump
//! is empty (tracing broken) or the requested app/window has no control
//! records.

use evolve::prelude::*;
use evolve_bench::{BenchArgs, BASE_SEED};
use std::process::ExitCode;

/// One parsed JSONL record: the raw line plus the fields the timeline
/// needs. Parsing is by string scanning — the dump's key order and float
/// format are pinned (see `evolve_telemetry::trace`), and the vendored
/// serde is a no-op stub, so a hand-rolled reader is the honest option.
struct Record {
    line: String,
}

impl Record {
    fn kind(&self) -> &str {
        self.str_field("type").unwrap_or("")
    }

    /// Numeric field value, or `None` when absent or JSON `null`.
    fn num(&self, key: &str) -> Option<f64> {
        let needle = format!("\"{key}\":");
        let rest = &self.line[self.line.find(&needle)? + needle.len()..];
        let end = rest
            .find(|c: char| {
                !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
            })
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    /// String field value (first occurrence).
    fn str_field(&self, key: &str) -> Option<&str> {
        let needle = format!("\"{key}\":\"");
        let start = self.line.find(&needle)? + needle.len();
        let rest = &self.line[start..];
        Some(&rest[..rest.find('"')?])
    }

    /// Boolean field value (booleans are bare `true`/`false` in JSON).
    fn bool_field(&self, key: &str) -> Option<bool> {
        let needle = format!("\"{key}\":");
        let rest = &self.line[self.line.find(&needle)? + needle.len()..];
        if rest.starts_with("true") {
            Some(true)
        } else if rest.starts_with("false") {
            Some(false)
        } else {
            None
        }
    }

    /// The raw text of a bracketed array field, e.g. `filtered`.
    fn array(&self, key: &str) -> Option<&str> {
        let needle = format!("\"{key}\":[");
        let start = self.line.find(&needle)? + needle.len() - 1;
        let rest = &self.line[start..];
        let mut depth = 0usize;
        for (i, c) in rest.char_indices() {
            match c {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&rest[..=i]);
                    }
                }
                _ => {}
            }
        }
        None
    }
}

fn fmt_opt(v: Option<f64>, prec: usize) -> String {
    v.map_or_else(|| "-".into(), |v| format!("{v:.prec$}"))
}

/// The value following `flag` in the pass-through argument list.
fn rest_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter().position(|a| a == flag).and_then(|i| rest.get(i + 1)).cloned()
}

fn main() -> ExitCode {
    let args = BenchArgs::parse(1);
    let overload = args.rest.iter().any(|a| a == "--overload");
    // Focus selection: `--app`/`--at`/`--window` flags; a bare integer
    // argument (the count slot) still aims the app for back-compat.
    let want_app: Option<u64> = rest_value(&args.rest, "--app")
        .and_then(|s| s.parse().ok())
        .or(args.explicit_count.map(|n| n as u64));
    let want_t: Option<f64> = rest_value(&args.rest, "--at").and_then(|s| s.parse().ok());
    let half_window: f64 =
        rest_value(&args.rest, "--window").and_then(|s| s.parse().ok()).unwrap_or(120.0);

    let (dump_name, scenario_name) = match (args.scenario(), overload) {
        (Some(spec), _) => {
            (format!("trace_{}.jsonl", spec.name.replace(['/', ' '], "_")), spec.name.clone())
        }
        (None, true) => ("trace_overload.jsonl".into(), "overload (arbitrated)".to_string()),
        (None, false) => ("trace_headline.jsonl".into(), "headline".to_string()),
    };
    let dump_path = args.out_dir.join(&dump_name);
    if let Some(parent) = dump_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let builder = match args.scenario() {
        // The spec carries the cluster shape and (optionally) the
        // arbiter; `from_spec` applies them all.
        Some(spec) => RunConfig::from_spec(spec, ManagerKind::Evolve),
        None => {
            let mut scenario =
                if overload { Scenario::overload(1.5) } else { Scenario::headline(1.0) };
            if args.smoke {
                scenario.horizon = SimDuration::from_mins(3);
            }
            let mut b = RunConfig::builder(scenario, ManagerKind::Evolve);
            if overload {
                b = b.nodes(4).arbiter(ArbiterConfig::default());
            }
            b
        }
    }
    .seed(BASE_SEED)
    .trace(TraceConfig::default().with_capacity(1 << 20).dump_to(&dump_path));
    let mut cfg = builder.build();
    if args.smoke && args.scenario().is_some() {
        cfg.scenario.horizon = cfg.scenario.horizon.min(SimDuration::from_mins(3));
    }
    eprintln!("running {scenario_name} scenario (seed {BASE_SEED}) with decision tracing …");
    let outcome = ExperimentRunner::new(cfg).run();
    eprintln!(
        "trace ring: {} events retained, {} dropped; dump: {}",
        outcome.trace.len(),
        outcome.trace.dropped(),
        dump_path.display()
    );

    // Everything below works off the dump file, not the in-memory ring.
    let text = match std::fs::read_to_string(&dump_path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("cannot read trace dump {}: {err}", dump_path.display());
            return ExitCode::FAILURE;
        }
    };
    let records: Vec<Record> = text.lines().map(|l| Record { line: l.to_string() }).collect();
    if records.is_empty() {
        eprintln!("trace dump is empty — tracing produced no events");
        return ExitCode::FAILURE;
    }
    let controls: Vec<&Record> = records.iter().filter(|r| r.kind() == "control").collect();
    let scheds: Vec<&Record> = records.iter().filter(|r| r.kind() == "sched").collect();
    let faults: Vec<&Record> = records.iter().filter(|r| r.kind() == "fault").collect();
    let arbitrations: Vec<&Record> = records.iter().filter(|r| r.kind() == "arbitration").collect();
    let spans = records.iter().filter(|r| r.kind() == "span").count();
    println!(
        "trace dump: {} control records, {} sched records, {} arbitrations, {} faults, {} spans",
        controls.len(),
        scheds.len(),
        arbitrations.len(),
        faults.len(),
        spans
    );

    // Pick the focus: requested app/time, else the control record with
    // the worst positive control error (deepest PLO violation).
    let (app, center) = match (want_app, want_t) {
        (Some(a), Some(t)) => (a, t),
        _ => {
            let worst = controls
                .iter()
                .filter(|r| want_app.is_none_or(|a| r.num("app") == Some(a as f64)))
                .filter_map(|r| {
                    let err = r.num("error")?;
                    Some((r, err))
                })
                .max_by(|a, b| a.1.total_cmp(&b.1));
            match worst {
                Some((r, err)) => {
                    let app = r.num("app").unwrap_or(0.0) as u64;
                    let t = r.num("at_s").unwrap_or(0.0);
                    println!("focus: worst control error {err:.3} — app {app} at t={t:.0} s");
                    (app, t)
                }
                None => {
                    eprintln!("no control records carry an explain block");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let (from, to) = (center - half_window, center + half_window);
    println!("\n=== decision timeline: app {app}, t ∈ [{from:.0}, {to:.0}] s ===\n");

    let in_window = |r: &Record| {
        r.num("at_s").is_some_and(|t| t >= from && t <= to) && r.num("app") == Some(app as f64)
    };
    let app_controls: Vec<&&Record> = controls.iter().filter(|r| in_window(r)).collect();
    if app_controls.is_empty() {
        eprintln!("no control records for app {app} in [{from:.0}, {to:.0}] s");
        return ExitCode::FAILURE;
    }

    println!(
        "{:>7} {:>6} {:>8} {:>9} {:>9} {:>5} {:>12} {:>8} {:>26} {:>22} {:>6} {:>4}",
        "t (s)",
        "tick",
        "signal",
        "measured",
        "rate",
        "reps",
        "outcome",
        "error",
        "pid cpu (p/i/d→out)",
        "forecast raw→infl",
        "dark",
        "wdog"
    );
    for r in &app_controls {
        // The pid array holds one {p,i,d,out} object per resource; the
        // first (CPU) is the headline term breakdown.
        let cpu_pid = r.array("pid").map(|a| {
            let obj = Record { line: a[..a.find('}').map_or(a.len(), |i| i + 1)].to_string() };
            (obj.num("p"), obj.num("i"), obj.num("d"), obj.num("out"))
        });
        let pid_txt = cpu_pid.map_or_else(
            || "-".into(),
            |(p, i, d, o)| {
                format!("{}/{}/{}→{}", fmt_opt(p, 2), fmt_opt(i, 2), fmt_opt(d, 2), fmt_opt(o, 2))
            },
        );
        let forecast_txt =
            format!("{}→{}", fmt_opt(r.num("raw_forecast"), 1), fmt_opt(r.num("forecast"), 1));
        println!(
            "{:>7.0} {:>6} {:>8} {:>9} {:>9} {:>5} {:>12} {:>8} {:>26} {:>22} {:>6} {:>4}",
            r.num("at_s").unwrap_or(0.0),
            r.num("tick").map_or_else(|| "-".into(), |t| format!("{t:.0}")),
            r.str_field("signal").unwrap_or("-"),
            fmt_opt(r.num("measured"), 1),
            fmt_opt(r.num("rate_rps"), 1),
            r.num("replicas").map_or_else(|| "-".into(), |v| format!("{v:.0}")),
            r.str_field("outcome").unwrap_or("-"),
            fmt_opt(r.num("error"), 3),
            pid_txt,
            forecast_txt,
            r.num("dark_ticks").map_or_else(|| "-".into(), |v| format!("{v:.0}")),
            r.bool_field("watchdog").map_or("-", |w| if w { "YES" } else { "no" }),
        );
    }

    // Injected faults whose active interval overlaps the window — the
    // first thing to check when the timeline above looks pathological.
    // Node and global faults are shown regardless of app; app-scoped
    // faults only when they hit the focused app.
    let active_faults: Vec<&&Record> = faults
        .iter()
        .filter(|r| {
            let at = r.num("at_s").unwrap_or(0.0);
            let until = at + r.num("duration_s").unwrap_or(0.0);
            at <= to && until >= from && r.num("app").is_none_or(|a| a == app as f64)
        })
        .collect();
    if !active_faults.is_empty() {
        println!("\ninjected faults overlapping the window:");
        for r in &active_faults {
            println!(
                "  t={:>6.0} {:<17} duration {:>6} s node {:>4} app {:>4}",
                r.num("at_s").unwrap_or(0.0),
                r.str_field("kind").unwrap_or("-"),
                fmt_opt(r.num("duration_s"), 0),
                r.num("node").map_or_else(|| "-".into(), |v| format!("{v:.0}")),
                r.num("app").map_or_else(|| "-".into(), |v| format!("{v:.0}")),
            );
        }
    }

    // Capacity-arbitration verdicts for the app in the window: what its
    // controller asked for, what the cluster granted, and why the grant
    // fell short. Only arbitrated runs (`--overload`) emit these.
    let app_arbs: Vec<&&Record> = arbitrations.iter().filter(|r| in_window(r)).collect();
    if !app_arbs.is_empty() {
        println!("\ncapacity arbitration for app {app} in the window:");
        println!(
            "  {:>7} {:>6} {:>12} {:>14} {:>9} {:>7} {:>7}  requested → granted [cpu mcore]",
            "t (s)", "tick", "class", "decision", "fraction", "starve", "crunch"
        );
        for r in &app_arbs {
            let cpu = |key: &str| {
                r.array(key)
                    .and_then(|a| {
                        a.trim_start_matches('[').split(',').next()?.trim().parse::<f64>().ok()
                    })
                    .map_or_else(|| "-".into(), |v| format!("{v:.0}"))
            };
            println!(
                "  {:>7.0} {:>6} {:>12} {:>14} {:>9} {:>7} {:>7}  {} → {}",
                r.num("at_s").unwrap_or(0.0),
                r.num("tick").map_or_else(|| "-".into(), |t| format!("{t:.0}")),
                r.str_field("class").unwrap_or("-"),
                r.str_field("decision").unwrap_or("-"),
                fmt_opt(r.num("grant_fraction"), 3),
                r.num("starvation_age").map_or_else(|| "-".into(), |v| format!("{v:.0}")),
                r.bool_field("in_crunch").map_or("-", |c| if c { "yes" } else { "no" }),
                cpu("requested"),
                cpu("granted"),
            );
        }
    }

    let app_scheds: Vec<&&Record> = scheds.iter().filter(|r| in_window(r)).collect();
    println!("\nscheduler placements for app {app} in the window: {}", app_scheds.len());
    for r in &app_scheds {
        println!(
            "  t={:>6.0} pod {:>5} {:<13} node {:<4} score {:<8} feasible {:<3} filtered {} victims {} backoff {}",
            r.num("at_s").unwrap_or(0.0),
            r.num("pod").map_or_else(|| "-".into(), |v| format!("{v:.0}")),
            r.str_field("outcome").unwrap_or("-"),
            r.num("node").map_or_else(|| "-".into(), |v| format!("{v:.0}")),
            fmt_opt(r.num("score"), 3),
            r.num("feasible").map_or_else(|| "-".into(), |v| format!("{v:.0}")),
            r.array("filtered").unwrap_or("[]"),
            r.array("victims").unwrap_or("[]"),
            r.num("backoff_failures").map_or_else(|| "-".into(), |v| format!("{v:.0}")),
        );
    }

    let arbitration_link =
        if overload { " → capacity arbitration (requested/granted)" } else { "" };
    println!(
        "\nchain: smoothed measurement → control error → PID terms → guard verdict \
         (signal/dark/watchdog){arbitration_link} → actuation outcome → scheduler placement. \
         Full records: {}",
        dump_path.display()
    );
    ExitCode::SUCCESS
}
