//! **F8 — restart timeline.** One latency-critical service under EVOLVE
//! through a controller crash, one trace per recovery strategy: p99
//! latency, replica count and total CPU allocation per control window
//! (first seed). Long-format CSV for plotting the three recoveries
//! against the uninterrupted run. Emits `experiments_out/fig8_restart.csv`.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin fig8_restart [seed-count]
//! EVOLVE_SMOKE=1 … # short horizon for CI smoke runs
//! ```

use evolve::prelude::*;
use evolve_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse(1);
    let seeds = &args.seeds;
    let smoke = args.smoke;
    let (horizon, crash_at) = if smoke { (360u64, 180u64) } else { (720u64, 360u64) };
    let crash_plan = || FaultPlan::new().with_controller_crash(SimTime::from_secs(crash_at));
    let cases: [(&str, FaultPlan, RecoveryStrategy); 4] = [
        ("uninterrupted", FaultPlan::new(), RecoveryStrategy::Restore),
        ("restore", crash_plan(), RecoveryStrategy::Restore),
        ("cold-reconstruct", crash_plan(), RecoveryStrategy::ColdReconstruct),
        ("naive-reset", crash_plan(), RecoveryStrategy::NaiveReset),
    ];
    let mut csv = String::from("strategy,t_s,p99_ms,replicas,alloc_cpu\n");
    println!(
        "\nF8 — controller crash at t={crash_at} s, horizon {horizon} s (seed {})\n",
        seeds[0]
    );
    println!("{:>18} {:>8} {:>9} {:>9} {:>11}", "strategy", "t (s)", "p99 ms", "replicas", "alloc");
    for (name, plan, recovery) in &cases {
        // With `--scenario`, the spec supplies the workload and cluster
        // shape; each case still overrides the fault plan and recovery
        // strategy (that is the comparison under test).
        let mut config = match args.scenario() {
            Some(spec) => RunConfig::from_spec(spec, ManagerKind::Evolve),
            None => RunConfig::builder(Scenario::single_diurnal(), ManagerKind::Evolve).nodes(6),
        }
        .faults(plan.clone())
        .recovery(*recovery)
        .build();
        config.scenario.horizon = SimDuration::from_secs(horizon);
        eprintln!("{name} …");
        let rep = Harness::new().run_seeds(&config, seeds);
        let outcome = rep.representative();
        let get = |n: &str| outcome.registry.series(n).map(|s| s.to_points()).unwrap_or_default();
        let p99 = get("app0/p99_ms");
        let replicas = get("app0/replicas");
        let alloc = get("app0/alloc_cpu");
        let find = |col: &[(f64, f64)], t: f64| {
            col.iter().find(|(pt, _)| (pt - t).abs() < 1e-6).map(|(_, v)| *v)
        };
        for (i, (t, r)) in replicas.iter().enumerate() {
            let p = find(&p99, *t);
            let a = find(&alloc, *t).unwrap_or(0.0);
            csv.push_str(&format!(
                "{name},{t:.0},{},{r:.0},{a:.0}\n",
                p.map_or(String::from("nan"), |v| format!("{v:.1}")),
            ));
            // Console preview: every 8th window around the crash only.
            if i % 8 == 0 && *t >= (crash_at as f64 - 60.0) {
                println!(
                    "{name:>18} {t:>8.0} {:>9} {r:>9.0} {a:>11.0}",
                    p.map_or("-".into(), |v| format!("{v:.1}")),
                );
            }
        }
    }
    println!("\nexpected shape: the restore trace overlays the uninterrupted one exactly;");
    println!("cold reconstruction holds the pre-crash allocation and re-converges within a");
    println!("bounded window; naive reset drops replicas to the spec default at the crash,");
    println!("p99 spikes, and the controller re-learns the load from scratch.");
    if let Err(err) = write_csv(&args.out_dir, "fig8_restart", &csv) {
        eprintln!("could not write CSV: {err}");
    }
    println!("CSV: experiments_out/fig8_restart.csv");
}
