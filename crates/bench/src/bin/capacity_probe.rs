//! **Capacity-discovery probe.** Ramps the offered load of the
//! priority-tiered overload scenario and reports, per system, the maximum
//! sustainable request rate (the knee) and the behaviour past it: for
//! stock Kubernetes and unarbitrated EVOLVE every class's violation rate
//! grows together once capacity runs out, while EVOLVE with the capacity
//! arbiter sheds preemptible work and keeps the critical class flat.
//!
//! Each step runs every system across the seed set, computes the overall
//! and critical-class violation rates (mean ± 95% CI), and the ramp for a
//! system stops counting as sustainable once its overall violation rate
//! exceeds the threshold for `CONSECUTIVE_BAD` consecutive steps. The
//! ramp itself continues to the configured maximum so the past-knee rows
//! land in the CSV.
//!
//! ```text
//! cargo run --release -p evolve-bench --bin capacity_probe [seed-count]
//! EVOLVE_SMOKE=1 … # short horizon / coarse ramp for CI smoke runs
//! ```
//!
//! Writes `experiments_out/capacity_probe.csv`.

use evolve::prelude::*;
use evolve_bench::BenchArgs;
use evolve_workload::ProbeSpec;

/// A run is sustainable while its service violation rate stays at or
/// below this. Judged on services only: the scenario's batch jobs run
/// with deliberately tight deadlines and violate them even on an idle
/// cluster, which says nothing about the knee.
const SUSTAIN_THRESHOLD: f64 = 0.10;
/// Steps the threshold must be exceeded in a row before the knee is
/// declared (one bad step can be a transient).
const CONSECUTIVE_BAD: usize = 2;

struct System {
    name: &'static str,
    manager: ManagerKind,
    arbiter: Option<ArbiterConfig>,
}

struct ProbeRow {
    offered: f64,
    offered_rps: f64,
    violation_rate: Summary,
    service_rate: Summary,
    critical_rate: Summary,
    shed_requests: Summary,
    clipped: Summary,
    shed_apps: Summary,
    starvation_max: f64,
}

fn class_rate(outcome: &RunOutcome, class: PriorityClass) -> f64 {
    let (viol, wins) = outcome
        .apps
        .iter()
        .filter(|a| a.priority == class)
        .fold((0u64, 0u64), |(v, w), a| (v + a.violations, w + a.windows));
    if wins == 0 {
        0.0
    } else {
        viol as f64 / wins as f64
    }
}

fn service_rate(outcome: &RunOutcome) -> f64 {
    let (viol, wins) = outcome
        .apps
        .iter()
        .filter(|a| a.world == WorldClass::Microservice)
        .fold((0u64, 0u64), |(v, w), a| (v + a.violations, w + a.windows));
    if wins == 0 {
        0.0
    } else {
        viol as f64 / wins as f64
    }
}

fn main() {
    let args = BenchArgs::parse(5);
    let seeds = &args.seeds;
    let smoke = args.smoke;
    // The workload and ramp come from the scenario spec: the builtin
    // overload spec carries a `[probe]` table (its rates sum to 440 rps
    // at `offered = 1.0`, sized to saturate ~4 default nodes around 1.5×
    // once controllers right-size), and `--scenario <file>` swaps in any
    // spec — specs without a probe table fall back to the default ramp.
    let base = match args.scenario() {
        Some(spec) => spec.clone(),
        None => ScenarioSpec::overload(1.0),
    };
    let probe = base.probe.unwrap_or(ProbeSpec {
        initial: 0.6,
        step: 0.2,
        max: 2.2,
        threshold: SUSTAIN_THRESHOLD,
        reference_rps: None,
    });
    let (initial, step, max, horizon_secs) = if smoke {
        (0.5, 0.5, 2.0, 180u64)
    } else {
        (probe.initial, probe.step, probe.max, 480u64)
    };
    let threshold = probe.threshold;
    let reference_rps = probe.reference_rps.unwrap_or_else(|| base.offered_rps());
    let nodes = base.cluster.nodes;
    let node_shape = NodeShape { capacity: base.node_capacity() };
    let arbiter_config = base.arbiter.as_ref().map(arbiter_from_spec).unwrap_or_default();

    let systems = [
        System { name: "kube-static", manager: ManagerKind::KubeStatic, arbiter: None },
        System { name: "evolve", manager: ManagerKind::Evolve, arbiter: None },
        System {
            name: "evolve+arbiter",
            manager: ManagerKind::Evolve,
            arbiter: Some(arbiter_config),
        },
    ];

    let harness = Harness::new();
    let mut table = Table::new(
        [
            "offered_factor",
            "offered_rps",
            "system",
            "violation_rate_mean",
            "violation_rate_ci95",
            "service_violation_rate_mean",
            "service_violation_rate_ci95",
            "critical_violation_rate_mean",
            "critical_violation_rate_ci95",
            "shed_requests_mean",
            "clipped_allocations_mean",
            "shed_apps_mean",
            "starvation_watermark_max",
            "sustainable",
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect(),
    );

    let mut bad_streak = vec![0usize; systems.len()];
    let mut past_knee = vec![false; systems.len()];
    let mut knee_rps = vec![None::<f64>; systems.len()];
    let mut overshoot = 0usize;
    let mut offered = initial;
    while offered <= max + 1e-9 {
        let mut scenario = base.scaled_loads(offered).build();
        scenario.horizon = SimDuration::from_secs(horizon_secs);
        let offered_rps = reference_rps * offered;
        for (i, sys) in systems.iter().enumerate() {
            let mut builder = RunConfig::builder(scenario.clone(), sys.manager.clone())
                .nodes(nodes)
                .node_shape(node_shape)
                .record_series(false);
            if let Some(arb) = sys.arbiter {
                builder = builder.arbiter(arb);
            }
            let rep = harness.run_seeds(&builder.build(), seeds);
            let row = ProbeRow {
                offered,
                offered_rps,
                violation_rate: rep.violation_rate(),
                service_rate: rep.summarize(service_rate),
                critical_rate: rep.summarize(|o| class_rate(o, PriorityClass::Critical)),
                shed_requests: rep.summarize(|o| o.shed_requests as f64),
                clipped: rep.summarize(|o| o.clipped_allocations as f64),
                shed_apps: rep.summarize(|o| o.shed_apps as f64),
                starvation_max: rep
                    .runs
                    .iter()
                    .map(|o| f64::from(o.starvation_watermark))
                    .fold(0.0, f64::max),
            };
            let sustainable = row.service_rate.mean <= threshold;
            if sustainable {
                bad_streak[i] = 0;
                // The knee is the highest offered rate a system sustained
                // before it first went persistently over the threshold.
                if !past_knee[i] {
                    knee_rps[i] = Some(offered_rps);
                }
            } else {
                bad_streak[i] += 1;
                if bad_streak[i] >= CONSECUTIVE_BAD {
                    past_knee[i] = true;
                }
            }
            println!(
                "offered {offered:.2} ({offered_rps:.0} rps) {:>14}: services {} | critical {} | shed {:.0} req / {:.0} clips",
                sys.name,
                row.service_rate.display(3),
                row.critical_rate.display(3),
                row.shed_requests.mean,
                row.clipped.mean,
            );
            table.add_row(vec![
                format!("{:.2}", row.offered),
                format!("{:.1}", row.offered_rps),
                sys.name.to_string(),
                format!("{:.4}", row.violation_rate.mean),
                format!("{:.4}", row.violation_rate.ci95),
                format!("{:.4}", row.service_rate.mean),
                format!("{:.4}", row.service_rate.ci95),
                format!("{:.4}", row.critical_rate.mean),
                format!("{:.4}", row.critical_rate.ci95),
                format!("{:.1}", row.shed_requests.mean),
                format!("{:.1}", row.clipped.mean),
                format!("{:.1}", row.shed_apps.mean),
                format!("{:.0}", row.starvation_max),
                format!("{}", sustainable),
            ]);
        }
        // Keep ramping until every system is persistently past its knee,
        // plus two more steps so the past-knee divergence (critical-class
        // flat under the arbiter, growing without it) lands in the CSV.
        if past_knee.iter().all(|&p| p) {
            overshoot += 1;
            if overshoot > 2 {
                break;
            }
        }
        offered += step;
    }

    println!();
    for (i, sys) in systems.iter().enumerate() {
        match knee_rps[i] {
            Some(k) => println!("{:>14}: max sustainable ≈ {k:.0} rps", sys.name),
            None => println!("{:>14}: never sustainable on this ramp", sys.name),
        }
    }

    let dir = &args.out_dir;
    match write_csv(dir, "capacity_probe", &table.to_csv()) {
        Ok(()) => println!("\nwrote {}/capacity_probe.csv", dir.display()),
        Err(err) => eprintln!("failed to write CSV: {err}"),
    }
}
