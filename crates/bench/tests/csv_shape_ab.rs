//! A/B shape validation for the paper artifacts after the sampling
//! overhaul: the batched ziggurat/windowed arrival path must produce
//! CSV output with exactly the same *shape* as the legacy Box–Muller /
//! thinning path — same headers, same column counts, same row counts,
//! parseable finite numbers — even though the sampled values differ.
//!
//! This is the cheap guard that none of the tab*/fig* binaries silently
//! lose a column or a series when `legacy_sampling` flips: both modes
//! run the same short headline configuration the golden tests pin.

use evolve::prelude::*;
use evolve_bench::{headline_headers, headline_row};
use evolve_types::SimDuration;

/// The golden short-horizon headline mix, in either sampling mode.
fn run(legacy: bool) -> RunOutcome {
    let mut scenario = Scenario::headline(0.5);
    scenario.horizon = SimDuration::from_mins(5);
    ExperimentRunner::new(
        RunConfig::builder(scenario, ManagerKind::Evolve)
            .nodes(8)
            .seed(42)
            .legacy_sampling(legacy)
            .build(),
    )
    .run()
}

fn assert_numeric_cells(label: &str, row: &[String], skip: &[usize]) {
    for (i, cell) in row.iter().enumerate() {
        if skip.contains(&i) {
            continue;
        }
        let v: f64 =
            cell.parse().unwrap_or_else(|_| panic!("{label}: column {i} not numeric: {cell:?}"));
        assert!(v.is_finite(), "{label}: column {i} not finite: {cell:?}");
    }
}

/// Checks a `wide_csv` dump: header intact, every row has the header's
/// column count, and every present cell parses to a finite number.
fn assert_wide_csv_shape(label: &str, csv: &str, names: &[&str]) -> usize {
    let mut lines = csv.lines();
    let header = lines.next().unwrap_or_else(|| panic!("{label}: empty CSV"));
    assert_eq!(header, format!("seconds,{}", names.join(",")), "{label}: header drifted");
    let cols = names.len() + 1;
    let mut rows = 0usize;
    for (lineno, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').collect();
        assert_eq!(cells.len(), cols, "{label}: row {lineno} has {} cells", cells.len());
        for (i, cell) in cells.iter().enumerate() {
            if cell.is_empty() {
                continue; // series without a sample at this index
            }
            let v: f64 = cell
                .parse()
                .unwrap_or_else(|_| panic!("{label}: row {lineno} col {i} not numeric: {cell:?}"));
            assert!(v.is_finite(), "{label}: row {lineno} col {i} not finite");
        }
        rows += 1;
    }
    assert!(rows > 0, "{label}: no data rows");
    rows
}

#[test]
fn tab_and_fig_csv_shapes_match_between_sampling_modes() {
    let batched = run(false);
    let legacy = run(true);

    // -- tab1-style headline row ------------------------------------
    let headers = headline_headers();
    let row_b = headline_row(&batched);
    let row_l = headline_row(&legacy);
    assert_eq!(row_b.len(), headers.len(), "batched headline row width");
    assert_eq!(row_l.len(), headers.len(), "legacy headline row width");
    // Column 0 is the policy name, column 6 is "hits/total".
    assert_numeric_cells("batched tab row", &row_b, &[0, 6]);
    assert_numeric_cells("legacy tab row", &row_l, &[0, 6]);
    assert_eq!(row_b[0], row_l[0], "policy label must not depend on sampling mode");
    for (label, row) in [("batched", &row_b), ("legacy", &row_l)] {
        let (hits, total) = row[6]
            .split_once('/')
            .unwrap_or_else(|| panic!("{label}: deadlines cell not hits/total: {:?}", row[6]));
        let hits: u64 = hits.parse().expect("hits numeric");
        let total: u64 = total.parse().expect("total numeric");
        assert!(hits <= total, "{label}: deadline hits exceed total");
    }

    // -- fig-style wide timeline CSV --------------------------------
    // Both modes must expose the same recorded series (same apps, same
    // metrics) — a series appearing in only one mode means an artifact
    // binary would emit different columns depending on the flag.
    let mut names_b: Vec<&str> = batched.registry.series_names().collect();
    let mut names_l: Vec<&str> = legacy.registry.series_names().collect();
    names_b.sort_unstable();
    names_l.sort_unstable();
    assert_eq!(names_b, names_l, "recorded series differ between sampling modes");

    let csv_b = batched.registry.wide_csv(&names_b);
    let csv_l = legacy.registry.wide_csv(&names_l);
    let rows_b = assert_wide_csv_shape("batched wide CSV", &csv_b, &names_b);
    let rows_l = assert_wide_csv_shape("legacy wide CSV", &csv_l, &names_l);
    // Control windows are time-cadenced, so a fixed horizon yields the
    // same number of rows regardless of how arrivals were sampled.
    assert_eq!(rows_b, rows_l, "row counts differ between sampling modes");

    // Counters must also cover the same name set.
    let mut ctr_b: Vec<&str> = batched.registry.counter_names().collect();
    let mut ctr_l: Vec<&str> = legacy.registry.counter_names().collect();
    ctr_b.sort_unstable();
    ctr_l.sort_unstable();
    assert_eq!(ctr_b, ctr_l, "recorded counters differ between sampling modes");
}
