//! **T4 — control-plane overhead.** Criterion microbenchmarks of every
//! hot-path operation in the EVOLVE control plane: scalar PID step,
//! full multi-resource controller step, RLS model update, online
//! percentile observation and PLO window accounting.
//!
//! ```text
//! cargo bench -p evolve-bench --bench tab4_overhead
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use evolve_control::{
    MultiResourceConfig, MultiResourceController, PidConfig, PidController, RlsModel,
    SensitivityModel,
};
use evolve_telemetry::{P2Quantile, PloBound, PloTracker, SlidingQuantile};
use evolve_types::{ResourceVec, SimTime};
use std::hint::black_box;

fn bench_pid(c: &mut Criterion) {
    let mut pid = PidController::new(
        PidConfig::new(0.8, 0.15, 0.05).with_output_limits(-0.5, 1.0).with_derivative_tau(2.0),
    );
    let mut i = 0u64;
    c.bench_function("pid_step", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let e = ((i % 100) as f64 - 50.0) / 100.0;
            black_box(pid.step(black_box(e), 5.0))
        })
    });
}

fn bench_multi_controller(c: &mut Criterion) {
    let mut ctl = MultiResourceController::new(MultiResourceConfig::new(
        ResourceVec::splat(10.0),
        ResourceVec::splat(100_000.0),
    ));
    let alloc = ResourceVec::new(2_000.0, 2_048.0, 50.0, 50.0);
    let usage = ResourceVec::new(1_800.0, 512.0, 10.0, 45.0);
    let mut i = 0u64;
    c.bench_function("multi_resource_controller_step", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let e = ((i % 100) as f64 - 50.0) / 100.0;
            black_box(ctl.step(black_box(alloc), black_box(usage), e, 5.0))
        })
    });
}

fn bench_rls(c: &mut Criterion) {
    let mut model = RlsModel::new(4, 0.97);
    let mut i = 0u64;
    c.bench_function("rls_update_4d", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let x = [(i % 7) as f64, (i % 11) as f64, (i % 13) as f64, (i % 17) as f64];
            model.update(black_box(&x), (i % 23) as f64);
        })
    });
}

fn bench_sensitivity(c: &mut Criterion) {
    let mut model = SensitivityModel::new();
    let alloc = ResourceVec::new(2_000.0, 2_048.0, 50.0, 50.0);
    let usage = ResourceVec::new(1_900.0, 512.0, 10.0, 45.0);
    for _ in 0..20 {
        model.observe(alloc, usage, 0.2);
    }
    c.bench_function("sensitivity_attribution", |b| b.iter(|| black_box(model.attribution())));
}

fn bench_quantiles(c: &mut Criterion) {
    let mut p2 = P2Quantile::new(0.99);
    let mut i = 0u64;
    c.bench_function("p2_quantile_observe", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            p2.observe(black_box((i % 1_000) as f64));
        })
    });
    let mut sliding = SlidingQuantile::new(1_000);
    for v in 0..1_000 {
        sliding.observe(f64::from(v));
    }
    c.bench_function("sliding_quantile_p99_of_1000", |b| {
        b.iter(|| black_box(sliding.quantile(0.99)))
    });
}

fn bench_plo_tracker(c: &mut Criterion) {
    let mut tracker = PloTracker::new(100.0, PloBound::Upper);
    let mut i = 0u64;
    c.bench_function("plo_record_window", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            tracker.record_window(SimTime::from_secs(i), black_box((i % 200) as f64));
        })
    });
}

criterion_group!(
    benches,
    bench_pid,
    bench_multi_controller,
    bench_rls,
    bench_sensitivity,
    bench_quantiles,
    bench_plo_tracker
);
criterion_main!(benches);
