//! **Simulator throughput** — events/second of the discrete-event engine
//! while serving an open-loop request stream, plus end-to-end
//! mini-experiment timing (the cost of regenerating a table cell).
//!
//! ```text
//! cargo bench -p evolve-bench --bench sim_throughput
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use evolve_core::{ExperimentRunner, ManagerKind, RunConfig};
use evolve_sim::{ClusterConfig, NodeShape, Simulation, SimulationConfig};
use evolve_types::{ResourceVec, SimDuration, SimTime};
use evolve_workload::{LoadSpec, PloSpec, RequestClass, Scenario, ServiceSpec, WorkloadMix};
use std::hint::black_box;

fn service_mix(rate: f64) -> WorkloadMix {
    let class = RequestClass::new(
        "rq",
        ResourceVec::new(20.0, 2.0, 0.2, 0.2),
        0.5,
        SimDuration::from_secs(10),
    );
    WorkloadMix::new().with_service(
        ServiceSpec::new(
            "svc",
            PloSpec::LatencyP99 { target_ms: 100.0 },
            class,
            ResourceVec::new(2_000.0, 2_048.0, 50.0, 50.0),
        )
        .with_initial_replicas(2),
        LoadSpec::Constant { rate },
    )
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("serve_10s_at_200rps", |b| {
        b.iter(|| {
            let mix = service_mix(200.0);
            let mut sim = Simulation::new(
                SimulationConfig::default(),
                ClusterConfig::uniform(2, NodeShape::default()),
                &mix,
                7,
            );
            let pending: Vec<_> = sim.cluster().pending_pods().map(|p| p.id).collect();
            for pod in pending {
                let node = sim.cluster().nodes()[0].id();
                sim.bind_pod(pod, node).expect("binds");
            }
            sim.run_until(SimTime::from_secs(10));
            black_box(sim.events_processed())
        })
    });
    group.bench_function("mini_experiment_evolve_60s", |b| {
        b.iter(|| {
            let scenario = Scenario {
                name: "mini".into(),
                description: String::new(),
                mix: service_mix(100.0),
                horizon: SimDuration::from_secs(60),
            };
            let outcome = ExperimentRunner::new(
                RunConfig::builder(scenario, ManagerKind::Evolve)
                    .nodes(3)
                    .seed(7)
                    .record_series(false)
                    .build(),
            )
            .run();
            black_box(outcome.total_violation_rate())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
