//! **Hot-path micro-benchmarks** — the four inner loops that dominate the
//! simulator's profile, benchmarked in isolation so a regression in any
//! one of them is attributable before it shows up in the macro number
//! (`perf_macro`, which feeds BENCH.json):
//!
//! * `replica/*` — the processor-sharing drain ([`ReplicaServer::advance`])
//!   at several concurrency levels, the O(1) idle fast path, and the
//!   memoized `next_event` query.
//! * `quantile/*` — [`SlidingQuantile`] ingest and the incremental
//!   sorted-window percentile read.
//! * `registry/*` — per-record name interning vs. the pre-interned
//!   [`MetricRegistry::record_key`] fast path.
//! * `scheduler/*` — one full `schedule_cycle` on a mid-size cluster.
//!
//! ```text
//! cargo bench -p evolve-bench --bench perf
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evolve_scheduler::SchedulerFramework;
use evolve_sim::{
    ClusterConfig, ClusterState, NodeShape, PerfConfig, PodKind, PodSpec, ReplicaServer,
};
use evolve_telemetry::{MetricRegistry, SlidingQuantile};
use evolve_types::{AppId, ResourceVec, SimTime};
use std::hint::black_box;

/// Deterministic pseudo-random stream without pulling in an RNG crate —
/// benchmark inputs only need to be fixed and non-degenerate.
fn lcg_stream(n: usize) -> Vec<f64> {
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Map the top bits to a latency-like range [1, 500) ms.
            1.0 + (state >> 11) as f64 / (1u64 << 53) as f64 * 499.0
        })
        .collect()
}

fn loaded_replica(inflight: usize) -> ReplicaServer {
    let alloc = ResourceVec::new(4_000.0, 8_192.0, 200.0, 200.0);
    let mut r = ReplicaServer::new(alloc, 64.0, PerfConfig::default(), SimTime::ZERO);
    for i in 0..inflight {
        // Staggered demands so completions spread over many drain steps.
        let cpu = 50.0 + 13.0 * i as f64;
        r.admit(
            i as u64,
            SimTime::ZERO,
            SimTime::from_secs(600),
            ResourceVec::new(cpu, 8.0, 0.5, 0.5),
        );
    }
    r
}

fn bench_replica(c: &mut Criterion) {
    let mut group = c.benchmark_group("replica");
    group.sample_size(20);
    for inflight in [4usize, 32] {
        let template = loaded_replica(inflight);
        group.bench_with_input(
            BenchmarkId::new("advance_drain_all", inflight),
            &inflight,
            |b, _| {
                b.iter(|| {
                    let mut r = template.clone();
                    let out = r.advance(SimTime::from_secs(600));
                    black_box(out.completed.len())
                })
            },
        );
    }
    let template = loaded_replica(16);
    group.bench_function("next_event_memoized", |b| {
        let mut r = template.clone();
        b.iter(|| {
            // First query computes, second hits the cache — the engine's
            // reschedule-then-drain pattern.
            black_box(r.next_event());
            black_box(r.next_event())
        })
    });
    group.bench_function("advance_idle", |b| {
        let mut r = ReplicaServer::new(
            ResourceVec::new(1_000.0, 1_024.0, 100.0, 100.0),
            64.0,
            PerfConfig::default(),
            SimTime::ZERO,
        );
        let mut t = 1u64;
        b.iter(|| {
            // Monotone clock moves on an empty replica: the closed-form
            // O(1) path the engine takes for quiescent pods.
            t += 1;
            black_box(r.advance(SimTime::from_micros(t)).completed.len())
        })
    });
    group.finish();
}

fn bench_quantile(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantile");
    group.sample_size(20);
    let values = lcg_stream(4_096);
    group.bench_function("observe_4096_window_512", |b| {
        b.iter(|| {
            let mut q = SlidingQuantile::new(512);
            for v in &values {
                q.observe(*v);
            }
            black_box(q.len())
        })
    });
    group.bench_function("observe_p99_interleaved", |b| {
        // The control-loop pattern: ingest a window's worth of latencies,
        // read the tail once per window.
        b.iter(|| {
            let mut q = SlidingQuantile::new(512);
            let mut acc = 0.0;
            for chunk in values.chunks(64) {
                for v in chunk {
                    q.observe(*v);
                }
                acc += q.quantile(0.99).unwrap_or(0.0);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry");
    group.sample_size(20);
    let names: Vec<String> = (0..8).map(|i| format!("app{i}/p99_ms")).collect();
    group.bench_function("record_by_name_1k", |b| {
        b.iter(|| {
            let mut reg = MetricRegistry::new();
            for t in 0..128u64 {
                for name in &names {
                    // Re-interning per record is the slow name-hashing
                    // path this benchmark compares against the
                    // pre-interned key path below.
                    let key = reg.key(name);
                    reg.record_key(key, SimTime::from_secs(t), t as f64);
                }
            }
            black_box(reg.series_count())
        })
    });
    group.bench_function("record_by_key_1k", |b| {
        b.iter(|| {
            let mut reg = MetricRegistry::new();
            let keys: Vec<_> = names.iter().map(|n| reg.key(n)).collect();
            for t in 0..128u64 {
                for key in &keys {
                    reg.record_key(*key, SimTime::from_secs(t), t as f64);
                }
            }
            black_box(reg.fast_path_records())
        })
    });
    group.finish();
}

fn populated_cluster(nodes: usize, pending: usize) -> ClusterState {
    let mut cluster = ClusterState::new(&ClusterConfig::uniform(nodes, NodeShape::default()));
    let filler = ResourceVec::new(8_000.0, 16_384.0, 100.0, 200.0);
    for i in 0..nodes {
        let pod = cluster.create_pod(
            PodSpec::new(PodKind::ServiceReplica { app: AppId::new(9_999) }, filler, 10),
            SimTime::ZERO,
        );
        cluster.bind_pod(pod, cluster.nodes()[i].id()).expect("fits");
    }
    for k in 0..pending {
        cluster.create_pod(
            PodSpec::new(
                PodKind::ServiceReplica { app: AppId::new((k % 20) as u32) },
                ResourceVec::new(1_000.0, 1_024.0, 10.0, 20.0),
                100,
            ),
            SimTime::from_micros(k as u64),
        );
    }
    cluster
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(20);
    let cluster = populated_cluster(200, 64);
    let evolve = SchedulerFramework::evolve_default();
    group.bench_function("schedule_cycle_200n_64p", |b| {
        b.iter(|| black_box(evolve.schedule_cycle(&cluster)))
    });
    group.finish();
}

criterion_group!(benches, bench_replica, bench_quantile, bench_registry, bench_scheduler);
criterion_main!(benches);
