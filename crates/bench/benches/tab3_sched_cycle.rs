//! **T3 (criterion companion) — scheduler cycle cost** at increasing
//! cluster sizes, for the stock and EVOLVE profiles.
//!
//! ```text
//! cargo bench -p evolve-bench --bench tab3_sched_cycle
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evolve_scheduler::SchedulerFramework;
use evolve_sim::{ClusterConfig, ClusterState, NodeShape, PodKind, PodSpec};
use evolve_types::{AppId, ResourceVec, SimTime};
use std::hint::black_box;

fn populated(nodes: usize, pending: usize) -> ClusterState {
    let mut cluster = ClusterState::new(&ClusterConfig::uniform(nodes, NodeShape::default()));
    let filler = ResourceVec::new(8_000.0, 16_384.0, 100.0, 200.0);
    for i in 0..nodes {
        let pod = cluster.create_pod(
            PodSpec::new(PodKind::ServiceReplica { app: AppId::new(9_999) }, filler, 10),
            SimTime::ZERO,
        );
        cluster.bind_pod(pod, cluster.nodes()[i].id()).expect("fits");
    }
    for k in 0..pending {
        cluster.create_pod(
            PodSpec::new(
                PodKind::ServiceReplica { app: AppId::new((k % 20) as u32) },
                ResourceVec::new(1_000.0, 1_024.0, 10.0, 20.0),
                100,
            ),
            SimTime::from_micros(k as u64),
        );
    }
    cluster
}

fn bench_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_cycle_100_pods");
    group.sample_size(20);
    for nodes in [100usize, 500, 1_000] {
        let cluster = populated(nodes, 100);
        let kube = SchedulerFramework::kube_default();
        let evolve = SchedulerFramework::evolve_default();
        group.bench_with_input(BenchmarkId::new("kube-default", nodes), &nodes, |b, _| {
            b.iter(|| black_box(kube.schedule_cycle(&cluster)))
        });
        group.bench_with_input(BenchmarkId::new("evolve", nodes), &nodes, |b, _| {
            b.iter(|| black_box(evolve.schedule_cycle(&cluster)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycles);
criterion_main!(benches);
