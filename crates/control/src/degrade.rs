//! Graceful degradation under lost or stale telemetry.
//!
//! When metric scrapes go dark the controller must not mistake silence
//! for idleness: the PID integrator is frozen (simply not stepped) and
//! the last-safe output is held. [`DegradationGuard`] implements the
//! policy around that hold:
//!
//! * **hold** — while signals are missing, the previous output is
//!   repeated verbatim;
//! * **watchdog** — after `watchdog_ticks` consecutive dark ticks the
//!   guard stops trusting the held value and decays it toward a
//!   caller-supplied usage-anchored floor (never below it), so a stale
//!   over-allocation does not persist forever;
//! * **re-engagement** — when signals return, the controller's proposed
//!   outputs are slew-limited relative to the held value for a few ticks,
//!   preventing a step change from whatever the PID accumulated against
//!   post-blackout measurements.

use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::{ResourceVec, Result};

/// Tunables for [`DegradationGuard`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationConfig {
    /// Dark ticks tolerated before the watchdog starts decaying the held
    /// output toward the floor.
    pub watchdog_ticks: u32,
    /// Per-tick relative decay toward the floor once the watchdog fires,
    /// and the per-tick relative slew bound during re-engagement.
    pub max_step: f64,
    /// How many fresh ticks stay slew-limited after a blackout.
    pub reengage_ticks: u32,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig { watchdog_ticks: 6, max_step: 0.25, reengage_ticks: 3 }
    }
}

/// Hold-last-safe / watchdog / slew-limited re-engagement state machine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationGuard {
    config: DegradationConfig,
    dark_ticks: u32,
    reengage_left: u32,
    held: Option<ResourceVec>,
}

impl DegradationGuard {
    /// Creates a guard with the given tunables.
    #[must_use]
    pub fn new(config: DegradationConfig) -> Self {
        DegradationGuard { config, ..DegradationGuard::default() }
    }

    /// Consecutive ticks without a usable signal.
    #[must_use]
    pub fn dark_ticks(&self) -> u32 {
        self.dark_ticks
    }

    /// `true` once the watchdog has given up on the held output.
    #[must_use]
    pub fn watchdog_tripped(&self) -> bool {
        self.dark_ticks > self.config.watchdog_ticks
    }

    /// One dark tick: returns the output to hold, or `None` when no
    /// output was ever recorded (the caller falls back to its default).
    /// `floor` is the usage-anchored safe minimum; once the watchdog
    /// trips the held output decays toward it but never below.
    pub fn on_dark(&mut self, floor: &ResourceVec) -> Option<ResourceVec> {
        self.dark_ticks = self.dark_ticks.saturating_add(1);
        let held = self.held?;
        let out = if self.watchdog_tripped() {
            (held * (1.0 - self.config.max_step)).max(floor)
        } else {
            held
        };
        self.held = Some(out);
        Some(out)
    }

    /// One fresh tick: accepts the controller's proposed output and
    /// returns the (possibly slew-limited) output to apply.
    pub fn on_signal(&mut self, proposed: ResourceVec) -> ResourceVec {
        if self.dark_ticks > 0 {
            self.reengage_left = self.config.reengage_ticks;
            self.dark_ticks = 0;
        }
        let out = match (self.reengage_left, self.held) {
            (n, Some(held)) if n > 0 => {
                self.reengage_left = n - 1;
                let lo = held * (1.0 - self.config.max_step);
                let hi = held * (1.0 + self.config.max_step);
                proposed.clamp(&lo, &hi)
            }
            _ => proposed,
        };
        self.held = Some(out);
        out
    }

    /// Seeds the guard after a controller restart: `held` becomes the
    /// observed current allocation and the full re-engagement window is
    /// armed, so the **first** post-restart [`on_signal`](Self::on_signal)
    /// is already slew-limited to `held · (1 ± max_step)`. (The normal
    /// path only arms re-engagement on a dark→fresh transition, which a
    /// freshly-constructed guard never sees.)
    pub fn seed_recovery(&mut self, held: ResourceVec) {
        self.held = Some(held);
        self.reengage_left = self.config.reengage_ticks;
        self.dark_ticks = 0;
    }
}

impl Codec for DegradationConfig {
    fn encode(&self, enc: &mut Encoder) {
        self.watchdog_ticks.encode(enc);
        self.max_step.encode(enc);
        self.reengage_ticks.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(DegradationConfig {
            watchdog_ticks: u32::decode(dec)?,
            max_step: f64::decode(dec)?,
            reengage_ticks: u32::decode(dec)?,
        })
    }
}

impl Codec for DegradationGuard {
    fn encode(&self, enc: &mut Encoder) {
        self.config.encode(enc);
        self.dark_ticks.encode(enc);
        self.reengage_left.encode(enc);
        self.held.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(DegradationGuard {
            config: DegradationConfig::decode(dec)?,
            dark_ticks: u32::decode(dec)?,
            reengage_left: u32::decode(dec)?,
            held: Option::<ResourceVec>::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> DegradationGuard {
        DegradationGuard::new(DegradationConfig {
            watchdog_ticks: 3,
            max_step: 0.2,
            reengage_ticks: 2,
        })
    }

    #[test]
    fn holds_last_output_while_dark() {
        let mut g = guard();
        let out = g.on_signal(ResourceVec::splat(100.0));
        assert_eq!(out, ResourceVec::splat(100.0));
        let floor = ResourceVec::splat(10.0);
        for _ in 0..3 {
            assert_eq!(g.on_dark(&floor), Some(ResourceVec::splat(100.0)));
        }
        assert!(!g.watchdog_tripped());
    }

    #[test]
    fn dark_without_history_yields_none() {
        let mut g = guard();
        assert_eq!(g.on_dark(&ResourceVec::splat(10.0)), None);
    }

    #[test]
    fn watchdog_decays_to_floor_and_stops() {
        let mut g = guard();
        g.on_signal(ResourceVec::splat(100.0));
        let floor = ResourceVec::splat(60.0);
        let mut last = ResourceVec::splat(100.0);
        for tick in 1..30 {
            let out = g.on_dark(&floor).unwrap();
            if tick <= 3 {
                assert_eq!(out, ResourceVec::splat(100.0), "held before watchdog");
            } else {
                assert!(out.cpu() <= last.cpu(), "monotone decay");
                assert!(out.cpu() >= 60.0 - 1e-9, "never below the floor");
            }
            last = out;
        }
        assert_eq!(last, floor);
        assert!(g.watchdog_tripped());
    }

    #[test]
    fn reengagement_is_slew_limited() {
        let mut g = guard();
        g.on_signal(ResourceVec::splat(100.0));
        let floor = ResourceVec::splat(10.0);
        g.on_dark(&floor);
        g.on_dark(&floor);
        // Controller comes back proposing a wild jump; only ±20% per tick
        // is allowed for the first two fresh ticks.
        let first = g.on_signal(ResourceVec::splat(500.0));
        assert_eq!(first, ResourceVec::splat(120.0));
        let second = g.on_signal(ResourceVec::splat(500.0));
        assert_eq!(second, ResourceVec::splat(144.0));
        // After the re-engagement window the proposal passes through.
        let third = g.on_signal(ResourceVec::splat(500.0));
        assert_eq!(third, ResourceVec::splat(500.0));
        // Downward jumps are limited too.
        g.on_dark(&floor);
        let down = g.on_signal(ResourceVec::splat(1.0));
        assert_eq!(down, ResourceVec::splat(400.0));
    }

    #[test]
    fn seed_recovery_clamps_the_very_first_signal() {
        let mut g = guard();
        g.seed_recovery(ResourceVec::splat(100.0));
        // Without the seed a fresh guard would pass this straight through.
        let first = g.on_signal(ResourceVec::splat(500.0));
        assert_eq!(first, ResourceVec::splat(120.0));
        g.seed_recovery(ResourceVec::splat(100.0));
        let low = g.on_signal(ResourceVec::splat(1.0));
        assert_eq!(low, ResourceVec::splat(80.0));
    }

    #[test]
    fn guard_codec_roundtrip() {
        let mut g = guard();
        g.on_signal(ResourceVec::splat(100.0));
        g.on_dark(&ResourceVec::splat(10.0));
        let mut enc = evolve_types::Encoder::new();
        g.encode(&mut enc);
        let bytes = enc.into_bytes();
        let back = DegradationGuard::decode(&mut evolve_types::Decoder::new(&bytes)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn dark_counter_resets_on_signal() {
        let mut g = guard();
        g.on_signal(ResourceVec::splat(50.0));
        g.on_dark(&ResourceVec::ZERO);
        g.on_dark(&ResourceVec::ZERO);
        assert_eq!(g.dark_ticks(), 2);
        g.on_signal(ResourceVec::splat(50.0));
        assert_eq!(g.dark_ticks(), 0);
    }
}
