//! On-line gain adaptation.
//!
//! The Skynet/EVOLVE controllers "adjust [their] parameters on the fly".
//! Two mechanisms are provided:
//!
//! * [`AdaptiveTuner`] — a rule-based adaptor run every control period: it
//!   watches the recent error signal, detects **oscillation** (frequent
//!   sign changes → the loop gain is too high → shrink `kp`, `ki`) and
//!   **sluggishness** (persistent one-sided error → the loop gain is too
//!   low → grow `ki`, `kp`), within configured bounds.
//! * [`RelayTuner`] — Åström–Hägglund relay feedback auto-tuning used to
//!   bootstrap gains: drive the actuator with a relay, measure the induced
//!   oscillation's ultimate period and amplitude, then apply
//!   Ziegler–Nichols rules.

use std::collections::VecDeque;

use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::Result;
use serde::{Deserialize, Serialize};

use crate::pid::PidController;

/// Configuration for [`AdaptiveTuner`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveTunerConfig {
    /// Number of recent control periods inspected.
    pub window: usize,
    /// Fraction of sign changes (per window pair) above which the loop is
    /// declared oscillatory.
    pub oscillation_threshold: f64,
    /// Fraction of same-signed, above-deadband errors above which the loop
    /// is declared sluggish.
    pub sluggish_threshold: f64,
    /// Errors with |e| below this are treated as "settled" noise.
    pub deadband: f64,
    /// Multiplicative shrink applied on oscillation (e.g. 0.7).
    pub shrink: f64,
    /// Multiplicative growth applied on sluggishness (e.g. 1.3).
    pub grow: f64,
    /// Lower bound on each gain after adaptation.
    pub min_gain: f64,
    /// Upper bound on each gain after adaptation.
    pub max_gain: f64,
}

impl Default for AdaptiveTunerConfig {
    fn default() -> Self {
        AdaptiveTunerConfig {
            window: 12,
            oscillation_threshold: 0.45,
            sluggish_threshold: 0.8,
            deadband: 0.05,
            shrink: 0.7,
            grow: 1.3,
            min_gain: 0.01,
            max_gain: 50.0,
        }
    }
}

/// What the tuner decided on the latest step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Adjustment {
    None,
    Shrunk,
    Grew,
}

/// Rule-based on-line gain adaptor.
///
/// # Examples
///
/// ```
/// use evolve_control::{AdaptiveTuner, AdaptiveTunerConfig, PidConfig, PidController};
///
/// let mut pid = PidController::new(PidConfig::new(10.0, 1.0, 0.0));
/// let mut tuner = AdaptiveTuner::new(AdaptiveTunerConfig::default());
/// // Feed an oscillating error; the tuner shrinks the gains.
/// for i in 0..40 {
///     let e = if i % 2 == 0 { 1.0 } else { -1.0 };
///     tuner.observe_and_adapt(e, &mut pid);
/// }
/// assert!(pid.config().kp() < 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveTuner {
    config: AdaptiveTunerConfig,
    errors: VecDeque<f64>,
    adaptations: u64,
    cooldown: usize,
}

impl AdaptiveTuner {
    /// Creates a tuner.
    ///
    /// # Panics
    ///
    /// Panics when the window is smaller than 4 or the multipliers do not
    /// bracket 1 (`shrink < 1 < grow`).
    #[must_use]
    pub fn new(config: AdaptiveTunerConfig) -> Self {
        assert!(config.window >= 4, "tuner window must be at least 4");
        assert!(
            config.shrink < 1.0 && config.grow > 1.0,
            "shrink must be < 1 and grow must be > 1"
        );
        assert!(config.min_gain > 0.0 && config.min_gain < config.max_gain);
        AdaptiveTuner { config, errors: VecDeque::new(), adaptations: 0, cooldown: 0 }
    }

    /// Number of gain adjustments applied so far.
    #[must_use]
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    /// Records the latest control error and, when the window justifies it,
    /// rewrites the controller's gains in place. Returns `true` when the
    /// gains changed.
    pub fn observe_and_adapt(&mut self, error: f64, pid: &mut PidController) -> bool {
        let cfg = self.config;
        if self.errors.len() == cfg.window {
            self.errors.pop_front();
        }
        self.errors.push_back(error);
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return false;
        }
        if self.errors.len() < cfg.window {
            return false;
        }

        let adjustment = self.classify();
        let (kp, ki, kd) = (pid.config().kp(), pid.config().ki(), pid.config().kd());
        let clamp = |g: f64| g.clamp(cfg.min_gain, cfg.max_gain);
        let changed = match adjustment {
            Adjustment::Shrunk => {
                pid.set_gains(clamp(kp * cfg.shrink), clamp(ki * cfg.shrink), kd);
                true
            }
            Adjustment::Grew => {
                pid.set_gains(clamp(kp * cfg.grow), clamp(ki * cfg.grow), kd);
                true
            }
            Adjustment::None => false,
        };
        if changed {
            self.adaptations += 1;
            // Let the loop settle under the new gains before re-judging.
            self.cooldown = cfg.window / 2;
        }
        changed
    }

    fn classify(&self) -> Adjustment {
        let cfg = self.config;
        let active: Vec<f64> =
            self.errors.iter().copied().filter(|e| e.abs() > cfg.deadband).collect();
        if active.len() < cfg.window / 2 {
            return Adjustment::None; // mostly settled
        }
        let mut sign_changes = 0usize;
        for w in active.windows(2) {
            if w[0].signum() != w[1].signum() {
                sign_changes += 1;
            }
        }
        let change_rate = sign_changes as f64 / (active.len() - 1).max(1) as f64;
        if change_rate >= cfg.oscillation_threshold {
            return Adjustment::Shrunk;
        }
        // Sluggish: most samples above deadband with the same sign.
        let positive = active.iter().filter(|e| **e > 0.0).count();
        let one_sided = positive.max(active.len() - positive) as f64 / active.len() as f64;
        let coverage = active.len() as f64 / cfg.window as f64;
        if one_sided >= cfg.sluggish_threshold && coverage >= cfg.sluggish_threshold {
            return Adjustment::Grew;
        }
        Adjustment::None
    }
}

impl Codec for AdaptiveTunerConfig {
    fn encode(&self, enc: &mut Encoder) {
        self.window.encode(enc);
        self.oscillation_threshold.encode(enc);
        self.sluggish_threshold.encode(enc);
        self.deadband.encode(enc);
        self.shrink.encode(enc);
        self.grow.encode(enc);
        self.min_gain.encode(enc);
        self.max_gain.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(AdaptiveTunerConfig {
            window: usize::decode(dec)?,
            oscillation_threshold: f64::decode(dec)?,
            sluggish_threshold: f64::decode(dec)?,
            deadband: f64::decode(dec)?,
            shrink: f64::decode(dec)?,
            grow: f64::decode(dec)?,
            min_gain: f64::decode(dec)?,
            max_gain: f64::decode(dec)?,
        })
    }
}

impl Codec for AdaptiveTuner {
    fn encode(&self, enc: &mut Encoder) {
        self.config.encode(enc);
        self.errors.encode(enc);
        self.adaptations.encode(enc);
        self.cooldown.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(AdaptiveTuner {
            config: AdaptiveTunerConfig::decode(dec)?,
            errors: VecDeque::<f64>::decode(dec)?,
            adaptations: u64::decode(dec)?,
            cooldown: usize::decode(dec)?,
        })
    }
}

/// Outcome of a completed relay auto-tuning experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelayTunerOutcome {
    /// Ultimate gain `Ku = 4d / (π a)` from relay amplitude `d` and
    /// oscillation amplitude `a`.
    pub ultimate_gain: f64,
    /// Ultimate period `Tu` in seconds.
    pub ultimate_period: f64,
    /// Recommended proportional gain (Ziegler–Nichols PI rule).
    pub kp: f64,
    /// Recommended integral gain.
    pub ki: f64,
    /// Recommended derivative gain.
    pub kd: f64,
}

/// Åström–Hägglund relay feedback auto-tuner.
///
/// Drive the plant with [`RelayTuner::actuation`], feed measurements back
/// through [`RelayTuner::observe`]; once enough oscillation periods are
/// collected, [`RelayTuner::outcome`] yields Ziegler–Nichols gains.
///
/// # Examples
///
/// ```
/// use evolve_control::RelayTuner;
///
/// let mut tuner = RelayTuner::new(1.0, 0.0);
/// // First-order plant under relay feedback oscillates.
/// let mut y = 0.0;
/// let dt = 0.05;
/// for step in 0..2000 {
///     let u = tuner.actuation(y);
///     y += (u - y) / 0.5 * dt;
///     tuner.observe(step as f64 * dt, y);
/// }
/// let out = tuner.outcome().expect("oscillation detected");
/// assert!(out.kp > 0.0 && out.ki > 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelayTuner {
    amplitude: f64,
    setpoint: f64,
    /// Crossing times of the measurement through the setpoint (upward).
    crossings: Vec<f64>,
    min_measurement: f64,
    max_measurement: f64,
    last_measurement: Option<f64>,
}

impl RelayTuner {
    /// Creates a relay tuner with relay `amplitude` around `setpoint`.
    ///
    /// # Panics
    ///
    /// Panics when `amplitude` is not positive.
    #[must_use]
    pub fn new(amplitude: f64, setpoint: f64) -> Self {
        assert!(amplitude > 0.0, "relay amplitude must be positive");
        RelayTuner {
            amplitude,
            setpoint,
            crossings: Vec::new(),
            min_measurement: f64::INFINITY,
            max_measurement: f64::NEG_INFINITY,
            last_measurement: None,
        }
    }

    /// The relay actuation for the current measurement: `+amplitude` when
    /// below the setpoint, `-amplitude` when above.
    #[must_use]
    pub fn actuation(&self, measurement: f64) -> f64 {
        if measurement <= self.setpoint {
            self.amplitude
        } else {
            -self.amplitude
        }
    }

    /// Feeds a time-stamped measurement (seconds).
    pub fn observe(&mut self, at_secs: f64, measurement: f64) {
        self.min_measurement = self.min_measurement.min(measurement);
        self.max_measurement = self.max_measurement.max(measurement);
        if let Some(prev) = self.last_measurement {
            if prev < self.setpoint && measurement >= self.setpoint {
                self.crossings.push(at_secs);
            }
        }
        self.last_measurement = Some(measurement);
    }

    /// Number of full oscillation periods observed so far.
    #[must_use]
    pub fn periods_observed(&self) -> usize {
        self.crossings.len().saturating_sub(1)
    }

    /// Ziegler–Nichols PID gains once at least three periods have been
    /// observed; `None` before that.
    #[must_use]
    pub fn outcome(&self) -> Option<RelayTunerOutcome> {
        if self.periods_observed() < 3 {
            return None;
        }
        // Average the later periods (the first may include the transient).
        let periods: Vec<f64> = self.crossings.windows(2).skip(1).map(|w| w[1] - w[0]).collect();
        let tu = periods.iter().sum::<f64>() / periods.len() as f64;
        let a = (self.max_measurement - self.min_measurement) / 2.0;
        if tu <= 0.0 || a <= 0.0 {
            return None;
        }
        let ku = 4.0 * self.amplitude / (std::f64::consts::PI * a);
        // Classic Ziegler–Nichols PID rules.
        let kp = 0.6 * ku;
        let ti = tu / 2.0;
        let td = tu / 8.0;
        Some(RelayTunerOutcome {
            ultimate_gain: ku,
            ultimate_period: tu,
            kp,
            ki: kp / ti,
            kd: kp * td,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pid::PidConfig;

    fn pid(kp: f64, ki: f64) -> PidController {
        PidController::new(PidConfig::new(kp, ki, 0.0))
    }

    #[test]
    fn oscillation_shrinks_gains() {
        let mut p = pid(8.0, 2.0);
        let mut t = AdaptiveTuner::new(AdaptiveTunerConfig::default());
        for i in 0..60 {
            let e = if i % 2 == 0 { 0.5 } else { -0.5 };
            t.observe_and_adapt(e, &mut p);
        }
        assert!(p.config().kp() < 8.0);
        assert!(p.config().ki() < 2.0);
        assert!(t.adaptations() >= 1);
    }

    #[test]
    fn persistent_error_grows_gains() {
        let mut p = pid(1.0, 0.1);
        let mut t = AdaptiveTuner::new(AdaptiveTunerConfig::default());
        for _ in 0..60 {
            t.observe_and_adapt(0.5, &mut p);
        }
        assert!(p.config().kp() > 1.0);
        assert!(p.config().ki() > 0.1);
    }

    #[test]
    fn settled_loop_is_left_alone() {
        let mut p = pid(3.0, 0.5);
        let mut t = AdaptiveTuner::new(AdaptiveTunerConfig::default());
        for i in 0..60 {
            // Tiny noise inside the deadband.
            let e = if i % 2 == 0 { 0.01 } else { -0.01 };
            t.observe_and_adapt(e, &mut p);
        }
        assert_eq!(p.config().kp(), 3.0);
        assert_eq!(t.adaptations(), 0);
    }

    #[test]
    fn gains_respect_bounds() {
        let cfg = AdaptiveTunerConfig { min_gain: 0.5, max_gain: 2.0, ..Default::default() };
        let mut p = pid(1.9, 1.9);
        let mut t = AdaptiveTuner::new(cfg);
        for _ in 0..200 {
            t.observe_and_adapt(1.0, &mut p); // sluggish forever
        }
        assert!(p.config().kp() <= 2.0);
        let mut p2 = pid(0.6, 0.6);
        let mut t2 = AdaptiveTuner::new(cfg);
        for i in 0..200 {
            t2.observe_and_adapt(if i % 2 == 0 { 1.0 } else { -1.0 }, &mut p2);
        }
        assert!(p2.config().kp() >= 0.5);
    }

    #[test]
    fn cooldown_limits_adaptation_rate() {
        let mut p = pid(1.0, 0.1);
        let mut t = AdaptiveTuner::new(AdaptiveTunerConfig::default());
        let mut changes = 0;
        for _ in 0..24 {
            if t.observe_and_adapt(1.0, &mut p) {
                changes += 1;
            }
        }
        // window=12 fills at step 12, adapts, then cools for 6 steps.
        assert!(changes <= 2, "adapted {changes} times in 24 steps");
    }

    #[test]
    #[should_panic(expected = "window must be at least 4")]
    fn rejects_tiny_window() {
        let cfg = AdaptiveTunerConfig { window: 2, ..Default::default() };
        let _ = AdaptiveTuner::new(cfg);
    }

    #[test]
    fn relay_tuner_measures_known_plant() {
        // Integrating plant with delay-ish dynamics oscillates under relay.
        let mut tuner = RelayTuner::new(1.0, 0.0);
        let mut y = 0.1;
        let mut y_lag = 0.0;
        let dt = 0.01;
        for step in 0..20_000 {
            let u = tuner.actuation(y);
            // Second-order lag to get a genuine oscillation.
            y_lag += (u - y_lag) / 0.3 * dt;
            y += (y_lag - y) / 0.3 * dt;
            tuner.observe(step as f64 * dt, y);
        }
        let out = tuner.outcome().expect("should oscillate");
        assert!(out.ultimate_period > 0.0);
        assert!(out.ultimate_gain > 0.0);
        assert!(out.kp > 0.0 && out.ki > 0.0 && out.kd > 0.0);
    }

    #[test]
    fn relay_tuner_needs_three_periods() {
        let mut tuner = RelayTuner::new(1.0, 0.0);
        tuner.observe(0.0, -1.0);
        tuner.observe(1.0, 1.0); // one upward crossing
        assert_eq!(tuner.periods_observed(), 0);
        assert!(tuner.outcome().is_none());
    }

    #[test]
    fn relay_actuation_sign() {
        let tuner = RelayTuner::new(2.0, 10.0);
        assert_eq!(tuner.actuation(5.0), 2.0);
        assert_eq!(tuner.actuation(15.0), -2.0);
    }
}
