//! On-line performance models.
//!
//! "Skynet builds a model on-the-fly to map target PLOs to resources for
//! each application." The model layer here does the equivalent job for
//! EVOLVE: a small recursive-least-squares (RLS) engine learns how the
//! measured performance responds to each resource's allocation, and the
//! [`SensitivityModel`] turns that into an **attribution vector** — which
//! fraction of the PLO error each resource dimension should absorb.

use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::{Error, Resource, ResourceVec, Result, NUM_RESOURCES};
use serde::{Deserialize, Serialize};

/// Recursive least squares with exponential forgetting for a linear model
/// `y ≈ w · x`.
///
/// # Examples
///
/// ```
/// use evolve_control::RlsModel;
///
/// let mut m = RlsModel::new(2, 0.99);
/// // Learn y = 3*x0 + 1*x1 from noiseless samples.
/// for i in 0..200 {
///     let x = [f64::from(i % 10), f64::from((i * 7) % 5)];
///     let y = 3.0 * x[0] + x[1];
///     m.update(&x, y);
/// }
/// let pred = m.predict(&[2.0, 1.0]);
/// assert!((pred - 7.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RlsModel {
    dim: usize,
    /// Weight vector.
    w: Vec<f64>,
    /// Inverse covariance matrix, row-major `dim × dim`.
    p: Vec<f64>,
    /// Forgetting factor in (0, 1]; smaller forgets faster.
    lambda: f64,
    updates: u64,
}

impl RlsModel {
    /// Creates a model of input dimension `dim` with forgetting factor
    /// `lambda`.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0` or `lambda` is outside `(0, 1]`.
    #[must_use]
    pub fn new(dim: usize, lambda: f64) -> Self {
        assert!(dim > 0, "model dimension must be positive");
        assert!(lambda > 0.0 && lambda <= 1.0, "forgetting factor must be in (0, 1]");
        let mut p = vec![0.0; dim * dim];
        for i in 0..dim {
            p[i * dim + i] = 1_000.0; // large prior covariance: fast initial learning
        }
        RlsModel { dim, w: vec![0.0; dim], p, lambda, updates: 0 }
    }

    /// Input dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of updates applied.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Current weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Predicts `w · x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dim`.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        self.w.iter().zip(x).map(|(w, x)| w * x).sum()
    }

    /// Feeds one `(x, y)` observation. Non-finite inputs are ignored.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dim`.
    pub fn update(&mut self, x: &[f64], y: f64) {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        if !y.is_finite() || x.iter().any(|v| !v.is_finite()) {
            return;
        }
        let d = self.dim;
        // k = P x / (λ + xᵀ P x)
        let mut px = vec![0.0; d];
        for (i, pxi) in px.iter_mut().enumerate() {
            for (j, xj) in x.iter().enumerate() {
                *pxi += self.p[i * d + j] * xj;
            }
        }
        let denom = self.lambda + x.iter().zip(&px).map(|(a, b)| a * b).sum::<f64>();
        if denom.abs() < 1e-12 {
            return;
        }
        let k: Vec<f64> = px.iter().map(|v| v / denom).collect();
        let err = y - self.predict(x);
        for (wi, ki) in self.w.iter_mut().zip(&k) {
            *wi += ki * err;
        }
        // P = (P - k xᵀ P) / λ
        let mut xp = vec![0.0; d];
        for (j, xpj) in xp.iter_mut().enumerate() {
            for (i, xi) in x.iter().enumerate() {
                *xpj += xi * self.p[i * d + j];
            }
        }
        for (i, ki) in k.iter().enumerate() {
            for (j, xpj) in xp.iter().enumerate() {
                self.p[i * d + j] = (self.p[i * d + j] - ki * xpj) / self.lambda;
            }
        }
        self.updates += 1;
    }
}

impl Codec for RlsModel {
    fn encode(&self, enc: &mut Encoder) {
        self.dim.encode(enc);
        self.w.encode(enc);
        self.p.encode(enc);
        self.lambda.encode(enc);
        self.updates.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let dim = usize::decode(dec)?;
        let w = Vec::<f64>::decode(dec)?;
        let p = Vec::<f64>::decode(dec)?;
        let lambda = f64::decode(dec)?;
        let updates = u64::decode(dec)?;
        if dim == 0 || w.len() != dim || p.len() != dim * dim {
            return Err(Error::CorruptCheckpoint(format!(
                "rls dimension mismatch: dim {dim}, {} weights, {} covariance entries",
                w.len(),
                p.len()
            )));
        }
        Ok(RlsModel { dim, w, p, lambda, updates })
    }
}

/// Learns per-resource performance sensitivities and attributes control
/// error across the four resource dimensions.
///
/// Each control period the caller reports the per-replica allocation, the
/// measured per-replica *usage* and the control error. The model combines
/// two signals:
///
/// 1. **pressure** — how close usage runs to allocation in each dimension
///    (a resource at 95% of its allocation is a bottleneck candidate);
/// 2. **learned sensitivity** — an RLS estimate of ∂error/∂(log alloc)
///    per dimension, from the observed history of allocation changes.
///
/// The result of [`SensitivityModel::attribution`] is a non-negative
/// vector summing to 1: the share of the PLO error each resource PID
/// should absorb.
///
/// # Examples
///
/// ```
/// use evolve_control::SensitivityModel;
/// use evolve_types::{Resource, ResourceVec};
///
/// let mut m = SensitivityModel::new();
/// let alloc = ResourceVec::new(1000.0, 1024.0, 100.0, 100.0);
/// // CPU runs hot, everything else is idle.
/// let usage = ResourceVec::new(980.0, 128.0, 5.0, 5.0);
/// m.observe(alloc, usage, 0.4);
/// let attr = m.attribution();
/// assert!(attr[Resource::Cpu] > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityModel {
    /// RLS on Δerror vs Δlog-allocation (captures which knob moved the
    /// needle historically).
    rls: RlsModel,
    prev: Option<(ResourceVec, f64)>,
    /// Smoothed pressure per resource.
    pressure: [f64; NUM_RESOURCES],
    /// Smoothed per-request serial time (seconds) per rate resource —
    /// the latency decomposition signal (see `observe_with_profile`).
    serial: [f64; NUM_RESOURCES],
    has_serial: bool,
    observations: u64,
}

impl Default for SensitivityModel {
    fn default() -> Self {
        SensitivityModel::new()
    }
}

impl SensitivityModel {
    /// Creates an untrained model (uniform attribution until data arrives).
    #[must_use]
    pub fn new() -> Self {
        SensitivityModel {
            rls: RlsModel::new(NUM_RESOURCES, 0.97),
            prev: None,
            pressure: [0.0; NUM_RESOURCES],
            serial: [0.0; NUM_RESOURCES],
            has_serial: false,
            observations: 0,
        }
    }

    /// Number of observations fed.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Like [`SensitivityModel::observe`], but with the per-replica
    /// request throughput, enabling the **latency decomposition**: the
    /// serial time a request spends on resource `r` is
    /// `usage_r / (throughput × alloc_r)` (work per request over drain
    /// rate). Throughput pressure alone misses a resource whose
    /// *per-request* drain dominates latency while its utilization stays
    /// low — the classic "disk floor" failure of CPU-centric autoscalers.
    pub fn observe_with_profile(
        &mut self,
        alloc: ResourceVec,
        usage: ResourceVec,
        per_replica_rps: f64,
        error: f64,
    ) {
        const SERIAL_ALPHA: f64 = 0.4;
        if per_replica_rps > 1e-9 {
            for r in [Resource::Cpu, Resource::DiskIo, Resource::NetIo] {
                let a = alloc[r];
                if a > 0.0 {
                    let per_request_work = usage[r] / per_replica_rps;
                    let serial = per_request_work / a;
                    let i = r.index();
                    self.serial[i] += SERIAL_ALPHA * (serial - self.serial[i]);
                }
            }
            self.has_serial = true;
        }
        self.observe(alloc, usage, error);
    }

    /// Feeds one control period: the per-replica allocation **in force
    /// during the window**, the measured per-replica usage, and the PLO
    /// control error measured under that allocation (positive →
    /// under-provisioned).
    pub fn observe(&mut self, alloc: ResourceVec, usage: ResourceVec, error: f64) {
        const PRESSURE_ALPHA: f64 = 0.4;
        for r in Resource::ALL {
            let a = alloc[r];
            let p = if a > 0.0 { (usage[r] / a).clamp(0.0, 2.0) } else { 0.0 };
            let i = r.index();
            self.pressure[i] += PRESSURE_ALPHA * (p - self.pressure[i]);
        }
        if let Some((prev_alloc, prev_error)) = self.prev {
            // Δ log-allocation per resource as regressors, Δerror as target.
            let mut dx = [0.0; NUM_RESOURCES];
            let mut any = false;
            for r in Resource::ALL {
                let (a0, a1) = (prev_alloc[r], alloc[r]);
                if a0 > 0.0 && a1 > 0.0 {
                    dx[r.index()] = (a1 / a0).ln();
                    if dx[r.index()].abs() > 1e-9 {
                        any = true;
                    }
                }
            }
            if any {
                self.rls.update(&dx, error - prev_error);
            }
        }
        self.prev = Some((alloc, error));
        self.observations += 1;
    }

    /// Learned ∂error/∂(log alloc) per resource (negative values mean
    /// "growing this resource reduces the error", i.e. the resource
    /// matters).
    #[must_use]
    pub fn learned_sensitivity(&self) -> ResourceVec {
        let w = self.rls.weights();
        ResourceVec::new(w[0], w[1], w[2], w[3])
    }

    /// Smoothed per-request serial time in **seconds** per rate resource
    /// (zero for memory and before any profile observation).
    #[must_use]
    pub fn serial_secs(&self) -> ResourceVec {
        ResourceVec::new(self.serial[0], self.serial[1], self.serial[2], self.serial[3])
    }

    /// Current smoothed pressure (usage/allocation) per resource.
    #[must_use]
    pub fn pressure(&self) -> ResourceVec {
        ResourceVec::new(self.pressure[0], self.pressure[1], self.pressure[2], self.pressure[3])
    }

    /// The attribution vector: non-negative, sums to 1.
    ///
    /// Blends pressure (immediately informative) with learned sensitivity
    /// (authoritative once enough allocation changes were observed). Falls
    /// back to uniform attribution with no data.
    #[must_use]
    pub fn attribution(&self) -> ResourceVec {
        // Pressure contribution: emphasize near-saturation superlinearly.
        let mut score: [f64; NUM_RESOURCES] =
            std::array::from_fn(|i| self.pressure[i].max(0.0).powi(3));
        // Latency decomposition: blend in each rate resource's share of
        // the per-request serial time (dominant when available — it is
        // the direct answer to "which resource makes requests slow?").
        if self.has_serial {
            let total_serial: f64 = self.serial.iter().sum();
            if total_serial > 1e-12 {
                for (sc, serial) in score.iter_mut().zip(&self.serial) {
                    *sc = 0.3 * *sc + 0.7 * (serial / total_serial);
                }
            }
        }
        // Learned contribution: a *negative* weight on Δerror vs Δlog-alloc
        // means adding that resource helps; convert to positive salience.
        if self.rls.updates() >= 8 {
            let w = self.rls.weights();
            let max_mag = w.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-9);
            for i in 0..NUM_RESOURCES {
                let helpful = (-w[i]).max(0.0) / max_mag;
                score[i] = 0.5 * score[i] + 0.5 * helpful;
            }
        }
        let total: f64 = score.iter().sum();
        if total <= 1e-12 || self.observations == 0 {
            return ResourceVec::splat(1.0 / NUM_RESOURCES as f64);
        }
        // Blend with a uniform floor: every dimension keeps a small share
        // of the error. This is deliberate *exploration* — a latency floor
        // caused by an under-allocated rate resource shows neither
        // pressure nor (until the allocation moves) learnable
        // sensitivity; the floor guarantees the excitation that lets the
        // RLS discover it.
        const EXPLORE: f64 = 0.08;
        let uniform = 1.0 / NUM_RESOURCES as f64;
        ResourceVec::new(
            (1.0 - EXPLORE) * score[0] / total + EXPLORE * uniform,
            (1.0 - EXPLORE) * score[1] / total + EXPLORE * uniform,
            (1.0 - EXPLORE) * score[2] / total + EXPLORE * uniform,
            (1.0 - EXPLORE) * score[3] / total + EXPLORE * uniform,
        )
    }
}

impl Codec for SensitivityModel {
    fn encode(&self, enc: &mut Encoder) {
        self.rls.encode(enc);
        self.prev.encode(enc);
        self.pressure.encode(enc);
        self.serial.encode(enc);
        self.has_serial.encode(enc);
        self.observations.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(SensitivityModel {
            rls: RlsModel::decode(dec)?,
            prev: Option::<(ResourceVec, f64)>::decode(dec)?,
            pressure: <[f64; NUM_RESOURCES]>::decode(dec)?,
            serial: <[f64; NUM_RESOURCES]>::decode(dec)?,
            has_serial: bool::decode(dec)?,
            observations: u64::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rls_learns_linear_function() {
        let mut m = RlsModel::new(3, 1.0);
        let mut seed = 1u64;
        for _ in 0..500 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = [
                ((seed >> 16) % 100) as f64 / 10.0,
                ((seed >> 24) % 100) as f64 / 10.0,
                ((seed >> 32) % 100) as f64 / 10.0,
            ];
            let y = 2.0 * x[0] - 1.0 * x[1] + 0.5 * x[2];
            m.update(&x, y);
        }
        let w = m.weights();
        assert!((w[0] - 2.0).abs() < 0.05, "w0 {}", w[0]);
        assert!((w[1] + 1.0).abs() < 0.05, "w1 {}", w[1]);
        assert!((w[2] - 0.5).abs() < 0.05, "w2 {}", w[2]);
    }

    #[test]
    fn rls_forgetting_tracks_drift() {
        let mut m = RlsModel::new(1, 0.9);
        for _ in 0..100 {
            m.update(&[1.0], 1.0);
        }
        assert!((m.predict(&[1.0]) - 1.0).abs() < 0.05);
        // The relationship changes.
        for _ in 0..100 {
            m.update(&[1.0], 5.0);
        }
        assert!((m.predict(&[1.0]) - 5.0).abs() < 0.1);
    }

    #[test]
    fn rls_ignores_non_finite() {
        let mut m = RlsModel::new(1, 1.0);
        m.update(&[f64::NAN], 1.0);
        m.update(&[1.0], f64::INFINITY);
        assert_eq!(m.updates(), 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rls_rejects_wrong_dimension() {
        let m = RlsModel::new(2, 1.0);
        let _ = m.predict(&[1.0]);
    }

    #[test]
    fn untrained_attribution_is_uniform() {
        let m = SensitivityModel::new();
        let a = m.attribution();
        for r in Resource::ALL {
            assert!((a[r] - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pressure_identifies_bottleneck() {
        let mut m = SensitivityModel::new();
        let alloc = ResourceVec::new(1000.0, 1000.0, 100.0, 100.0);
        let usage = ResourceVec::new(200.0, 100.0, 98.0, 10.0);
        for _ in 0..10 {
            m.observe(alloc, usage, 0.5);
        }
        let attr = m.attribution();
        assert!(attr[Resource::DiskIo] > 0.6, "disk attribution {attr}");
        let sum: f64 = Resource::ALL.iter().map(|r| attr[*r]).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn attribution_is_normalized_and_non_negative() {
        let mut m = SensitivityModel::new();
        let mut alloc = ResourceVec::splat(100.0);
        for i in 0..50 {
            // Vary allocations so the RLS sees excitation.
            alloc[Resource::Cpu] = 100.0 + f64::from(i % 7) * 10.0;
            let usage = alloc * 0.5;
            m.observe(alloc, usage, f64::from(i % 3) * 0.1);
        }
        let attr = m.attribution();
        let mut sum = 0.0;
        for r in Resource::ALL {
            assert!(attr[r] >= 0.0);
            sum += attr[r];
        }
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn learned_sensitivity_finds_effective_resource() {
        let mut m = SensitivityModel::new();
        // Simulate: error falls when CPU allocation grows, other resources
        // are irrelevant. Alternate CPU between two levels; per the
        // `observe` contract the error is the one measured *under* the
        // reported allocation.
        for i in 0..60 {
            let cpu = if i % 2 == 0 { 1000.0 } else { 2000.0 };
            let error = if cpu > 1500.0 { 0.2 } else { 1.0 };
            let alloc = ResourceVec::new(cpu, 512.0, 50.0, 50.0);
            let usage = ResourceVec::new(cpu * 0.9, 100.0, 5.0, 5.0);
            m.observe(alloc, usage, error);
        }
        let s = m.learned_sensitivity();
        // Growing CPU reduced the error → negative weight for CPU.
        assert!(s[Resource::Cpu] < 0.0, "cpu sensitivity {}", s[Resource::Cpu]);
    }
}
