//! Cluster-level capacity arbitration under overload.
//!
//! Per-application PID controllers are deliberately greedy: each one asks
//! for whatever closes *its* PLO error, with no notion of what the cluster
//! can actually deliver. When the sum of those requests exceeds ready
//! schedulable capacity, granting them all just moves the fight into the
//! scheduler, where the outcome is arbitrary (whoever's pod binds first
//! wins) and thrashy. [`CapacityArbiter`] runs *after* all per-app control
//! steps and turns the aggregate into an explicit, priority-aware
//! admission decision:
//!
//! * **headroom reserve** — a configurable fraction of ready capacity is
//!   never handed out, so failover and scheduling churn have room to land;
//! * **strict priority classes** — demand is served class by class
//!   ([`PriorityClass::Critical`] first). A lower class is shed *entirely*
//!   before any higher-class app is clipped;
//! * **weighted-fair clipping** — inside the class that straddles the
//!   capacity edge, grants are scaled down proportionally to each app's
//!   request via per-dimension water-filling: only the dimensions the
//!   class oversubscribes are reduced (each to its own fair ratio), so
//!   one huge app cannot starve its peers and a CPU crunch does not
//!   confiscate anyone's memory;
//! * **hysteresis + slew** — the crunch flag switches on the raw
//!   demand-vs-capacity comparison but only clears once demand drops a
//!   configurable margin *below* capacity, and a previously clipped app's
//!   grant fraction recovers at a bounded per-tick rate. Together these
//!   stop the arbiter from flapping between "crunch" and "fine" on noisy
//!   demand;
//! * **starvation accounting** — every app carries an age counter that
//!   grows while it is shed or held below its floor
//!   (`floor_fraction × requested`) and resets on a healthy grant, so
//!   prolonged starvation is observable and testable.
//!
//! The core is the pure function [`arbitrate`]; [`CapacityArbiter`] wraps
//! it with owned config + state so callers (and checkpoints) have a single
//! handle.

use std::collections::BTreeMap;

use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::{AppId, PriorityClass, Resource, ResourceVec, Result};

/// Tunables for [`CapacityArbiter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArbiterConfig {
    /// Fraction of ready capacity held back as a scheduling/failover
    /// reserve; the arbiter only hands out `(1 - headroom_fraction)` of
    /// what is ready.
    pub headroom_fraction: f64,
    /// Fraction of an app's request below which a grant counts as
    /// starvation: ages advance while `granted < floor_fraction × requested`
    /// and reset once the grant is back at or above the floor.
    pub floor_fraction: f64,
    /// Crunch-exit margin: once in crunch, the arbiter only relaxes when
    /// total demand fits within `usable × (1 - hysteresis)`.
    pub hysteresis: f64,
    /// Maximum per-tick increase of an app's grant fraction while it
    /// recovers from a clip. Downward moves are never limited — capacity
    /// safety always wins immediately.
    pub max_recovery_step: f64,
    /// Growth governor applied by the caller when it builds
    /// [`ArbiterRequest`]s: an app's arbitrated demand is its controller's
    /// desired total clamped to `demand_cap_ratio ×` its *current actual*
    /// allocation (with one replica's request as the cold-start base).
    /// PID transients routinely wish for several times what an app holds;
    /// without the clamp those wish-lists count as demand, trip the crunch
    /// flag on a cluster that is not actually short, and let one settling
    /// app's overshoot starve whole lower classes.
    pub demand_cap_ratio: f64,
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        ArbiterConfig {
            headroom_fraction: 0.10,
            floor_fraction: 0.5,
            hysteresis: 0.10,
            max_recovery_step: 0.25,
            demand_cap_ratio: 2.0,
        }
    }
}

impl ArbiterConfig {
    /// Overrides the headroom reserve fraction.
    #[must_use]
    pub fn with_headroom_fraction(mut self, headroom_fraction: f64) -> Self {
        self.headroom_fraction = headroom_fraction;
        self
    }

    /// Overrides the starvation floor fraction.
    #[must_use]
    pub fn with_floor_fraction(mut self, floor_fraction: f64) -> Self {
        self.floor_fraction = floor_fraction;
        self
    }

    /// Overrides the crunch-exit hysteresis margin.
    #[must_use]
    pub fn with_hysteresis(mut self, hysteresis: f64) -> Self {
        self.hysteresis = hysteresis;
        self
    }

    /// Overrides the per-tick grant-fraction recovery limit.
    #[must_use]
    pub fn with_max_recovery_step(mut self, max_recovery_step: f64) -> Self {
        self.max_recovery_step = max_recovery_step;
        self
    }

    /// Overrides the demand growth-governor ratio.
    #[must_use]
    pub fn with_demand_cap_ratio(mut self, demand_cap_ratio: f64) -> Self {
        self.demand_cap_ratio = demand_cap_ratio;
        self
    }
}

/// One application's demand as seen by the arbiter: the *total* allocation
/// its controller wants this tick (per-replica request × replica count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArbiterRequest {
    /// The requesting application.
    pub app: AppId,
    /// Its overload priority class.
    pub class: PriorityClass,
    /// Total allocation requested across all replicas.
    pub requested: ResourceVec,
}

/// Why a grant came back smaller than the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClipReason {
    /// The app's class straddles the capacity edge; the grant was scaled
    /// down weighted-fair within the class.
    Oversubscribed,
    /// The request would have been granted, but the app is still ramping
    /// back from an earlier clip and its grant fraction is slew-limited.
    SlewLimited,
}

impl ClipReason {
    /// Short lowercase label used in traces and reports.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            ClipReason::Oversubscribed => "oversubscribed",
            ClipReason::SlewLimited => "slew-limited",
        }
    }
}

/// What the arbiter decided for one app.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GrantDecision {
    /// The full request was granted.
    Full,
    /// The grant was reduced below the request for the stated reason.
    Clipped(ClipReason),
    /// The app receives nothing this tick; its offered load should be shed
    /// at admission rather than queued.
    Shed,
}

impl GrantDecision {
    /// Short lowercase label used in traces and reports.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            GrantDecision::Full => "full",
            GrantDecision::Clipped(reason) => reason.as_str(),
            GrantDecision::Shed => "shed",
        }
    }
}

/// The arbiter's verdict for one application on one control tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArbitrationOutcome {
    /// The application.
    pub app: AppId,
    /// Its overload priority class.
    pub class: PriorityClass,
    /// What the controller asked for (total across replicas).
    pub requested: ResourceVec,
    /// What the arbiter granted.
    pub granted: ResourceVec,
    /// Full grant, clip, or shed.
    pub decision: GrantDecision,
    /// Scalar summary of the grant in `[0, 1]`: the most conservative
    /// per-dimension ratio among the dimensions the app requested (the
    /// grant itself is per-dimension — see `granted`).
    pub grant_fraction: f64,
    /// Consecutive arbitrations this app has spent shed or below its
    /// starvation floor (zero when healthy).
    pub starvation_age: u32,
}

impl ArbitrationOutcome {
    /// `true` when the app was shed outright.
    #[must_use]
    pub fn is_shed(&self) -> bool {
        matches!(self.decision, GrantDecision::Shed)
    }

    /// `true` when the grant is smaller than the request (clipped or shed).
    #[must_use]
    pub fn is_reduced(&self) -> bool {
        !matches!(self.decision, GrantDecision::Full)
    }
}

/// Persistent arbiter memory: per-app grant fractions (for slew),
/// starvation ages, and the crunch hysteresis flag.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArbiterState {
    grant_fraction: BTreeMap<AppId, f64>,
    starvation_age: BTreeMap<AppId, u32>,
    in_crunch: bool,
}

impl ArbiterState {
    /// `true` while the cluster is in a capacity crunch (set when demand
    /// exceeds usable capacity, cleared with hysteresis).
    #[must_use]
    pub fn in_crunch(&self) -> bool {
        self.in_crunch
    }

    /// Last recorded grant fraction for `app`, if it has arbitration
    /// history.
    #[must_use]
    pub fn grant_fraction(&self, app: AppId) -> Option<f64> {
        self.grant_fraction.get(&app).copied()
    }

    /// Current starvation age for `app` (zero when unknown or healthy).
    #[must_use]
    pub fn starvation_age(&self, app: AppId) -> u32 {
        self.starvation_age.get(&app).copied().unwrap_or(0)
    }

    /// Largest starvation age across all tracked apps.
    #[must_use]
    pub fn max_starvation_age(&self) -> u32 {
        self.starvation_age.values().copied().max().unwrap_or(0)
    }
}

impl Codec for ArbiterState {
    fn encode(&self, enc: &mut Encoder) {
        let fractions: Vec<(AppId, f64)> =
            self.grant_fraction.iter().map(|(k, v)| (*k, *v)).collect();
        let ages: Vec<(AppId, u32)> = self.starvation_age.iter().map(|(k, v)| (*k, *v)).collect();
        fractions.encode(enc);
        ages.encode(enc);
        self.in_crunch.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let fractions = Vec::<(AppId, f64)>::decode(dec)?;
        let ages = Vec::<(AppId, u32)>::decode(dec)?;
        let in_crunch = bool::decode(dec)?;
        Ok(ArbiterState {
            grant_fraction: fractions.into_iter().collect(),
            starvation_age: ages.into_iter().collect(),
            in_crunch,
        })
    }
}

/// What the class pass settled on for one app, before slew: a
/// per-dimension grant ratio (so a clip on the scarce dimension does not
/// also shrink dimensions the class has plenty of) plus the scalar
/// fraction — the most conservative used-dimension ratio — that feeds
/// slew, state, and reporting.
#[derive(Clone, Copy)]
struct DesiredGrant {
    ratio: [f64; evolve_types::NUM_RESOURCES],
    fraction: f64,
    decision: GrantDecision,
}

impl DesiredGrant {
    fn uniform(fraction: f64, decision: GrantDecision) -> Self {
        DesiredGrant { ratio: [fraction; evolve_types::NUM_RESOURCES], fraction, decision }
    }
}

/// Runs one arbitration round: compares aggregate demand against usable
/// capacity and produces a grant for every request, in input order.
///
/// `ready_capacity` is the schedulable capacity of ready nodes; `held` is
/// the total allocation of apps that are *not* participating this round
/// (e.g. blacked-out controllers replaying held outputs) and is subtracted
/// from the usable pool before arbitration.
///
/// Invariants (see the crate's property tests):
///
/// * grants never exceed requests, per dimension;
/// * the per-dimension sum of all grants never exceeds usable capacity;
/// * when an app is clipped for capacity, every app of a strictly lower
///   class is shed.
pub fn arbitrate(
    config: &ArbiterConfig,
    state: &mut ArbiterState,
    requests: &[ArbiterRequest],
    ready_capacity: ResourceVec,
    held: ResourceVec,
) -> Vec<ArbitrationOutcome> {
    let usable = (ready_capacity * (1.0 - config.headroom_fraction.clamp(0.0, 1.0))) - held;
    let demand: ResourceVec = requests.iter().map(|r| r.requested).sum();

    // Crunch flag with hysteresis: enter on the raw comparison, leave only
    // once demand is a full margin below usable.
    if state.in_crunch {
        let exit_at = usable * (1.0 - config.hysteresis.clamp(0.0, 1.0));
        if demand.fits_within(&exit_at) {
            state.in_crunch = false;
        }
    } else if !demand.fits_within(&usable) {
        state.in_crunch = true;
    }

    // Class pass: serve Critical → Standard → Preemptible out of the
    // remaining pool. The first class that does not fit is clipped
    // weighted-fair and everything below it is shed.
    let mut desired: BTreeMap<AppId, DesiredGrant> = BTreeMap::new();
    if state.in_crunch {
        let mut remaining = usable;
        let mut exhausted = false;
        for class in PriorityClass::DESCENDING {
            let members: Vec<&ArbiterRequest> =
                requests.iter().filter(|r| r.class == class).collect();
            if members.is_empty() {
                continue;
            }
            if exhausted {
                for m in &members {
                    desired.insert(m.app, DesiredGrant::uniform(0.0, GrantDecision::Shed));
                }
                continue;
            }
            let class_demand: ResourceVec = members.iter().map(|r| r.requested).sum();
            if class_demand.fits_within(&remaining) {
                for m in &members {
                    desired.insert(m.app, DesiredGrant::uniform(1.0, GrantDecision::Full));
                }
                remaining -= class_demand;
            } else {
                // Water-fill per dimension: only dimensions the class
                // actually oversubscribes are scaled down, each to its own
                // fair ratio. The scalar fraction reported for the app is
                // the most conservative ratio among the dimensions it uses.
                let mut ratio = [1.0_f64; evolve_types::NUM_RESOURCES];
                for r in Resource::ALL {
                    if class_demand[r] > remaining[r] {
                        ratio[r.index()] = if class_demand[r] > 0.0 {
                            remaining[r] / class_demand[r]
                        } else {
                            0.0
                        };
                    }
                }
                for m in &members {
                    let mut gamma = 1.0_f64;
                    for r in Resource::ALL {
                        if m.requested[r] > 0.0 {
                            gamma = gamma.min(ratio[r.index()]);
                        }
                    }
                    desired.insert(
                        m.app,
                        DesiredGrant {
                            ratio,
                            fraction: gamma,
                            decision: GrantDecision::Clipped(ClipReason::Oversubscribed),
                        },
                    );
                }
                exhausted = true;
            }
        }
    }

    // Slew + bookkeeping pass, in input order.
    let mut outcomes = Vec::with_capacity(requests.len());
    let mut next_fraction: BTreeMap<AppId, f64> = BTreeMap::new();
    let mut next_age: BTreeMap<AppId, u32> = BTreeMap::new();
    for req in requests {
        let want = desired
            .get(&req.app)
            .copied()
            .unwrap_or_else(|| DesiredGrant::uniform(1.0, GrantDecision::Full));
        let prev = state.grant_fraction.get(&req.app).copied().unwrap_or(1.0);
        let ceiling = prev + config.max_recovery_step.max(0.0);
        let (fraction, decision, granted) = if want.fraction > ceiling {
            let f = ceiling.min(1.0);
            (f, GrantDecision::Clipped(ClipReason::SlewLimited), req.requested * f)
        } else if matches!(want.decision, GrantDecision::Shed) {
            (0.0, GrantDecision::Shed, ResourceVec::ZERO)
        } else {
            // Per-dimension grant: each dimension keeps its own water-fill
            // ratio, so a clip on the scarce dimension does not also take
            // away dimensions the class has plenty of.
            let mut granted = req.requested;
            for r in Resource::ALL {
                granted[r] *= want.ratio[r.index()];
            }
            (want.fraction, want.decision, granted)
        };
        let shed = matches!(decision, GrantDecision::Shed);

        let floor = req.requested * config.floor_fraction.clamp(0.0, 1.0);
        let starving = shed || !floor.fits_within(&granted);
        let age = if starving {
            state.starvation_age.get(&req.app).copied().unwrap_or(0).saturating_add(1)
        } else {
            0
        };

        next_fraction.insert(req.app, fraction);
        next_age.insert(req.app, age);
        outcomes.push(ArbitrationOutcome {
            app: req.app,
            class: req.class,
            requested: req.requested,
            granted,
            decision,
            grant_fraction: fraction,
            starvation_age: age,
        });
    }

    // Prune departed apps so state (and checkpoints) track the live set.
    state.grant_fraction = next_fraction;
    state.starvation_age = next_age;
    outcomes
}

/// Owned config + state around [`arbitrate`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CapacityArbiter {
    config: ArbiterConfig,
    state: ArbiterState,
}

impl CapacityArbiter {
    /// Creates an arbiter with the given tunables and fresh state.
    #[must_use]
    pub fn new(config: ArbiterConfig) -> Self {
        CapacityArbiter { config, state: ArbiterState::default() }
    }

    /// Rebuilds an arbiter from checkpointed state.
    #[must_use]
    pub fn restore(config: ArbiterConfig, state: ArbiterState) -> Self {
        CapacityArbiter { config, state }
    }

    /// The tunables.
    #[must_use]
    pub fn config(&self) -> &ArbiterConfig {
        &self.config
    }

    /// The persistent state (for checkpointing and inspection).
    #[must_use]
    pub fn state(&self) -> &ArbiterState {
        &self.state
    }

    /// Runs one arbitration round; see [`arbitrate`].
    pub fn arbitrate(
        &mut self,
        requests: &[ArbiterRequest],
        ready_capacity: ResourceVec,
        held: ResourceVec,
    ) -> Vec<ArbitrationOutcome> {
        arbitrate(&self.config, &mut self.state, requests, ready_capacity, held)
    }
}

impl Codec for ArbiterConfig {
    fn encode(&self, enc: &mut Encoder) {
        self.headroom_fraction.encode(enc);
        self.floor_fraction.encode(enc);
        self.hysteresis.encode(enc);
        self.max_recovery_step.encode(enc);
        self.demand_cap_ratio.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(ArbiterConfig {
            headroom_fraction: f64::decode(dec)?,
            floor_fraction: f64::decode(dec)?,
            hysteresis: f64::decode(dec)?,
            max_recovery_step: f64::decode(dec)?,
            demand_cap_ratio: f64::decode(dec)?,
        })
    }
}

impl Codec for CapacityArbiter {
    fn encode(&self, enc: &mut Encoder) {
        self.config.encode(enc);
        self.state.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(CapacityArbiter {
            config: ArbiterConfig::decode(dec)?,
            state: ArbiterState::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u32, class: PriorityClass, cpu: f64) -> ArbiterRequest {
        ArbiterRequest {
            app: AppId::new(id),
            class,
            requested: ResourceVec::new(cpu, cpu, 0.0, 0.0),
        }
    }

    fn cfg() -> ArbiterConfig {
        // No headroom/slew so the raw class logic is visible.
        ArbiterConfig::default()
            .with_headroom_fraction(0.0)
            .with_max_recovery_step(1.0)
            .with_hysteresis(0.1)
    }

    fn capacity(cpu: f64) -> ResourceVec {
        ResourceVec::new(cpu, cpu, 0.0, 0.0)
    }

    #[test]
    fn under_capacity_everyone_is_granted_in_full() {
        let mut st = ArbiterState::default();
        let reqs =
            [req(0, PriorityClass::Critical, 100.0), req(1, PriorityClass::Preemptible, 100.0)];
        let out = arbitrate(&cfg(), &mut st, &reqs, capacity(1_000.0), ResourceVec::ZERO);
        assert!(out.iter().all(|o| o.decision == GrantDecision::Full));
        assert!(out.iter().all(|o| o.granted == o.requested));
        assert!(!st.in_crunch());
    }

    #[test]
    fn lower_classes_shed_before_higher_are_clipped() {
        let mut st = ArbiterState::default();
        let reqs = [
            req(0, PriorityClass::Critical, 300.0),
            req(1, PriorityClass::Standard, 300.0),
            req(2, PriorityClass::Preemptible, 300.0),
        ];
        // Room for Critical in full and half of Standard; Preemptible must go.
        let out = arbitrate(&cfg(), &mut st, &reqs, capacity(450.0), ResourceVec::ZERO);
        assert!(st.in_crunch());
        assert_eq!(out[0].decision, GrantDecision::Full);
        assert_eq!(out[1].decision, GrantDecision::Clipped(ClipReason::Oversubscribed));
        assert!((out[1].grant_fraction - 0.5).abs() < 1e-12);
        assert_eq!(out[2].decision, GrantDecision::Shed);
        assert_eq!(out[2].granted, ResourceVec::ZERO);
    }

    #[test]
    fn within_class_clipping_is_proportional() {
        let mut st = ArbiterState::default();
        let reqs = [req(0, PriorityClass::Standard, 300.0), req(1, PriorityClass::Standard, 100.0)];
        let out = arbitrate(&cfg(), &mut st, &reqs, capacity(200.0), ResourceVec::ZERO);
        // Both scaled by 200/400 = 0.5.
        assert!((out[0].grant_fraction - 0.5).abs() < 1e-12);
        assert!((out[1].grant_fraction - 0.5).abs() < 1e-12);
        let total: ResourceVec = out.iter().map(|o| o.granted).sum();
        assert!(total.fits_within(&capacity(200.0)));
    }

    #[test]
    fn headroom_is_never_handed_out() {
        let mut st = ArbiterState::default();
        let config = cfg().with_headroom_fraction(0.2);
        let reqs = [req(0, PriorityClass::Critical, 1_000.0)];
        let out = arbitrate(&config, &mut st, &reqs, capacity(1_000.0), ResourceVec::ZERO);
        assert!((out[0].grant_fraction - 0.8).abs() < 1e-12);
    }

    #[test]
    fn held_allocations_shrink_the_pool() {
        let mut st = ArbiterState::default();
        let reqs = [req(0, PriorityClass::Critical, 500.0)];
        let out = arbitrate(&cfg(), &mut st, &reqs, capacity(600.0), capacity(400.0));
        // usable = 600 - 400 = 200 → fraction 0.4.
        assert!((out[0].grant_fraction - 0.4).abs() < 1e-12);
    }

    #[test]
    fn crunch_flag_has_hysteresis() {
        let config = cfg();
        let mut st = ArbiterState::default();
        let cap = capacity(1_000.0);
        // Enter crunch.
        arbitrate(
            &config,
            &mut st,
            &[req(0, PriorityClass::Standard, 1_200.0)],
            cap,
            ResourceVec::ZERO,
        );
        assert!(st.in_crunch());
        // Demand back under capacity but inside the hysteresis band: still
        // in crunch.
        arbitrate(
            &config,
            &mut st,
            &[req(0, PriorityClass::Standard, 950.0)],
            cap,
            ResourceVec::ZERO,
        );
        assert!(st.in_crunch());
        // Below the exit threshold (1000 × 0.9 = 900): crunch clears.
        arbitrate(
            &config,
            &mut st,
            &[req(0, PriorityClass::Standard, 850.0)],
            cap,
            ResourceVec::ZERO,
        );
        assert!(!st.in_crunch());
    }

    #[test]
    fn recovery_is_slew_limited_but_cuts_are_immediate() {
        let config = cfg().with_max_recovery_step(0.25);
        let mut st = ArbiterState::default();
        let cap = capacity(1_000.0);
        let over = [req(0, PriorityClass::Standard, 2_000.0)];
        let out = arbitrate(&config, &mut st, &over, cap, ResourceVec::ZERO);
        // The cut to 0.5 is applied at once.
        assert!((out[0].grant_fraction - 0.5).abs() < 1e-12);
        // Demand falls far below capacity → full grant is *desired*, but
        // the fraction may only recover by 0.25 per tick.
        let under = [req(0, PriorityClass::Standard, 100.0)];
        let out = arbitrate(&config, &mut st, &under, cap, ResourceVec::ZERO);
        assert_eq!(out[0].decision, GrantDecision::Clipped(ClipReason::SlewLimited));
        assert!((out[0].grant_fraction - 0.75).abs() < 1e-12);
        let out = arbitrate(&config, &mut st, &under, cap, ResourceVec::ZERO);
        assert_eq!(out[0].decision, GrantDecision::Full);
        assert!((out[0].grant_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn starvation_ages_grow_and_reset() {
        let config = cfg();
        let mut st = ArbiterState::default();
        let cap = capacity(300.0);
        let reqs =
            [req(0, PriorityClass::Critical, 300.0), req(1, PriorityClass::Preemptible, 300.0)];
        for round in 1..=3 {
            let out = arbitrate(&config, &mut st, &reqs, cap, ResourceVec::ZERO);
            assert_eq!(out[0].starvation_age, 0, "critical app is healthy");
            assert_eq!(out[1].starvation_age, round, "shed app ages");
        }
        assert_eq!(st.max_starvation_age(), 3);
        // Capacity returns; the shed app ramps back and its age clears once
        // the grant passes the floor.
        let big = capacity(10_000.0);
        let mut ages = Vec::new();
        for _ in 0..6 {
            let out = arbitrate(&config, &mut st, &reqs, big, ResourceVec::ZERO);
            ages.push(out[1].starvation_age);
        }
        assert_eq!(*ages.last().unwrap(), 0);
    }

    #[test]
    fn departed_apps_are_pruned_from_state() {
        let config = cfg();
        let mut st = ArbiterState::default();
        let cap = capacity(100.0);
        arbitrate(
            &config,
            &mut st,
            &[req(7, PriorityClass::Standard, 500.0)],
            cap,
            ResourceVec::ZERO,
        );
        assert!(st.grant_fraction(AppId::new(7)).is_some());
        arbitrate(
            &config,
            &mut st,
            &[req(8, PriorityClass::Standard, 50.0)],
            cap,
            ResourceVec::ZERO,
        );
        assert!(st.grant_fraction(AppId::new(7)).is_none());
        assert!(st.grant_fraction(AppId::new(8)).is_some());
    }

    #[test]
    fn grants_conserve_capacity_per_dimension() {
        let mut st = ArbiterState::default();
        let reqs = [
            ArbiterRequest {
                app: AppId::new(0),
                class: PriorityClass::Standard,
                requested: ResourceVec::new(800.0, 100.0, 10.0, 0.0),
            },
            ArbiterRequest {
                app: AppId::new(1),
                class: PriorityClass::Standard,
                requested: ResourceVec::new(100.0, 900.0, 0.0, 20.0),
            },
        ];
        let cap = ResourceVec::new(500.0, 500.0, 500.0, 500.0);
        let out = arbitrate(&cfg(), &mut st, &reqs, cap, ResourceVec::ZERO);
        let total: ResourceVec = out.iter().map(|o| o.granted).sum();
        assert!(total.fits_within(&cap));
        for o in &out {
            assert!(o.granted.fits_within(&o.requested));
        }
    }

    #[test]
    fn state_codec_roundtrip() {
        let config = cfg();
        let mut st = ArbiterState::default();
        let reqs =
            [req(0, PriorityClass::Critical, 400.0), req(1, PriorityClass::Preemptible, 400.0)];
        arbitrate(&config, &mut st, &reqs, capacity(300.0), ResourceVec::ZERO);
        let mut enc = Encoder::new();
        st.encode(&mut enc);
        let bytes = enc.into_bytes();
        let back = ArbiterState::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(st, back);
        let arb = CapacityArbiter::restore(config, st);
        let mut enc = Encoder::new();
        arb.encode(&mut enc);
        let bytes = enc.into_bytes();
        let back = CapacityArbiter::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(arb, back);
    }

    #[test]
    fn decision_labels_are_stable() {
        assert_eq!(GrantDecision::Full.as_str(), "full");
        assert_eq!(GrantDecision::Clipped(ClipReason::Oversubscribed).as_str(), "oversubscribed");
        assert_eq!(GrantDecision::Clipped(ClipReason::SlewLimited).as_str(), "slew-limited");
        assert_eq!(GrantDecision::Shed.as_str(), "shed");
    }
}
