//! Scalar PID controller with the guards a production control loop needs.
//!
//! The textbook PID `u = kp·e + ki·∫e dt + kd·de/dt` misbehaves in exactly
//! the situations an autoscaler lives in: actuators saturate (a node has
//! finite capacity), the measurement is noisy (scraped tail latency), and
//! the setpoint moves. This implementation adds the standard remedies:
//!
//! * **anti-windup** — the integral term is clamped, and integration is
//!   suspended while the output is saturated in the direction the error
//!   pushes (conditional integration);
//! * **filtered derivative** — the derivative acts on a first-order
//!   low-pass of the error, taming measurement noise;
//! * **output limits and slew limiting** — allocations can neither go
//!   negative nor jump unboundedly in one control period.

use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::Result;
use serde::{Deserialize, Serialize};

/// Configuration for a [`PidController`], built fluently.
///
/// # Examples
///
/// ```
/// use evolve_control::PidConfig;
///
/// let cfg = PidConfig::new(1.0, 0.5, 0.1)
///     .with_output_limits(-1.0, 1.0)
///     .with_integral_limits(-0.5, 0.5)
///     .with_derivative_tau(2.0)
///     .with_slew_limit(0.25);
/// assert_eq!(cfg.kp(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidConfig {
    kp: f64,
    ki: f64,
    kd: f64,
    out_min: f64,
    out_max: f64,
    int_min: f64,
    int_max: f64,
    /// Time constant (seconds) of the derivative low-pass; 0 disables
    /// filtering.
    derivative_tau: f64,
    /// Maximum |Δoutput| per second; infinite disables slew limiting.
    slew_limit: f64,
    /// Per-step multiplicative decay of the integral accumulator in
    /// `(0, 1]`; 1 is the classical non-leaky integrator. A leak below 1
    /// is essential when the output is applied *multiplicatively* (an
    /// integrating actuator): the outer loop integrates already, so a
    /// frozen inner integral at zero error would drift the actuator
    /// forever.
    integral_leak: f64,
}

impl PidConfig {
    /// Creates a configuration with the given gains, unbounded output and
    /// a ±10 integral clamp.
    ///
    /// # Panics
    ///
    /// Panics when any gain is negative or non-finite.
    #[must_use]
    pub fn new(kp: f64, ki: f64, kd: f64) -> Self {
        assert!(kp >= 0.0 && kp.is_finite(), "kp must be finite and non-negative");
        assert!(ki >= 0.0 && ki.is_finite(), "ki must be finite and non-negative");
        assert!(kd >= 0.0 && kd.is_finite(), "kd must be finite and non-negative");
        PidConfig {
            kp,
            ki,
            kd,
            out_min: f64::NEG_INFINITY,
            out_max: f64::INFINITY,
            int_min: -10.0,
            int_max: 10.0,
            derivative_tau: 0.0,
            slew_limit: f64::INFINITY,
            integral_leak: 1.0,
        }
    }

    /// Clamps the controller output to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics when `min > max`.
    #[must_use]
    pub fn with_output_limits(mut self, min: f64, max: f64) -> Self {
        assert!(min <= max, "output limits inverted");
        self.out_min = min;
        self.out_max = max;
        self
    }

    /// Clamps the integral accumulator to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics when `min > max`.
    #[must_use]
    pub fn with_integral_limits(mut self, min: f64, max: f64) -> Self {
        assert!(min <= max, "integral limits inverted");
        self.int_min = min;
        self.int_max = max;
        self
    }

    /// Sets the derivative low-pass time constant in seconds (0 disables).
    ///
    /// # Panics
    ///
    /// Panics when `tau` is negative or non-finite.
    #[must_use]
    pub fn with_derivative_tau(mut self, tau: f64) -> Self {
        assert!(tau >= 0.0 && tau.is_finite(), "derivative tau must be finite and non-negative");
        self.derivative_tau = tau;
        self
    }

    /// Limits |Δoutput| per second of control time.
    ///
    /// # Panics
    ///
    /// Panics when `limit` is not positive.
    #[must_use]
    pub fn with_slew_limit(mut self, limit: f64) -> Self {
        assert!(limit > 0.0, "slew limit must be positive");
        self.slew_limit = limit;
        self
    }

    /// Sets the per-step integral leak in `(0, 1]` (see the field docs).
    ///
    /// # Panics
    ///
    /// Panics when `leak` is outside `(0, 1]`.
    #[must_use]
    pub fn with_integral_leak(mut self, leak: f64) -> Self {
        assert!(leak > 0.0 && leak <= 1.0, "integral leak must be in (0, 1]");
        self.integral_leak = leak;
        self
    }

    /// Proportional gain.
    #[must_use]
    pub fn kp(&self) -> f64 {
        self.kp
    }

    /// Integral gain.
    #[must_use]
    pub fn ki(&self) -> f64 {
        self.ki
    }

    /// Derivative gain.
    #[must_use]
    pub fn kd(&self) -> f64 {
        self.kd
    }
}

impl Codec for PidConfig {
    fn encode(&self, enc: &mut Encoder) {
        for v in [
            self.kp,
            self.ki,
            self.kd,
            self.out_min,
            self.out_max,
            self.int_min,
            self.int_max,
            self.derivative_tau,
            self.slew_limit,
            self.integral_leak,
        ] {
            v.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(PidConfig {
            kp: f64::decode(dec)?,
            ki: f64::decode(dec)?,
            kd: f64::decode(dec)?,
            out_min: f64::decode(dec)?,
            out_max: f64::decode(dec)?,
            int_min: f64::decode(dec)?,
            int_max: f64::decode(dec)?,
            derivative_tau: f64::decode(dec)?,
            slew_limit: f64::decode(dec)?,
            integral_leak: f64::decode(dec)?,
        })
    }
}

/// A discrete-time PID controller.
///
/// Feed the **error** (setpoint − measurement, or whichever orientation the
/// caller uses — positive must mean "increase the output") and the elapsed
/// control interval to [`PidController::step`]; the controller returns the
/// actuation value.
///
/// # Examples
///
/// ```
/// use evolve_control::{PidConfig, PidController};
///
/// let mut pid = PidController::new(PidConfig::new(2.0, 0.0, 0.0));
/// assert_eq!(pid.step(0.5, 1.0), 1.0); // pure P: kp * e
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PidController {
    config: PidConfig,
    integral: f64,
    prev_error: Option<f64>,
    filtered_derivative: f64,
    prev_output: Option<f64>,
    last_terms: PidTerms,
}

/// The per-term breakdown of one [`PidController::step`] call: what the
/// proportional, integral and derivative paths each contributed, and the
/// clamped output that was actually emitted. Captured during the step
/// itself because the saturated case uses the *candidate* integral, which
/// is not reconstructible from the post-step state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidTerms {
    /// Proportional contribution, `kp * error`.
    pub p: f64,
    /// Integral contribution, `ki * candidate_integral`.
    pub i: f64,
    /// Derivative contribution, `kd * filtered_derivative`.
    pub d: f64,
    /// Emitted output after output clamping and slew limiting.
    pub output: f64,
}

impl Codec for PidTerms {
    fn encode(&self, enc: &mut Encoder) {
        self.p.encode(enc);
        self.i.encode(enc);
        self.d.encode(enc);
        self.output.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(PidTerms {
            p: f64::decode(dec)?,
            i: f64::decode(dec)?,
            d: f64::decode(dec)?,
            output: f64::decode(dec)?,
        })
    }
}

impl PidController {
    /// Creates a controller from a configuration.
    #[must_use]
    pub fn new(config: PidConfig) -> Self {
        PidController {
            config,
            integral: 0.0,
            prev_error: None,
            filtered_derivative: 0.0,
            prev_output: None,
            last_terms: PidTerms::default(),
        }
    }

    /// Current configuration (gains may change under adaptive tuning).
    #[must_use]
    pub fn config(&self) -> &PidConfig {
        &self.config
    }

    /// Replaces the gains in place, keeping integral and derivative state.
    /// Used by the adaptive tuner.
    ///
    /// # Panics
    ///
    /// Panics when any gain is negative or non-finite.
    pub fn set_gains(&mut self, kp: f64, ki: f64, kd: f64) {
        assert!(kp >= 0.0 && kp.is_finite(), "kp must be finite and non-negative");
        assert!(ki >= 0.0 && ki.is_finite(), "ki must be finite and non-negative");
        assert!(kd >= 0.0 && kd.is_finite(), "kd must be finite and non-negative");
        self.config.kp = kp;
        self.config.ki = ki;
        self.config.kd = kd;
    }

    /// Current integral accumulator (for inspection/telemetry).
    #[must_use]
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Term breakdown of the most recent [`step`](Self::step) (all zero
    /// before the first step and after a [`reset`](Self::reset)).
    #[must_use]
    pub fn last_terms(&self) -> PidTerms {
        self.last_terms
    }

    /// Advances the controller by one step.
    ///
    /// `error` is the control error (positive → raise output); `dt_secs`
    /// is the elapsed control interval in seconds. Returns the clamped,
    /// slew-limited actuation.
    ///
    /// # Panics
    ///
    /// Panics when `dt_secs` is not positive or `error` is not finite.
    pub fn step(&mut self, error: f64, dt_secs: f64) -> f64 {
        assert!(dt_secs > 0.0 && dt_secs.is_finite(), "dt must be positive");
        assert!(error.is_finite(), "error must be finite");
        let cfg = self.config;

        // Derivative on (optionally low-pass-filtered) error.
        let raw_derivative = match self.prev_error {
            Some(prev) => (error - prev) / dt_secs,
            None => 0.0,
        };
        self.filtered_derivative = if cfg.derivative_tau > 0.0 {
            let alpha = dt_secs / (cfg.derivative_tau + dt_secs);
            self.filtered_derivative + alpha * (raw_derivative - self.filtered_derivative)
        } else {
            raw_derivative
        };
        self.prev_error = Some(error);

        // Tentative integral update with leak and clamping.
        let candidate_integral =
            (self.integral * cfg.integral_leak + error * dt_secs).clamp(cfg.int_min, cfg.int_max);

        let unclamped =
            cfg.kp * error + cfg.ki * candidate_integral + cfg.kd * self.filtered_derivative;
        let clamped = unclamped.clamp(cfg.out_min, cfg.out_max);

        // Conditional integration: only accept the integral update when the
        // output is not saturated, or when the error drives the output back
        // inside the limits.
        let saturated_high = unclamped > cfg.out_max && error > 0.0;
        let saturated_low = unclamped < cfg.out_min && error < 0.0;
        if !(saturated_high || saturated_low) {
            self.integral = candidate_integral;
        }

        // Slew limiting against the previous emitted output.
        let output = match self.prev_output {
            Some(prev) if cfg.slew_limit.is_finite() => {
                let max_delta = cfg.slew_limit * dt_secs;
                clamped.clamp(prev - max_delta, prev + max_delta)
            }
            _ => clamped,
        };
        self.prev_output = Some(output);
        self.last_terms = PidTerms {
            p: cfg.kp * error,
            i: cfg.ki * candidate_integral,
            d: cfg.kd * self.filtered_derivative,
            output,
        };
        output
    }

    /// Clears integral, derivative and slew state, keeping the gains.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
        self.filtered_derivative = 0.0;
        self.prev_output = None;
        self.last_terms = PidTerms::default();
    }

    /// Seeds the controller for **bumpless transfer**: given the error the
    /// next [`step`](Self::step) call will see, back-computes the integral
    /// accumulator so that the step's unclamped output is exactly zero
    /// (hold the current actuation) whenever the required integral fits
    /// inside the integral clamp. The derivative path is zeroed and the
    /// slew reference cleared, so the step after restart neither kicks from
    /// a phantom error jump nor inherits a stale slew anchor.
    ///
    /// With the integral clamp active (|kp·e/ki| beyond the clamp) the
    /// first output is instead bounded by the output limits — callers keep
    /// the [`DegradationGuard`](crate::DegradationGuard) slew clamp as the
    /// hard backstop.
    ///
    /// # Panics
    ///
    /// Panics when `dt_secs` is not positive or `error` is not finite.
    pub fn seed_bumpless(&mut self, error: f64, dt_secs: f64) {
        assert!(dt_secs > 0.0 && dt_secs.is_finite(), "dt must be positive");
        assert!(error.is_finite(), "error must be finite");
        let cfg = self.config;
        // Matching derivative state: treating `error` as also the previous
        // error makes the next raw derivative zero, and the filtered
        // derivative starts discharged.
        self.prev_error = Some(error);
        self.filtered_derivative = 0.0;
        self.prev_output = None;
        // The next step computes
        //   candidate = clamp(I·leak + e·dt, int_min, int_max)
        //   unclamped = kp·e + ki·candidate + kd·0
        // Solve ki·candidate = -kp·e for the candidate, then invert the
        // (un-clamped) leak update to the stored integral.
        let desired_candidate = if cfg.ki > 0.0 {
            (-(cfg.kp / cfg.ki) * error).clamp(cfg.int_min, cfg.int_max)
        } else {
            0.0
        };
        self.integral = if cfg.integral_leak > 0.0 {
            (desired_candidate - error * dt_secs) / cfg.integral_leak
        } else {
            0.0
        };
    }
}

impl Codec for PidController {
    fn encode(&self, enc: &mut Encoder) {
        self.config.encode(enc);
        self.integral.encode(enc);
        self.prev_error.encode(enc);
        self.filtered_derivative.encode(enc);
        self.prev_output.encode(enc);
        self.last_terms.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(PidController {
            config: PidConfig::decode(dec)?,
            integral: f64::decode(dec)?,
            prev_error: Option::<f64>::decode(dec)?,
            filtered_derivative: f64::decode(dec)?,
            prev_output: Option::<f64>::decode(dec)?,
            last_terms: PidTerms::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_proportional() {
        let mut pid = PidController::new(PidConfig::new(2.0, 0.0, 0.0));
        assert_eq!(pid.step(1.0, 1.0), 2.0);
        assert_eq!(pid.step(-0.5, 1.0), -1.0);
    }

    #[test]
    fn integral_accumulates() {
        let mut pid = PidController::new(PidConfig::new(0.0, 1.0, 0.0));
        assert_eq!(pid.step(1.0, 1.0), 1.0);
        assert_eq!(pid.step(1.0, 1.0), 2.0);
        assert_eq!(pid.step(1.0, 0.5), 2.5);
        assert_eq!(pid.integral(), 2.5);
    }

    #[test]
    fn derivative_responds_to_change() {
        let mut pid = PidController::new(PidConfig::new(0.0, 0.0, 1.0));
        assert_eq!(pid.step(0.0, 1.0), 0.0); // no previous error
        assert_eq!(pid.step(2.0, 1.0), 2.0); // de/dt = 2
        assert_eq!(pid.step(2.0, 1.0), 0.0); // error constant
    }

    #[test]
    fn derivative_filter_smooths_noise() {
        let mut unfiltered = PidController::new(PidConfig::new(0.0, 0.0, 1.0));
        let mut filtered =
            PidController::new(PidConfig::new(0.0, 0.0, 1.0).with_derivative_tau(5.0));
        let mut max_u: f64 = 0.0;
        let mut max_f: f64 = 0.0;
        for i in 0..50 {
            let noise = if i % 2 == 0 { 1.0 } else { -1.0 };
            max_u = max_u.max(unfiltered.step(noise, 1.0).abs());
            max_f = max_f.max(filtered.step(noise, 1.0).abs());
        }
        assert!(max_f < max_u / 2.0, "filtered {max_f} unfiltered {max_u}");
    }

    #[test]
    fn output_limits_respected() {
        let mut pid =
            PidController::new(PidConfig::new(10.0, 0.0, 0.0).with_output_limits(-1.0, 1.0));
        assert_eq!(pid.step(5.0, 1.0), 1.0);
        assert_eq!(pid.step(-5.0, 1.0), -1.0);
    }

    #[test]
    fn anti_windup_stops_integration_when_saturated() {
        let cfg = PidConfig::new(0.0, 1.0, 0.0)
            .with_output_limits(0.0, 1.0)
            .with_integral_limits(-100.0, 100.0);
        let mut pid = PidController::new(cfg);
        // Saturate hard for many steps.
        for _ in 0..100 {
            assert_eq!(pid.step(10.0, 1.0), 1.0);
        }
        // Integral must not have wound far past the saturation point.
        assert!(pid.integral() <= 10.0 + 1e-9, "integral wound up: {}", pid.integral());
        // Recovery: a negative error should pull output off the rail fast.
        let out = pid.step(-10.0, 1.0);
        assert!(out < 1.0);
    }

    #[test]
    fn integral_clamp_bounds_accumulator() {
        let cfg = PidConfig::new(0.0, 1.0, 0.0).with_integral_limits(-2.0, 2.0);
        let mut pid = PidController::new(cfg);
        for _ in 0..100 {
            pid.step(1.0, 1.0);
        }
        assert!(pid.integral() <= 2.0);
    }

    #[test]
    fn integral_leak_decays_to_zero_at_zero_error() {
        let cfg = PidConfig::new(0.0, 1.0, 0.0).with_integral_leak(0.5);
        let mut pid = PidController::new(cfg);
        pid.step(2.0, 1.0); // integral = 2
        for _ in 0..20 {
            pid.step(0.0, 1.0);
        }
        assert!(pid.integral().abs() < 1e-5, "integral {}", pid.integral());
        // And the output follows the integral to zero.
        assert!(pid.step(0.0, 1.0).abs() < 1e-5);
    }

    #[test]
    fn leak_of_one_is_classical_integrator() {
        let cfg = PidConfig::new(0.0, 1.0, 0.0).with_integral_leak(1.0);
        let mut pid = PidController::new(cfg);
        pid.step(1.0, 1.0);
        pid.step(0.0, 1.0);
        assert_eq!(pid.integral(), 1.0);
    }

    #[test]
    fn slew_limit_bounds_output_rate() {
        let cfg = PidConfig::new(10.0, 0.0, 0.0).with_slew_limit(0.5);
        let mut pid = PidController::new(cfg);
        let first = pid.step(0.0, 1.0);
        assert_eq!(first, 0.0);
        let second = pid.step(10.0, 1.0);
        assert!((second - 0.5).abs() < 1e-12, "slew-limited step {second}");
        let third = pid.step(10.0, 1.0);
        assert!((third - 1.0).abs() < 1e-12);
    }

    #[test]
    fn closed_loop_converges_on_first_order_plant() {
        // Plant: y' = (u - y) / tau. Controller drives y to setpoint 1.
        let mut pid =
            PidController::new(PidConfig::new(2.0, 1.0, 0.0).with_output_limits(0.0, 10.0));
        let mut y = 0.0;
        let dt = 0.1;
        let tau = 1.0;
        for _ in 0..400 {
            let u = pid.step(1.0 - y, dt);
            y += (u - y) / tau * dt;
        }
        assert!((y - 1.0).abs() < 0.02, "converged to {y}");
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = PidController::new(PidConfig::new(1.0, 1.0, 1.0));
        pid.step(5.0, 1.0);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        assert_eq!(pid.step(0.0, 1.0), 0.0);
    }

    #[test]
    fn set_gains_preserves_state() {
        let mut pid = PidController::new(PidConfig::new(0.0, 1.0, 0.0));
        pid.step(1.0, 1.0);
        pid.set_gains(1.0, 1.0, 0.0);
        // integral survives the retune
        assert_eq!(pid.integral(), 1.0);
        assert_eq!(pid.config().kp(), 1.0);
    }

    #[test]
    fn bumpless_seed_first_output_is_zero() {
        // Production gains from MultiResourceConfig.
        let cfg = PidConfig::new(0.8, 0.15, 0.05)
            .with_output_limits(-0.5, 1.0)
            .with_integral_limits(-2.0, 2.0)
            .with_derivative_tau(2.0)
            .with_integral_leak(0.8);
        for e in [-0.3, -0.1, 0.0, 0.05, 0.2, 0.37] {
            let mut pid = PidController::new(cfg);
            pid.seed_bumpless(e, 5.0);
            let out = pid.step(e, 5.0);
            assert!(out.abs() < 1e-12, "seeded output {out} for error {e}");
        }
    }

    #[test]
    fn bumpless_seed_large_error_stays_within_output_limits() {
        let cfg = PidConfig::new(0.8, 0.15, 0.05)
            .with_output_limits(-0.5, 1.0)
            .with_integral_limits(-2.0, 2.0)
            .with_integral_leak(0.8);
        let mut pid = PidController::new(cfg);
        pid.seed_bumpless(5.0, 5.0);
        let out = pid.step(5.0, 5.0);
        assert!((-0.5..=1.0).contains(&out));
    }

    #[test]
    fn bumpless_seed_without_integral_gain() {
        let mut pid = PidController::new(PidConfig::new(2.0, 0.0, 0.0));
        pid.seed_bumpless(1.0, 1.0);
        // Pure P cannot hold: output is kp·e, but derivative kick is absent.
        assert_eq!(pid.step(1.0, 1.0), 2.0);
        assert_eq!(pid.integral(), 0.0);
    }

    #[test]
    fn pid_codec_roundtrip_preserves_behavior() {
        let cfg = PidConfig::new(1.2, 0.3, 0.05)
            .with_output_limits(-1.0, 2.0)
            .with_derivative_tau(3.0)
            .with_slew_limit(0.7)
            .with_integral_leak(0.9);
        let mut pid = PidController::new(cfg);
        for i in 0..13 {
            pid.step(0.1 * f64::from(i) - 0.4, 0.5);
        }
        let mut enc = Encoder::new();
        pid.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut back = PidController::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(pid, back);
        // Identical future trajectory.
        for i in 0..7 {
            let e = 0.2 - 0.05 * f64::from(i);
            assert_eq!(pid.step(e, 0.5).to_bits(), back.step(e, 0.5).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "kp must be finite")]
    fn rejects_negative_gains() {
        let _ = PidConfig::new(-1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn rejects_zero_dt() {
        let mut pid = PidController::new(PidConfig::new(1.0, 0.0, 0.0));
        pid.step(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "output limits inverted")]
    fn rejects_inverted_limits() {
        let _ = PidConfig::new(1.0, 0.0, 0.0).with_output_limits(1.0, -1.0);
    }
}
