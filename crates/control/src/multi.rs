//! The multi-resource MIMO controller — EVOLVE's core extension.
//!
//! A one-dimensional PID can right-size CPU, but real applications bind on
//! different resources at different times (a shuffle-heavy batch stage on
//! network, an ingest service on disk, a resident-set-heavy service on
//! memory). EVOLVE "extends the traditional one-dimensional PID controller
//! to estimate CPU, memory, I/O throughput, and network throughput":
//!
//! 1. one PID per resource dimension computes a relative allocation
//!    adjustment;
//! 2. the shared PLO error is **attributed** across the dimensions by the
//!    on-line [`SensitivityModel`](crate::SensitivityModel) — the resource
//!    that actually binds absorbs most of the error;
//! 3. per-resource step limits keep the actuation safe (memory shrinks
//!    cautiously — taking space away from a resident set causes thrashing
//!    or OOM, unlike throttling a rate resource);
//! 4. an optional usage floor prevents scale-down below observed demand.
//!
//! The controller emits per-replica allocation **targets**; turning those
//! into vertical resizes and horizontal replica changes is the
//! reconciler's job (in `evolve-core`).

use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::{Resource, ResourceVec, Result};
use serde::{Deserialize, Serialize};

use crate::model::SensitivityModel;
use crate::pid::{PidConfig, PidController};
use crate::tuning::{AdaptiveTuner, AdaptiveTunerConfig};

/// Configuration of a [`MultiResourceController`].
///
/// # Examples
///
/// ```
/// use evolve_control::MultiResourceConfig;
/// use evolve_types::ResourceVec;
///
/// let cfg = MultiResourceConfig::new(
///     ResourceVec::new(100.0, 128.0, 5.0, 5.0),      // floor per replica
///     ResourceVec::new(4000.0, 8192.0, 200.0, 250.0), // ceiling per replica
/// );
/// assert!(cfg.adaptive);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiResourceConfig {
    /// Minimum per-replica allocation.
    pub min_alloc: ResourceVec,
    /// Maximum per-replica allocation (beyond this the reconciler scales
    /// horizontally).
    pub max_alloc: ResourceVec,
    /// Base PID gains applied to every resource dimension.
    pub gains: PidConfig,
    /// Enable on-line gain adaptation.
    pub adaptive: bool,
    /// Restrict control to the CPU dimension (the classical 1-D baseline;
    /// the T5 ablation flips this).
    pub cpu_only: bool,
    /// Largest relative per-period increase per resource (e.g. 1.0 = may
    /// double each period).
    pub max_step_up: ResourceVec,
    /// Largest relative per-period decrease per resource (e.g. 0.2 = may
    /// shrink 20% each period). Memory defaults much lower than the rate
    /// resources.
    pub max_step_down: ResourceVec,
    /// Keep each dimension's allocation at or above
    /// `usage × (1 + margin_r)`; a negative component disables the floor
    /// for that dimension. Memory defaults to a much larger margin than
    /// the rate resources: its working set can swing with load bursts and
    /// running close to it means OOM kills, not queueing.
    pub usage_floor_margin: ResourceVec,
    /// Positive errors below this are treated as zero (hold band above
    /// the setpoint) — the loop does not chase measurement noise.
    pub deadband_over: f64,
    /// Negative errors smaller in magnitude than this are treated as
    /// zero. Deliberately wider than `deadband_over`: shrinking is only
    /// worth a disturbance when the service is *clearly* over-provisioned,
    /// and an asymmetric band kills the shrink-overshoot limit cycle.
    pub deadband_under: f64,
    /// Idle reclaim: while the PLO is met, a dimension whose pressure
    /// (usage/allocation) is below this threshold **and** whose
    /// per-request serial time is below `reclaim_serial_secs` is decayed
    /// toward its usage floor each period. This returns reservation
    /// inflated by past violations without waiting for the error to
    /// leave the deadband.
    pub reclaim_pressure: f64,
    /// See `reclaim_pressure`: a dimension is only reclaimed while its
    /// per-request serial drain time stays below this many seconds (a
    /// latency-relevant dimension is left alone even when its throughput
    /// pressure is low).
    pub reclaim_serial_secs: f64,
    /// Tuner configuration when `adaptive` is set.
    pub tuner: AdaptiveTunerConfig,
}

impl MultiResourceConfig {
    /// Creates a configuration with the default gains used throughout the
    /// evaluation (kp 0.8, ki 0.15, kd 0.05, derivative filtering) and
    /// conservative memory shrinking.
    ///
    /// # Panics
    ///
    /// Panics when `min_alloc` has a non-positive component or does not
    /// fit within `max_alloc`.
    #[must_use]
    pub fn new(min_alloc: ResourceVec, max_alloc: ResourceVec) -> Self {
        assert!(
            Resource::ALL.iter().all(|r| min_alloc[*r] > 0.0),
            "min_alloc must be positive in every dimension"
        );
        assert!(min_alloc.fits_within(&max_alloc), "min_alloc must fit within max_alloc");
        MultiResourceConfig {
            min_alloc,
            max_alloc,
            gains: PidConfig::new(0.8, 0.15, 0.05)
                .with_output_limits(-0.5, 1.0)
                .with_integral_limits(-2.0, 2.0)
                .with_derivative_tau(2.0)
                // The controller output is applied multiplicatively to the
                // allocation (the actuator integrates); leak the inner
                // integral so zero error means zero adjustment.
                .with_integral_leak(0.8),
            adaptive: true,
            cpu_only: false,
            max_step_up: ResourceVec::splat(1.5),
            max_step_down: ResourceVec::new(0.20, 0.10, 0.20, 0.20),
            usage_floor_margin: ResourceVec::new(0.15, 0.8, 0.15, 0.15),
            deadband_over: 0.10,
            deadband_under: 0.35,
            reclaim_pressure: 0.30,
            reclaim_serial_secs: 0.010,
            tuner: AdaptiveTunerConfig::default(),
        }
    }

    /// Disables multi-resource attribution (classical CPU-only PID).
    #[must_use]
    pub fn cpu_only(mut self) -> Self {
        self.cpu_only = true;
        self
    }

    /// Disables on-line gain adaptation (fixed-gain ablation).
    #[must_use]
    pub fn fixed_gains(mut self) -> Self {
        self.adaptive = false;
        self
    }

    /// Replaces the base PID gains.
    #[must_use]
    pub fn with_gains(mut self, gains: PidConfig) -> Self {
        self.gains = gains;
        self
    }
}

/// One control decision: the new per-replica allocation target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceDecision {
    /// Target per-replica allocation after clamping.
    pub target: ResourceVec,
    /// The attribution used this period (sums to 1).
    pub attribution: ResourceVec,
    /// `true` when the controller wanted more of some resource but hit the
    /// per-replica ceiling — the signal to scale horizontally.
    pub saturated_up: bool,
    /// `true` when every dimension sits at the floor and the error is
    /// comfortably negative — the signal to consider scaling in.
    pub saturated_down: bool,
}

/// Per-application multi-resource adaptive controller.
///
/// # Examples
///
/// ```
/// use evolve_control::{MultiResourceConfig, MultiResourceController};
/// use evolve_types::{Resource, ResourceVec};
///
/// let cfg = MultiResourceConfig::new(
///     ResourceVec::splat(10.0),
///     ResourceVec::splat(10_000.0),
/// );
/// let mut ctl = MultiResourceController::new(cfg);
/// let alloc = ResourceVec::splat(100.0);
/// let usage = ResourceVec::new(99.0, 20.0, 10.0, 10.0); // CPU-bound
/// let d = ctl.step(alloc, usage, 0.5, 1.0); // 50% over latency target
/// assert!(d.target[Resource::Cpu] > alloc[Resource::Cpu]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiResourceController {
    config: MultiResourceConfig,
    pids: [PidController; 4],
    tuners: [AdaptiveTuner; 4],
    model: SensitivityModel,
    steps: u64,
    /// When set, the next [`step_with_profile`](Self::step_with_profile)
    /// seeds every per-dimension PID for bumpless transfer against the
    /// error it is about to integrate (see
    /// [`arm_bumpless`](Self::arm_bumpless)).
    bumpless_pending: bool,
}

impl MultiResourceController {
    /// Creates a controller from a configuration.
    #[must_use]
    pub fn new(config: MultiResourceConfig) -> Self {
        let pid = PidController::new(config.gains);
        let tuner = AdaptiveTuner::new(config.tuner);
        MultiResourceController {
            config,
            pids: [pid.clone(), pid.clone(), pid.clone(), pid],
            tuners: [tuner.clone(), tuner.clone(), tuner.clone(), tuner],
            model: SensitivityModel::new(),
            steps: 0,
            bumpless_pending: false,
        }
    }

    /// Arms **bumpless transfer** for the next control period: right
    /// before each per-dimension PID integrates its first post-restart
    /// error, its integral accumulator is back-computed so the resulting
    /// output is "hold the current allocation" (exactly zero adjustment
    /// whenever the required integral fits the clamp). Used after cold
    /// controller reconstruction, where the loop re-engages against a live
    /// actuation it did not produce.
    pub fn arm_bumpless(&mut self) {
        self.bumpless_pending = true;
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &MultiResourceConfig {
        &self.config
    }

    /// The sensitivity model (for telemetry/inspection).
    #[must_use]
    pub fn model(&self) -> &SensitivityModel {
        &self.model
    }

    /// Control periods executed.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total gain adaptations across the four dimensions.
    #[must_use]
    pub fn adaptations(&self) -> u64 {
        self.tuners.iter().map(AdaptiveTuner::adaptations).sum()
    }

    /// Current gains of the controller for `resource`
    /// (kp, ki, kd) — useful for the adaptation-timeline figure.
    #[must_use]
    pub fn gains_of(&self, resource: Resource) -> (f64, f64, f64) {
        let c = self.pids[resource.index()].config();
        (c.kp(), c.ki(), c.kd())
    }

    /// Term breakdown of `resource`'s PID for the most recent control
    /// period (all zero before the first step) — the decision-trace
    /// layer's view into *why* a dimension moved.
    #[must_use]
    pub fn pid_terms(&self, resource: Resource) -> crate::pid::PidTerms {
        self.pids[resource.index()].last_terms()
    }

    /// Executes one control period.
    ///
    /// * `alloc` — current per-replica allocation;
    /// * `usage` — measured per-replica usage;
    /// * `error` — PLO control error, positive = under-provisioned
    ///   (see `evolve_telemetry::PloTracker::control_error`);
    /// * `dt_secs` — elapsed control interval.
    ///
    /// # Panics
    ///
    /// Panics when `dt_secs` is not positive.
    pub fn step(
        &mut self,
        alloc: ResourceVec,
        usage: ResourceVec,
        error: f64,
        dt_secs: f64,
    ) -> ResourceDecision {
        self.step_with_profile(alloc, usage, None, error, dt_secs)
    }

    /// Like [`MultiResourceController::step`], additionally feeding the
    /// per-replica request throughput so the sensitivity model can
    /// decompose request latency into per-resource serial times (see
    /// [`SensitivityModel::observe_with_profile`]).
    ///
    /// # Panics
    ///
    /// Panics when `dt_secs` is not positive.
    pub fn step_with_profile(
        &mut self,
        alloc: ResourceVec,
        usage: ResourceVec,
        per_replica_rps: Option<f64>,
        error: f64,
        dt_secs: f64,
    ) -> ResourceDecision {
        assert!(dt_secs > 0.0, "dt must be positive");
        let cfg = self.config;
        let error = if error.is_finite() { error.clamp(-5.0, 5.0) } else { 1.0 };
        match per_replica_rps {
            Some(rps) => self.model.observe_with_profile(alloc, usage, rps, error),
            None => self.model.observe(alloc, usage, error),
        }
        // Hold inside the deadband: chasing noise around the setpoint
        // produces a limit cycle, not compliance.
        let error = if error >= 0.0 {
            if error < cfg.deadband_over {
                0.0
            } else {
                error
            }
        } else if -error < cfg.deadband_under {
            0.0
        } else {
            error
        };

        let attribution = if cfg.cpu_only {
            ResourceVec::unit(Resource::Cpu, 1.0)
        } else {
            self.model.attribution()
        };

        let mut target = alloc;
        let mut saturated_up = false;
        let mut all_at_floor = true;
        for r in Resource::ALL {
            let i = r.index();
            let share = attribution[r];
            // Scale-up is driven by the attributed share of the error;
            // scale-down (negative error) applies to every dimension so
            // idle resources are returned, but proportionally to *inverse*
            // pressure (don't shrink what is still hot).
            let e_r = if error >= 0.0 {
                error * share
            } else {
                let pressure = self.model.pressure()[r].clamp(0.0, 1.0);
                error * (1.0 - pressure)
            };
            if self.bumpless_pending {
                self.pids[i].seed_bumpless(e_r, dt_secs);
            }
            let u = self.pids[i].step(e_r, dt_secs);
            if cfg.adaptive {
                self.tuners[i].observe_and_adapt(e_r, &mut self.pids[i]);
            }
            let mut factor = (1.0 + u).clamp(1.0 - cfg.max_step_down[r], 1.0 + cfg.max_step_up[r]);
            // Idle reclaim (see the config docs): compliant loop, low
            // pressure, latency-irrelevant dimension → give it back.
            if error <= 0.0
                && self.model.pressure()[r] < cfg.reclaim_pressure
                && self.model.serial_secs()[r] < cfg.reclaim_serial_secs
            {
                factor = factor.min(1.0 - cfg.max_step_down[r]);
            }
            let mut next = alloc[r] * factor;
            // Usage floor: never shrink below observed demand + margin.
            if cfg.usage_floor_margin[r] >= 0.0 {
                next = next.max(usage[r] * (1.0 + cfg.usage_floor_margin[r]));
            }
            let clamped = next.clamp(cfg.min_alloc[r], cfg.max_alloc[r]);
            if next > cfg.max_alloc[r] + 1e-9 && e_r > 0.0 {
                saturated_up = true;
            }
            if clamped > cfg.min_alloc[r] + 1e-9 {
                all_at_floor = false;
            }
            target[r] = clamped;
        }
        self.bumpless_pending = false;
        self.steps += 1;
        ResourceDecision {
            target,
            attribution,
            saturated_up,
            saturated_down: all_at_floor && error < -0.2,
        }
    }

    /// Clears dynamic state (integrators, model) while keeping gains.
    pub fn reset(&mut self) {
        for pid in &mut self.pids {
            pid.reset();
        }
        self.model = SensitivityModel::new();
    }
}

impl Codec for MultiResourceConfig {
    fn encode(&self, enc: &mut Encoder) {
        self.min_alloc.encode(enc);
        self.max_alloc.encode(enc);
        self.gains.encode(enc);
        self.adaptive.encode(enc);
        self.cpu_only.encode(enc);
        self.max_step_up.encode(enc);
        self.max_step_down.encode(enc);
        self.usage_floor_margin.encode(enc);
        self.deadband_over.encode(enc);
        self.deadband_under.encode(enc);
        self.reclaim_pressure.encode(enc);
        self.reclaim_serial_secs.encode(enc);
        self.tuner.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(MultiResourceConfig {
            min_alloc: ResourceVec::decode(dec)?,
            max_alloc: ResourceVec::decode(dec)?,
            gains: PidConfig::decode(dec)?,
            adaptive: bool::decode(dec)?,
            cpu_only: bool::decode(dec)?,
            max_step_up: ResourceVec::decode(dec)?,
            max_step_down: ResourceVec::decode(dec)?,
            usage_floor_margin: ResourceVec::decode(dec)?,
            deadband_over: f64::decode(dec)?,
            deadband_under: f64::decode(dec)?,
            reclaim_pressure: f64::decode(dec)?,
            reclaim_serial_secs: f64::decode(dec)?,
            tuner: AdaptiveTunerConfig::decode(dec)?,
        })
    }
}

impl Codec for MultiResourceController {
    fn encode(&self, enc: &mut Encoder) {
        self.config.encode(enc);
        for pid in &self.pids {
            pid.encode(enc);
        }
        for tuner in &self.tuners {
            tuner.encode(enc);
        }
        self.model.encode(enc);
        self.steps.encode(enc);
        self.bumpless_pending.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let config = MultiResourceConfig::decode(dec)?;
        let pids = [
            PidController::decode(dec)?,
            PidController::decode(dec)?,
            PidController::decode(dec)?,
            PidController::decode(dec)?,
        ];
        let tuners = [
            AdaptiveTuner::decode(dec)?,
            AdaptiveTuner::decode(dec)?,
            AdaptiveTuner::decode(dec)?,
            AdaptiveTuner::decode(dec)?,
        ];
        Ok(MultiResourceController {
            config,
            pids,
            tuners,
            model: SensitivityModel::decode(dec)?,
            steps: u64::decode(dec)?,
            bumpless_pending: bool::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MultiResourceConfig {
        MultiResourceConfig::new(ResourceVec::splat(10.0), ResourceVec::splat(100_000.0))
    }

    #[test]
    fn positive_error_grows_bottleneck_resource() {
        let mut ctl = MultiResourceController::new(cfg());
        let alloc = ResourceVec::splat(100.0);
        let usage = ResourceVec::new(99.0, 10.0, 10.0, 10.0);
        let mut last = alloc;
        for _ in 0..5 {
            last = ctl.step(last, usage, 1.0, 1.0).target;
        }
        assert!(last[Resource::Cpu] > 150.0, "cpu grew to {}", last[Resource::Cpu]);
        // Idle dimensions should have grown far less.
        assert!(last[Resource::Memory] < last[Resource::Cpu]);
    }

    #[test]
    fn negative_error_shrinks_idle_resources() {
        let mut ctl = MultiResourceController::new(cfg());
        let alloc = ResourceVec::splat(1_000.0);
        let usage = ResourceVec::splat(50.0); // everything idle
        let mut cur = alloc;
        for _ in 0..20 {
            cur = ctl.step(cur, usage, -0.5, 1.0).target;
        }
        for r in Resource::ALL {
            assert!(cur[r] < 500.0, "{r} did not shrink: {}", cur[r]);
        }
    }

    #[test]
    fn usage_floor_prevents_starving_hot_resource() {
        let mut ctl = MultiResourceController::new(cfg());
        let alloc = ResourceVec::splat(1_000.0);
        // CPU is genuinely used at 900 even though latency is fine.
        let usage = ResourceVec::new(900.0, 50.0, 50.0, 50.0);
        let mut cur = alloc;
        for _ in 0..30 {
            cur = ctl.step(cur, usage, -0.5, 1.0).target;
        }
        assert!(cur[Resource::Cpu] >= 900.0 * 1.15 - 1e-6, "cpu {}", cur[Resource::Cpu]);
        assert!(cur[Resource::Memory] < 200.0);
    }

    #[test]
    fn ceiling_reports_saturation() {
        let mut c = cfg();
        c.max_alloc = ResourceVec::splat(120.0);
        let mut ctl = MultiResourceController::new(c);
        let usage = ResourceVec::new(119.0, 10.0, 10.0, 10.0);
        let mut cur = ResourceVec::splat(100.0);
        let mut saw_saturation = false;
        for _ in 0..10 {
            let d = ctl.step(cur, usage, 2.0, 1.0);
            cur = d.target;
            saw_saturation |= d.saturated_up;
            assert!(cur.fits_within(&ResourceVec::splat(120.0)));
        }
        assert!(saw_saturation);
    }

    #[test]
    fn floor_reports_scale_in_opportunity() {
        let mut c = cfg();
        c.min_alloc = ResourceVec::splat(50.0);
        c.usage_floor_margin = ResourceVec::splat(-1.0); // disable usage floor for this test
        let mut ctl = MultiResourceController::new(c);
        let usage = ResourceVec::splat(1.0);
        let mut cur = ResourceVec::splat(60.0);
        let mut saw_floor = false;
        for _ in 0..40 {
            let d = ctl.step(cur, usage, -1.0, 1.0);
            cur = d.target;
            saw_floor |= d.saturated_down;
        }
        assert!(saw_floor);
        for r in Resource::ALL {
            assert!((cur[r] - 50.0).abs() < 1e-6);
        }
    }

    #[test]
    fn cpu_only_mode_ignores_other_dimensions() {
        let mut ctl = MultiResourceController::new(cfg().cpu_only());
        let alloc = ResourceVec::splat(100.0);
        // Disk is the real bottleneck, but the 1-D controller can't see it.
        let usage = ResourceVec::new(20.0, 20.0, 99.0, 20.0);
        let d = ctl.step(alloc, usage, 1.0, 1.0);
        assert_eq!(d.attribution, ResourceVec::unit(Resource::Cpu, 1.0));
        assert!(d.target[Resource::Cpu] > 100.0);
        // Disk unchanged apart from the usage floor.
        assert!(d.target[Resource::DiskIo] <= 99.0 * 1.15 + 1e-6);
    }

    #[test]
    fn memory_shrinks_more_cautiously_than_cpu() {
        let c = cfg();
        assert!(c.max_step_down[Resource::Memory] < c.max_step_down[Resource::Cpu]);
        let mut ctl = MultiResourceController::new(c);
        let alloc = ResourceVec::splat(1_000.0);
        let usage = ResourceVec::splat(10.0);
        let d = ctl.step(alloc, usage, -2.0, 1.0);
        // One period: memory may shrink at most 10%, cpu up to 35%.
        assert!(d.target[Resource::Memory] >= 900.0 - 1e-6);
        assert!(d.target[Resource::Cpu] < d.target[Resource::Memory]);
    }

    #[test]
    fn adaptive_mode_adapts_under_oscillation() {
        let mut ctl = MultiResourceController::new(cfg());
        let alloc = ResourceVec::splat(100.0);
        let usage = ResourceVec::splat(90.0);
        for i in 0..60 {
            let e = if i % 2 == 0 { 1.0 } else { -1.0 };
            ctl.step(alloc, usage, e, 1.0);
        }
        assert!(ctl.adaptations() > 0);
        let mut fixed = MultiResourceController::new(cfg().fixed_gains());
        for i in 0..60 {
            let e = if i % 2 == 0 { 1.0 } else { -1.0 };
            fixed.step(alloc, usage, e, 1.0);
        }
        assert_eq!(fixed.adaptations(), 0);
    }

    #[test]
    fn non_finite_error_treated_as_full_violation() {
        let mut ctl = MultiResourceController::new(cfg());
        let alloc = ResourceVec::splat(100.0);
        let usage = ResourceVec::splat(95.0);
        let d = ctl.step(alloc, usage, f64::NAN, 1.0);
        // NaN → error 1.0 → allocations must not shrink.
        for r in Resource::ALL {
            assert!(d.target[r] >= alloc[r] - 1e-9);
        }
    }

    #[test]
    fn step_counts_and_reset() {
        let mut ctl = MultiResourceController::new(cfg());
        ctl.step(ResourceVec::splat(100.0), ResourceVec::splat(50.0), 0.1, 1.0);
        assert_eq!(ctl.steps(), 1);
        ctl.reset();
        assert_eq!(ctl.model().observations(), 0);
    }

    #[test]
    fn armed_bumpless_first_step_holds_allocation_in_band() {
        // A reconstructed controller re-engaging against a modest error
        // must not slam the actuator: with bumpless seeding the first
        // decision stays at the current allocation (deadband + seeded
        // integral → zero adjustment), modulo the usage floor.
        let mut ctl = MultiResourceController::new(cfg());
        ctl.arm_bumpless();
        let alloc = ResourceVec::splat(1_000.0);
        let usage = ResourceVec::splat(300.0);
        let d = ctl.step(alloc, usage, 0.3, 5.0);
        for r in Resource::ALL {
            assert!(
                (d.target[r] - alloc[r]).abs() < 1e-9,
                "{r} moved to {} on the seeded step",
                d.target[r]
            );
        }
        // The flag is one-shot: the next step controls normally.
        let d2 = ctl.step(alloc, usage, 2.0, 5.0);
        assert!(d2.target[Resource::Cpu] > alloc[Resource::Cpu]);
    }

    #[test]
    fn controller_codec_roundtrip_resumes_identically() {
        let mut ctl = MultiResourceController::new(cfg());
        let mut alloc = ResourceVec::splat(100.0);
        let usage = ResourceVec::new(80.0, 30.0, 10.0, 10.0);
        for i in 0..25 {
            let e = 0.5 - 0.04 * f64::from(i);
            alloc = ctl.step_with_profile(alloc, usage, Some(12.0), e, 5.0).target;
        }
        let mut enc = evolve_types::Encoder::new();
        ctl.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut back =
            MultiResourceController::decode(&mut evolve_types::Decoder::new(&bytes)).unwrap();
        assert_eq!(ctl, back);
        let mut a1 = alloc;
        let mut a2 = alloc;
        for i in 0..10 {
            let e = -0.1 + 0.05 * f64::from(i);
            a1 = ctl.step_with_profile(a1, usage, Some(9.0), e, 5.0).target;
            a2 = back.step_with_profile(a2, usage, Some(9.0), e, 5.0).target;
            assert_eq!(a1, a2, "diverged at resumed step {i}");
        }
    }

    #[test]
    fn closed_loop_converges_on_multi_resource_plant() {
        // Toy plant: latency = max over resources of demand_r / alloc_r,
        // PLO target 1.0. Demands differ per resource.
        let demand = ResourceVec::new(500.0, 200.0, 30.0, 80.0);
        let mut ctl = MultiResourceController::new(cfg());
        let mut alloc = ResourceVec::splat(20.0).max(&ResourceVec::splat(20.0));
        let mut latency = 0.0;
        for _ in 0..200 {
            latency = Resource::ALL
                .iter()
                .map(|r| demand[*r] / alloc[*r].max(1e-9))
                .fold(0.0_f64, f64::max);
            let error = latency - 1.0; // relative error against target 1.0
            let usage = demand.min(&alloc);
            alloc = ctl.step(alloc, usage, error, 1.0).target;
        }
        assert!(latency <= 1.2, "final latency {latency}");
        // And the controller should not have over-provisioned wildly.
        assert!(alloc[Resource::Cpu] < 5_000.0, "cpu alloc {}", alloc[Resource::Cpu]);
    }
}
