//! Control-theoretic core of EVOLVE.
//!
//! The calibration notes for the paper pin its contribution as a
//! "multi-resource **adaptive** PID autoscaler" in the Skynet lineage:
//! per-application PID controllers map a performance-level-objective (PLO)
//! error to resource allocations, the gains adapt on-line, and the
//! classical one-dimensional controller is extended to drive CPU, memory,
//! disk I/O and network I/O together. This crate implements exactly that
//! stack, independent of any cluster:
//!
//! * [`PidController`] / [`PidConfig`] — a production-grade scalar PID:
//!   anti-windup (integral clamping + conditional integration),
//!   derivative-on-measurement with first-order filtering, output limits
//!   and slew-rate limiting.
//! * [`AdaptiveTuner`] — on-line gain adaptation: an oscillation detector
//!   shrinks the proportional gain, a sluggishness detector grows the
//!   integral gain ("adjusts its parameters on the fly").
//! * [`RelayTuner`] — Åström–Hägglund relay auto-tuning to bootstrap gains
//!   from a short induced oscillation (Ziegler–Nichols rules).
//! * [`RlsModel`] / [`SensitivityModel`] — recursive-least-squares models
//!   that learn, on-line, how performance responds to each resource; they
//!   attribute the PLO error to the resource that actually binds.
//! * [`MultiResourceController`] — the MIMO extension: one PID per
//!   resource dimension, coordinated through the sensitivity model,
//!   producing a full [`evolve_types::ResourceVec`] allocation.
//! * [`LoadPredictor`] — Holt-linear short-horizon load forecasting with a
//!   configurable safety margin, used to scale ahead of ramps.
//! * [`DegradationGuard`] — graceful degradation under lost telemetry:
//!   hold-last-safe output, a watchdog that decays toward a usage-anchored
//!   floor, and slew-limited re-engagement after a blackout.
//! * [`CapacityArbiter`] — cluster-level overload arbitration: when the
//!   sum of per-app requests exceeds ready capacity (minus a headroom
//!   reserve), grants are arbitrated by priority class with weighted-fair
//!   clipping, full shedding of lower classes, hysteresis and slew limits.
//!
//! # Examples
//!
//! ```
//! use evolve_control::{PidConfig, PidController};
//!
//! // Latency control: positive error means "too slow, add resources".
//! let mut pid = PidController::new(
//!     PidConfig::new(0.8, 0.2, 0.05).with_output_limits(-0.5, 1.0),
//! );
//! let out = pid.step(0.3, 1.0);
//! assert!(out > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod degrade;
mod model;
mod multi;
mod pid;
mod predictor;
mod tuning;

pub use arbiter::{
    arbitrate, ArbiterConfig, ArbiterRequest, ArbiterState, ArbitrationOutcome, CapacityArbiter,
    ClipReason, GrantDecision,
};
pub use degrade::{DegradationConfig, DegradationGuard};
pub use model::{RlsModel, SensitivityModel};
pub use multi::{MultiResourceConfig, MultiResourceController, ResourceDecision};
pub use pid::{PidConfig, PidController, PidTerms};
pub use predictor::LoadPredictor;
pub use tuning::{AdaptiveTuner, AdaptiveTunerConfig, RelayTuner, RelayTunerOutcome};
