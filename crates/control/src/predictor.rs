//! Short-horizon load prediction.
//!
//! Reactive control alone lags a fast diurnal ramp by one settling time;
//! EVOLVE therefore feeds a *predicted* load into the horizontal scaler.
//! [`LoadPredictor`] wraps Holt double-exponential smoothing with a safety
//! margin: the predictor quotes `forecast(horizon) × (1 + margin)`,
//! clamped non-negative, and falls back to the last observation while the
//! filter warms up.

use evolve_telemetry::HoltLinear;
use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::Result;
use serde::{Deserialize, Serialize};

/// Holt-linear load forecaster with a safety margin.
///
/// # Examples
///
/// ```
/// use evolve_control::LoadPredictor;
///
/// let mut p = LoadPredictor::new(0.4, 0.2, 3.0, 0.1);
/// for i in 0..50 {
///     p.observe(10.0 * f64::from(i)); // ramp: +10 per control period
/// }
/// // Forecast 3 periods ahead of t=49 (≈520) plus the 10% margin.
/// let f = p.predicted();
/// assert!(f > 520.0 && f < 650.0, "forecast {f}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPredictor {
    holt: HoltLinear,
    horizon_steps: f64,
    margin: f64,
    last_observation: Option<f64>,
    observations: u64,
}

impl LoadPredictor {
    /// Creates a predictor.
    ///
    /// * `alpha`, `beta` — Holt level/trend gains in `(0, 1]`;
    /// * `horizon_steps` — how many control periods ahead to forecast;
    /// * `margin` — relative safety margin added on top (≥ 0).
    ///
    /// # Panics
    ///
    /// Panics when `horizon_steps` is negative or `margin < 0` (gain
    /// validation is inherited from [`HoltLinear`]).
    #[must_use]
    pub fn new(alpha: f64, beta: f64, horizon_steps: f64, margin: f64) -> Self {
        assert!(horizon_steps >= 0.0, "horizon must be non-negative");
        assert!(margin >= 0.0, "margin must be non-negative");
        LoadPredictor {
            holt: HoltLinear::new(alpha, beta),
            horizon_steps,
            margin,
            last_observation: None,
            observations: 0,
        }
    }

    /// Feeds one load observation (e.g. request rate this control period).
    /// Non-finite observations are ignored.
    pub fn observe(&mut self, load: f64) {
        if !load.is_finite() {
            return;
        }
        let load = load.max(0.0);
        self.holt.observe(load);
        self.last_observation = Some(load);
        self.observations += 1;
    }

    /// The margin-inflated forecast for `horizon_steps` ahead. While fewer
    /// than three observations have arrived, returns the last observation
    /// (with margin) instead of trusting an unwarmed trend; 0 before any
    /// observation.
    #[must_use]
    pub fn predicted(&self) -> f64 {
        let base = if self.observations < 3 {
            self.last_observation.unwrap_or(0.0)
        } else {
            self.holt.forecast(self.horizon_steps).max(0.0)
        };
        base * (1.0 + self.margin)
    }

    /// The raw (margin-free) forecast.
    #[must_use]
    pub fn raw_forecast(&self) -> f64 {
        self.holt.forecast(self.horizon_steps).max(0.0)
    }

    /// The most recent observation.
    #[must_use]
    pub fn last_observation(&self) -> Option<f64> {
        self.last_observation
    }

    /// Per-period trend estimate (positive = load rising).
    #[must_use]
    pub fn trend(&self) -> f64 {
        self.holt.trend()
    }
}

impl Codec for LoadPredictor {
    fn encode(&self, enc: &mut Encoder) {
        self.holt.encode(enc);
        self.horizon_steps.encode(enc);
        self.margin.encode(enc);
        self.last_observation.encode(enc);
        self.observations.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(LoadPredictor {
            holt: HoltLinear::decode(dec)?,
            horizon_steps: f64::decode(dec)?,
            margin: f64::decode(dec)?,
            last_observation: Option::<f64>::decode(dec)?,
            observations: u64::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_predictor_returns_zero() {
        let p = LoadPredictor::new(0.5, 0.3, 2.0, 0.2);
        assert_eq!(p.predicted(), 0.0);
        assert_eq!(p.last_observation(), None);
    }

    #[test]
    fn warmup_uses_last_observation() {
        let mut p = LoadPredictor::new(0.5, 0.3, 5.0, 0.1);
        p.observe(100.0);
        assert!((p.predicted() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn rising_load_is_anticipated() {
        let mut p = LoadPredictor::new(0.5, 0.3, 3.0, 0.0);
        for i in 0..100 {
            p.observe(5.0 * f64::from(i));
        }
        // Last observation 495; forecast 3 ahead ≈ 510.
        assert!(p.predicted() > 495.0, "prediction {}", p.predicted());
        assert!(p.trend() > 4.0);
    }

    #[test]
    fn falling_load_forecast_stays_non_negative() {
        let mut p = LoadPredictor::new(0.8, 0.6, 10.0, 0.0);
        for i in (0..20).rev() {
            p.observe(f64::from(i));
        }
        assert!(p.predicted() >= 0.0);
    }

    #[test]
    fn margin_inflates_forecast() {
        let mut a = LoadPredictor::new(0.5, 0.3, 0.0, 0.0);
        let mut b = LoadPredictor::new(0.5, 0.3, 0.0, 0.5);
        for _ in 0..10 {
            a.observe(100.0);
            b.observe(100.0);
        }
        assert!((a.predicted() - 100.0).abs() < 1e-6);
        assert!((b.predicted() - 150.0).abs() < 1e-6);
        assert!((b.raw_forecast() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_observations_ignored() {
        let mut p = LoadPredictor::new(0.5, 0.3, 1.0, 0.0);
        p.observe(f64::NAN);
        p.observe(f64::INFINITY);
        assert_eq!(p.predicted(), 0.0);
        p.observe(-5.0); // clamped to 0
        assert_eq!(p.last_observation(), Some(0.0));
    }
}
