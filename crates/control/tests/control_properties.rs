//! Property-based tests for the control stack: whatever the inputs, the
//! controllers must respect their configured envelopes.

use evolve_control::{
    MultiResourceConfig, MultiResourceController, PidConfig, PidController, RlsModel,
    SensitivityModel,
};
use evolve_types::{Resource, ResourceVec};
use proptest::prelude::*;

fn arb_errors() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, 1..100)
}

proptest! {
    #[test]
    fn pid_output_respects_limits(errors in arb_errors(), lo in -5.0..0.0f64, hi in 0.0..5.0f64) {
        let mut pid = PidController::new(
            PidConfig::new(2.0, 1.0, 0.5).with_output_limits(lo, hi),
        );
        for e in errors {
            let u = pid.step(e, 1.0);
            prop_assert!(u >= lo - 1e-12 && u <= hi + 1e-12, "output {u} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn pid_integral_respects_clamp(errors in arb_errors()) {
        let mut pid = PidController::new(
            PidConfig::new(1.0, 1.0, 0.0).with_integral_limits(-3.0, 3.0),
        );
        for e in errors {
            pid.step(e, 0.5);
            prop_assert!(pid.integral().abs() <= 3.0 + 1e-12);
        }
    }

    #[test]
    fn pid_output_is_always_finite(errors in arb_errors(), dt in 0.01..100.0f64) {
        let mut pid = PidController::new(
            PidConfig::new(5.0, 2.0, 1.0).with_derivative_tau(1.0).with_slew_limit(10.0),
        );
        for e in errors {
            prop_assert!(pid.step(e, dt).is_finite());
        }
    }

    #[test]
    fn controller_target_stays_in_bounds(
        steps in prop::collection::vec(
            ((-3.0..3.0f64), (0.0..5_000.0f64), (0.0..5_000.0f64)),
            1..60,
        )
    ) {
        let min = ResourceVec::splat(50.0);
        let max = ResourceVec::splat(4_000.0);
        let mut ctl = MultiResourceController::new(MultiResourceConfig::new(min, max));
        let mut alloc = ResourceVec::splat(500.0);
        for (error, cpu_usage, mem_usage) in steps {
            let usage = ResourceVec::new(cpu_usage, mem_usage, cpu_usage / 10.0, mem_usage / 10.0);
            let d = ctl.step(alloc, usage, error, 5.0);
            prop_assert!(d.target.is_valid(), "invalid target {:?}", d.target);
            prop_assert!(min.fits_within(&d.target), "below floor: {:?}", d.target);
            prop_assert!(d.target.fits_within(&max), "above ceiling: {:?}", d.target);
            alloc = d.target;
        }
    }

    #[test]
    fn attribution_is_a_distribution(
        observations in prop::collection::vec(
            ((1.0..10_000.0f64), (0.0..10_000.0f64), (-2.0..2.0f64)),
            1..50,
        )
    ) {
        let mut model = SensitivityModel::new();
        for (alloc, usage, error) in observations {
            model.observe(
                ResourceVec::new(alloc, alloc / 2.0, alloc / 10.0, alloc / 20.0),
                ResourceVec::new(usage, usage / 3.0, usage / 8.0, usage / 30.0),
                error,
            );
            let a = model.attribution();
            let mut sum = 0.0;
            for r in Resource::ALL {
                prop_assert!(a[r] >= -1e-12, "negative attribution {a}");
                sum += a[r];
            }
            prop_assert!((sum - 1.0).abs() < 1e-6, "attribution sum {sum}");
        }
    }

    #[test]
    fn rls_prediction_stays_finite(
        samples in prop::collection::vec(
            ((-100.0..100.0f64), (-100.0..100.0f64), (-1_000.0..1_000.0f64)),
            1..200,
        )
    ) {
        let mut m = RlsModel::new(2, 0.95);
        for (x0, x1, y) in samples {
            m.update(&[x0, x1], y);
            prop_assert!(m.predict(&[x0, x1]).is_finite());
            prop_assert!(m.weights().iter().all(|w| w.is_finite()));
        }
    }

    #[test]
    fn closed_loop_never_diverges(kp in 0.1..2.0f64, ki in 0.0..1.0f64, tau in 0.2..5.0f64) {
        // First-order plant under any of these gains must stay bounded
        // thanks to output clamping.
        let mut pid = PidController::new(
            PidConfig::new(kp, ki, 0.0).with_output_limits(0.0, 100.0),
        );
        let mut y = 0.0;
        for _ in 0..500 {
            let u = pid.step(1.0 - y, 0.1);
            y += (u - y) / tau * 0.1;
            prop_assert!(y.is_finite() && y.abs() < 1_000.0, "diverged: {y}");
        }
    }
}
