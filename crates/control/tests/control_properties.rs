//! Property-based tests for the control stack: whatever the inputs, the
//! controllers must respect their configured envelopes.

use evolve_control::{
    arbitrate, ArbiterConfig, ArbiterRequest, ArbiterState, ClipReason, GrantDecision,
    MultiResourceConfig, MultiResourceController, PidConfig, PidController, RlsModel,
    SensitivityModel,
};
use evolve_types::{AppId, PriorityClass, Resource, ResourceVec};
use proptest::prelude::*;

fn arb_errors() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, 1..100)
}

/// A fleet of arbiter requests with mixed priority classes and demands
/// spanning well below to well above typical capacity draws.
fn arb_requests() -> impl Strategy<Value = Vec<ArbiterRequest>> {
    prop::collection::vec((0..3u8, 10.0..20_000.0f64, 10.0..40_000.0f64), 1..12).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (class, cpu, mem))| ArbiterRequest {
                app: AppId::new(i as u32),
                class: match class {
                    0 => PriorityClass::Critical,
                    1 => PriorityClass::Standard,
                    _ => PriorityClass::Preemptible,
                },
                requested: ResourceVec::new(cpu, mem, cpu / 10.0, mem / 10.0),
            })
            .collect()
    })
}

fn arb_capacity() -> impl Strategy<Value = ResourceVec> {
    (2_000.0..80_000.0f64, 2_000.0..160_000.0f64)
        .prop_map(|(cpu, mem)| ResourceVec::new(cpu, mem, cpu / 10.0, mem / 10.0))
}

proptest! {
    #[test]
    fn pid_output_respects_limits(errors in arb_errors(), lo in -5.0..0.0f64, hi in 0.0..5.0f64) {
        let mut pid = PidController::new(
            PidConfig::new(2.0, 1.0, 0.5).with_output_limits(lo, hi),
        );
        for e in errors {
            let u = pid.step(e, 1.0);
            prop_assert!(u >= lo - 1e-12 && u <= hi + 1e-12, "output {u} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn pid_integral_respects_clamp(errors in arb_errors()) {
        let mut pid = PidController::new(
            PidConfig::new(1.0, 1.0, 0.0).with_integral_limits(-3.0, 3.0),
        );
        for e in errors {
            pid.step(e, 0.5);
            prop_assert!(pid.integral().abs() <= 3.0 + 1e-12);
        }
    }

    #[test]
    fn pid_output_is_always_finite(errors in arb_errors(), dt in 0.01..100.0f64) {
        let mut pid = PidController::new(
            PidConfig::new(5.0, 2.0, 1.0).with_derivative_tau(1.0).with_slew_limit(10.0),
        );
        for e in errors {
            prop_assert!(pid.step(e, dt).is_finite());
        }
    }

    #[test]
    fn controller_target_stays_in_bounds(
        steps in prop::collection::vec(
            ((-3.0..3.0f64), (0.0..5_000.0f64), (0.0..5_000.0f64)),
            1..60,
        )
    ) {
        let min = ResourceVec::splat(50.0);
        let max = ResourceVec::splat(4_000.0);
        let mut ctl = MultiResourceController::new(MultiResourceConfig::new(min, max));
        let mut alloc = ResourceVec::splat(500.0);
        for (error, cpu_usage, mem_usage) in steps {
            let usage = ResourceVec::new(cpu_usage, mem_usage, cpu_usage / 10.0, mem_usage / 10.0);
            let d = ctl.step(alloc, usage, error, 5.0);
            prop_assert!(d.target.is_valid(), "invalid target {:?}", d.target);
            prop_assert!(min.fits_within(&d.target), "below floor: {:?}", d.target);
            prop_assert!(d.target.fits_within(&max), "above ceiling: {:?}", d.target);
            alloc = d.target;
        }
    }

    #[test]
    fn attribution_is_a_distribution(
        observations in prop::collection::vec(
            ((1.0..10_000.0f64), (0.0..10_000.0f64), (-2.0..2.0f64)),
            1..50,
        )
    ) {
        let mut model = SensitivityModel::new();
        for (alloc, usage, error) in observations {
            model.observe(
                ResourceVec::new(alloc, alloc / 2.0, alloc / 10.0, alloc / 20.0),
                ResourceVec::new(usage, usage / 3.0, usage / 8.0, usage / 30.0),
                error,
            );
            let a = model.attribution();
            let mut sum = 0.0;
            for r in Resource::ALL {
                prop_assert!(a[r] >= -1e-12, "negative attribution {a}");
                sum += a[r];
            }
            prop_assert!((sum - 1.0).abs() < 1e-6, "attribution sum {sum}");
        }
    }

    #[test]
    fn rls_prediction_stays_finite(
        samples in prop::collection::vec(
            ((-100.0..100.0f64), (-100.0..100.0f64), (-1_000.0..1_000.0f64)),
            1..200,
        )
    ) {
        let mut m = RlsModel::new(2, 0.95);
        for (x0, x1, y) in samples {
            m.update(&[x0, x1], y);
            prop_assert!(m.predict(&[x0, x1]).is_finite());
            prop_assert!(m.weights().iter().all(|w| w.is_finite()));
        }
    }

    #[test]
    fn arbiter_conserves_capacity(requests in arb_requests(), capacity in arb_capacity()) {
        // Grants never exceed requests, and their per-dimension sum never
        // exceeds the usable pool — across repeated rounds, so slew
        // recovery and hysteresis are exercised too.
        let config = ArbiterConfig::default();
        let mut state = ArbiterState::default();
        let usable = capacity * (1.0 - config.headroom_fraction);
        for _ in 0..5 {
            let outcomes = arbitrate(&config, &mut state, &requests, capacity, ResourceVec::ZERO);
            prop_assert_eq!(outcomes.len(), requests.len());
            let mut total = ResourceVec::ZERO;
            for (o, req) in outcomes.iter().zip(&requests) {
                for r in Resource::ALL {
                    prop_assert!(
                        o.granted[r] <= req.requested[r] * (1.0 + 1e-9),
                        "grant {:?} exceeds request {:?}", o.granted, req.requested
                    );
                    prop_assert!(o.granted[r] >= 0.0, "negative grant {:?}", o.granted);
                }
                total += o.granted;
            }
            for r in Resource::ALL {
                prop_assert!(
                    total[r] <= usable[r] * (1.0 + 1e-9),
                    "granted {:?} exceeds usable {:?} on {:?}", total, usable, r
                );
            }
        }
    }

    #[test]
    fn arbiter_is_deterministic(requests in arb_requests(), capacity in arb_capacity()) {
        let config = ArbiterConfig::default();
        let mut state_a = ArbiterState::default();
        let mut state_b = ArbiterState::default();
        for _ in 0..4 {
            let a = arbitrate(&config, &mut state_a, &requests, capacity, ResourceVec::ZERO);
            let b = arbitrate(&config, &mut state_b, &requests, capacity, ResourceVec::ZERO);
            prop_assert_eq!(a, b);
            prop_assert_eq!(&state_a, &state_b);
        }
    }

    #[test]
    fn arbiter_sheds_lower_class_before_clipping_higher(
        requests in arb_requests(),
        capacity in arb_capacity(),
    ) {
        // Strict priority: if any app is clipped for capacity, every app of
        // a strictly lower class must be shed outright, never merely clipped.
        let config = ArbiterConfig::default();
        let mut state = ArbiterState::default();
        for _ in 0..3 {
            let outcomes = arbitrate(&config, &mut state, &requests, capacity, ResourceVec::ZERO);
            for clipped in outcomes
                .iter()
                .filter(|o| o.decision == GrantDecision::Clipped(ClipReason::Oversubscribed))
            {
                for lower in outcomes.iter().filter(|o| o.class < clipped.class) {
                    prop_assert_eq!(
                        lower.decision, GrantDecision::Shed,
                        "{:?} app {:?} clipped but lower-class {:?} app {:?} got {:?}",
                        clipped.class, clipped.app, lower.class, lower.app, lower.decision
                    );
                }
            }
        }
    }

    #[test]
    fn arbiter_clip_is_uniform_within_class(
        requests in arb_requests(),
        capacity in arb_capacity(),
    ) {
        // Weighted-fair clipping: from a fresh state (no slew history), all
        // members of the clipped class share the same per-dimension grant
        // ratio — one huge app cannot claim a larger share than its peers.
        let config = ArbiterConfig::default();
        let mut state = ArbiterState::default();
        let outcomes = arbitrate(&config, &mut state, &requests, capacity, ResourceVec::ZERO);
        let clipped: Vec<_> = outcomes
            .iter()
            .filter(|o| o.decision == GrantDecision::Clipped(ClipReason::Oversubscribed))
            .collect();
        for pair in clipped.windows(2) {
            prop_assert_eq!(pair[0].class, pair[1].class);
            for r in Resource::ALL {
                let (ra, rb) = (
                    pair[0].granted[r] / pair[0].requested[r].max(1e-12),
                    pair[1].granted[r] / pair[1].requested[r].max(1e-12),
                );
                prop_assert!(
                    (ra - rb).abs() < 1e-6,
                    "unequal {:?} ratios within class: {ra} vs {rb}", r
                );
            }
        }
    }

    #[test]
    fn closed_loop_never_diverges(kp in 0.1..2.0f64, ki in 0.0..1.0f64, tau in 0.2..5.0f64) {
        // First-order plant under any of these gains must stay bounded
        // thanks to output clamping.
        let mut pid = PidController::new(
            PidConfig::new(kp, ki, 0.0).with_output_limits(0.0, 100.0),
        );
        let mut y = 0.0;
        for _ in 0..500 {
            let u = pid.step(1.0 - y, 0.1);
            y += (u - y) / tau * 0.1;
            prop_assert!(y.is_finite() && y.abs() < 1_000.0, "diverged: {y}");
        }
    }
}
