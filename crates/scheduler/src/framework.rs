//! The scheduling cycle: priority queue, gang grouping, filter → score →
//! tentative bind, and preemption.

use std::collections::{BTreeMap, HashSet};

use evolve_sim::{ClusterState, Node, Pod, PodKind, PodSpec};
use evolve_telemetry::trace::{SchedOutcome, SchedTrace, TraceEvent, TraceRing};
use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::{JobId, NodeId, PodId, ResourceVec, Result, SimTime};

use crate::index::FeasibilityIndex;
use crate::plugins::{
    BalancedAllocation, FilterPlugin, LeastAllocated, MostAllocated, NodeFits, NodeView,
    ScorePlugin, SpreadApp,
};

/// The outcome of one scheduling cycle. The driver must apply
/// `preemptions` (via `Simulation::preempt_pod`) **before** `bindings`
/// (via `Simulation::bind_pod`) — the plan's shadow accounting assumes
/// that order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedulePlan {
    /// Pods to bind, in decision order.
    pub bindings: Vec<(PodId, NodeId)>,
    /// Pods to evict first (preemption victims).
    pub preemptions: Vec<PodId>,
    /// Pods that could not be placed this cycle.
    pub unschedulable: Vec<PodId>,
    /// Pod-table lookups that failed during the cycle (a node's bound set
    /// referenced a pod the table no longer knows) — skipped and counted
    /// instead of panicking, mirroring the manager's `UnknownApp`
    /// handling.
    pub stale_pod_lookups: u64,
    /// Filter-plugin invocations this cycle. The naive scan pays one per
    /// (pending pod, node) pair until the first failing filter; the
    /// indexed path pays only for non-capacity filters on surviving
    /// candidates, so this is the numerator of the index's win.
    pub filter_evals: u64,
    /// Feasibility-index tree nodes visited this cycle (zero on the
    /// naive path). `filter_evals + index_probes` is the indexed cycle's
    /// total feasibility work, comparable against the naive
    /// `filter_evals`.
    pub index_probes: u64,
}

/// Cross-cycle requeue backoff for unschedulable pods.
///
/// A pod that fails to place is retried on the next cycle, then with
/// exponentially growing gaps (1, 2, 4, 4, … cycles, capped) so a full
/// queue of orphans — e.g. everything evicted by a node crash — does not
/// grind every subsequent cycle through hopeless placements. A gang with
/// any backed-off member is deferred as a unit without accruing further
/// penalty. State is pruned to the currently-pending set each cycle, so
/// pods that bind (or die) are forgotten automatically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequeueBackoff {
    cycle: u64,
    /// pod → (consecutive failures, first cycle eligible to retry).
    state: BTreeMap<PodId, (u32, u64)>,
}

impl RequeueBackoff {
    /// Fresh state: every pod is eligible immediately.
    #[must_use]
    pub fn new() -> Self {
        RequeueBackoff::default()
    }

    /// Whether this pod may be attempted in the current cycle.
    fn eligible(&self, pod: PodId) -> bool {
        self.state.get(&pod).is_none_or(|&(_, at)| at <= self.cycle)
    }

    /// Records a failed placement attempt and pushes the retry out.
    fn record_failure(&mut self, pod: PodId) {
        let entry = self.state.entry(pod).or_insert((0, 0));
        entry.0 += 1;
        let delay = (1u64 << (entry.0 - 1).min(2)).min(4);
        entry.1 = self.cycle + delay;
    }

    /// Consecutive failed attempts recorded for a pod.
    #[must_use]
    pub fn failures(&self, pod: PodId) -> u32 {
        self.state.get(&pod).map_or(0, |&(n, _)| n)
    }
}

impl Codec for RequeueBackoff {
    fn encode(&self, enc: &mut Encoder) {
        self.cycle.encode(enc);
        // BTreeMap iterates in key order, so the encoding is deterministic.
        self.state.len().encode(enc);
        for (pod, &(failures, retry_at)) in &self.state {
            pod.encode(enc);
            failures.encode(enc);
            retry_at.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let cycle = u64::decode(dec)?;
        let len = usize::decode(dec)?;
        let mut state = BTreeMap::new();
        for _ in 0..len {
            let pod = PodId::decode(dec)?;
            let failures = u32::decode(dec)?;
            let retry_at = u64::decode(dec)?;
            state.insert(pod, (failures, retry_at));
        }
        Ok(RequeueBackoff { cycle, state })
    }
}

/// A configurable scheduler: filters decide feasibility, weighted scorers
/// pick the node, priorities order the queue, and optional preemption and
/// gang handling deal with contention and HPC jobs.
pub struct SchedulerFramework {
    filters: Vec<Box<dyn FilterPlugin>>,
    scorers: Vec<(Box<dyn ScorePlugin>, f64)>,
    preemption: bool,
    name: &'static str,
    /// Chaos-harness fault seed: when `EVOLVE_CHAOS_GANG_NO_ROLLBACK` is
    /// set in the environment at construction time, a failed gang's first
    /// pass commits whatever ranks it managed to place instead of rolling
    /// back — deliberately breaking gang atomicity so the chaos oracle
    /// and fuzzer can prove they catch it. Never set in production paths.
    break_gang_rollback: bool,
    /// Whether cycles prune candidates through the feasibility index
    /// (requires the leading filter to certify
    /// [`FilterPlugin::prunes_capacity_fit`]). On by default; the
    /// `EVOLVE_SCHED_NAIVE` environment variable (at construction) or
    /// [`with_index(false)`](Self::with_index) selects the naive scan.
    use_index: bool,
}

impl std::fmt::Debug for SchedulerFramework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerFramework")
            .field("name", &self.name)
            .field("filters", &self.filters.len())
            .field("scorers", &self.scorers.len())
            .field("preemption", &self.preemption)
            .field("indexed", &self.use_index)
            .finish()
    }
}

/// `(bindings, preemption victims)` of a successfully placed gang.
type GangPlacement = (Vec<(PodId, NodeId)>, Vec<PodId>);

/// Capture target for one traced placement attempt: the chosen node's
/// per-plugin weighted score contributions, how many nodes passed every
/// filter, and how many each filter rejected.
#[derive(Debug, Default)]
struct PlacementProbe {
    /// Weighted mean score of the winning node.
    chosen_score: Option<f64>,
    /// Per-plugin `(name, weighted contribution)` of the winning node.
    scores: Vec<(&'static str, f64)>,
    /// Per-filter `(name, nodes rejected)`.
    filtered: Vec<(&'static str, u32)>,
    /// Nodes that passed every filter.
    feasible: u32,
    /// Per-candidate scratch buffer, promoted into `scores` whenever a
    /// node becomes the new best.
    scratch: Vec<f64>,
}

impl PlacementProbe {
    fn new(filters: &[Box<dyn FilterPlugin>]) -> Self {
        PlacementProbe {
            filtered: filters.iter().map(|f| (f.name(), 0)).collect(),
            ..PlacementProbe::default()
        }
    }
}

/// Per-cycle mutable placement context. The index doubles as the cycle's
/// shadow state (free vectors, app spread counts): every tentative
/// place/release/claim flows through it, on both the indexed and the
/// naive path, so the two paths read identical shadow values.
struct Ctx<'a> {
    index: &'a mut FeasibilityIndex,
    /// Whether this cycle prunes candidates through the index's trees.
    /// When false, placement scans every node exactly as the historical
    /// implementation did.
    indexed: bool,
    /// Filter-plugin invocations so far (see
    /// [`SchedulePlan::filter_evals`]).
    filter_evals: u64,
}

impl SchedulerFramework {
    /// An empty framework; add plugins with the builder methods.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        SchedulerFramework {
            filters: Vec::new(),
            scorers: Vec::new(),
            preemption: false,
            name,
            break_gang_rollback: std::env::var_os("EVOLVE_CHAOS_GANG_NO_ROLLBACK").is_some(),
            use_index: std::env::var_os("EVOLVE_SCHED_NAIVE").is_none(),
        }
    }

    /// The stock Kubernetes-like profile: fit filter, least-allocated +
    /// balanced-allocation + app spreading, no preemption.
    #[must_use]
    pub fn kube_default() -> Self {
        SchedulerFramework::new("kube-default")
            .with_filter(NodeFits)
            .with_scorer(LeastAllocated, 1.0)
            .with_scorer(BalancedAllocation, 1.0)
            .with_scorer(SpreadApp, 0.5)
    }

    /// The EVOLVE profile: same plugins plus priority preemption (so
    /// latency-critical pods displace batch work under pressure).
    #[must_use]
    pub fn evolve_default() -> Self {
        SchedulerFramework::kube_default().with_preemption().named("evolve")
    }

    /// A consolidation (bin-packing) profile.
    #[must_use]
    pub fn binpack() -> Self {
        SchedulerFramework::new("binpack")
            .with_filter(NodeFits)
            .with_scorer(MostAllocated, 1.0)
            .with_scorer(BalancedAllocation, 0.5)
    }

    /// Adds a filter plugin.
    #[must_use]
    pub fn with_filter<F: FilterPlugin + 'static>(mut self, filter: F) -> Self {
        self.filters.push(Box::new(filter));
        self
    }

    /// Adds a score plugin with a weight.
    ///
    /// # Panics
    ///
    /// Panics when `weight` is not positive.
    #[must_use]
    pub fn with_scorer<S: ScorePlugin + 'static>(mut self, scorer: S, weight: f64) -> Self {
        assert!(weight > 0.0, "scorer weight must be positive");
        self.scorers.push((Box::new(scorer), weight));
        self
    }

    /// Enables priority preemption.
    #[must_use]
    pub fn with_preemption(mut self) -> Self {
        self.preemption = true;
        self
    }

    /// Renames the profile (for reports).
    #[must_use]
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Selects between index-pruned candidate enumeration (`true`, the
    /// default) and the naive full node scan (`false`). Both produce
    /// identical plans — the naive path is retained as the equivalence
    /// baseline and for benchmarks quantifying the index's win.
    #[must_use]
    pub fn with_index(mut self, on: bool) -> Self {
        self.use_index = on;
        self
    }

    /// The profile name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Runs one scheduling cycle over the cluster's pending pods.
    ///
    /// Stateless convenience wrapper over
    /// [`SchedulerFramework::schedule_cycle_with_backoff`] with fresh
    /// backoff state (every pod eligible).
    #[must_use]
    pub fn schedule_cycle(&self, cluster: &ClusterState) -> SchedulePlan {
        self.schedule_cycle_with_backoff(cluster, &mut RequeueBackoff::new())
    }

    /// Runs one scheduling cycle, consulting and updating cross-cycle
    /// requeue-backoff state: pods still inside their backoff window are
    /// deferred (reported unschedulable without another attempt), and
    /// fresh failures push the next retry out exponentially.
    #[must_use]
    pub fn schedule_cycle_with_backoff(
        &self,
        cluster: &ClusterState,
        backoff: &mut RequeueBackoff,
    ) -> SchedulePlan {
        self.cycle_impl(cluster, backoff, &mut FeasibilityIndex::new(), None)
    }

    /// [`schedule_cycle_with_backoff`](Self::schedule_cycle_with_backoff)
    /// plus decision tracing: every per-pod outcome of the cycle — bound
    /// (with the chosen node's per-plugin scores), deferred by backoff,
    /// unschedulable (with per-filter rejection counts), preempting, or
    /// rolled back with its gang — is pushed into `trace` as a
    /// [`SchedTrace`] stamped with the simulated time `at`.
    #[must_use]
    pub fn schedule_cycle_traced(
        &self,
        cluster: &ClusterState,
        backoff: &mut RequeueBackoff,
        at: SimTime,
        trace: &mut TraceRing,
    ) -> SchedulePlan {
        self.cycle_impl(cluster, backoff, &mut FeasibilityIndex::new(), Some((at, trace)))
    }

    /// [`schedule_cycle_traced`](Self::schedule_cycle_traced) with a
    /// caller-owned [`FeasibilityIndex`] carried across cycles: instead of
    /// rebuilding the shadow from scratch, the cycle starts by diffing the
    /// cluster's version counters and refreshing only nodes that changed
    /// since the previous cycle. The long-lived run driver uses this
    /// entry point; the transient wrappers above rebuild per call.
    #[must_use]
    pub fn schedule_cycle_carried(
        &self,
        cluster: &ClusterState,
        backoff: &mut RequeueBackoff,
        index: &mut FeasibilityIndex,
        at: SimTime,
        trace: &mut TraceRing,
    ) -> SchedulePlan {
        self.cycle_impl(cluster, backoff, index, Some((at, trace)))
    }

    fn cycle_impl(
        &self,
        cluster: &ClusterState,
        backoff: &mut RequeueBackoff,
        index: &mut FeasibilityIndex,
        mut trace: Option<(SimTime, &mut TraceRing)>,
    ) -> SchedulePlan {
        let mut plan = SchedulePlan::default();
        index.sync(cluster);
        let indexed =
            self.use_index && self.filters.first().is_some_and(|f| f.prunes_capacity_fit());
        let mut ctx = Ctx { index, indexed, filter_evals: 0 };
        // Victims already claimed this cycle: their capacity is freed in
        // the shadow exactly once and they may not be chosen again.
        let mut claimed: HashSet<PodId> = HashSet::new();

        // Group pending pods: gangs as units, others individually; order
        // by (priority desc, creation asc).
        let pending: Vec<&Pod> = cluster.pending_pods().collect();
        backoff.cycle += 1;
        let pending_ids: HashSet<PodId> = pending.iter().map(|p| p.id).collect();
        backoff.state.retain(|id, _| pending_ids.contains(id));
        // BTreeMap: gang visit order must not depend on hash state, or
        // equal-priority units would schedule in a nondeterministic order.
        let mut gangs: BTreeMap<JobId, Vec<&Pod>> = BTreeMap::new();
        let mut singles: Vec<&Pod> = Vec::new();
        for pod in pending {
            match pod.spec.kind {
                PodKind::HpcRank { job, .. } => gangs.entry(job).or_default().push(pod),
                _ => singles.push(pod),
            }
        }
        enum Unit<'a> {
            Single(&'a Pod),
            Gang(Vec<&'a Pod>),
        }
        let mut units: Vec<(i32, evolve_types::SimTime, PodId, Unit<'_>)> = Vec::new();
        for pod in singles {
            units.push((pod.spec.priority, pod.created, pod.id, Unit::Single(pod)));
        }
        for (_, members) in gangs {
            let prio = members.iter().map(|p| p.spec.priority).max().unwrap_or(0);
            let created = members.iter().map(|p| p.created).min().unwrap_or_default();
            let first = members.iter().map(|p| p.id).min().unwrap_or(PodId::new(0));
            units.push((prio, created, first, Unit::Gang(members)));
        }
        // Priority desc, then creation asc, then pod id as a total
        // tie-break so the cycle order is fully deterministic.
        units.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

        let cycle = backoff.cycle;
        // Emits one SchedTrace for a resolved pod, when tracing is on.
        // A plain fn (not a closure) so the borrow of `trace` stays local.
        #[allow(clippy::too_many_arguments)]
        fn emit(
            trace: &mut Option<(SimTime, &mut TraceRing)>,
            cycle: u64,
            pod: &Pod,
            gang: Option<JobId>,
            outcome: SchedOutcome,
            probe: Option<PlacementProbe>,
            victims: Vec<PodId>,
            backoff_failures: u32,
        ) {
            let Some((at, ring)) = trace.as_mut() else { return };
            let probe = probe.unwrap_or_default();
            ring.push(TraceEvent::Sched(SchedTrace {
                cycle,
                at: *at,
                pod: pod.id,
                app: pod.spec.kind.app(),
                gang,
                outcome,
                scores: probe.scores,
                filtered: probe.filtered,
                feasible: probe.feasible,
                victims,
                backoff_failures,
            }));
        }

        for (_, _, _, unit) in units {
            match unit {
                Unit::Single(pod) => {
                    if !backoff.eligible(pod.id) {
                        // Inside its backoff window: deferred without
                        // another attempt (and without further penalty).
                        plan.unschedulable.push(pod.id);
                        let fails = backoff.failures(pod.id);
                        emit(
                            &mut trace,
                            cycle,
                            pod,
                            None,
                            SchedOutcome::Deferred,
                            None,
                            Vec::new(),
                            fails,
                        );
                        continue;
                    }
                    let mut probe = trace.is_some().then(|| PlacementProbe::new(&self.filters));
                    if let Some(node) = self.place_one(cluster, &mut ctx, &pod.spec, probe.as_mut())
                    {
                        plan.bindings.push((pod.id, node));
                        let score = probe.as_ref().and_then(|p| p.chosen_score);
                        emit(
                            &mut trace,
                            cycle,
                            pod,
                            None,
                            SchedOutcome::Bound { node, score },
                            probe,
                            Vec::new(),
                            backoff.failures(pod.id),
                        );
                    } else if self.preemption {
                        match self.try_preempt(cluster, &mut ctx, &claimed, pod) {
                            Some((node, victims)) => {
                                claimed.extend(victims.iter().copied());
                                plan.preemptions.extend(victims.iter().copied());
                                plan.bindings.push((pod.id, node));
                                emit(
                                    &mut trace,
                                    cycle,
                                    pod,
                                    None,
                                    SchedOutcome::Bound { node, score: None },
                                    probe,
                                    victims,
                                    backoff.failures(pod.id),
                                );
                            }
                            None => {
                                backoff.record_failure(pod.id);
                                plan.unschedulable.push(pod.id);
                                let fails = backoff.failures(pod.id);
                                emit(
                                    &mut trace,
                                    cycle,
                                    pod,
                                    None,
                                    SchedOutcome::Unschedulable,
                                    probe,
                                    Vec::new(),
                                    fails,
                                );
                            }
                        }
                    } else {
                        backoff.record_failure(pod.id);
                        plan.unschedulable.push(pod.id);
                        let fails = backoff.failures(pod.id);
                        emit(
                            &mut trace,
                            cycle,
                            pod,
                            None,
                            SchedOutcome::Unschedulable,
                            probe,
                            Vec::new(),
                            fails,
                        );
                    }
                }
                Unit::Gang(members) => {
                    let job = match members[0].spec.kind {
                        PodKind::HpcRank { job, .. } => Some(job),
                        _ => None,
                    };
                    // A bound rank of this job claimed as a preemption
                    // victim earlier in the cycle will be requeued when the
                    // plan applies; binding the rest of the gang in the
                    // same cycle would commit a partial gang (the job stays
                    // paused but holds capacity). Defer the whole unit.
                    let victimized = job.is_some_and(|j| {
                        claimed.iter().any(|id| {
                            matches!(
                                cluster.pod(*id).map(|p| p.spec.kind),
                                Ok(PodKind::HpcRank { job: vj, .. }) if vj == j
                            )
                        })
                    });
                    if victimized {
                        for pod in members {
                            plan.unschedulable.push(pod.id);
                            let fails = backoff.failures(pod.id);
                            emit(
                                &mut trace,
                                cycle,
                                pod,
                                job,
                                SchedOutcome::Deferred,
                                None,
                                Vec::new(),
                                fails,
                            );
                        }
                        continue;
                    }
                    if members.iter().any(|p| !backoff.eligible(p.id)) {
                        // Any backed-off rank defers the whole gang — a
                        // partial attempt could never bind anyway.
                        for pod in members {
                            plan.unschedulable.push(pod.id);
                            let fails = backoff.failures(pod.id);
                            emit(
                                &mut trace,
                                cycle,
                                pod,
                                job,
                                SchedOutcome::Deferred,
                                None,
                                Vec::new(),
                                fails,
                            );
                        }
                        continue;
                    }
                    match self.place_gang(cluster, &mut ctx, &mut claimed, &members) {
                        Some((bindings, victims)) => {
                            // Gang admitted: one Bound event per rank; the
                            // preemption victims (if any) ride on the first
                            // rank's event.
                            for (i, (pod_id, node)) in bindings.iter().enumerate() {
                                if let Some(pod) = members.iter().find(|p| p.id == *pod_id) {
                                    emit(
                                        &mut trace,
                                        cycle,
                                        pod,
                                        job,
                                        SchedOutcome::Bound { node: *node, score: None },
                                        None,
                                        if i == 0 { victims.clone() } else { Vec::new() },
                                        backoff.failures(*pod_id),
                                    );
                                }
                            }
                            plan.preemptions.extend(victims);
                            plan.bindings.extend(bindings);
                        }
                        None => {
                            for pod in members {
                                backoff.record_failure(pod.id);
                                plan.unschedulable.push(pod.id);
                                let fails = backoff.failures(pod.id);
                                emit(
                                    &mut trace,
                                    cycle,
                                    pod,
                                    job,
                                    SchedOutcome::GangRollback,
                                    None,
                                    Vec::new(),
                                    fails,
                                );
                            }
                        }
                    }
                }
            }
        }
        plan.stale_pod_lookups = ctx.index.stale_lookups();
        plan.filter_evals = ctx.filter_evals;
        plan.index_probes = ctx.index.probes();
        plan
    }

    /// Places a gang all-or-nothing. The first pass uses free capacity
    /// only; when that fails and preemption is on, a second pass may also
    /// evict strictly-lower-priority pods. Both passes roll the shadow —
    /// and any claimed victims — fully back on failure, so a blocked gang
    /// leaves no trace on later units in the cycle.
    fn place_gang(
        &self,
        cluster: &ClusterState,
        ctx: &mut Ctx<'_>,
        claimed: &mut HashSet<PodId>,
        members: &[&Pod],
    ) -> Option<GangPlacement> {
        // First pass: free capacity only.
        let mut placed: Vec<(PodId, NodeId, PodSpec)> = Vec::new();
        let mut ok = true;
        for pod in members {
            match self.place_one(cluster, ctx, &pod.spec, None) {
                Some(node) => placed.push((pod.id, node, pod.spec)),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            return Some((
                placed.into_iter().map(|(id, node, _)| (id, node)).collect(),
                Vec::new(),
            ));
        }
        if self.break_gang_rollback && !placed.is_empty() {
            // Seeded chaos bug: commit the partial gang instead of rolling
            // back, violating all-or-nothing placement on purpose.
            return Some((
                placed.into_iter().map(|(id, node, _)| (id, node)).collect(),
                Vec::new(),
            ));
        }
        for (_, node, spec) in &placed {
            ctx.index.release(node.as_usize(), spec);
        }
        if !self.preemption {
            return None;
        }

        // Second pass: allow per-rank preemption of strictly-lower-
        // priority pods. Victims claimed by earlier ranks join `claimed`
        // immediately so two ranks never free the same pod twice.
        placed.clear();
        let mut gang_victims: Vec<(NodeId, Vec<PodId>)> = Vec::new();
        let mut ok = true;
        for pod in members {
            if let Some(node) = self.place_one(cluster, ctx, &pod.spec, None) {
                placed.push((pod.id, node, pod.spec));
            } else if let Some((node, victims)) = self.try_preempt(cluster, ctx, claimed, pod) {
                claimed.extend(victims.iter().copied());
                gang_victims.push((node, victims));
                placed.push((pod.id, node, pod.spec));
            } else {
                ok = false;
                break;
            }
        }
        if ok {
            let victims = gang_victims.into_iter().flat_map(|(_, v)| v).collect();
            return Some((placed.into_iter().map(|(id, node, _)| (id, node)).collect(), victims));
        }
        // Full rollback: undo placements, re-occupy the victims' capacity
        // and un-claim them.
        for (_, node, spec) in &placed {
            ctx.index.release(node.as_usize(), spec);
        }
        for (node, victims) in &gang_victims {
            for v in victims {
                claimed.remove(v);
                match cluster.pod(*v) {
                    Ok(p) => ctx.index.unclaim_victim(
                        node.as_usize(),
                        p.app().raw(),
                        p.spec.priority,
                        &p.spec.request,
                    ),
                    Err(_) => ctx.index.note_stale(),
                }
            }
        }
        None
    }

    /// Filter + score one pod against the shadowed cluster; commits the
    /// placement into the shadow on success. With a probe attached, the
    /// chosen node's per-plugin scores, the feasible-node count and the
    /// per-filter rejection counts are captured for the decision trace.
    ///
    /// In indexed mode the candidate set comes from the feasibility
    /// index; under `debug_assertions` the naive full scan runs alongside
    /// and the choices are asserted identical before committing.
    fn place_one(
        &self,
        cluster: &ClusterState,
        ctx: &mut Ctx<'_>,
        spec: &PodSpec,
        mut probe: Option<&mut PlacementProbe>,
    ) -> Option<NodeId> {
        let choice = if ctx.indexed {
            let choice = self.choose_indexed(cluster, ctx, spec, probe.as_deref_mut());
            #[cfg(debug_assertions)]
            {
                let mut evals = 0u64;
                let naive = self.choose_naive(cluster, ctx.index, spec, &mut evals, None);
                debug_assert_eq!(choice, naive, "indexed placement diverged from the naive scan");
            }
            choice
        } else {
            self.choose_naive(cluster, ctx.index, spec, &mut ctx.filter_evals, probe)
        };
        let (_, idx) = choice?;
        ctx.index.place(idx, spec);
        Some(NodeId::new(idx as u32))
    }

    /// The historical full scan: every node flows through the filters in
    /// order (first failure short-circuits), survivors are scored. Kept
    /// as the equivalence baseline for the indexed path.
    fn choose_naive(
        &self,
        cluster: &ClusterState,
        index: &FeasibilityIndex,
        spec: &PodSpec,
        filter_evals: &mut u64,
        mut probe: Option<&mut PlacementProbe>,
    ) -> Option<(f64, usize)> {
        let mut best: Option<(f64, usize)> = None;
        for (i, node) in cluster.nodes().iter().enumerate() {
            let view = NodeView {
                node,
                free: index.free(i),
                app_pods: index.app_count(i, spec.kind.app().raw()),
            };
            // First failing filter takes the rejection.
            let mut pass = true;
            for (fi, f) in self.filters.iter().enumerate() {
                *filter_evals += 1;
                if !f.feasible(spec, &view) {
                    if let Some(p) = probe.as_deref_mut() {
                        p.filtered[fi].1 += 1;
                    }
                    pass = false;
                    break;
                }
            }
            if !pass {
                continue;
            }
            self.score_node(spec, &view, i, &mut best, probe.as_deref_mut());
        }
        best
    }

    /// The indexed path: the fit tree enumerates exactly the nodes the
    /// leading capacity filter would accept (in ascending order, so the
    /// lowest-index tie-break is preserved); only the remaining filters
    /// and the scorers run on them.
    fn choose_indexed(
        &self,
        cluster: &ClusterState,
        ctx: &mut Ctx<'_>,
        spec: &PodSpec,
        mut probe: Option<&mut PlacementProbe>,
    ) -> Option<(f64, usize)> {
        ctx.index.enumerate_fit(&spec.request);
        if let Some(p) = probe.as_deref_mut() {
            // Every pruned node fails the leading capacity filter —
            // identical attribution to the naive first-fail scan.
            p.filtered[0].1 += (cluster.nodes().len() - ctx.index.candidates().len()) as u32;
        }
        let mut best: Option<(f64, usize)> = None;
        for k in 0..ctx.index.candidates().len() {
            let i = ctx.index.candidates()[k];
            let view = NodeView {
                node: &cluster.nodes()[i],
                free: ctx.index.free(i),
                app_pods: ctx.index.app_count(i, spec.kind.app().raw()),
            };
            let mut pass = true;
            for (fi, f) in self.filters.iter().enumerate().skip(1) {
                ctx.filter_evals += 1;
                if !f.feasible(spec, &view) {
                    if let Some(p) = probe.as_deref_mut() {
                        p.filtered[fi].1 += 1;
                    }
                    pass = false;
                    break;
                }
            }
            if !pass {
                continue;
            }
            self.score_node(spec, &view, i, &mut best, probe.as_deref_mut());
        }
        best
    }

    /// Scores one feasible node and folds it into the running best.
    /// Shared by both paths so the float-operation sequence — and thus
    /// the deterministic tie-break — is identical.
    fn score_node(
        &self,
        spec: &PodSpec,
        view: &NodeView<'_>,
        i: usize,
        best: &mut Option<(f64, usize)>,
        mut probe: Option<&mut PlacementProbe>,
    ) {
        if let Some(p) = probe.as_deref_mut() {
            p.feasible += 1;
            p.scratch.clear();
        }
        let mut score = 0.0;
        let mut weight = 0.0;
        for (s, w) in &self.scorers {
            let contribution = s.score(spec, view) * w;
            score += contribution;
            weight += w;
            if let Some(p) = probe.as_deref_mut() {
                p.scratch.push(contribution);
            }
        }
        let score = if weight > 0.0 { score / weight } else { 0.0 };
        // Deterministic tie-break on the lowest node index.
        if best.is_none_or(|(b, _)| score > b + 1e-12) {
            *best = Some((score, i));
            if let Some(p) = probe {
                let PlacementProbe { chosen_score, scores, scratch, .. } = p;
                *chosen_score = Some(score);
                scores.clear();
                for ((s, _), contribution) in self.scorers.iter().zip(scratch.iter()) {
                    scores.push((s.name(), *contribution));
                }
            }
        }
    }

    /// Looks for a node where evicting strictly-lower-priority pods frees
    /// enough room. Chooses the node minimizing evicted priority mass,
    /// then evicts its lowest-priority pods first.
    ///
    /// Bails in O(1) when the cluster's per-priority bound census shows
    /// no pod of strictly lower priority anywhere (victims claimed
    /// earlier this cycle are still bound, so the count never
    /// under-reports). In indexed mode the preempt tree and per-node
    /// census prune the node scan; the per-node victim selection is
    /// shared verbatim with the naive path, and under `debug_assertions`
    /// both paths are asserted to choose identically.
    fn try_preempt(
        &self,
        cluster: &ClusterState,
        ctx: &mut Ctx<'_>,
        claimed: &HashSet<PodId>,
        pod: &Pod,
    ) -> Option<(NodeId, Vec<PodId>)> {
        if cluster.bound_pods_below(pod.spec.priority) == 0 {
            return None;
        }
        let choice = if ctx.indexed {
            let choice = Self::preempt_choose_indexed(cluster, ctx, claimed, pod);
            #[cfg(debug_assertions)]
            {
                let mut stale = 0u64;
                let naive =
                    Self::preempt_choose_naive(cluster, ctx.index, claimed, pod, &mut stale);
                debug_assert_eq!(choice, naive, "indexed preemption diverged from the naive scan");
            }
            choice
        } else {
            let mut stale = 0u64;
            let choice = Self::preempt_choose_naive(cluster, ctx.index, claimed, pod, &mut stale);
            ctx.index.add_stale(stale);
            choice
        };
        let (_, idx, victims) = choice?;
        // Account the evictions and the placement in the shadow.
        for v in &victims {
            match cluster.pod(*v) {
                Ok(p) => {
                    ctx.index.claim_victim(idx, p.app().raw(), p.spec.priority, &p.spec.request);
                }
                Err(_) => ctx.index.note_stale(),
            }
        }
        ctx.index.place(idx, &pod.spec);
        Some((NodeId::new(idx as u32), victims))
    }

    /// Greedy victim selection on one node: bound, unclaimed, strictly
    /// lower priority, cheapest first, until the pod fits. Shared by the
    /// naive and indexed paths so both choose identical victims.
    fn preempt_on_node(
        cluster: &ClusterState,
        free0: ResourceVec,
        node: &Node,
        claimed: &HashSet<PodId>,
        pod: &Pod,
        stale: &mut u64,
    ) -> Option<(f64, Vec<PodId>)> {
        // Victims: bound pods with lower priority, cheapest first.
        // Pods already claimed by an earlier preemption this cycle
        // are gone in the shadow and may not be double-counted.
        let mut victims: Vec<&Pod> = Vec::new();
        for id in node.pods().iter().filter(|id| !claimed.contains(id)) {
            match cluster.pod(*id) {
                Ok(v) => {
                    if v.spec.priority < pod.spec.priority && v.phase.holds_resources() {
                        victims.push(v);
                    }
                }
                Err(_) => *stale += 1,
            }
        }
        victims.sort_by_key(|v| v.spec.priority);
        let mut free = free0;
        let mut chosen: Vec<PodId> = Vec::new();
        let mut cost = 0.0;
        for v in victims {
            if pod.spec.request.fits_within(&free) {
                break;
            }
            free += v.spec.request;
            chosen.push(v.id);
            cost += f64::from(v.spec.priority) + 1.0;
        }
        (pod.spec.request.fits_within(&free) && !chosen.is_empty()).then_some((cost, chosen))
    }

    /// The historical preemption scan over every ready node.
    fn preempt_choose_naive(
        cluster: &ClusterState,
        index: &FeasibilityIndex,
        claimed: &HashSet<PodId>,
        pod: &Pod,
        stale: &mut u64,
    ) -> Option<(f64, usize, Vec<PodId>)> {
        let mut best: Option<(f64, usize, Vec<PodId>)> = None;
        for (i, node) in cluster.nodes().iter().enumerate() {
            if !node.is_ready() {
                continue;
            }
            if let Some((cost, chosen)) =
                Self::preempt_on_node(cluster, index.free(i), node, claimed, pod, stale)
            {
                if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                    best = Some((cost, i, chosen));
                }
            }
        }
        best
    }

    /// The indexed preemption scan: the preempt tree enumerates only
    /// nodes whose free-plus-evictable headroom could fit the pod (a
    /// superset — the margin absorbs incremental float drift), the
    /// per-priority census then drops nodes without enough strictly-
    /// lower-priority mass, and the surviving nodes run the exact shared
    /// victim selection. Ascending candidate order plus the strict `<`
    /// cost comparison preserve the lowest-index tie-break.
    fn preempt_choose_indexed(
        cluster: &ClusterState,
        ctx: &mut Ctx<'_>,
        claimed: &HashSet<PodId>,
        pod: &Pod,
    ) -> Option<(f64, usize, Vec<PodId>)> {
        ctx.index.enumerate_preempt(&pod.spec.request);
        let mut best: Option<(f64, usize, Vec<PodId>)> = None;
        let mut stale = 0u64;
        for k in 0..ctx.index.candidates().len() {
            let i = ctx.index.candidates()[k];
            if !ctx.index.census_could_free(i, pod.spec.priority, &pod.spec.request) {
                continue;
            }
            if let Some((cost, chosen)) = Self::preempt_on_node(
                cluster,
                ctx.index.free(i),
                &cluster.nodes()[i],
                claimed,
                pod,
                &mut stale,
            ) {
                if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                    best = Some((cost, i, chosen));
                }
            }
        }
        ctx.index.add_stale(stale);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evolve_sim::{ClusterConfig, NodeShape};
    use evolve_types::{AppId, ResourceVec, SimTime};

    fn cluster(nodes: usize, capacity: f64) -> ClusterState {
        ClusterState::new(&ClusterConfig::uniform(
            nodes,
            NodeShape { capacity: ResourceVec::splat(capacity) },
        ))
    }

    fn service_pod(cluster: &mut ClusterState, app: u32, request: f64, priority: i32) -> PodId {
        cluster.create_pod(
            PodSpec::new(
                PodKind::ServiceReplica { app: AppId::new(app) },
                ResourceVec::splat(request),
                priority,
            ),
            SimTime::ZERO,
        )
    }

    #[test]
    fn places_pending_pod_on_feasible_node() {
        let mut c = cluster(2, 1000.0);
        let pod = service_pod(&mut c, 0, 100.0, 0);
        let plan = SchedulerFramework::kube_default().schedule_cycle(&c);
        assert_eq!(plan.bindings.len(), 1);
        assert_eq!(plan.bindings[0].0, pod);
        assert!(plan.unschedulable.is_empty());
    }

    #[test]
    fn shadow_accounting_prevents_double_booking() {
        let mut c = cluster(1, 1000.0); // 950 allocatable
        let a = service_pod(&mut c, 0, 600.0, 0);
        let b = service_pod(&mut c, 0, 600.0, 0);
        let plan = SchedulerFramework::kube_default().schedule_cycle(&c);
        assert_eq!(plan.bindings.len(), 1);
        assert_eq!(plan.unschedulable.len(), 1);
        let bound: Vec<PodId> = plan.bindings.iter().map(|(p, _)| *p).collect();
        assert!(bound.contains(&a) ^ bound.contains(&b));
    }

    #[test]
    fn spreading_distributes_replicas() {
        let mut c = cluster(4, 1000.0);
        for _ in 0..4 {
            service_pod(&mut c, 7, 100.0, 0);
        }
        let plan = SchedulerFramework::kube_default().schedule_cycle(&c);
        let nodes: std::collections::HashSet<NodeId> =
            plan.bindings.iter().map(|(_, n)| *n).collect();
        assert_eq!(nodes.len(), 4, "4 replicas should spread over 4 nodes: {plan:?}");
    }

    #[test]
    fn binpack_consolidates() {
        let mut c = cluster(4, 1000.0);
        for app in 0..4 {
            service_pod(&mut c, app, 100.0, 0);
        }
        let plan = SchedulerFramework::binpack().schedule_cycle(&c);
        let nodes: std::collections::HashSet<NodeId> =
            plan.bindings.iter().map(|(_, n)| *n).collect();
        assert_eq!(nodes.len(), 1, "binpack should use one node: {plan:?}");
    }

    #[test]
    fn priority_orders_the_queue() {
        let mut c = cluster(1, 1000.0); // room for one 600 pod
        let low = service_pod(&mut c, 0, 600.0, 10);
        let high = service_pod(&mut c, 1, 600.0, 100);
        let plan = SchedulerFramework::kube_default().schedule_cycle(&c);
        assert_eq!(plan.bindings, vec![(high, NodeId::new(0))]);
        assert_eq!(plan.unschedulable, vec![low]);
    }

    #[test]
    fn preemption_evicts_lower_priority() {
        let mut c = cluster(1, 1000.0);
        let batch = service_pod(&mut c, 0, 800.0, 10);
        c.bind_pod(batch, NodeId::new(0)).unwrap();
        let urgent = service_pod(&mut c, 1, 700.0, 100);
        // Without preemption: unschedulable.
        let plan = SchedulerFramework::kube_default().schedule_cycle(&c);
        assert_eq!(plan.unschedulable, vec![urgent]);
        // With preemption: batch is evicted.
        let plan = SchedulerFramework::evolve_default().schedule_cycle(&c);
        assert_eq!(plan.preemptions, vec![batch]);
        assert_eq!(plan.bindings, vec![(urgent, NodeId::new(0))]);
    }

    #[test]
    fn preemption_never_evicts_equal_or_higher_priority() {
        let mut c = cluster(1, 1000.0);
        let peer = service_pod(&mut c, 0, 800.0, 100);
        c.bind_pod(peer, NodeId::new(0)).unwrap();
        let urgent = service_pod(&mut c, 1, 700.0, 100);
        let plan = SchedulerFramework::evolve_default().schedule_cycle(&c);
        assert!(plan.preemptions.is_empty());
        assert_eq!(plan.unschedulable, vec![urgent]);
    }

    #[test]
    fn two_preemptors_cannot_claim_the_same_victim() {
        let mut c = cluster(1, 1000.0);
        // One big low-priority pod fills the node.
        let victim = service_pod(&mut c, 0, 900.0, 10);
        c.bind_pod(victim, NodeId::new(0)).unwrap();
        // Two high-priority pods each need most of the node: only one can
        // be satisfied even after evicting the victim.
        let a = service_pod(&mut c, 1, 600.0, 100);
        let b = service_pod(&mut c, 2, 600.0, 100);
        let plan = SchedulerFramework::evolve_default().schedule_cycle(&c);
        assert_eq!(plan.preemptions, vec![victim], "victim claimed once: {plan:?}");
        assert_eq!(plan.bindings.len(), 1);
        assert_eq!(plan.unschedulable.len(), 1);
        // The plan must be applicable.
        c.terminate_pod(victim, evolve_sim::PodPhase::Failed("preempted".into())).unwrap();
        let (pod, node) = plan.bindings[0];
        assert!(pod == a || pod == b);
        c.bind_pod(pod, node).unwrap();
        c.check_invariants();
    }

    #[test]
    fn gang_is_all_or_nothing() {
        let mut c = cluster(2, 1000.0); // 950 allocatable each
                                        // Gang of 4 ranks × 600: only 2 fit (one per node) → nothing binds.
        for rank in 0..4 {
            c.create_pod(
                PodSpec::new(
                    PodKind::HpcRank { app: AppId::new(0), job: JobId::new(9), rank },
                    ResourceVec::splat(600.0),
                    50,
                ),
                SimTime::ZERO,
            );
        }
        let plan = SchedulerFramework::kube_default().schedule_cycle(&c);
        assert!(plan.bindings.is_empty(), "partial gang placement: {plan:?}");
        assert_eq!(plan.unschedulable.len(), 4);
    }

    #[test]
    fn gang_fits_when_cluster_allows() {
        let mut c = cluster(2, 1000.0);
        for rank in 0..4 {
            c.create_pod(
                PodSpec::new(
                    PodKind::HpcRank { app: AppId::new(0), job: JobId::new(9), rank },
                    ResourceVec::splat(400.0),
                    50,
                ),
                SimTime::ZERO,
            );
        }
        let plan = SchedulerFramework::kube_default().schedule_cycle(&c);
        assert_eq!(plan.bindings.len(), 4);
    }

    #[test]
    fn backfill_places_batch_around_blocked_gang() {
        let mut c = cluster(1, 1000.0);
        // Gang that can never fit (2 × 600 on one 950 node).
        for rank in 0..2 {
            c.create_pod(
                PodSpec::new(
                    PodKind::HpcRank { app: AppId::new(0), job: JobId::new(1), rank },
                    ResourceVec::splat(600.0),
                    50,
                ),
                SimTime::ZERO,
            );
        }
        // Low-priority batch task that does fit.
        let batch = c.create_pod(
            PodSpec::new(
                PodKind::BatchTask { app: AppId::new(1), job: JobId::new(2), stage: 0, task: 0 },
                ResourceVec::splat(300.0),
                10,
            ),
            SimTime::ZERO,
        );
        let plan = SchedulerFramework::kube_default().schedule_cycle(&c);
        assert_eq!(plan.bindings, vec![(batch, NodeId::new(0))], "backfill expected");
    }

    #[test]
    fn unready_nodes_are_skipped() {
        let mut c = cluster(2, 1000.0);
        c.set_node_ready(NodeId::new(0), false).unwrap();
        let pod = service_pod(&mut c, 0, 100.0, 0);
        let plan = SchedulerFramework::kube_default().schedule_cycle(&c);
        assert_eq!(plan.bindings, vec![(pod, NodeId::new(1))]);
    }

    #[test]
    fn gang_preempts_lower_priority_without_double_claiming() {
        let mut c = cluster(2, 1000.0); // 950 allocatable each
        let batch_a = service_pod(&mut c, 0, 800.0, 10);
        let batch_b = service_pod(&mut c, 1, 800.0, 10);
        c.bind_pod(batch_a, NodeId::new(0)).unwrap();
        c.bind_pod(batch_b, NodeId::new(1)).unwrap();
        // Gang of 2 ranks × 600: blocked on free capacity, feasible only
        // by evicting one batch pod per node.
        let mut ranks = Vec::new();
        for rank in 0..2 {
            ranks.push(c.create_pod(
                PodSpec::new(
                    PodKind::HpcRank { app: AppId::new(2), job: JobId::new(9), rank },
                    ResourceVec::splat(600.0),
                    50,
                ),
                SimTime::ZERO,
            ));
        }
        // Without preemption the gang stays pending.
        let plan = SchedulerFramework::kube_default().schedule_cycle(&c);
        assert!(plan.bindings.is_empty());
        // With preemption both ranks place, each claiming a distinct
        // victim exactly once.
        let plan = SchedulerFramework::evolve_default().schedule_cycle(&c);
        assert_eq!(plan.bindings.len(), 2, "{plan:?}");
        let mut victims = plan.preemptions.clone();
        victims.sort();
        victims.dedup();
        assert_eq!(victims.len(), plan.preemptions.len(), "victim claimed twice: {plan:?}");
        // The plan must be applicable: evict, then bind.
        for v in &plan.preemptions {
            c.terminate_pod(*v, evolve_sim::PodPhase::Failed("preempted".into())).unwrap();
        }
        for (pod, node) in &plan.bindings {
            c.bind_pod(*pod, *node).unwrap();
        }
        c.check_invariants();
    }

    #[test]
    fn blocked_gang_preemption_rolls_back_fully() {
        let mut c = cluster(1, 1000.0);
        let batch = service_pod(&mut c, 0, 800.0, 10);
        c.bind_pod(batch, NodeId::new(0)).unwrap();
        // Gang of 2 × 600 can never fit on one 950 node even after
        // evicting the batch pod — the attempt must leave no trace.
        for rank in 0..2 {
            c.create_pod(
                PodSpec::new(
                    PodKind::HpcRank { app: AppId::new(1), job: JobId::new(9), rank },
                    ResourceVec::splat(600.0),
                    50,
                ),
                SimTime::ZERO,
            );
        }
        // A later lower-priority pod that fits next to the *surviving*
        // batch pod must still place, proving the shadow was restored.
        let filler = service_pod(&mut c, 2, 100.0, 5);
        let plan = SchedulerFramework::evolve_default().schedule_cycle(&c);
        assert!(plan.preemptions.is_empty(), "rolled-back preemption leaked: {plan:?}");
        assert_eq!(plan.bindings, vec![(filler, NodeId::new(0))]);
    }

    #[test]
    fn backoff_defers_retries_exponentially() {
        let mut c = cluster(1, 1000.0);
        let blocked = service_pod(&mut c, 0, 2_000.0, 0); // can never fit
        let sched = SchedulerFramework::kube_default();
        let mut backoff = RequeueBackoff::new();
        // Cycle 1: attempted and failed.
        let _ = sched.schedule_cycle_with_backoff(&c, &mut backoff);
        assert_eq!(backoff.failures(blocked), 1);
        // Cycle 2: eligible again (first retry is immediate), fails → 2.
        let _ = sched.schedule_cycle_with_backoff(&c, &mut backoff);
        assert_eq!(backoff.failures(blocked), 2);
        // Cycle 3: inside the 2-cycle window → deferred, no new failure.
        let _ = sched.schedule_cycle_with_backoff(&c, &mut backoff);
        assert_eq!(backoff.failures(blocked), 2);
        // Cycle 4: eligible, fails → 3 (next window is 4 cycles).
        let _ = sched.schedule_cycle_with_backoff(&c, &mut backoff);
        assert_eq!(backoff.failures(blocked), 3);
        for _ in 0..3 {
            let _ = sched.schedule_cycle_with_backoff(&c, &mut backoff);
            assert_eq!(backoff.failures(blocked), 3, "deferred inside the 4-cycle window");
        }
        let _ = sched.schedule_cycle_with_backoff(&c, &mut backoff);
        assert_eq!(backoff.failures(blocked), 4);
    }

    #[test]
    fn backoff_forgets_bound_pods() {
        let mut c = cluster(1, 1000.0);
        let a = service_pod(&mut c, 0, 600.0, 0);
        let b = service_pod(&mut c, 1, 600.0, 0);
        let sched = SchedulerFramework::kube_default();
        let mut backoff = RequeueBackoff::new();
        let plan = sched.schedule_cycle_with_backoff(&c, &mut backoff);
        assert_eq!(plan.bindings.len(), 1);
        let loser = if plan.bindings[0].0 == a { b } else { a };
        assert_eq!(backoff.failures(loser), 1);
        // The loser binds once capacity frees up; its entry is pruned.
        c.terminate_pod(plan.bindings[0].0, evolve_sim::PodPhase::Succeeded).unwrap();
        let plan = sched.schedule_cycle_with_backoff(&c, &mut backoff);
        assert_eq!(plan.bindings.len(), 1);
        c.bind_pod(loser, plan.bindings[0].1).unwrap();
        let _ = sched.schedule_cycle_with_backoff(&c, &mut backoff);
        assert_eq!(backoff.failures(loser), 0, "state must prune once no longer pending");
    }

    #[test]
    fn deferred_gang_member_defers_the_whole_gang() {
        let mut c = cluster(2, 1000.0);
        // Gang of 2 × 600 fits (one rank per node) — but only once one
        // member's backoff window expires.
        let mut ranks = Vec::new();
        for rank in 0..2 {
            ranks.push(c.create_pod(
                PodSpec::new(
                    PodKind::HpcRank { app: AppId::new(0), job: JobId::new(9), rank },
                    ResourceVec::splat(600.0),
                    50,
                ),
                SimTime::ZERO,
            ));
        }
        let sched = SchedulerFramework::kube_default();
        let mut backoff = RequeueBackoff::new();
        backoff.cycle = 10;
        backoff.state.insert(ranks[0], (2, 13)); // eligible at cycle 13
        let plan = sched.schedule_cycle_with_backoff(&c, &mut backoff); // cycle 11
        assert!(plan.bindings.is_empty(), "gang must defer as a unit: {plan:?}");
        assert_eq!(backoff.failures(ranks[0]), 2, "deferral accrues no penalty");
        assert_eq!(backoff.failures(ranks[1]), 0);
        let _ = sched.schedule_cycle_with_backoff(&c, &mut backoff); // cycle 12
        let plan = sched.schedule_cycle_with_backoff(&c, &mut backoff); // cycle 13
        assert_eq!(plan.bindings.len(), 2, "gang places once eligible: {plan:?}");
    }

    #[test]
    fn empty_cluster_cycle_is_empty() {
        let c = cluster(2, 1000.0);
        let plan = SchedulerFramework::kube_default().schedule_cycle(&c);
        assert_eq!(plan, SchedulePlan::default());
    }
}
