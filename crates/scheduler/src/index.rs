//! Incremental feasibility index: the scheduler's shadow state plus
//! O(log N) candidate enumeration.
//!
//! The naive scheduling cycle rescans every node per pending pod —
//! O(P·N) filter evaluations per cycle, quadratic in cluster scale. This
//! module keeps the per-cycle shadow (free vectors, per-(node, app) pod
//! counts) *and* two flat segment trees over dense node ids whose
//! internal nodes carry both the element-wise **maximum** (prune
//! subtrees where nothing fits) and the element-wise **minimum** of
//! their leaf keys (emit whole subtrees where *everything* fits without
//! descending — the common case on an emptyish cluster):
//!
//! * the **fit tree**, keyed by each ready node's exact shadow-free
//!   vector, answers "which nodes can host `request` right now" by
//!   descending only subtrees whose max-free still fits the request and
//!   whose min-free does not already admit every leaf — O(log N) per
//!   probe when the answer is "none" or "all", O(k·log(N/k)) for k
//!   scattered matches, leaves emitted in ascending node order;
//! * the **preempt tree**, keyed by `free + Σ bound requests` (every
//!   pod the node could conceivably evict) plus a small margin, prunes
//!   preemption to nodes that could free enough capacity at all. A
//!   per-node, per-priority bound-resource census then rejects nodes
//!   whose strictly-lower-priority mass is insufficient before any pod
//!   is inspected.
//!
//! **Exactness contract.** Fit-tree leaves hold the *exact* shadow free
//! vector, so enumeration is equivalent to evaluating the capacity-fit
//! filter on every node — same feasible set, same ascending order,
//! preserving the deterministic lowest-index tie-break bit-for-bit. The
//! preempt tree and census are *supersets* (the margin absorbs the
//! float drift of incremental adds/subtracts), so they only prune nodes
//! the exact per-node victim scan would reject anyway; the scan itself
//! is shared verbatim with the naive path. The framework cross-checks
//! both claims against the naive scan under `debug_assertions`.
//!
//! The index carries across scheduler cycles: [`FeasibilityIndex::sync`]
//! diffs [`ClusterState`] version counters and refreshes only nodes that
//! changed since the last cycle (bound/evicted/resized/ready-flipped),
//! plus nodes tainted by the previous cycle's own tentative placements,
//! instead of rebuilding the shadow from scratch each cycle.

use std::collections::HashMap;

use evolve_sim::{ClusterState, PodSpec};
use evolve_types::ResourceVec;

/// Added to superset keys (preempt tree, census check) so incremental
/// float drift can never prune a node the exact scan would accept.
/// Semantically negligible: requests are O(10)–O(10⁴) per dimension.
const PRUNE_MARGIN: f64 = 1e-3;

/// Leaf key of a node that must never be enumerated (unready, or padding
/// past the real node count): nothing fits within negative infinity.
const NEG: ResourceVec = ResourceVec::splat(f64::NEG_INFINITY);

/// Incremental scheduler shadow + feasibility structures. Owned by the
/// run driver and threaded through
/// [`SchedulerFramework::schedule_cycle_carried`](crate::SchedulerFramework::schedule_cycle_carried)
/// so the per-node mirrors survive between cycles.
#[derive(Debug, Default)]
pub struct FeasibilityIndex {
    n: usize,
    /// Leaf capacity of both trees (`n.next_power_of_two()`).
    cap: usize,
    /// Shadow free capacity per node (cluster truth ± this cycle's
    /// tentative placements and claims).
    free: Vec<ResourceVec>,
    ready: Vec<bool>,
    /// Per-node app → tentative pod count (spread scoring input).
    app_pods: Vec<HashMap<u32, usize>>,
    /// Per-node bound-resource census, sorted by priority ascending.
    census: Vec<Vec<(i32, ResourceVec)>>,
    /// Sum over all census entries per node (preempt-tree key input).
    census_total: Vec<ResourceVec>,
    /// Fit tree maxima, 1-based heap layout in `[1, 2·cap)`; leaves at
    /// `cap+i`.
    fit_keys: Vec<ResourceVec>,
    /// Fit tree minima, same layout (whole-subtree emission).
    fit_floor: Vec<ResourceVec>,
    /// Preempt tree maxima, same layout.
    preempt_keys: Vec<ResourceVec>,
    /// Preempt tree minima, same layout.
    preempt_floor: Vec<ResourceVec>,
    node_versions_seen: Vec<u64>,
    global_version_seen: u64,
    synced: bool,
    /// Nodes touched by tentative in-cycle operations; unconditionally
    /// refreshed from cluster truth at the next sync (the plan may only
    /// partially apply, so version diffing alone cannot cover them).
    tainted: Vec<u32>,
    taint_flag: Vec<bool>,
    stale_lookups: u64,
    probes: u64,
    candidates: Vec<usize>,
    stack: Vec<usize>,
}

impl FeasibilityIndex {
    /// An empty index; the first [`sync`](Self::sync) performs a full
    /// rebuild.
    #[must_use]
    pub fn new() -> Self {
        FeasibilityIndex::default()
    }

    /// Forces the next [`sync`](Self::sync) to rebuild from scratch.
    /// Call after replacing the cluster wholesale (e.g. restoring a
    /// snapshot), where version counters no longer relate to the mirrors.
    pub fn invalidate(&mut self) {
        self.synced = false;
    }

    /// Brings the mirrors up to date with `cluster` and resets the
    /// per-cycle counters. Cost is O(changed nodes) after the first call.
    pub(crate) fn sync(&mut self, cluster: &ClusterState) {
        self.stale_lookups = 0;
        self.probes = 0;
        let n = cluster.nodes().len();
        if !self.synced || n != self.n || cluster.version() < self.global_version_seen {
            self.rebuild(cluster);
            return;
        }
        let tainted = std::mem::take(&mut self.tainted);
        for &i in &tainted {
            self.taint_flag[i as usize] = false;
            self.refresh_node(cluster, i as usize);
        }
        self.tainted = tainted;
        self.tainted.clear();
        if cluster.version() != self.global_version_seen {
            for i in 0..n {
                if cluster.node_version(i) != self.node_versions_seen[i] {
                    self.refresh_node(cluster, i);
                }
            }
            self.global_version_seen = cluster.version();
        }
    }

    fn rebuild(&mut self, cluster: &ClusterState) {
        let n = cluster.nodes().len();
        self.n = n;
        self.cap = n.next_power_of_two().max(1);
        self.free = vec![ResourceVec::ZERO; n];
        self.ready = vec![false; n];
        self.app_pods = vec![HashMap::new(); n];
        self.census = vec![Vec::new(); n];
        self.census_total = vec![ResourceVec::ZERO; n];
        self.fit_keys = vec![NEG; 2 * self.cap];
        self.fit_floor = vec![NEG; 2 * self.cap];
        self.preempt_keys = vec![NEG; 2 * self.cap];
        self.preempt_floor = vec![NEG; 2 * self.cap];
        self.node_versions_seen = vec![0; n];
        self.taint_flag = vec![false; n];
        self.tainted.clear();
        for i in 0..n {
            self.refresh_node(cluster, i);
        }
        self.global_version_seen = cluster.version();
        self.synced = true;
    }

    /// Re-derives one node's mirrors from cluster truth. Walks the
    /// node's bound-pod set, not the full pod table (the table keeps
    /// terminal pods and grows with simulation length).
    fn refresh_node(&mut self, cluster: &ClusterState, i: usize) {
        let node = &cluster.nodes()[i];
        self.free[i] = node.free();
        self.ready[i] = node.is_ready();
        self.node_versions_seen[i] = cluster.node_version(i);
        let apps = &mut self.app_pods[i];
        apps.clear();
        let census = &mut self.census[i];
        census.clear();
        let mut total = ResourceVec::ZERO;
        for pod_id in node.pods() {
            let Ok(pod) = cluster.pod(*pod_id) else {
                self.stale_lookups += 1;
                continue;
            };
            debug_assert!(pod.phase.holds_resources());
            *apps.entry(pod.app().raw()).or_insert(0) += 1;
            let prio = pod.spec.priority;
            match census.binary_search_by_key(&prio, |(p, _)| *p) {
                Ok(k) => census[k].1 += pod.spec.request,
                Err(k) => census.insert(k, (prio, pod.spec.request)),
            }
            total += pod.spec.request;
        }
        self.census_total[i] = total;
        self.write_leaves(i);
    }

    /// Recomputes both tree leaves (and their root paths) for node `i`.
    fn write_leaves(&mut self, i: usize) {
        let (fit, preempt) = if self.ready[i] {
            let headroom = self.free[i] + self.census_total[i] + ResourceVec::splat(PRUNE_MARGIN);
            (self.free[i], headroom)
        } else {
            (NEG, NEG)
        };
        set_leaf(&mut self.fit_keys, &mut self.fit_floor, self.cap, i, fit);
        set_leaf(&mut self.preempt_keys, &mut self.preempt_floor, self.cap, i, preempt);
    }

    fn taint(&mut self, i: usize) {
        if !self.taint_flag[i] {
            self.taint_flag[i] = true;
            self.tainted.push(i as u32);
        }
    }

    /// Shadow free capacity of node `i`.
    pub(crate) fn free(&self, i: usize) -> ResourceVec {
        self.free[i]
    }

    /// Tentative pod count of `app` on node `i`.
    pub(crate) fn app_count(&self, i: usize, app: u32) -> usize {
        self.app_pods[i].get(&app).copied().unwrap_or(0)
    }

    /// Commits a tentative placement into the shadow.
    pub(crate) fn place(&mut self, i: usize, spec: &PodSpec) {
        self.free[i] -= spec.request;
        *self.app_pods[i].entry(spec.kind.app().raw()).or_insert(0) += 1;
        self.write_leaves(i);
        self.taint(i);
    }

    /// Rolls a tentative placement back out of the shadow.
    pub(crate) fn release(&mut self, i: usize, spec: &PodSpec) {
        self.free[i] += spec.request;
        if let Some(c) = self.app_pods[i].get_mut(&spec.kind.app().raw()) {
            *c = c.saturating_sub(1);
        }
        self.write_leaves(i);
        self.taint(i);
    }

    /// Accounts a claimed preemption victim: its capacity frees up in
    /// the shadow and leaves the bound census.
    pub(crate) fn claim_victim(&mut self, i: usize, app: u32, priority: i32, req: &ResourceVec) {
        self.free[i] += *req;
        if let Some(c) = self.app_pods[i].get_mut(&app) {
            *c = c.saturating_sub(1);
        }
        if let Ok(k) = self.census[i].binary_search_by_key(&priority, |(p, _)| *p) {
            self.census[i][k].1 -= *req;
        }
        self.census_total[i] -= *req;
        self.write_leaves(i);
        self.taint(i);
    }

    /// Reverses [`claim_victim`](Self::claim_victim) (gang rollback).
    pub(crate) fn unclaim_victim(&mut self, i: usize, app: u32, priority: i32, req: &ResourceVec) {
        self.free[i] -= *req;
        *self.app_pods[i].entry(app).or_insert(0) += 1;
        match self.census[i].binary_search_by_key(&priority, |(p, _)| *p) {
            Ok(k) => self.census[i][k].1 += *req,
            Err(k) => self.census[i].insert(k, (priority, *req)),
        }
        self.census_total[i] += *req;
        self.write_leaves(i);
        self.taint(i);
    }

    /// Fills [`candidates`](Self::candidates) with every node whose
    /// shadow free capacity fits `request` (ready nodes only), ascending.
    pub(crate) fn enumerate_fit(&mut self, request: &ResourceVec) {
        self.probes += enumerate(
            &self.fit_keys,
            &self.fit_floor,
            self.cap,
            self.n,
            request,
            &mut self.stack,
            &mut self.candidates,
        );
    }

    /// Fills [`candidates`](Self::candidates) with a superset of the
    /// nodes where evicting bound pods could make `request` fit,
    /// ascending. Exactness comes from the caller's per-node victim scan.
    pub(crate) fn enumerate_preempt(&mut self, request: &ResourceVec) {
        self.probes += enumerate(
            &self.preempt_keys,
            &self.preempt_floor,
            self.cap,
            self.n,
            request,
            &mut self.stack,
            &mut self.candidates,
        );
    }

    /// The node list produced by the last `enumerate_*` call.
    pub(crate) fn candidates(&self) -> &[usize] {
        &self.candidates
    }

    /// Whether evicting every bound pod of priority strictly below
    /// `priority` could possibly free room for `request` on node `i`
    /// (superset check; the margin absorbs incremental float drift).
    pub(crate) fn census_could_free(&self, i: usize, priority: i32, request: &ResourceVec) -> bool {
        let mut avail = self.free[i];
        for (p, sum) in &self.census[i] {
            if *p >= priority {
                break;
            }
            avail += *sum;
        }
        request.fits_within(&(avail + ResourceVec::splat(PRUNE_MARGIN)))
    }

    /// Records one failed pod-table lookup (see
    /// [`SchedulePlan::stale_pod_lookups`](crate::SchedulePlan::stale_pod_lookups)).
    pub(crate) fn note_stale(&mut self) {
        self.stale_lookups += 1;
    }

    /// Adds a batch of failed pod-table lookups.
    pub(crate) fn add_stale(&mut self, n: u64) {
        self.stale_lookups += n;
    }

    /// Failed pod-table lookups since the last sync.
    pub(crate) fn stale_lookups(&self) -> u64 {
        self.stale_lookups
    }

    /// Tree-node visits across both trees since the last sync.
    pub(crate) fn probes(&self) -> u64 {
        self.probes
    }

    /// Node count the index currently mirrors.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.n
    }
}

/// Writes `key` at leaf `i` and recomputes the max/min aggregates on its
/// root path.
fn set_leaf(
    maxes: &mut [ResourceVec],
    mins: &mut [ResourceVec],
    cap: usize,
    i: usize,
    key: ResourceVec,
) {
    let mut s = cap + i;
    maxes[s] = key;
    mins[s] = key;
    s >>= 1;
    while s >= 1 {
        maxes[s] = maxes[2 * s].max(&maxes[2 * s + 1]);
        mins[s] = mins[2 * s].min(&mins[2 * s + 1]);
        s >>= 1;
    }
}

/// Pushes every leaf whose key fits `request` into `out`, in ascending
/// node order. Subtrees whose max no longer fits are pruned whole;
/// subtrees whose *min* still fits are emitted whole without descending
/// (padding and unready leaves carry `-inf` keys, so they can never sit
/// inside such a subtree). Returns the number of tree nodes visited (the
/// feasibility-probe count) — O(log N) when the answer is "none" or
/// "all", O(k·log(N/k)) for k scattered matches. Emission itself is a
/// plain index append, not a probe: no capacity comparison happens per
/// emitted leaf.
fn enumerate(
    maxes: &[ResourceVec],
    mins: &[ResourceVec],
    cap: usize,
    n: usize,
    request: &ResourceVec,
    stack: &mut Vec<usize>,
    out: &mut Vec<usize>,
) -> u64 {
    out.clear();
    stack.clear();
    if n == 0 {
        return 0;
    }
    let height = cap.trailing_zeros();
    let mut probes = 0u64;
    stack.push(1);
    while let Some(s) = stack.pop() {
        probes += 1;
        if !request.fits_within(&maxes[s]) {
            continue;
        }
        let h = height - s.ilog2();
        let lo = (s << h) - cap;
        if h == 0 {
            if lo < n {
                out.push(lo);
            }
            continue;
        }
        if request.fits_within(&mins[s]) {
            let hi = lo + (1 << h);
            debug_assert!(hi <= n, "-inf padding floors must block whole-subtree emission");
            out.extend(lo..hi);
            continue;
        }
        // Right child first: the left subtree then resolves fully before
        // the right one, yielding leaves in ascending node order — the
        // order the deterministic lowest-index tie-break depends on.
        stack.push(2 * s + 1);
        stack.push(2 * s);
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use evolve_sim::{ClusterConfig, ClusterState, NodeShape, PodKind};
    use evolve_types::{AppId, NodeId, PodId, SimTime};

    fn cluster(nodes: usize) -> ClusterState {
        ClusterState::new(&ClusterConfig::uniform(
            nodes,
            NodeShape { capacity: ResourceVec::splat(1000.0) },
        ))
    }

    fn spec(app: u32, request: f64, priority: i32) -> PodSpec {
        PodSpec::new(
            PodKind::ServiceReplica { app: AppId::new(app) },
            ResourceVec::splat(request),
            priority,
        )
    }

    fn bind(c: &mut ClusterState, app: u32, request: f64, priority: i32, node: u32) -> PodId {
        let id = c.create_pod(spec(app, request, priority), SimTime::ZERO);
        c.bind_pod(id, NodeId::new(node)).unwrap();
        id
    }

    /// Enumeration must equal the linear scan: same nodes, same order.
    fn naive_fit(idx: &FeasibilityIndex, request: &ResourceVec) -> Vec<usize> {
        (0..idx.len()).filter(|&i| idx.ready[i] && request.fits_within(&idx.free(i))).collect()
    }

    #[test]
    fn fit_enumeration_matches_linear_scan() {
        let mut c = cluster(13); // odd count exercises tree padding
        for i in 0..13u32 {
            bind(&mut c, i % 3, (f64::from(i) + 1.0) * 70.0, 10, i);
        }
        c.set_node_ready(NodeId::new(5), false).unwrap();
        let mut idx = FeasibilityIndex::new();
        idx.sync(&c);
        for req in [0.0, 100.0, 400.0, 900.0, 950.0, 2000.0] {
            let request = ResourceVec::splat(req);
            idx.enumerate_fit(&request);
            assert_eq!(idx.candidates(), naive_fit(&idx, &request), "request {req}");
        }
        assert!(idx.probes() > 0);
    }

    #[test]
    fn incremental_sync_matches_rebuild() {
        let mut c = cluster(9);
        for i in 0..9u32 {
            bind(&mut c, i, 100.0 + f64::from(i), 10 + i as i32, i % 9);
        }
        let mut carried = FeasibilityIndex::new();
        carried.sync(&c);
        // Mutate through every hook the cluster versions: bind, terminate,
        // resize, readiness flip.
        let extra = bind(&mut c, 3, 50.0, 99, 2);
        let gone = bind(&mut c, 4, 80.0, 5, 7);
        c.terminate_pod(gone, evolve_sim::PodPhase::Succeeded).unwrap();
        c.set_node_ready(NodeId::new(1), false).unwrap();
        let resized =
            c.create_pod(spec(6, 10.0, 10).with_limit(ResourceVec::splat(400.0)), SimTime::ZERO);
        c.bind_pod(resized, NodeId::new(8)).unwrap();
        c.resize_pod(resized, ResourceVec::splat(300.0)).unwrap();
        let _ = extra;
        carried.sync(&c);
        let mut fresh = FeasibilityIndex::new();
        fresh.sync(&c);
        assert_eq!(carried.free, fresh.free);
        assert_eq!(carried.ready, fresh.ready);
        assert_eq!(carried.census, fresh.census);
        assert_eq!(carried.census_total, fresh.census_total);
        assert_eq!(carried.app_pods, fresh.app_pods);
        assert_eq!(carried.fit_keys, fresh.fit_keys);
        assert_eq!(carried.fit_floor, fresh.fit_floor);
        assert_eq!(carried.preempt_keys, fresh.preempt_keys);
        assert_eq!(carried.preempt_floor, fresh.preempt_floor);
    }

    #[test]
    fn all_feasible_cluster_enumerates_in_constant_probes() {
        // 64 identical empty nodes: the root's min already fits, so the
        // whole leaf range is emitted from a single probe.
        let c = cluster(64);
        let mut idx = FeasibilityIndex::new();
        idx.sync(&c);
        idx.enumerate_fit(&ResourceVec::splat(100.0));
        assert_eq!(idx.candidates(), (0..64).collect::<Vec<_>>());
        assert_eq!(idx.probes(), 1);
    }

    #[test]
    fn tentative_ops_are_reconciled_at_next_sync() {
        let mut c = cluster(4);
        bind(&mut c, 0, 500.0, 10, 0);
        let mut idx = FeasibilityIndex::new();
        idx.sync(&c);
        // A tentative placement the driver then *fails* to apply: no
        // cluster version moves, but the taint list must restore truth.
        let tentative = spec(1, 200.0, 50);
        idx.place(2, &tentative);
        assert_eq!(idx.free(2), ResourceVec::splat(750.0));
        idx.sync(&c);
        assert_eq!(idx.free(2), ResourceVec::splat(950.0));
        assert_eq!(idx.app_count(2, 1), 0);
    }

    #[test]
    fn claim_and_unclaim_round_trip_census() {
        let mut c = cluster(2);
        bind(&mut c, 0, 600.0, 10, 0);
        let mut idx = FeasibilityIndex::new();
        idx.sync(&c);
        let req = ResourceVec::splat(600.0);
        assert!(idx.census_could_free(0, 50, &ResourceVec::splat(900.0)));
        assert!(!idx.census_could_free(0, 10, &ResourceVec::splat(900.0)), "no lower priority");
        idx.claim_victim(0, 0, 10, &req);
        assert_eq!(idx.free(0), ResourceVec::splat(950.0));
        assert!(!idx.census_could_free(0, 50, &ResourceVec::splat(951.0)));
        idx.unclaim_victim(0, 0, 10, &req);
        assert_eq!(idx.free(0), ResourceVec::splat(350.0));
        assert!(idx.census_could_free(0, 50, &ResourceVec::splat(900.0)));
    }

    #[test]
    fn unready_nodes_never_enumerate() {
        let mut c = cluster(3);
        c.set_node_ready(NodeId::new(0), false).unwrap();
        let mut idx = FeasibilityIndex::new();
        idx.sync(&c);
        idx.enumerate_fit(&ResourceVec::ZERO);
        assert_eq!(idx.candidates(), &[1, 2]);
        idx.enumerate_preempt(&ResourceVec::ZERO);
        assert_eq!(idx.candidates(), &[1, 2]);
    }

    #[test]
    fn single_node_tree_works() {
        let c = cluster(1);
        let mut idx = FeasibilityIndex::new();
        idx.sync(&c);
        idx.enumerate_fit(&ResourceVec::splat(900.0));
        assert_eq!(idx.candidates(), &[0]);
        idx.enumerate_fit(&ResourceVec::splat(951.0));
        assert!(idx.candidates().is_empty());
    }
}
