//! Pluggable scheduling framework for the EVOLVE platform.
//!
//! Mirrors the Kubernetes scheduling framework (the extension surface the
//! paper's scheduler plugs into): pending pods flow through **filter**
//! plugins (feasibility) and **score** plugins (preference), the highest
//! scoring node wins, and the binding is handed to the cluster. On top of
//! the stock framework this crate adds what converged Big-Data/HPC/Cloud
//! scheduling needs:
//!
//! * **priority scheduling with preemption** — latency-critical service
//!   pods may evict batch tasks when the cluster is full;
//! * **gang (all-or-nothing) scheduling** — an HPC job's ranks are placed
//!   together or not at all, with lower-priority work backfilled around a
//!   blocked gang;
//! * shadow accounting so one scheduling cycle makes mutually consistent
//!   decisions before anything is committed.
//!
//! # Examples
//!
//! ```
//! use evolve_scheduler::SchedulerFramework;
//! use evolve_sim::{ClusterConfig, ClusterState, NodeShape, PodKind, PodSpec};
//! use evolve_types::{AppId, ResourceVec, SimTime};
//!
//! let mut cluster = ClusterState::new(&ClusterConfig::uniform(2, NodeShape::default()));
//! let pod = cluster.create_pod(
//!     PodSpec::new(
//!         PodKind::ServiceReplica { app: AppId::new(0) },
//!         ResourceVec::new(1000.0, 1024.0, 10.0, 10.0),
//!         100,
//!     ),
//!     SimTime::ZERO,
//! );
//! let scheduler = SchedulerFramework::kube_default();
//! let plan = scheduler.schedule_cycle(&cluster);
//! assert_eq!(plan.bindings.len(), 1);
//! assert_eq!(plan.bindings[0].0, pod);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod framework;
mod index;
mod plugins;

pub use framework::{RequeueBackoff, SchedulePlan, SchedulerFramework};
pub use index::FeasibilityIndex;
pub use plugins::{
    BalancedAllocation, FilterPlugin, LeastAllocated, MostAllocated, NodeFits, ScorePlugin,
    SpreadApp,
};
