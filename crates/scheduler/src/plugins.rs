//! Filter and score plugins.
//!
//! Plugins see a [`NodeView`]: the node plus *shadow* state reflecting the
//! decisions already taken in the current scheduling cycle. Scores are
//! normalized to `[0, 1]`; the framework combines them by weight.

use evolve_sim::{Node, PodSpec};
use evolve_types::{Resource, ResourceVec};

/// A node as seen mid-cycle: real state plus shadow adjustments.
#[derive(Debug, Clone, Copy)]
pub struct NodeView<'a> {
    /// The underlying node.
    pub node: &'a Node,
    /// Free capacity after this cycle's tentative placements/preemptions.
    pub free: ResourceVec,
    /// Pods of the candidate pod's application already on the node
    /// (including tentative ones).
    pub app_pods: usize,
}

impl NodeView<'_> {
    /// Shadow-allocated share per resource after hypothetically placing
    /// `request`.
    fn allocated_share_with(&self, request: &ResourceVec) -> ResourceVec {
        let allocatable = self.node.allocatable();
        (allocatable - self.free + *request).ratio(&allocatable)
    }
}

/// Feasibility check: can this pod run on this node?
pub trait FilterPlugin: Send + Sync {
    /// Plugin name for diagnostics.
    fn name(&self) -> &'static str;
    /// `true` when the node can host the pod.
    fn feasible(&self, pod: &PodSpec, view: &NodeView<'_>) -> bool;
    /// `true` when this filter is *exactly* "the node is ready and the
    /// request fits within shadow free capacity" — the predicate the
    /// feasibility index's fit tree answers. The framework only routes a
    /// cycle through the index when its leading filter certifies this;
    /// any other filter must keep the default `false`.
    fn prunes_capacity_fit(&self) -> bool {
        false
    }
}

/// Preference score in `[0, 1]`; higher is better.
pub trait ScorePlugin: Send + Sync {
    /// Plugin name for diagnostics.
    fn name(&self) -> &'static str;
    /// Scores the node for the pod.
    fn score(&self, pod: &PodSpec, view: &NodeView<'_>) -> f64;
}

/// Filter: node is ready and has room for the pod's request
/// (the `NodeResourcesFit` plugin).
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeFits;

impl FilterPlugin for NodeFits {
    fn name(&self) -> &'static str {
        "node-fits"
    }
    fn feasible(&self, pod: &PodSpec, view: &NodeView<'_>) -> bool {
        view.node.is_ready() && pod.request.fits_within(&view.free)
    }
    fn prunes_capacity_fit(&self) -> bool {
        true
    }
}

/// Score: prefer the emptiest node (spreading, the Kubernetes
/// `LeastAllocated` strategy) — leaves headroom for vertical scaling.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastAllocated;

impl ScorePlugin for LeastAllocated {
    fn name(&self) -> &'static str {
        "least-allocated"
    }
    fn score(&self, pod: &PodSpec, view: &NodeView<'_>) -> f64 {
        let share = view.allocated_share_with(&pod.request);
        let mean = Resource::ALL.iter().map(|r| share[*r].clamp(0.0, 1.0)).sum::<f64>() / 4.0;
        1.0 - mean
    }
}

/// Score: prefer the fullest node (bin packing, `MostAllocated`) —
/// consolidates load to free whole nodes.
#[derive(Debug, Clone, Copy, Default)]
pub struct MostAllocated;

impl ScorePlugin for MostAllocated {
    fn name(&self) -> &'static str {
        "most-allocated"
    }
    fn score(&self, pod: &PodSpec, view: &NodeView<'_>) -> f64 {
        let share = view.allocated_share_with(&pod.request);
        Resource::ALL.iter().map(|r| share[*r].clamp(0.0, 1.0)).sum::<f64>() / 4.0
    }
}

/// Score: prefer nodes where the post-placement allocation is *balanced*
/// across the four resources (`NodeResourcesBalancedAllocation`) — avoids
/// stranding one dimension.
#[derive(Debug, Clone, Copy, Default)]
pub struct BalancedAllocation;

impl ScorePlugin for BalancedAllocation {
    fn name(&self) -> &'static str {
        "balanced-allocation"
    }
    fn score(&self, pod: &PodSpec, view: &NodeView<'_>) -> f64 {
        let share = view.allocated_share_with(&pod.request);
        let shares: Vec<f64> = Resource::ALL.iter().map(|r| share[*r].clamp(0.0, 1.0)).collect();
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        let var = shares.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / shares.len() as f64;
        // Std-dev of shares is at most 0.5 in [0,1]; normalize.
        1.0 - (var.sqrt() * 2.0).min(1.0)
    }
}

/// Score: spread replicas of the same application across nodes
/// (topology-spread light) — a node failure then costs one replica, not
/// all of them.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpreadApp;

impl ScorePlugin for SpreadApp {
    fn name(&self) -> &'static str {
        "spread-app"
    }
    fn score(&self, _pod: &PodSpec, view: &NodeView<'_>) -> f64 {
        1.0 / (1.0 + view.app_pods as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evolve_sim::PodKind;
    use evolve_types::{AppId, NodeId};

    fn node(capacity: f64) -> Node {
        Node::new(NodeId::new(0), ResourceVec::splat(capacity))
    }

    fn pod(request: f64) -> PodSpec {
        PodSpec::new(PodKind::ServiceReplica { app: AppId::new(0) }, ResourceVec::splat(request), 0)
    }

    fn view(node: &Node, free: f64, app_pods: usize) -> NodeView<'_> {
        NodeView { node, free: ResourceVec::splat(free), app_pods }
    }

    #[test]
    fn node_fits_checks_shadow_free() {
        let n = node(1000.0);
        let p = pod(100.0);
        assert!(NodeFits.feasible(&p, &view(&n, 100.0, 0)));
        assert!(!NodeFits.feasible(&p, &view(&n, 99.0, 0)));
    }

    #[test]
    fn least_allocated_prefers_empty() {
        let n = node(1000.0);
        let p = pod(10.0);
        let empty = LeastAllocated.score(&p, &view(&n, 950.0, 0));
        let full = LeastAllocated.score(&p, &view(&n, 100.0, 0));
        assert!(empty > full);
    }

    #[test]
    fn most_allocated_prefers_full() {
        let n = node(1000.0);
        let p = pod(10.0);
        let empty = MostAllocated.score(&p, &view(&n, 950.0, 0));
        let full = MostAllocated.score(&p, &view(&n, 100.0, 0));
        assert!(full > empty);
    }

    #[test]
    fn least_and_most_are_complementary() {
        let n = node(1000.0);
        let p = pod(50.0);
        let v = view(&n, 400.0, 0);
        let sum = LeastAllocated.score(&p, &v) + MostAllocated.score(&p, &v);
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_allocation_penalizes_skew() {
        let n = node(1000.0);
        let p = pod(1.0);
        // Balanced: all dimensions equally free.
        let balanced = BalancedAllocation.score(&p, &view(&n, 400.0, 0));
        // Skewed: CPU nearly exhausted, others empty.
        let skew_view =
            NodeView { node: &n, free: ResourceVec::new(10.0, 950.0, 950.0, 950.0), app_pods: 0 };
        let skewed = BalancedAllocation.score(&p, &skew_view);
        assert!(balanced > skewed, "balanced {balanced} skewed {skewed}");
    }

    #[test]
    fn spread_app_prefers_fresh_nodes() {
        let n = node(1000.0);
        let p = pod(1.0);
        assert!(
            SpreadApp.score(&p, &view(&n, 900.0, 0)) > SpreadApp.score(&p, &view(&n, 900.0, 3))
        );
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let n = node(1000.0);
        let p = pod(500.0);
        for free in [0.0, 100.0, 500.0, 950.0] {
            for plugin in [
                &LeastAllocated as &dyn ScorePlugin,
                &MostAllocated,
                &BalancedAllocation,
                &SpreadApp,
            ] {
                let s = plugin.score(&p, &view(&n, free, 1));
                assert!((0.0..=1.0).contains(&s), "{} gave {s}", plugin.name());
            }
        }
    }
}
