//! Property-based tests: a scheduling plan must always be *applicable* —
//! no double-booking, full accounting of every pending pod, and
//! preemptions that strictly respect priority.

use evolve_scheduler::{FeasibilityIndex, RequeueBackoff, SchedulerFramework};
use evolve_sim::{ClusterConfig, ClusterState, NodeShape, PodKind, PodPhase, PodSpec};
use evolve_telemetry::trace::TraceRing;
use evolve_types::{AppId, JobId, PodId, ResourceVec, SimTime};
use proptest::prelude::*;
use std::collections::HashSet;

/// (app, cpu request, priority, is_gang_member)
type PodGen = (u32, f64, i32, bool);

fn arb_pods() -> impl Strategy<Value = Vec<PodGen>> {
    prop::collection::vec(((0u32..8), (100.0..8_000.0f64), (0i32..100), any::<bool>()), 1..40)
}

fn build_cluster(nodes: usize, pods: &[PodGen]) -> ClusterState {
    let mut cluster = ClusterState::new(&ClusterConfig::uniform(nodes, NodeShape::default()));
    for (i, (app, cpu, priority, gang)) in pods.iter().enumerate() {
        let request = ResourceVec::new(*cpu, cpu * 2.0, cpu / 100.0, cpu / 50.0);
        let kind = if *gang {
            PodKind::HpcRank {
                app: AppId::new(*app),
                job: JobId::new(u64::from(*app)),
                rank: i as u32,
            }
        } else {
            PodKind::ServiceReplica { app: AppId::new(*app) }
        };
        cluster.create_pod(PodSpec::new(kind, request, *priority), SimTime::from_micros(i as u64));
    }
    cluster
}

proptest! {
    #[test]
    fn plan_is_always_applicable(pods in arb_pods(), nodes in 1usize..6) {
        let mut cluster = build_cluster(nodes, &pods);
        let plan = SchedulerFramework::kube_default().schedule_cycle(&cluster);
        // Applying every binding in order must succeed — the shadow
        // accounting promised the capacity exists.
        for (pod, node) in &plan.bindings {
            cluster.bind_pod(*pod, *node).expect("plan binding must be valid");
        }
        cluster.check_invariants();
    }

    #[test]
    fn every_pending_pod_is_accounted_once(pods in arb_pods(), nodes in 1usize..6) {
        let cluster = build_cluster(nodes, &pods);
        let plan = SchedulerFramework::kube_default().schedule_cycle(&cluster);
        let mut seen: HashSet<PodId> = HashSet::new();
        for (pod, _) in &plan.bindings {
            prop_assert!(seen.insert(*pod), "{pod} bound twice");
        }
        for pod in &plan.unschedulable {
            prop_assert!(seen.insert(*pod), "{pod} double-accounted");
        }
        prop_assert_eq!(seen.len(), pods.len());
    }

    #[test]
    fn preemption_plan_is_applicable_and_priority_safe(
        bound in prop::collection::vec(((100.0..6_000.0f64), (0i32..50)), 1..10),
        pending in prop::collection::vec(((100.0..6_000.0f64), (50i32..100)), 1..10),
    ) {
        let mut cluster = ClusterState::new(&ClusterConfig::uniform(2, NodeShape::default()));
        let mut victims_possible: Vec<(PodId, i32)> = Vec::new();
        for (i, (cpu, priority)) in bound.iter().enumerate() {
            let pod = cluster.create_pod(
                PodSpec::new(
                    PodKind::ServiceReplica { app: AppId::new(100) },
                    ResourceVec::new(*cpu, 512.0, 1.0, 1.0),
                    *priority,
                ),
                SimTime::from_micros(i as u64),
            );
            // Bind first-fit; skip if full.
            let target = cluster.nodes().iter().find(|n| {
                n.can_fit(&ResourceVec::new(*cpu, 512.0, 1.0, 1.0))
            }).map(evolve_sim::Node::id);
            if let Some(node) = target {
                cluster.bind_pod(pod, node).expect("fits");
                victims_possible.push((pod, *priority));
            } else {
                // Leave unbound but terminal so it is not pending.
                cluster.terminate_pod(pod, PodPhase::Failed("setup".into())).expect("terminates");
            }
        }
        let mut max_pending = i32::MIN;
        for (i, (cpu, priority)) in pending.iter().enumerate() {
            cluster.create_pod(
                PodSpec::new(
                    PodKind::ServiceReplica { app: AppId::new(200) },
                    ResourceVec::new(*cpu, 512.0, 1.0, 1.0),
                    *priority,
                ),
                SimTime::from_micros(1_000 + i as u64),
            );
            max_pending = max_pending.max(*priority);
        }
        let plan = SchedulerFramework::evolve_default().schedule_cycle(&cluster);
        // Every victim must have lower priority than the highest pending
        // pod (preemption never evicts peers or superiors).
        for victim in &plan.preemptions {
            let vp = cluster.pod(*victim).expect("victim exists").spec.priority;
            prop_assert!(vp < max_pending, "victim priority {vp} >= max pending {max_pending}");
        }
        // Applying the full plan must succeed: preemptions first.
        for victim in &plan.preemptions {
            cluster.terminate_pod(*victim, PodPhase::Failed("preempted".into())).expect("evicts");
        }
        for (pod, node) in &plan.bindings {
            cluster.bind_pod(*pod, *node).expect("binding after preemption");
        }
        cluster.check_invariants();
    }

    #[test]
    fn gangs_bind_fully_or_not_at_all(
        gang_size in 1u32..8,
        cpu in 500.0..9_000.0f64,
        nodes in 1usize..4,
    ) {
        let mut cluster = ClusterState::new(&ClusterConfig::uniform(nodes, NodeShape::default()));
        for rank in 0..gang_size {
            cluster.create_pod(
                PodSpec::new(
                    PodKind::HpcRank { app: AppId::new(0), job: JobId::new(7), rank },
                    ResourceVec::new(cpu, 1_024.0, 5.0, 10.0),
                    50,
                ),
                SimTime::ZERO,
            );
        }
        let plan = SchedulerFramework::kube_default().schedule_cycle(&cluster);
        prop_assert!(
            plan.bindings.len() == gang_size as usize || plan.bindings.is_empty(),
            "partial gang: {} of {gang_size}",
            plan.bindings.len()
        );
    }

    /// The feasibility index is an *index*, not a policy: with it on or
    /// off, the cycle must pick placement-identical nodes and identical
    /// preemption victims, in the same order.
    #[test]
    fn indexed_plan_is_identical_to_naive_scan(
        pods in arb_pods(),
        bound in prop::collection::vec(((200.0..5_000.0f64), (0i32..40)), 0..14),
        nodes in 1usize..7,
    ) {
        let mut cluster = build_cluster(nodes, &pods);
        // Pre-bind low-priority filler first-fit so preemption engages.
        for (i, (cpu, priority)) in bound.iter().enumerate() {
            let request = ResourceVec::new(*cpu, 512.0, 1.0, 1.0);
            let pod = cluster.create_pod(
                PodSpec::new(
                    PodKind::ServiceReplica { app: AppId::new(90) },
                    request,
                    *priority,
                ),
                SimTime::from_micros(10_000 + i as u64),
            );
            match cluster.nodes().iter().find(|n| n.can_fit(&request)).map(evolve_sim::Node::id) {
                Some(node) => {
                    cluster.bind_pod(pod, node).expect("fits");
                }
                None => {
                    cluster.terminate_pod(pod, PodPhase::Failed("setup".into())).expect("terminates");
                }
            }
        }
        let indexed = SchedulerFramework::evolve_default()
            .with_index(true)
            .schedule_cycle(&cluster);
        let naive = SchedulerFramework::evolve_default()
            .with_index(false)
            .schedule_cycle(&cluster);
        prop_assert_eq!(&indexed.bindings, &naive.bindings);
        prop_assert_eq!(&indexed.preemptions, &naive.preemptions);
        prop_assert_eq!(&indexed.unschedulable, &naive.unschedulable);
    }

    /// Carrying one index across cycles (version-diff sync instead of a
    /// rebuild) must stay plan-identical to a naive scan from scratch,
    /// even as bindings, terminations and readiness flips accumulate.
    #[test]
    fn carried_index_matches_naive_across_cycles(
        waves in prop::collection::vec(arb_pods(), 1..4),
        flip in any::<bool>(),
        nodes in 2usize..6,
    ) {
        let mut cluster =
            ClusterState::new(&ClusterConfig::uniform(nodes, NodeShape::default()));
        let indexed_fw = SchedulerFramework::evolve_default().with_index(true);
        let naive_fw = SchedulerFramework::evolve_default().with_index(false);
        let mut index = FeasibilityIndex::new();
        let mut backoff = RequeueBackoff::new();
        let mut trace = TraceRing::new(0);
        for (cycle, wave) in waves.iter().enumerate() {
            for (i, (app, cpu, priority, _)) in wave.iter().enumerate() {
                cluster.create_pod(
                    PodSpec::new(
                        PodKind::ServiceReplica { app: AppId::new(*app) },
                        ResourceVec::new(*cpu, cpu * 2.0, cpu / 100.0, cpu / 50.0),
                        *priority,
                    ),
                    SimTime::from_micros((cycle * 1_000 + i) as u64),
                );
            }
            if flip && cycle == 1 {
                let id = cluster.nodes()[nodes - 1].id();
                cluster.set_node_ready(id, false).expect("flips");
            }
            let at = SimTime::from_micros(cycle as u64);
            let carried =
                indexed_fw.schedule_cycle_carried(&cluster, &mut backoff, &mut index, at, &mut trace);
            // Every unplaced pod is terminated below, so the carried
            // backoff never defers anything and the naive cycle (which
            // starts from fresh backoff) sees the same queue.
            let naive = naive_fw.schedule_cycle(&cluster);
            prop_assert_eq!(&carried.bindings, &naive.bindings);
            prop_assert_eq!(&carried.preemptions, &naive.preemptions);
            prop_assert_eq!(&carried.unschedulable, &naive.unschedulable);
            // Apply the carried plan: victims out, bindings in.
            for victim in &carried.preemptions {
                cluster.terminate_pod(*victim, PodPhase::Failed("preempted".into())).expect("evicts");
            }
            for (pod, node) in &carried.bindings {
                cluster.bind_pod(*pod, *node).expect("carried plan binding must be valid");
            }
            for pod in &carried.unschedulable {
                cluster.terminate_pod(*pod, PodPhase::Failed("unplaced".into())).expect("terminates");
            }
            cluster.check_invariants();
        }
    }
}
