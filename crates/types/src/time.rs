//! Simulated time with microsecond resolution.
//!
//! The discrete-event engine advances a single [`SimTime`] clock; all
//! latencies, control intervals and workload timings are [`SimDuration`]s.
//! Microsecond resolution comfortably covers both request service times
//! (hundreds of microseconds) and multi-hour experiment horizons
//! (`u64` microseconds overflow after ~584 000 years).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, measured in microseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use evolve_types::{SimDuration, SimTime};
///
/// let start = SimTime::ZERO;
/// let later = start + SimDuration::from_millis(1_500);
/// assert_eq!(later.as_micros(), 1_500_000);
/// assert_eq!(later - start, SimDuration::from_millis(1_500));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use evolve_types::SimDuration;
///
/// let d = SimDuration::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(d.as_secs_f64(), 2.5);
/// assert_eq!(d * 2, SimDuration::from_secs(5));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the simulation start.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the simulation start.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the simulation start.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the simulation start (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the simulation start as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration since `earlier`, or [`SimDuration::ZERO`] when `earlier`
    /// is in the future (saturating, never panics).
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration of `mins` minutes.
    #[must_use]
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Creates a duration from a float number of seconds, rounding to the
    /// nearest microsecond (half away from zero) and clamping negatives
    /// to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let x = secs * 1e6;
        if x >= u64::MAX as f64 {
            return SimDuration::MAX;
        }
        // Integer rounding instead of `f64::round` — the baseline x86-64
        // target lowers `round` to a libm call, and this sits on the
        // arrival-sampling hot path. Above 2^53 every f64 is an integer.
        if x >= 9_007_199_254_740_992.0 {
            return SimDuration(x as u64);
        }
        let t = x as u64;
        // `x - t` is exact (Sterbenz for t >= 1, trivial for t == 0), so
        // the half-away-from-zero comparison matches `round` bit for bit.
        let frac = x - t as f64;
        SimDuration(if frac >= 0.5 { t + 1 } else { t })
    }

    /// Creates a duration from a float number of seconds, rounding **up**
    /// to the next microsecond (never zero for positive input). Use this
    /// for event deadlines that must make strict forward progress on the
    /// microsecond-resolution clock.
    #[must_use]
    pub fn from_secs_f64_ceil(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let x = secs * 1e6;
        if x >= u64::MAX as f64 {
            return SimDuration::MAX;
        }
        // Integer ceiling instead of `f64::ceil` (libm call on baseline
        // x86-64); this runs once per finish estimate in the drain loop.
        let t = x as u64;
        SimDuration(if t as f64 == x { t } else { t + 1 })
    }

    /// The duration in whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` when the duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative float factor (saturating).
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds when `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics when `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}µs", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_millis(5), SimTime::from_micros(5_000));
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let a = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        assert_eq!((a + d) - a, d);
        assert_eq!((a + d) - d, a);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.001), SimDuration::from_millis(1));
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn duration_from_secs_f64_matches_libm_rounding() {
        // The integer fast paths must agree with `f64::round`/`f64::ceil`
        // bit for bit — the drain loop's event times depend on it.
        let libm_round = |secs: f64| {
            let micros = (secs * 1e6).round();
            if micros >= u64::MAX as f64 {
                u64::MAX
            } else {
                micros as u64
            }
        };
        let libm_ceil = |secs: f64| {
            let micros = (secs * 1e6).ceil();
            if micros >= u64::MAX as f64 {
                u64::MAX
            } else {
                micros as u64
            }
        };
        // Adversarial cases: exact halves, just-below-half ulp traps,
        // integers, sub-microsecond, around 2^53 and near u64::MAX.
        #[allow(clippy::excessive_precision)] // the ulp below 0.5 µs is the point
        let mut cases = vec![
            0.499_999_999_999_999_94e-6, // largest f64 below 0.5 µs
            0.5e-6,
            1.5e-6,
            2.5e-6,
            1e-7,
            1.0,
            1.000_000_5,
            9_007_199_254.740_992, // 2^53 µs in seconds
            9_007_199_254.740_994,
            1.8e13, // near u64::MAX µs
            f64::MAX,
        ];
        // A deterministic pseudo-random sweep across magnitudes.
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let mantissa = (x >> 11) as f64 / (1u64 << 53) as f64;
            let scale = 10f64.powi((x % 19) as i32 - 7);
            cases.push(mantissa * scale);
        }
        for secs in cases {
            assert_eq!(
                SimDuration::from_secs_f64(secs).as_micros(),
                libm_round(secs),
                "round mismatch at {secs:e}"
            );
            assert_eq!(
                SimDuration::from_secs_f64_ceil(secs).as_micros(),
                libm_ceil(secs),
                "ceil mismatch at {secs:e}"
            );
        }
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(3);
        assert_eq!(d * 2, SimDuration::from_secs(6));
        assert_eq!(d / 3, SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(1_500));
    }

    #[test]
    fn add_saturates_at_max() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimDuration::MAX + SimDuration::from_secs(1), SimDuration::MAX);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(42).to_string(), "42µs");
        assert_eq!(SimDuration::from_millis(42).to_string(), "42.000ms");
        assert_eq!(SimDuration::from_secs(42).to_string(), "42.000s");
        assert_eq!(SimTime::from_millis(1_500).to_string(), "t=1.500s");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration::from_micros(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
