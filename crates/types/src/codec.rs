//! Deterministic binary codec used for controller checkpoints.
//!
//! The vendored `serde` stub compiles derives away, so checkpoint
//! serialization is implemented against this small explicit codec instead.
//! The format is intentionally simple and fully deterministic:
//!
//! * integers are little-endian fixed width,
//! * `f64` is encoded via [`f64::to_bits`] so round-trips are bit-exact
//!   (including NaN payloads and signed zeros),
//! * collections are length-prefixed with a `u64`,
//! * there is no padding, alignment, or implicit versioning — container
//!   types (e.g. `ControllerCheckpoint`) carry their own magic + version
//!   header.
//!
//! Decoding never panics: truncated or malformed input surfaces as
//! [`Error::CorruptCheckpoint`](crate::Error::CorruptCheckpoint).
//!
//! # Examples
//!
//! ```
//! use evolve_types::codec::{Codec, Decoder, Encoder};
//! use evolve_types::ResourceVec;
//!
//! let v = ResourceVec::new(1.0, 2.0, 3.0, 4.0);
//! let mut enc = Encoder::new();
//! v.encode(&mut enc);
//! let bytes = enc.into_bytes();
//!
//! let mut dec = Decoder::new(&bytes);
//! let back = ResourceVec::decode(&mut dec).unwrap();
//! assert_eq!(v, back);
//! assert!(dec.is_empty());
//! ```

use std::collections::VecDeque;

use crate::{
    AppId, Error, JobId, NodeId, PodId, PriorityClass, Resource, ResourceVec, Result, SimDuration,
    SimTime,
};

/// Append-only byte buffer that values encode themselves into.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Consumes the encoder and returns the accumulated bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor over a byte slice that values decode themselves from.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes left to read.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when the whole input has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads exactly `n` raw bytes, or fails on truncated input.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::CorruptCheckpoint(format!(
                "truncated input: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let slice = self.take(N)?;
        let mut arr = [0u8; N];
        arr.copy_from_slice(slice);
        Ok(arr)
    }
}

/// Types that can write themselves to an [`Encoder`] and read themselves
/// back from a [`Decoder`], deterministically and bit-exactly.
pub trait Codec: Sized {
    /// Appends this value's encoding to `enc`.
    fn encode(&self, enc: &mut Encoder);
    /// Reads one value of this type from `dec`.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self>;
}

macro_rules! int_codec {
    ($($ty:ty),*) => {$(
        impl Codec for $ty {
            fn encode(&self, enc: &mut Encoder) {
                enc.put_bytes(&self.to_le_bytes());
            }
            fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
                Ok(<$ty>::from_le_bytes(dec.take_array()?))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i32, i64);

impl Codec for usize {
    fn encode(&self, enc: &mut Encoder) {
        (*self as u64).encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let raw = u64::decode(dec)?;
        usize::try_from(raw)
            .map_err(|_| Error::CorruptCheckpoint(format!("length {raw} exceeds usize")))
    }
}

impl Codec for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(&[u8::from(*self)]);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        match dec.take_array::<1>()?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::CorruptCheckpoint(format!("invalid bool byte {other}"))),
        }
    }
}

impl Codec for f64 {
    fn encode(&self, enc: &mut Encoder) {
        self.to_bits().encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(f64::from_bits(u64::decode(dec)?))
    }
}

impl Codec for String {
    fn encode(&self, enc: &mut Encoder) {
        self.len().encode(enc);
        enc.put_bytes(self.as_bytes());
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let len = usize::decode(dec)?;
        let bytes = dec.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::CorruptCheckpoint("invalid utf-8 in string".into()))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => false.encode(enc),
            Some(value) => {
                true.encode(enc);
                value.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        if bool::decode(dec)? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        self.len().encode(enc);
        for item in self {
            item.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let len = usize::decode(dec)?;
        // A corrupt length prefix must not trigger a huge up-front
        // allocation; grow as elements actually decode.
        let mut out = Vec::new();
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for VecDeque<T> {
    fn encode(&self, enc: &mut Encoder) {
        self.len().encode(enc);
        for item in self {
            item.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let len = usize::decode(dec)?;
        let mut out = VecDeque::new();
        for _ in 0..len {
            out.push_back(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Codec, const N: usize> Codec for [T; N] {
    fn encode(&self, enc: &mut Encoder) {
        for item in self {
            item.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(dec)?);
        }
        out.try_into().map_err(|_| Error::CorruptCheckpoint("array length mismatch".into()))
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok((A::decode(dec)?, B::decode(dec)?, C::decode(dec)?))
    }
}

impl Codec for ResourceVec {
    fn encode(&self, enc: &mut Encoder) {
        for r in Resource::ALL {
            self[r].encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let mut v = ResourceVec::ZERO;
        for r in Resource::ALL {
            v[r] = f64::decode(dec)?;
        }
        Ok(v)
    }
}

impl Codec for SimTime {
    fn encode(&self, enc: &mut Encoder) {
        self.as_micros().encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(SimTime::from_micros(u64::decode(dec)?))
    }
}

impl Codec for SimDuration {
    fn encode(&self, enc: &mut Encoder) {
        self.as_micros().encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(SimDuration::from_micros(u64::decode(dec)?))
    }
}

macro_rules! id_codec {
    ($($ty:ty => $inner:ty),*) => {$(
        impl Codec for $ty {
            fn encode(&self, enc: &mut Encoder) {
                self.raw().encode(enc);
            }
            fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
                Ok(<$ty>::new(<$inner>::decode(dec)?))
            }
        }
    )*};
}

id_codec!(NodeId => u32, PodId => u64, AppId => u32, JobId => u64);

impl Codec for PriorityClass {
    fn encode(&self, enc: &mut Encoder) {
        let tag: u8 = match self {
            PriorityClass::Critical => 0,
            PriorityClass::Standard => 1,
            PriorityClass::Preemptible => 2,
        };
        tag.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        match u8::decode(dec)? {
            0 => Ok(PriorityClass::Critical),
            1 => Ok(PriorityClass::Standard),
            2 => Ok(PriorityClass::Preemptible),
            other => Err(Error::CorruptCheckpoint(format!("invalid priority class tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let mut enc = Encoder::new();
        value.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = T::decode(&mut dec).expect("decode");
        assert_eq!(value, back);
        assert!(dec.is_empty(), "trailing bytes after decode");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-5i64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(usize::MAX as u64);
        roundtrip(String::from("evolve"));
        roundtrip(String::new());
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE] {
            let mut enc = Encoder::new();
            v.encode(&mut enc);
            let bytes = enc.into_bytes();
            let back = f64::decode(&mut Decoder::new(&bytes)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
        // NaN payload preserved.
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut enc = Encoder::new();
        nan.encode(&mut enc);
        let bytes = enc.into_bytes();
        let back = f64::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(nan.to_bits(), back.to_bits());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(Some(3u32));
        roundtrip(Option::<u32>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(VecDeque::from(vec![1.0f64, 2.0, 3.0]));
        roundtrip((1u32, 2.0f64));
        roundtrip((1u32, 2.0f64, String::from("x")));
        roundtrip([1.0f64, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn domain_types_roundtrip() {
        roundtrip(ResourceVec::new(1.0, 2.0, 3.0, 4.0));
        roundtrip(SimTime::from_secs(90));
        roundtrip(SimDuration::from_millis(250));
        roundtrip(NodeId::new(7));
        roundtrip(PodId::new(u64::MAX));
        roundtrip(AppId::new(0));
        roundtrip(JobId::new(12));
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut enc = Encoder::new();
        42u64.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..4]);
        let err = u64::decode(&mut dec).unwrap_err();
        assert!(matches!(err, Error::CorruptCheckpoint(_)));
    }

    #[test]
    fn corrupt_bool_is_an_error() {
        let bytes = [7u8];
        let err = bool::decode(&mut Decoder::new(&bytes)).unwrap_err();
        assert!(matches!(err, Error::CorruptCheckpoint(_)));
    }

    #[test]
    fn huge_length_prefix_does_not_preallocate() {
        let mut enc = Encoder::new();
        u64::MAX.encode(&mut enc);
        let bytes = enc.into_bytes();
        let err = Vec::<u64>::decode(&mut Decoder::new(&bytes)).unwrap_err();
        assert!(matches!(err, Error::CorruptCheckpoint(_)));
    }
}
