//! Multi-resource quantities.
//!
//! EVOLVE manages four resource dimensions per node and per pod, following
//! the Skynet/EVOLVE line of work: CPU, memory, disk I/O bandwidth and
//! network I/O bandwidth. [`ResourceVec`] packs one `f64` per dimension with
//! the units fixed by convention:
//!
//! | dimension | unit |
//! |---|---|
//! | [`Resource::Cpu`] | millicores |
//! | [`Resource::Memory`] | MiB |
//! | [`Resource::DiskIo`] | MB/s |
//! | [`Resource::NetIo`] | MB/s |

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of resource dimensions managed by the platform.
pub const NUM_RESOURCES: usize = 4;

/// One of the four resource dimensions EVOLVE manages.
///
/// # Examples
///
/// ```
/// use evolve_types::Resource;
///
/// for r in Resource::ALL {
///     println!("{r}");
/// }
/// assert_eq!(Resource::Cpu.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// Compute, in millicores (1000 = one core).
    Cpu,
    /// Memory, in MiB. Unlike the other three, memory is *space*, not rate.
    Memory,
    /// Disk I/O bandwidth, in MB/s.
    DiskIo,
    /// Network I/O bandwidth, in MB/s.
    NetIo,
}

impl Resource {
    /// All resources, in index order.
    pub const ALL: [Resource; NUM_RESOURCES] =
        [Resource::Cpu, Resource::Memory, Resource::DiskIo, Resource::NetIo];

    /// Position of this resource inside a [`ResourceVec`].
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Resource::Cpu => 0,
            Resource::Memory => 1,
            Resource::DiskIo => 2,
            Resource::NetIo => 3,
        }
    }

    /// The resource at position `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= NUM_RESOURCES`.
    #[must_use]
    pub const fn from_index(index: usize) -> Resource {
        Resource::ALL[index]
    }

    /// Short lowercase label used in reports and CSV headers.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Resource::Cpu => "cpu",
            Resource::Memory => "mem",
            Resource::DiskIo => "disk",
            Resource::NetIo => "net",
        }
    }

    /// Unit string for human-readable output.
    #[must_use]
    pub const fn unit(self) -> &'static str {
        match self {
            Resource::Cpu => "mcores",
            Resource::Memory => "MiB",
            Resource::DiskIo => "MB/s",
            Resource::NetIo => "MB/s",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A quantity in each of the four resource dimensions.
///
/// `ResourceVec` is used for node capacities, pod requests/limits, measured
/// usage and controller outputs. All operations are element-wise;
/// subtraction saturates at zero so that accounting code can never produce
/// negative availability.
///
/// # Examples
///
/// ```
/// use evolve_types::{Resource, ResourceVec};
///
/// let capacity = ResourceVec::new(8_000.0, 32_768.0, 400.0, 1_000.0);
/// let used = ResourceVec::new(6_000.0, 8_192.0, 100.0, 900.0);
/// let free = capacity - used;
/// assert_eq!(free[Resource::Cpu], 2_000.0);
///
/// // The dominant share identifies the binding resource.
/// let (binding, share) = used.dominant(&capacity);
/// assert_eq!(binding, Resource::NetIo);
/// assert!((share - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceVec([f64; NUM_RESOURCES]);

impl ResourceVec {
    /// The all-zero vector.
    pub const ZERO: ResourceVec = ResourceVec([0.0; NUM_RESOURCES]);

    /// Creates a vector from explicit per-dimension quantities
    /// (cpu millicores, memory MiB, disk MB/s, net MB/s).
    #[must_use]
    pub const fn new(cpu: f64, memory: f64, disk_io: f64, net_io: f64) -> Self {
        ResourceVec([cpu, memory, disk_io, net_io])
    }

    /// Creates a vector with the same quantity in every dimension.
    #[must_use]
    pub const fn splat(value: f64) -> Self {
        ResourceVec([value; NUM_RESOURCES])
    }

    /// A vector that is zero everywhere except `resource`.
    #[must_use]
    pub fn unit(resource: Resource, value: f64) -> Self {
        let mut v = ResourceVec::ZERO;
        v[resource] = value;
        v
    }

    /// CPU millicores.
    #[must_use]
    pub const fn cpu(&self) -> f64 {
        self.0[0]
    }

    /// Memory in MiB.
    #[must_use]
    pub const fn memory(&self) -> f64 {
        self.0[1]
    }

    /// Disk I/O bandwidth in MB/s.
    #[must_use]
    pub const fn disk_io(&self) -> f64 {
        self.0[2]
    }

    /// Network I/O bandwidth in MB/s.
    #[must_use]
    pub const fn net_io(&self) -> f64 {
        self.0[3]
    }

    /// Borrows the raw per-dimension array (index order of [`Resource::ALL`]).
    #[must_use]
    pub const fn as_array(&self) -> &[f64; NUM_RESOURCES] {
        &self.0
    }

    /// `true` when every component fits inside `other` (element-wise `<=`,
    /// with a small epsilon so accounting round-off does not spuriously
    /// reject placements).
    #[must_use]
    pub fn fits_within(&self, other: &ResourceVec) -> bool {
        const EPS: f64 = 1e-9;
        self.0.iter().zip(other.0.iter()).all(|(a, b)| *a <= *b + EPS)
    }

    /// Element-wise maximum.
    #[must_use]
    pub fn max(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = *self;
        for i in 0..NUM_RESOURCES {
            out.0[i] = out.0[i].max(other.0[i]);
        }
        out
    }

    /// Element-wise minimum.
    #[must_use]
    pub fn min(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = *self;
        for i in 0..NUM_RESOURCES {
            out.0[i] = out.0[i].min(other.0[i]);
        }
        out
    }

    /// Clamps every component between the matching components of `lo` and
    /// `hi`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when some `lo` component exceeds `hi`.
    #[must_use]
    pub fn clamp(&self, lo: &ResourceVec, hi: &ResourceVec) -> ResourceVec {
        debug_assert!(lo.fits_within(hi), "clamp bounds inverted");
        self.max(lo).min(hi)
    }

    /// The dominant share of `self` relative to `capacity`: the resource
    /// with the highest `self_r / capacity_r` ratio and that ratio.
    /// Dimensions with zero capacity are skipped; if all capacities are zero
    /// the result is `(Resource::Cpu, 0.0)`.
    #[must_use]
    pub fn dominant(&self, capacity: &ResourceVec) -> (Resource, f64) {
        let mut best = (Resource::Cpu, 0.0_f64);
        for r in Resource::ALL {
            let cap = capacity[r];
            if cap > 0.0 {
                let share = self[r] / cap;
                if share > best.1 {
                    best = (r, share);
                }
            }
        }
        best
    }

    /// Element-wise ratio `self_r / other_r`; dimensions where `other` is
    /// zero yield zero.
    #[must_use]
    pub fn ratio(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = ResourceVec::ZERO;
        for i in 0..NUM_RESOURCES {
            if other.0[i] > 0.0 {
                out.0[i] = self.0[i] / other.0[i];
            }
        }
        out
    }

    /// Element-wise product.
    #[must_use]
    pub fn mul_elem(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = *self;
        for i in 0..NUM_RESOURCES {
            out.0[i] *= other.0[i];
        }
        out
    }

    /// Sum of all components (dimensionally meaningless, but useful for
    /// tie-breaking and tests).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Largest single component.
    #[must_use]
    pub fn max_component(&self) -> f64 {
        self.0.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// `true` when every component is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|v| *v == 0.0)
    }

    /// `true` when every component is finite and non-negative — the
    /// invariant expected of capacities, requests and usage.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.0.iter().all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Replaces non-finite or negative components with zero, restoring the
    /// validity invariant after floating-point drift.
    #[must_use]
    pub fn sanitized(&self) -> ResourceVec {
        let mut out = *self;
        for v in &mut out.0 {
            if !v.is_finite() || *v < 0.0 {
                *v = 0.0;
            }
        }
        out
    }
}

impl Index<Resource> for ResourceVec {
    type Output = f64;
    fn index(&self, r: Resource) -> &f64 {
        &self.0[r.index()]
    }
}

impl IndexMut<Resource> for ResourceVec {
    fn index_mut(&mut self, r: Resource) -> &mut f64 {
        &mut self.0[r.index()]
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    fn add(self, rhs: ResourceVec) -> ResourceVec {
        let mut out = self;
        for i in 0..NUM_RESOURCES {
            out.0[i] += rhs.0[i];
        }
        out
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, rhs: ResourceVec) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceVec {
    type Output = ResourceVec;
    /// Element-wise subtraction, saturating at zero.
    fn sub(self, rhs: ResourceVec) -> ResourceVec {
        let mut out = self;
        for i in 0..NUM_RESOURCES {
            out.0[i] = (out.0[i] - rhs.0[i]).max(0.0);
        }
        out
    }
}

impl SubAssign for ResourceVec {
    fn sub_assign(&mut self, rhs: ResourceVec) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for ResourceVec {
    type Output = ResourceVec;
    fn mul(self, rhs: f64) -> ResourceVec {
        let mut out = self;
        for v in &mut out.0 {
            *v *= rhs;
        }
        out
    }
}

impl Sum for ResourceVec {
    fn sum<I: Iterator<Item = ResourceVec>>(iter: I) -> ResourceVec {
        iter.fold(ResourceVec::ZERO, |acc, v| acc + v)
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[cpu={:.0}m mem={:.0}MiB disk={:.1}MB/s net={:.1}MB/s]",
            self.cpu(),
            self.memory(),
            self.disk_io(),
            self.net_io()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(c: f64, m: f64, d: f64, n: f64) -> ResourceVec {
        ResourceVec::new(c, m, d, n)
    }

    #[test]
    fn index_roundtrip() {
        for (i, r) in Resource::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Resource::from_index(i), r);
        }
    }

    #[test]
    fn accessors_match_indexing() {
        let a = v(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.cpu(), a[Resource::Cpu]);
        assert_eq!(a.memory(), a[Resource::Memory]);
        assert_eq!(a.disk_io(), a[Resource::DiskIo]);
        assert_eq!(a.net_io(), a[Resource::NetIo]);
    }

    #[test]
    fn add_sub_are_elementwise() {
        let a = v(1.0, 2.0, 3.0, 4.0);
        let b = v(10.0, 20.0, 30.0, 40.0);
        assert_eq!(a + b, v(11.0, 22.0, 33.0, 44.0));
        assert_eq!(b - a, v(9.0, 18.0, 27.0, 36.0));
    }

    #[test]
    fn sub_saturates_at_zero() {
        let a = v(1.0, 5.0, 0.0, 2.0);
        let b = v(3.0, 1.0, 1.0, 2.0);
        assert_eq!(a - b, v(0.0, 4.0, 0.0, 0.0));
    }

    #[test]
    fn fits_within_uses_every_dimension() {
        let cap = v(10.0, 10.0, 10.0, 10.0);
        assert!(v(10.0, 10.0, 10.0, 10.0).fits_within(&cap));
        assert!(!v(10.1, 0.0, 0.0, 0.0).fits_within(&cap));
        assert!(!v(0.0, 0.0, 0.0, 10.1).fits_within(&cap));
    }

    #[test]
    fn fits_within_tolerates_round_off() {
        let cap = v(1.0, 1.0, 1.0, 1.0);
        let almost = v(1.0 + 1e-12, 1.0, 1.0, 1.0);
        assert!(almost.fits_within(&cap));
    }

    #[test]
    fn dominant_identifies_binding_resource() {
        let cap = v(1000.0, 1000.0, 100.0, 100.0);
        let used = v(500.0, 100.0, 90.0, 10.0);
        let (r, share) = used.dominant(&cap);
        assert_eq!(r, Resource::DiskIo);
        assert!((share - 0.9).abs() < 1e-12);
    }

    #[test]
    fn dominant_skips_zero_capacity() {
        let cap = v(0.0, 100.0, 0.0, 0.0);
        let used = v(999.0, 50.0, 999.0, 999.0);
        assert_eq!(used.dominant(&cap), (Resource::Memory, 0.5));
    }

    #[test]
    fn dominant_of_zero_capacity_is_cpu_zero() {
        assert_eq!(ResourceVec::splat(5.0).dominant(&ResourceVec::ZERO), (Resource::Cpu, 0.0));
    }

    #[test]
    fn clamp_respects_bounds() {
        let lo = v(1.0, 1.0, 1.0, 1.0);
        let hi = v(5.0, 5.0, 5.0, 5.0);
        assert_eq!(v(0.0, 3.0, 9.0, 5.0).clamp(&lo, &hi), v(1.0, 3.0, 5.0, 5.0));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let a = v(4.0, 4.0, 4.0, 4.0);
        let b = v(2.0, 0.0, 8.0, 1.0);
        assert_eq!(a.ratio(&b), v(2.0, 0.0, 0.5, 4.0));
    }

    #[test]
    fn scalar_multiplication() {
        assert_eq!(v(1.0, 2.0, 3.0, 4.0) * 2.0, v(2.0, 4.0, 6.0, 8.0));
    }

    #[test]
    fn sum_of_iterator() {
        let total: ResourceVec = (1..=3).map(|i| ResourceVec::splat(i as f64)).sum();
        assert_eq!(total, ResourceVec::splat(6.0));
    }

    #[test]
    fn validity_and_sanitize() {
        assert!(v(0.0, 1.0, 2.0, 3.0).is_valid());
        let bad = v(-1.0, f64::NAN, f64::INFINITY, 2.0);
        assert!(!bad.is_valid());
        let clean = bad.sanitized();
        assert!(clean.is_valid());
        assert_eq!(clean, v(0.0, 0.0, 0.0, 2.0));
    }

    #[test]
    fn unit_vector_sets_single_dimension() {
        let u = ResourceVec::unit(Resource::NetIo, 7.0);
        assert_eq!(u, v(0.0, 0.0, 0.0, 7.0));
    }

    #[test]
    fn display_is_not_empty() {
        assert!(!v(1.0, 2.0, 3.0, 4.0).to_string().is_empty());
        assert!(!Resource::Cpu.to_string().is_empty());
    }

    #[test]
    fn min_max_elementwise() {
        let a = v(1.0, 9.0, 5.0, 2.0);
        let b = v(3.0, 4.0, 5.0, 1.0);
        assert_eq!(a.max(&b), v(3.0, 9.0, 5.0, 2.0));
        assert_eq!(a.min(&b), v(1.0, 4.0, 5.0, 1.0));
    }
}
