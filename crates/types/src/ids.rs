//! Identifier newtypes.
//!
//! Each entity class in the platform gets its own id type so the compiler
//! rejects mixed-up arguments ("newtypes provide static distinctions").
//! Ids are dense small integers handed out by the owning registry
//! (cluster state, application registry, job tracker); they are `Copy`,
//! hashable and ordered so they can key `HashMap`s and `BTreeMap`s alike.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name($inner);

        impl $name {
            /// Wraps a raw index as an id.
            #[must_use]
            pub const fn new(raw: $inner) -> Self {
                $name(raw)
            }

            /// The raw index behind this id.
            #[must_use]
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// The raw index as `usize`, for direct slice indexing.
            #[must_use]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                $name(raw)
            }
        }
    };
}

id_type!(
    /// Identifies a node in the cluster.
    ///
    /// # Examples
    ///
    /// ```
    /// use evolve_types::NodeId;
    /// let n = NodeId::new(3);
    /// assert_eq!(n.to_string(), "node-3");
    /// ```
    NodeId,
    u32,
    "node-"
);

id_type!(
    /// Identifies a pod (one replica of an application or one member of a
    /// gang job).
    ///
    /// # Examples
    ///
    /// ```
    /// use evolve_types::PodId;
    /// assert_eq!(PodId::new(17).raw(), 17);
    /// ```
    PodId,
    u64,
    "pod-"
);

id_type!(
    /// Identifies a managed application (a deployment with a PLO).
    ///
    /// # Examples
    ///
    /// ```
    /// use evolve_types::AppId;
    /// assert_eq!(AppId::new(0).to_string(), "app-0");
    /// ```
    AppId,
    u32,
    "app-"
);

id_type!(
    /// Identifies a batch or HPC job instance.
    ///
    /// # Examples
    ///
    /// ```
    /// use evolve_types::JobId;
    /// assert_eq!(JobId::new(5).as_usize(), 5);
    /// ```
    JobId,
    u64,
    "job-"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeSet, HashSet};

    #[test]
    fn display_formats_with_prefix() {
        assert_eq!(NodeId::new(1).to_string(), "node-1");
        assert_eq!(PodId::new(2).to_string(), "pod-2");
        assert_eq!(AppId::new(3).to_string(), "app-3");
        assert_eq!(JobId::new(4).to_string(), "job-4");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut hs = HashSet::new();
        let mut bs = BTreeSet::new();
        for i in 0..10u32 {
            hs.insert(NodeId::new(i));
            bs.insert(NodeId::new(i));
        }
        assert_eq!(hs.len(), 10);
        assert_eq!(bs.iter().next(), Some(&NodeId::new(0)));
        assert_eq!(bs.iter().last(), Some(&NodeId::new(9)));
    }

    #[test]
    fn from_raw_roundtrips() {
        let p: PodId = 42u64.into();
        assert_eq!(p.raw(), 42);
        assert_eq!(p.as_usize(), 42);
    }
}
