//! Core domain types shared by every EVOLVE crate.
//!
//! This crate defines the vocabulary of the platform:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time,
//!   used by the discrete-event engine and every control loop.
//! * [`Resource`] / [`ResourceVec`] — the four resource dimensions EVOLVE
//!   manages (CPU, memory, disk I/O bandwidth, network I/O bandwidth) and a
//!   small linear-algebra toolkit over them (fit tests, dominant share,
//!   element-wise min/max, saturating arithmetic).
//! * Identifier newtypes ([`NodeId`], [`PodId`], [`AppId`], [`JobId`]) that
//!   make it impossible to hand a pod id to an API expecting a node id.
//! * [`Error`] — the shared error type for fallible platform operations.
//!
//! # Examples
//!
//! ```
//! use evolve_types::{Resource, ResourceVec, SimDuration, SimTime};
//!
//! // A node with 16 cores, 64 GiB, 500 MB/s disk, 1250 MB/s network.
//! let capacity = ResourceVec::new(16_000.0, 65_536.0, 500.0, 1_250.0);
//! // A pod asking for 2 cores and 4 GiB.
//! let request = ResourceVec::new(2_000.0, 4_096.0, 50.0, 100.0);
//! assert!(request.fits_within(&capacity));
//!
//! let t = SimTime::ZERO + SimDuration::from_secs(30);
//! assert_eq!(t.as_secs_f64(), 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod error;
mod ids;
mod priority;
mod resources;
mod time;

pub use codec::{Codec, Decoder, Encoder};
pub use error::Error;
pub use ids::{AppId, JobId, NodeId, PodId};
pub use priority::PriorityClass;
pub use resources::{Resource, ResourceVec, NUM_RESOURCES};
pub use time::{SimDuration, SimTime};

/// Convenient result alias for fallible EVOLVE operations.
pub type Result<T> = std::result::Result<T, Error>;
