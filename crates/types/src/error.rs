//! Shared error type for fallible platform operations.

use std::fmt;

use crate::{AppId, NodeId, PodId};

/// Errors raised by EVOLVE components.
///
/// # Examples
///
/// ```
/// use evolve_types::{Error, NodeId};
///
/// let err = Error::UnknownNode(NodeId::new(9));
/// assert_eq!(err.to_string(), "unknown node node-9");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A node id was not found in the cluster.
    UnknownNode(NodeId),
    /// A pod id was not found in the cluster.
    UnknownPod(PodId),
    /// An application id was not registered with the manager.
    UnknownApp(AppId),
    /// A placement or resize was rejected because the target node lacks
    /// capacity.
    InsufficientCapacity {
        /// Node that could not accommodate the change.
        node: NodeId,
        /// Human-readable description of the shortfall.
        detail: String,
    },
    /// A configuration value was rejected at validation time.
    InvalidConfig(String),
    /// An operation was attempted against an entity in the wrong state
    /// (e.g. resizing a pod that already terminated).
    InvalidState(String),
    /// A controller checkpoint failed to decode (truncated, wrong magic,
    /// unsupported version, or malformed field encoding).
    CorruptCheckpoint(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownNode(id) => write!(f, "unknown node {id}"),
            Error::UnknownPod(id) => write!(f, "unknown pod {id}"),
            Error::UnknownApp(id) => write!(f, "unknown app {id}"),
            Error::InsufficientCapacity { node, detail } => {
                write!(f, "insufficient capacity on {node}: {detail}")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            Error::CorruptCheckpoint(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let cases = [
            Error::UnknownNode(NodeId::new(0)).to_string(),
            Error::UnknownPod(PodId::new(1)).to_string(),
            Error::UnknownApp(AppId::new(2)).to_string(),
            Error::InvalidConfig("bad gain".into()).to_string(),
            Error::InvalidState("pod terminated".into()).to_string(),
            Error::InsufficientCapacity { node: NodeId::new(3), detail: "cpu".into() }.to_string(),
            Error::CorruptCheckpoint("short read".into()).to_string(),
        ];
        for msg in cases {
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
