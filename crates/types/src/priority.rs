//! Application priority classes for cluster-level capacity arbitration.
//!
//! When aggregate resize demand exceeds schedulable capacity, the
//! capacity arbiter orders applications by [`PriorityClass`]: lower
//! classes are shed entirely before a higher class loses anything.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How important an application is when the cluster runs out of capacity.
///
/// Ordering is by *importance*: `Critical > Standard > Preemptible`
/// (matching the arbitration rule "shed lower classes first").
///
/// # Examples
///
/// ```
/// use evolve_types::PriorityClass;
/// assert!(PriorityClass::Critical > PriorityClass::Standard);
/// assert!(PriorityClass::Standard > PriorityClass::Preemptible);
/// assert_eq!(PriorityClass::default(), PriorityClass::Standard);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum PriorityClass {
    /// First to be shed: scavenger work that tolerates full revocation.
    Preemptible,
    /// The default class: clipped proportionally only after every
    /// preemptible app has been fully shed.
    #[default]
    Standard,
    /// Never shed while anything lower-priority holds a grant; clipped
    /// only when critical demand alone exceeds capacity.
    Critical,
}

impl PriorityClass {
    /// All classes from most to least important — the order the arbiter
    /// allocates capacity in.
    pub const DESCENDING: [PriorityClass; 3] =
        [PriorityClass::Critical, PriorityClass::Standard, PriorityClass::Preemptible];

    /// Short lowercase label for reports and traces.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            PriorityClass::Critical => "critical",
            PriorityClass::Standard => "standard",
            PriorityClass::Preemptible => "preemptible",
        }
    }
}

impl fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_importance() {
        assert!(PriorityClass::Critical > PriorityClass::Standard);
        assert!(PriorityClass::Standard > PriorityClass::Preemptible);
        assert_eq!(
            PriorityClass::DESCENDING,
            [PriorityClass::Critical, PriorityClass::Standard, PriorityClass::Preemptible]
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PriorityClass::Critical.to_string(), "critical");
        assert_eq!(PriorityClass::Standard.as_str(), "standard");
        assert_eq!(PriorityClass::Preemptible.as_str(), "preemptible");
    }
}
