//! Property-based tests for the `ResourceVec` algebra.

use evolve_types::{Resource, ResourceVec, SimDuration, SimTime};
use proptest::prelude::*;

fn arb_vec() -> impl Strategy<Value = ResourceVec> {
    (0.0..1e6f64, 0.0..1e6f64, 0.0..1e6f64, 0.0..1e6f64)
        .prop_map(|(c, m, d, n)| ResourceVec::new(c, m, d, n))
}

proptest! {
    #[test]
    fn addition_is_commutative(a in arb_vec(), b in arb_vec()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_identity(a in arb_vec()) {
        prop_assert_eq!(a + ResourceVec::ZERO, a);
    }

    #[test]
    fn subtraction_never_negative(a in arb_vec(), b in arb_vec()) {
        let out = a - b;
        for r in Resource::ALL {
            prop_assert!(out[r] >= 0.0);
        }
    }

    #[test]
    fn sub_then_add_dominates_original(a in arb_vec(), b in arb_vec()) {
        // (a - b) + b >= a element-wise because subtraction saturates.
        let out = (a - b) + b;
        for r in Resource::ALL {
            prop_assert!(out[r] >= a[r] - 1e-6);
        }
    }

    #[test]
    fn fits_within_is_reflexive(a in arb_vec()) {
        prop_assert!(a.fits_within(&a));
    }

    #[test]
    fn fits_within_is_transitive(a in arb_vec(), b in arb_vec(), c in arb_vec()) {
        if a.fits_within(&b) && b.fits_within(&c) {
            // Allow the epsilon slack to accumulate across two hops.
            let c_eps = c + ResourceVec::splat(1e-8);
            prop_assert!(a.fits_within(&c_eps));
        }
    }

    #[test]
    fn max_is_upper_bound(a in arb_vec(), b in arb_vec()) {
        let m = a.max(&b);
        prop_assert!(a.fits_within(&m));
        prop_assert!(b.fits_within(&m));
    }

    #[test]
    fn min_is_lower_bound(a in arb_vec(), b in arb_vec()) {
        let m = a.min(&b);
        prop_assert!(m.fits_within(&a));
        prop_assert!(m.fits_within(&b));
    }

    #[test]
    fn dominant_share_bounded(a in arb_vec(), cap in arb_vec()) {
        let (_, share) = a.dominant(&cap);
        prop_assert!(share >= 0.0);
        if a.fits_within(&cap) {
            prop_assert!(share <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn scalar_mul_distributes(a in arb_vec(), b in arb_vec(), k in 0.0..100.0f64) {
        let lhs = (a + b) * k;
        let rhs = a * k + b * k;
        for r in Resource::ALL {
            prop_assert!((lhs[r] - rhs[r]).abs() <= 1e-6 * (1.0 + lhs[r].abs()));
        }
    }

    #[test]
    fn sanitized_is_always_valid(c in any::<f64>(), m in any::<f64>(), d in any::<f64>(), n in any::<f64>()) {
        prop_assert!(ResourceVec::new(c, m, d, n).sanitized().is_valid());
    }

    #[test]
    fn time_add_sub_roundtrip(base in 0u64..1_000_000_000, delta in 0u64..1_000_000_000) {
        let t = SimTime::from_micros(base);
        let d = SimDuration::from_micros(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d).saturating_since(t), d);
    }

    #[test]
    fn duration_float_roundtrip(micros in 0u64..1_000_000_000_000) {
        let d = SimDuration::from_micros(micros);
        let rt = SimDuration::from_secs_f64(d.as_secs_f64());
        let diff = rt.as_micros().abs_diff(d.as_micros());
        // Round-trip through f64 seconds is exact to well under a microsecond
        // at this magnitude.
        prop_assert!(diff <= 1, "diff {diff}");
    }
}
