//! Property-based round-trip tests for the deterministic checkpoint
//! codec: any encodable value must decode back bit-identically, and the
//! byte image of a value must be unique (equal values ⇒ equal bytes).

use evolve_types::{Codec, Decoder, Encoder, ResourceVec, SimDuration, SimTime};
use proptest::prelude::*;

fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(value: &T) -> T {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    let bytes = enc.into_bytes();
    let mut dec = Decoder::new(&bytes);
    let back = T::decode(&mut dec).expect("decode");
    assert!(dec.is_empty(), "trailing bytes after decode");
    back
}

fn arb_vec() -> impl Strategy<Value = ResourceVec> {
    (0.0..1e9f64, 0.0..1e9f64, 0.0..1e9f64, 0.0..1e9f64)
        .prop_map(|(c, m, d, n)| ResourceVec::new(c, m, d, n))
}

proptest! {
    #[test]
    fn resource_vec_round_trips(v in arb_vec()) {
        let back = round_trip(&v);
        // Bit-exact, not approximate: checkpoints must resume the exact
        // control trajectory.
        for r in evolve_types::Resource::ALL {
            prop_assert_eq!(v[r].to_bits(), back[r].to_bits());
        }
    }

    #[test]
    fn sim_time_round_trips(micros in 0u64..u64::MAX / 2) {
        let t = SimTime::from_micros(micros);
        prop_assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn sim_duration_round_trips(micros in 0u64..u64::MAX / 2) {
        let d = SimDuration::from_micros(micros);
        prop_assert_eq!(round_trip(&d), d);
    }

    #[test]
    fn f64_round_trips_bit_exactly(bits in any::<u64>()) {
        // Includes NaN payloads, infinities and subnormals.
        let v = f64::from_bits(bits);
        let back = round_trip(&v);
        prop_assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn vectors_and_options_round_trip(
        values in prop::collection::vec(0u64..u64::MAX, 0..20),
        flag in any::<bool>(),
    ) {
        prop_assert_eq!(round_trip(&values.clone()), values.clone());
        let opt = if flag { Some(values.len() as u64) } else { None };
        prop_assert_eq!(round_trip(&opt), opt);
    }

    #[test]
    fn equal_values_encode_identically(v in arb_vec()) {
        let mut a = Encoder::new();
        v.encode(&mut a);
        let mut b = Encoder::new();
        v.encode(&mut b);
        prop_assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn truncated_images_error_not_panic(v in arb_vec(), cut in 0usize..32) {
        let mut enc = Encoder::new();
        v.encode(&mut enc);
        let bytes = enc.into_bytes();
        if cut < bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            prop_assert!(ResourceVec::decode(&mut dec).is_err());
        }
    }
}
