//! Property-based tests for the telemetry primitives.

use evolve_telemetry::trace::{SpanKind, SpanTrace, TraceEvent, TraceRing};
use evolve_telemetry::{
    Ewma, Histogram, P2Quantile, PloBound, PloTracker, SlidingQuantile, UtilizationAccount,
};
use evolve_types::{Resource, ResourceVec, SimTime};
use proptest::prelude::*;

fn arb_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..1e6f64, 1..300)
}

proptest! {
    #[test]
    fn p2_estimate_within_observed_range(values in arb_values(), p in 0.01..0.99f64) {
        let mut q = P2Quantile::new(p);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in &values {
            q.observe(*v);
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        let est = q.value().unwrap();
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "estimate {est} outside [{lo}, {hi}]");
    }

    #[test]
    fn sliding_quantile_monotone_in_p(values in arb_values()) {
        let mut q = SlidingQuantile::new(500);
        for v in values {
            q.observe(v);
        }
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = q.quantile(p).unwrap();
            prop_assert!(v >= prev, "quantile not monotone at p={p}");
            prev = v;
        }
    }

    #[test]
    fn histogram_percentiles_bracketed_and_monotone(values in arb_values()) {
        let mut h = Histogram::new(0.1, 1.2, 100);
        for v in &values {
            h.record(*v);
        }
        let min = h.min().unwrap();
        let max = h.max().unwrap();
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.percentile(p).unwrap();
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9, "p{p}: {v} outside [{min}, {max}]");
            prop_assert!(v >= prev - 1e-9, "percentiles not monotone");
            prev = v;
        }
    }

    #[test]
    fn histogram_merge_equals_bulk_recording(a in arb_values(), b in arb_values()) {
        let mut ha = Histogram::new(0.1, 1.2, 100);
        let mut hb = Histogram::new(0.1, 1.2, 100);
        let mut hall = Histogram::new(0.1, 1.2, 100);
        for v in &a {
            ha.record(*v);
            hall.record(*v);
        }
        for v in &b {
            hb.record(*v);
            hall.record(*v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.percentile(0.9), hall.percentile(0.9));
    }

    #[test]
    fn ewma_stays_within_observed_range(values in arb_values(), alpha in 0.01..1.0f64) {
        let mut f = Ewma::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in values {
            lo = lo.min(v);
            hi = hi.max(v);
            let out = f.observe(v);
            prop_assert!(out >= lo - 1e-9 && out <= hi + 1e-9);
        }
    }

    #[test]
    fn plo_tracker_counts_are_consistent(
        measurements in prop::collection::vec(0.0..200.0f64, 1..200),
        target in 1.0..100.0f64,
    ) {
        let mut t = PloTracker::new(target, PloBound::Upper);
        let mut expected = 0u64;
        for (i, m) in measurements.iter().enumerate() {
            if *m > target {
                expected += 1;
            }
            t.record_window(SimTime::from_secs(i as u64), *m);
        }
        prop_assert_eq!(t.violations(), expected);
        prop_assert!(t.violation_rate() >= 0.0 && t.violation_rate() <= 1.0);
        prop_assert!(t.worst_severity() >= t.mean_severity() || t.violations() == 0);
    }

    #[test]
    fn trace_ring_memory_stays_bounded(capacity in 0usize..64, pushes in 0u64..500) {
        let mut ring = TraceRing::new(capacity);
        for t in 0..pushes {
            ring.push(TraceEvent::Span(SpanTrace {
                tick: t,
                at: SimTime::from_secs(t),
                kind: SpanKind::Control,
                wall_ns: t,
            }));
        }
        // Retention never exceeds capacity; every overflow is accounted.
        prop_assert!(ring.len() <= capacity);
        prop_assert_eq!(ring.len() as u64 + ring.dropped(), pushes);
        prop_assert_eq!(ring.dropped(), pushes.saturating_sub(capacity as u64));
        // The survivors are exactly the newest events, oldest first.
        let ticks: Vec<u64> = ring.spans().map(|s| s.tick).collect();
        let expected: Vec<u64> = (pushes.saturating_sub(ring.len() as u64)..pushes).collect();
        prop_assert_eq!(ticks, expected);
        // The JSONL dump renders one line per retained event.
        prop_assert_eq!(ring.to_jsonl().lines().count(), ring.len());
    }

    #[test]
    fn utilization_shares_bounded_when_inputs_bounded(
        states in prop::collection::vec(((0.0..100.0f64), (0.0..100.0f64)), 2..50),
    ) {
        let cap = ResourceVec::splat(100.0);
        let mut acct = UtilizationAccount::new(cap);
        for (i, (alloc, used)) in states.iter().enumerate() {
            acct.record(
                SimTime::from_secs(i as u64 * 10),
                ResourceVec::splat(*alloc),
                ResourceVec::splat(*used),
            );
        }
        let s = acct.summary();
        for r in Resource::ALL {
            prop_assert!(s.allocated_share[r] >= 0.0 && s.allocated_share[r] <= 1.0 + 1e-9);
            prop_assert!(s.used_share[r] >= 0.0 && s.used_share[r] <= 1.0 + 1e-9);
            prop_assert!(s.efficiency[r] >= 0.0 && s.efficiency[r] <= 1.0);
        }
    }
}
