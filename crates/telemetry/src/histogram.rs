//! Log-bucketed histograms.
//!
//! Mirrors the exponential-bucket histograms a Prometheus-style backend
//! exports: cheap to record, mergeable across replicas, percentile queries
//! by bucket interpolation.

use serde::{Deserialize, Serialize};

/// A histogram with exponentially-growing bucket boundaries.
///
/// Buckets cover `[lo * growth^i, lo * growth^(i+1))`; values below `lo`
/// land in the first bucket and values beyond the last boundary in the
/// overflow bucket. Defaults suit request latencies in milliseconds
/// (0.1 ms … ~1.7 min with 10% growth).
///
/// # Examples
///
/// ```
/// use evolve_telemetry::Histogram;
///
/// let mut h = Histogram::latency_default();
/// for v in [1.0, 2.0, 3.0, 50.0, 120.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// let p80 = h.percentile(0.8).unwrap();
/// assert!(p80 >= 3.0 && p80 <= 60.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    growth: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets starting at `lo` and
    /// growing by factor `growth` per bucket.
    ///
    /// # Panics
    ///
    /// Panics when `lo <= 0`, `growth <= 1` or `buckets == 0`.
    #[must_use]
    pub fn new(lo: f64, growth: f64, buckets: usize) -> Self {
        assert!(lo > 0.0, "histogram lower bound must be positive");
        assert!(growth > 1.0, "histogram growth factor must exceed 1");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            growth,
            counts: vec![0; buckets + 1], // +1 overflow bucket
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A default layout for request latencies in milliseconds:
    /// 0.1 ms lower bound, 10% growth, 150 buckets (≈0.1 ms to ≈1.7 min).
    #[must_use]
    pub fn latency_default() -> Self {
        Histogram::new(0.1, 1.1, 150)
    }

    /// Records one value.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self.bucket_index(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn bucket_index(&self, value: f64) -> usize {
        if value < self.lo {
            return 0;
        }
        let idx = ((value / self.lo).ln() / self.growth.ln()).floor() as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Lower boundary of bucket `i`.
    fn bucket_lo(&self, i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            self.lo * self.growth.powi(i as i32)
        }
    }

    /// Total recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded values, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// Smallest recorded value, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// Percentile by linear interpolation inside the containing bucket;
    /// `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let target = (p * self.total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            let next = cumulative + c;
            if next >= target {
                let lo = self.bucket_lo(i).max(self.min);
                let hi = if i + 1 < self.counts.len() {
                    self.bucket_lo(i + 1).min(self.max)
                } else {
                    self.max
                };
                let frac = (target - cumulative) as f64 / *c as f64;
                return Some(lo + (hi - lo).max(0.0) * frac);
            }
            cumulative = next;
        }
        Some(self.max)
    }

    /// Merges another histogram recorded with the same layout.
    ///
    /// # Panics
    ///
    /// Panics when layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            (self.lo - other.lo).abs() < 1e-12
                && (self.growth - other.growth).abs() < 1e-12
                && self.counts.len() == other.counts.len(),
            "histogram layouts must match to merge"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all recorded values, keeping the layout.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_queries() {
        let h = Histogram::latency_default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn count_sum_mean() {
        let mut h = Histogram::latency_default();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 6.0);
        assert_eq!(h.mean(), Some(2.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(3.0));
    }

    #[test]
    fn percentile_bounds() {
        let mut h = Histogram::latency_default();
        for i in 1..=1000 {
            h.record(f64::from(i));
        }
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        // Bucket resolution is 10%; allow that much error.
        assert!((p50 - 500.0).abs() / 500.0 < 0.15, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.15, "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn percentile_extremes_hit_min_max_region() {
        let mut h = Histogram::latency_default();
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        assert!(h.percentile(0.0).unwrap() <= 11.0);
        assert!(h.percentile(1.0).unwrap() >= 27.0);
    }

    #[test]
    fn values_below_lower_bound_land_in_first_bucket() {
        let mut h = Histogram::new(1.0, 2.0, 8);
        h.record(0.001);
        assert_eq!(h.count(), 1);
        assert!(h.percentile(1.0).unwrap() <= 0.001 + 1e-9);
    }

    #[test]
    fn overflow_values_are_retained() {
        let mut h = Histogram::new(1.0, 2.0, 4);
        h.record(1e9);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Some(1e9));
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut h = Histogram::latency_default();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new(1.0, 2.0, 8);
        let mut b = Histogram::new(1.0, 2.0, 8);
        a.record(1.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "layouts must match")]
    fn merge_rejects_mismatched_layouts() {
        let mut a = Histogram::new(1.0, 2.0, 8);
        let b = Histogram::new(1.0, 3.0, 8);
        a.merge(&b);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::latency_default();
        h.record(5.0);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.9), None);
    }
}
