//! Online quantile estimation.
//!
//! Tail latency (p95/p99) is the control signal for latency PLOs, so the
//! platform needs cheap online percentile estimates. [`P2Quantile`]
//! implements the classic P² algorithm of Jain & Chlamtac (CACM 1985):
//! five markers, O(1) memory, no sample retention. [`SlidingQuantile`]
//! keeps an exact window and is used where fidelity matters more than
//! memory (per-control-window percentiles) and to validate P² in tests.

use std::collections::VecDeque;

use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::{Error, Result};
use serde::{Deserialize, Serialize};

/// O(1)-memory streaming quantile estimator (the P² algorithm).
///
/// # Examples
///
/// ```
/// use evolve_telemetry::P2Quantile;
///
/// let mut q = P2Quantile::new(0.5);
/// for v in [5.0, 1.0, 4.0, 2.0, 3.0, 6.0, 0.0] {
///     q.observe(v);
/// }
/// let median = q.value().unwrap();
/// assert!(median > 1.0 && median < 5.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based as in the paper).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    /// Number of observations seen so far.
    count: usize,
    /// Initial observations until the markers can be seeded; kept sorted
    /// so [`P2Quantile::value`] can index it directly.
    seed: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile, `p` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `(0, 1)`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            seed: Vec::with_capacity(5),
        }
    }

    /// The quantile this estimator tracks.
    #[must_use]
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Number of observations fed so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.seed.len() < 5 {
            let at = self.seed.partition_point(|v| v.total_cmp(&x).is_lt());
            self.seed.insert(at, x);
            if self.seed.len() == 5 {
                self.q.copy_from_slice(&self.seed);
            }
            return;
        }

        // Locate the cell containing x and clamp extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers with the piecewise-parabolic formula.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] =
                    if self.q[i - 1] < qp && qp < self.q[i + 1] { qp } else { self.linear(i, d) };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate; `None` before any observation. With fewer than
    /// five observations, falls back to the exact order statistic of the
    /// seed buffer.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.seed.len() < 5 {
            // The seed buffer is maintained in sorted order, so the exact
            // order statistic is a direct index — no clone, no re-sort.
            let idx = ((self.seed.len() as f64 - 1.0) * self.p).round() as usize;
            return self.seed.get(idx).copied();
        }
        Some(self.q[2])
    }
}

/// Exact quantiles over a bounded sliding window of recent observations.
///
/// # Examples
///
/// ```
/// use evolve_telemetry::SlidingQuantile;
///
/// let mut q = SlidingQuantile::new(100);
/// for v in 1..=100 {
///     q.observe(f64::from(v));
/// }
/// assert_eq!(q.quantile(0.99), Some(99.0)); // nearest rank
/// assert_eq!(q.quantile(1.0), Some(100.0));
/// assert_eq!(q.quantile(0.5), Some(51.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlidingQuantile {
    window: VecDeque<f64>,
    capacity: usize,
    /// Sorted view of the window, maintained incrementally: each
    /// observation is a binary-search evict + insert instead of a full
    /// clone-and-sort on query. Derived data, so skipped by serde and
    /// rebuilt on demand (see [`SlidingQuantile::repair`]).
    #[serde(skip)]
    sorted: Vec<f64>,
}

impl SlidingQuantile {
    /// Creates an estimator over the last `capacity` observations. The
    /// window is allocated up front for the full capacity.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingQuantile {
            window: VecDeque::with_capacity(capacity),
            capacity,
            sorted: Vec::with_capacity(capacity),
        }
    }

    /// Rebuilds the sorted view when it is out of sync with the window
    /// (only possible after serde deserialization, which skips it).
    fn repair(&mut self) {
        if self.sorted.len() != self.window.len() {
            self.sorted.clear();
            self.sorted.extend(self.window.iter().copied());
            self.sorted.sort_by(f64::total_cmp);
        }
    }

    /// Feeds one observation, evicting the oldest when full.
    pub fn observe(&mut self, x: f64) {
        self.repair();
        if self.window.len() == self.capacity {
            let old = self.window.pop_front().expect("window is full");
            let idx = self
                .sorted
                .binary_search_by(|v| v.total_cmp(&old))
                .expect("evicted value present in sorted view");
            self.sorted.remove(idx);
        }
        self.window.push_back(x);
        let at = self.sorted.partition_point(|v| v.total_cmp(&x).is_lt());
        self.sorted.insert(at, x);
    }

    /// Number of observations currently in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// `true` when the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The exact `p`-quantile (nearest-rank) of the window, `None` when
    /// empty. The sorted view is maintained incrementally by
    /// [`SlidingQuantile::observe`], so every query is O(1).
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    pub fn quantile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0, 1]");
        self.repair();
        if self.sorted.is_empty() {
            return None;
        }
        let idx = ((self.sorted.len() as f64 - 1.0) * p).round() as usize;
        Some(self.sorted[idx])
    }

    /// Mean of the window, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.window.iter().sum::<f64>() / self.window.len() as f64)
        }
    }

    /// Clears the window.
    pub fn clear(&mut self) {
        self.window.clear();
        self.sorted.clear();
    }
}

/// Equality over the logical state (window contents and capacity); the
/// incrementally-maintained sorted view is derived data and ignored.
impl PartialEq for SlidingQuantile {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity && self.window == other.window
    }
}

impl Codec for SlidingQuantile {
    fn encode(&self, enc: &mut Encoder) {
        self.capacity.encode(enc);
        self.window.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let capacity = usize::decode(dec)?;
        if capacity == 0 {
            return Err(Error::CorruptCheckpoint("window capacity must be positive".into()));
        }
        let window = VecDeque::<f64>::decode(dec)?;
        if window.len() > capacity {
            return Err(Error::CorruptCheckpoint(format!(
                "window holds {} observations but capacity is {capacity}",
                window.len()
            )));
        }
        let mut sorted: Vec<f64> = window.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        Ok(SlidingQuantile { window, capacity, sorted })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2_empty_is_none() {
        assert_eq!(P2Quantile::new(0.9).value(), None);
    }

    #[test]
    fn p2_small_sample_uses_exact_order_statistic() {
        let mut q = P2Quantile::new(0.5);
        q.observe(3.0);
        q.observe(1.0);
        q.observe(2.0);
        assert_eq!(q.value(), Some(2.0));
        assert_eq!(q.count(), 3);
    }

    #[test]
    fn p2_median_of_uniform_stream() {
        let mut q = P2Quantile::new(0.5);
        // Deterministic pseudo-uniform sequence over [0, 1).
        let mut x = 0.123_f64;
        for _ in 0..10_000 {
            x = (x * 9301.0 + 49297.0) % 1.0;
            q.observe(x);
        }
        let m = q.value().unwrap();
        assert!((m - 0.5).abs() < 0.05, "median {m}");
    }

    #[test]
    fn p2_p99_of_linear_stream() {
        let mut q = P2Quantile::new(0.99);
        for i in 0..100_000 {
            q.observe(f64::from(i % 1000));
        }
        let v = q.value().unwrap();
        assert!((v - 990.0).abs() < 20.0, "p99 {v}");
    }

    #[test]
    fn p2_tracks_min_and_max_markers() {
        let mut q = P2Quantile::new(0.5);
        for v in [5.0, 6.0, 7.0, 8.0, 9.0, -100.0, 100.0] {
            q.observe(v);
        }
        // After clamping, estimate stays within observed range.
        let m = q.value().unwrap();
        assert!((-100.0..=100.0).contains(&m));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn p2_rejects_bad_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn p2_agrees_with_exact_on_large_stream() {
        let mut p2 = P2Quantile::new(0.95);
        let mut exact = SlidingQuantile::new(50_000);
        let mut x = 0.5_f64;
        for _ in 0..50_000 {
            // Log-normal-ish heavy-tailed values.
            x = (x * 1103.0 + 377.0) % 1.0;
            let v = (-(1.0 - x).ln()) * 10.0; // exponential tail
            p2.observe(v);
            exact.observe(v);
        }
        let a = p2.value().unwrap();
        let b = exact.quantile(0.95).unwrap();
        let rel = (a - b).abs() / b;
        assert!(rel < 0.05, "p2 {a} exact {b} rel {rel}");
    }

    #[test]
    fn sliding_quantile_exact_ranks() {
        let mut q = SlidingQuantile::new(10);
        for v in [9.0, 1.0, 8.0, 2.0, 7.0, 3.0, 6.0, 4.0, 5.0, 0.0] {
            q.observe(v);
        }
        assert_eq!(q.quantile(0.0), Some(0.0));
        assert_eq!(q.quantile(1.0), Some(9.0));
        assert_eq!(q.quantile(0.5), Some(5.0));
        assert_eq!(q.mean(), Some(4.5));
    }

    #[test]
    fn sliding_quantile_evicts() {
        let mut q = SlidingQuantile::new(3);
        for v in [1.0, 2.0, 3.0, 100.0] {
            q.observe(v);
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.quantile(0.0), Some(2.0));
    }

    #[test]
    fn sliding_quantile_cache_tracks_new_observations() {
        let mut q = SlidingQuantile::new(4);
        q.observe(1.0);
        q.observe(3.0);
        assert_eq!(q.quantile(1.0), Some(3.0));
        // A repeated query hits the cached sorted view.
        assert_eq!(q.quantile(1.0), Some(3.0));
        // New observations must invalidate it.
        q.observe(5.0);
        assert_eq!(q.quantile(1.0), Some(5.0));
        assert_eq!(q.quantile(0.0), Some(1.0));
        // Eviction refreshes the view too.
        q.observe(2.0);
        q.observe(4.0);
        assert_eq!(q.quantile(1.0), Some(5.0));
        assert_eq!(q.quantile(0.0), Some(2.0));
    }

    #[test]
    fn sliding_quantile_incremental_matches_full_sort_with_duplicates() {
        // Duplicate values stress the binary-search evict path: equal
        // total_cmp keys are bit-identical, so evicting "any" duplicate
        // must still leave the same multiset as a full re-sort would.
        let mut q = SlidingQuantile::new(5);
        let stream = [2.0, 2.0, 1.0, 2.0, 3.0, 2.0, 1.0, 1.0, 2.0, 3.0, -0.0, 0.0];
        for (i, &v) in stream.iter().enumerate() {
            q.observe(v);
            let start = (i + 1).saturating_sub(5);
            let mut expect: Vec<f64> = stream[start..=i].to_vec();
            expect.sort_by(f64::total_cmp);
            for (k, want) in expect.iter().enumerate() {
                let p = if expect.len() == 1 { 0.0 } else { k as f64 / (expect.len() - 1) as f64 };
                assert_eq!(q.quantile(p).unwrap().to_bits(), want.to_bits(), "rank {k} after {i}");
            }
        }
    }

    #[test]
    fn sliding_quantile_empty_and_clear() {
        let mut q = SlidingQuantile::new(5);
        assert!(q.is_empty());
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.mean(), None);
        q.observe(1.0);
        q.clear();
        assert!(q.is_empty());
    }
}
