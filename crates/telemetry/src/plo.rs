//! Performance-level-objective (PLO) accounting.
//!
//! Skynet/EVOLVE replace user-provided resource requests with *performance
//! level objectives* — "p99 latency below 100 ms", "throughput above 5 000
//! records/s". The tracker here is the measurement side: each control
//! window contributes one measured value, compared against the target; the
//! tracker accumulates the violation statistics every experiment table
//! reports (violation count and rate, mean severity, worst excursion).

use std::collections::VecDeque;

use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::{Error, Result, SimTime};
use serde::{Deserialize, Serialize};

/// Which side of the target is compliant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PloBound {
    /// Measured value must stay **at or below** the target (latency).
    Upper,
    /// Measured value must stay **at or above** the target (throughput).
    Lower,
}

/// One evaluated control window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PloWindow {
    /// End of the window.
    pub at: SimTime,
    /// Measured value for the window.
    pub measured: f64,
    /// Whether the window violated the objective.
    pub violated: bool,
}

/// Tracks PLO compliance across control windows.
///
/// # Examples
///
/// ```
/// use evolve_telemetry::{PloBound, PloTracker};
/// use evolve_types::SimTime;
///
/// // Throughput objective: at least 1000 records/s.
/// let mut t = PloTracker::new(1000.0, PloBound::Lower);
/// t.record_window(SimTime::from_secs(1), 1200.0);
/// t.record_window(SimTime::from_secs(2), 700.0);
/// assert_eq!(t.windows(), 2);
/// assert_eq!(t.violations(), 1);
/// assert!((t.violation_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PloTracker {
    target: f64,
    bound: PloBound,
    windows: u64,
    violations: u64,
    /// Sum of relative excursions beyond the target over violating windows.
    severity_sum: f64,
    /// Worst relative excursion seen.
    worst_severity: f64,
    /// Recent window history for reporting: a bounded ring that keeps the
    /// **most recent** `history_cap` windows, evicting the oldest.
    history: VecDeque<PloWindow>,
    history_cap: usize,
}

impl PloTracker {
    /// Creates a tracker for the given target and bound direction.
    ///
    /// # Panics
    ///
    /// Panics when `target` is not finite and positive.
    #[must_use]
    pub fn new(target: f64, bound: PloBound) -> Self {
        PloTracker::with_history_cap(target, bound, 100_000)
    }

    /// Creates a tracker retaining at most `history_cap` recent windows.
    ///
    /// # Panics
    ///
    /// Panics when `target` is not finite and positive, or when
    /// `history_cap` is zero.
    #[must_use]
    pub fn with_history_cap(target: f64, bound: PloBound, history_cap: usize) -> Self {
        assert!(target.is_finite() && target > 0.0, "PLO target must be positive");
        assert!(history_cap > 0, "history capacity must be positive");
        PloTracker {
            target,
            bound,
            windows: 0,
            violations: 0,
            severity_sum: 0.0,
            worst_severity: 0.0,
            history: VecDeque::new(),
            history_cap,
        }
    }

    /// The objective's target value.
    #[must_use]
    pub fn target(&self) -> f64 {
        self.target
    }

    /// The objective's bound direction.
    #[must_use]
    pub fn bound(&self) -> PloBound {
        self.bound
    }

    /// Records the measured value of one control window and returns whether
    /// the window violated the objective. Non-finite measurements count as
    /// violations with maximal severity 1.0 (the service produced no valid
    /// signal — e.g. all requests timed out).
    pub fn record_window(&mut self, at: SimTime, measured: f64) -> bool {
        self.windows += 1;
        let (violated, severity) = if !measured.is_finite() {
            (true, 1.0)
        } else {
            match self.bound {
                PloBound::Upper => {
                    let v = measured > self.target;
                    (v, if v { (measured - self.target) / self.target } else { 0.0 })
                }
                PloBound::Lower => {
                    let v = measured < self.target;
                    (v, if v { (self.target - measured) / self.target } else { 0.0 })
                }
            }
        };
        if violated {
            self.violations += 1;
            self.severity_sum += severity;
            self.worst_severity = self.worst_severity.max(severity);
        }
        if self.history.len() == self.history_cap {
            self.history.pop_front();
        }
        self.history.push_back(PloWindow { at, measured, violated });
        violated
    }

    /// Total control windows evaluated.
    #[must_use]
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Number of violating windows.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Fraction of windows in violation (0 when no windows were recorded).
    #[must_use]
    pub fn violation_rate(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.violations as f64 / self.windows as f64
        }
    }

    /// Mean relative excursion beyond the target across violating windows
    /// (0 when there were no violations).
    #[must_use]
    pub fn mean_severity(&self) -> f64 {
        if self.violations == 0 {
            0.0
        } else {
            self.severity_sum / self.violations as f64
        }
    }

    /// Worst relative excursion beyond the target.
    #[must_use]
    pub fn worst_severity(&self) -> f64 {
        self.worst_severity
    }

    /// The retained per-window history, oldest first. When more than the
    /// history capacity of windows have been recorded, this is the **most
    /// recent** `history_cap` of them.
    pub fn history(&self) -> impl Iterator<Item = &PloWindow> {
        self.history.iter()
    }

    /// Number of windows currently retained in the history.
    #[must_use]
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// The signed relative error of a measurement against the target,
    /// oriented so that **positive means "needs more resources"**:
    /// latency above target → positive, throughput below target → positive.
    /// This is the error signal handed to the PID controller.
    #[must_use]
    pub fn control_error(&self, measured: f64) -> f64 {
        if !measured.is_finite() {
            return 1.0;
        }
        match self.bound {
            PloBound::Upper => (measured - self.target) / self.target,
            PloBound::Lower => (self.target - measured) / self.target,
        }
    }
}

impl Codec for PloBound {
    fn encode(&self, enc: &mut Encoder) {
        let tag: u8 = match self {
            PloBound::Upper => 0,
            PloBound::Lower => 1,
        };
        tag.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        match u8::decode(dec)? {
            0 => Ok(PloBound::Upper),
            1 => Ok(PloBound::Lower),
            other => Err(Error::CorruptCheckpoint(format!("invalid plo bound tag {other}"))),
        }
    }
}

impl Codec for PloWindow {
    fn encode(&self, enc: &mut Encoder) {
        self.at.encode(enc);
        self.measured.encode(enc);
        self.violated.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(PloWindow {
            at: SimTime::decode(dec)?,
            measured: f64::decode(dec)?,
            violated: bool::decode(dec)?,
        })
    }
}

impl Codec for PloTracker {
    fn encode(&self, enc: &mut Encoder) {
        self.target.encode(enc);
        self.bound.encode(enc);
        self.windows.encode(enc);
        self.violations.encode(enc);
        self.severity_sum.encode(enc);
        self.worst_severity.encode(enc);
        self.history.encode(enc);
        self.history_cap.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let target = f64::decode(dec)?;
        let bound = PloBound::decode(dec)?;
        let windows = u64::decode(dec)?;
        let violations = u64::decode(dec)?;
        let severity_sum = f64::decode(dec)?;
        let worst_severity = f64::decode(dec)?;
        let history = VecDeque::<PloWindow>::decode(dec)?;
        let history_cap = usize::decode(dec)?;
        if !(target.is_finite() && target > 0.0) {
            return Err(Error::CorruptCheckpoint("plo target must be positive".into()));
        }
        if history_cap == 0 {
            return Err(Error::CorruptCheckpoint("plo history capacity must be positive".into()));
        }
        Ok(PloTracker {
            target,
            bound,
            windows,
            violations,
            severity_sum,
            worst_severity,
            history,
            history_cap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bound_latency_semantics() {
        let mut t = PloTracker::new(100.0, PloBound::Upper);
        assert!(!t.record_window(SimTime::from_secs(1), 99.0));
        assert!(t.record_window(SimTime::from_secs(2), 150.0));
        assert_eq!(t.violations(), 1);
        assert!((t.mean_severity() - 0.5).abs() < 1e-12);
        assert!((t.worst_severity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_throughput_semantics() {
        let mut t = PloTracker::new(1000.0, PloBound::Lower);
        assert!(!t.record_window(SimTime::from_secs(1), 1500.0));
        assert!(t.record_window(SimTime::from_secs(2), 500.0));
        assert!((t.mean_severity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exact_target_is_compliant() {
        let mut t = PloTracker::new(100.0, PloBound::Upper);
        assert!(!t.record_window(SimTime::ZERO, 100.0));
        let mut t = PloTracker::new(100.0, PloBound::Lower);
        assert!(!t.record_window(SimTime::ZERO, 100.0));
    }

    #[test]
    fn non_finite_measurement_is_max_violation() {
        let mut t = PloTracker::new(100.0, PloBound::Upper);
        assert!(t.record_window(SimTime::ZERO, f64::NAN));
        assert_eq!(t.worst_severity(), 1.0);
        assert_eq!(t.control_error(f64::INFINITY), 1.0);
    }

    #[test]
    fn violation_rate_counts() {
        let mut t = PloTracker::new(10.0, PloBound::Upper);
        for i in 0..10u64 {
            t.record_window(SimTime::from_secs(i), if i % 2 == 0 { 5.0 } else { 20.0 });
        }
        assert_eq!(t.windows(), 10);
        assert_eq!(t.violations(), 5);
        assert!((t.violation_rate() - 0.5).abs() < 1e-12);
        assert_eq!(t.history_len(), 10);
    }

    #[test]
    fn history_overflow_keeps_newest_windows() {
        let mut t = PloTracker::with_history_cap(10.0, PloBound::Upper, 4);
        for i in 0..10u64 {
            t.record_window(SimTime::from_secs(i), i as f64);
        }
        // All 10 windows counted, only the newest 4 retained.
        assert_eq!(t.windows(), 10);
        assert_eq!(t.history_len(), 4);
        let retained: Vec<u64> = t.history().map(|w| w.at.as_micros() / 1_000_000).collect();
        assert_eq!(retained, vec![6, 7, 8, 9]);
    }

    #[test]
    fn empty_tracker_rates_are_zero() {
        let t = PloTracker::new(1.0, PloBound::Upper);
        assert_eq!(t.violation_rate(), 0.0);
        assert_eq!(t.mean_severity(), 0.0);
    }

    #[test]
    fn control_error_orientation() {
        let lat = PloTracker::new(100.0, PloBound::Upper);
        assert!(lat.control_error(150.0) > 0.0); // too slow → scale up
        assert!(lat.control_error(50.0) < 0.0); // fast → scale down
        let thr = PloTracker::new(100.0, PloBound::Lower);
        assert!(thr.control_error(50.0) > 0.0); // too little throughput → scale up
        assert!(thr.control_error(150.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "target must be positive")]
    fn rejects_nonpositive_target() {
        let _ = PloTracker::new(0.0, PloBound::Upper);
    }
}
