//! Metrics pipeline for the EVOLVE platform.
//!
//! The real EVOLVE/Skynet systems scrape Prometheus/cAdvisor metrics at a
//! fixed cadence and feed filtered signals into the resource controllers.
//! This crate reproduces that pipeline for the simulated cluster:
//!
//! * [`TimeSeries`] — bounded time-stamped sample buffers with window
//!   queries, the storage backing every exported metric.
//! * [`Ewma`], [`HoltLinear`], [`RateEstimator`] — the smoothing and
//!   short-horizon prediction filters applied before control decisions.
//! * [`P2Quantile`] and [`SlidingQuantile`] — online tail-latency
//!   estimators (the P² algorithm for O(1)-memory percentiles and an exact
//!   sliding-window variant for validation).
//! * [`Histogram`] — log-bucketed latency histograms with percentile
//!   queries, mirroring what a metrics backend exports.
//! * [`PloTracker`] — performance-level-objective accounting: violation
//!   windows, severity and time-in-violation.
//! * [`UtilizationAccount`] — time-weighted utilization integrals
//!   (allocated/capacity, used/capacity, used/allocated) per resource.
//! * [`MetricRegistry`] — a string-keyed registry tying the above together
//!   for experiment export, with typed [`MetricKey`] handles on the
//!   recording hot path.
//! * [`trace`] — the structured decision-trace subsystem: bounded rings
//!   of per-tick control/scheduling/lifecycle records, dumpable as
//!   deterministic JSONL.
//!
//! # Examples
//!
//! ```
//! use evolve_telemetry::{P2Quantile, PloTracker, PloBound};
//! use evolve_types::SimTime;
//!
//! let mut p99 = P2Quantile::new(0.99);
//! for i in 0..1000 {
//!     p99.observe(f64::from(i));
//! }
//! assert!(p99.value().unwrap() > 900.0);
//!
//! // A latency PLO of 100ms, evaluated per control window.
//! let mut plo = PloTracker::new(100.0, PloBound::Upper);
//! plo.record_window(SimTime::from_secs(1), 80.0);
//! plo.record_window(SimTime::from_secs(2), 130.0);
//! assert_eq!(plo.violations(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod filter;
mod histogram;
mod plo;
mod quantile;
mod registry;
mod series;
pub mod trace;
mod util;

pub use filter::{Ewma, HoltLinear, RateEstimator};
pub use histogram::Histogram;
pub use plo::{PloBound, PloTracker, PloWindow};
pub use quantile::{P2Quantile, SlidingQuantile};
pub use registry::{MetricKey, MetricRegistry};
pub use series::{Sample, TimeSeries};
pub use util::{UtilizationAccount, UtilizationSummary};
