//! Smoothing and short-horizon prediction filters.
//!
//! Raw scraped signals (request rate, usage, latency) are noisy; the
//! controllers consume filtered versions. [`Ewma`] is the workhorse
//! smoother, [`HoltLinear`] adds a trend term for one-step-ahead load
//! prediction, and [`RateEstimator`] turns discrete events into a rate.

use std::collections::VecDeque;

use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::{Result, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Exponentially-weighted moving average.
///
/// # Examples
///
/// ```
/// use evolve_telemetry::Ewma;
///
/// let mut f = Ewma::new(0.5);
/// f.observe(10.0);
/// f.observe(20.0);
/// assert_eq!(f.value(), Some(15.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates a filter with smoothing factor `alpha` in `(0, 1]`; larger
    /// alpha tracks faster, smaller alpha smooths harder.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is not in `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        Ewma { alpha, state: None }
    }

    /// Feeds an observation and returns the updated estimate.
    pub fn observe(&mut self, value: f64) -> f64 {
        let next = match self.state {
            None => value,
            Some(prev) => prev + self.alpha * (value - prev),
        };
        self.state = Some(next);
        next
    }

    /// Current estimate, `None` before the first observation.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.state
    }

    /// Current estimate, or `default` before the first observation.
    #[must_use]
    pub fn value_or(&self, default: f64) -> f64 {
        self.state.unwrap_or(default)
    }

    /// Discards all state.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

impl Codec for Ewma {
    fn encode(&self, enc: &mut Encoder) {
        self.alpha.encode(enc);
        self.state.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Ewma { alpha: f64::decode(dec)?, state: Option::<f64>::decode(dec)? })
    }
}

/// Holt's double-exponential smoothing: level + trend, with h-step-ahead
/// forecasts. The EVOLVE load predictor uses this to scale *ahead* of
/// diurnal ramps instead of only reacting.
///
/// # Examples
///
/// ```
/// use evolve_telemetry::HoltLinear;
///
/// let mut f = HoltLinear::new(0.5, 0.3);
/// for i in 0..50 {
///     f.observe(2.0 * f64::from(i));
/// }
/// // Forecast 5 steps ahead of t=49: roughly 2*54.
/// let fc = f.forecast(5.0);
/// assert!((fc - 108.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoltLinear {
    alpha: f64,
    beta: f64,
    level: Option<f64>,
    trend: f64,
}

impl HoltLinear {
    /// Creates a filter with level gain `alpha` and trend gain `beta`,
    /// both in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when either gain is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "Holt alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "Holt beta must be in (0, 1]");
        HoltLinear { alpha, beta, level: None, trend: 0.0 }
    }

    /// Feeds an observation (one per fixed control interval).
    pub fn observe(&mut self, value: f64) {
        match self.level {
            None => {
                self.level = Some(value);
                self.trend = 0.0;
            }
            Some(prev_level) => {
                let level = self.alpha * value + (1.0 - self.alpha) * (prev_level + self.trend);
                self.trend = self.beta * (level - prev_level) + (1.0 - self.beta) * self.trend;
                self.level = Some(level);
            }
        }
    }

    /// Smoothed level, `None` before the first observation.
    #[must_use]
    pub fn level(&self) -> Option<f64> {
        self.level
    }

    /// Per-step trend estimate.
    #[must_use]
    pub fn trend(&self) -> f64 {
        self.trend
    }

    /// Forecast `steps` control intervals ahead (0 = smoothed current
    /// value). Returns 0 before the first observation.
    #[must_use]
    pub fn forecast(&self, steps: f64) -> f64 {
        self.level.map_or(0.0, |l| l + self.trend * steps)
    }
}

impl Codec for HoltLinear {
    fn encode(&self, enc: &mut Encoder) {
        self.alpha.encode(enc);
        self.beta.encode(enc);
        self.level.encode(enc);
        self.trend.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(HoltLinear {
            alpha: f64::decode(dec)?,
            beta: f64::decode(dec)?,
            level: Option::<f64>::decode(dec)?,
            trend: f64::decode(dec)?,
        })
    }
}

/// Converts discrete events (request arrivals, completions) into a rate in
/// events/second over a sliding time window.
///
/// # Examples
///
/// ```
/// use evolve_telemetry::RateEstimator;
/// use evolve_types::{SimDuration, SimTime};
///
/// let mut r = RateEstimator::new(SimDuration::from_secs(10));
/// for ms in (0..10_000).step_by(100) {
///     r.record(SimTime::from_millis(ms));
/// }
/// let rate = r.rate(SimTime::from_secs(10));
/// assert!((rate - 10.0).abs() < 0.5, "rate {rate}");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RateEstimator {
    window: SimDuration,
    events: VecDeque<SimTime>,
}

impl RateEstimator {
    /// Creates an estimator over the given sliding window.
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero.
    #[must_use]
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "rate window must be positive");
        RateEstimator { window, events: VecDeque::new() }
    }

    /// Records one event at time `at`.
    pub fn record(&mut self, at: SimTime) {
        self.events.push_back(at);
        self.evict(at);
    }

    /// Records `count` events at time `at`.
    pub fn record_many(&mut self, at: SimTime, count: usize) {
        for _ in 0..count {
            self.events.push_back(at);
        }
        self.evict(at);
    }

    /// Events/second observed in the window ending at `now`.
    #[must_use]
    pub fn rate(&self, now: SimTime) -> f64 {
        let cutoff = now - self.window;
        let count = self.events.iter().filter(|t| **t > cutoff).count();
        count as f64 / self.window.as_secs_f64()
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now - self.window;
        while self.events.front().is_some_and(|t| *t <= cutoff) {
            self.events.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_observation_passes_through() {
        let mut f = Ewma::new(0.1);
        assert_eq!(f.value(), None);
        assert_eq!(f.observe(42.0), 42.0);
        assert_eq!(f.value(), Some(42.0));
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut f = Ewma::new(0.3);
        for _ in 0..100 {
            f.observe(5.0);
        }
        assert!((f.value().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_smooths_steps() {
        let mut f = Ewma::new(0.5);
        f.observe(0.0);
        let after_step = f.observe(100.0);
        assert_eq!(after_step, 50.0);
    }

    #[test]
    fn ewma_alpha_one_tracks_exactly() {
        let mut f = Ewma::new(1.0);
        f.observe(1.0);
        f.observe(9.0);
        assert_eq!(f.value(), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn ewma_reset_clears_state() {
        let mut f = Ewma::new(0.5);
        f.observe(1.0);
        f.reset();
        assert_eq!(f.value(), None);
        assert_eq!(f.value_or(7.0), 7.0);
    }

    #[test]
    fn holt_tracks_linear_ramp() {
        let mut f = HoltLinear::new(0.5, 0.3);
        for i in 0..200 {
            f.observe(3.0 * f64::from(i) + 10.0);
        }
        // After a long ramp the trend should be ~3 per step.
        assert!((f.trend() - 3.0).abs() < 0.1, "trend {}", f.trend());
        let fc = f.forecast(10.0);
        let actual_future = 3.0 * 209.0 + 10.0;
        assert!((fc - actual_future).abs() < 5.0, "forecast {fc} vs {actual_future}");
    }

    #[test]
    fn holt_forecast_before_data_is_zero() {
        let f = HoltLinear::new(0.5, 0.5);
        assert_eq!(f.forecast(3.0), 0.0);
        assert_eq!(f.level(), None);
    }

    #[test]
    fn holt_constant_input_has_zero_trend() {
        let mut f = HoltLinear::new(0.4, 0.4);
        for _ in 0..50 {
            f.observe(8.0);
        }
        assert!(f.trend().abs() < 1e-9);
        assert!((f.forecast(100.0) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn rate_estimator_counts_in_window() {
        let mut r = RateEstimator::new(SimDuration::from_secs(1));
        for ms in [0u64, 100, 200, 900, 1500, 1600] {
            r.record(SimTime::from_millis(ms));
        }
        // Window (0.6s, 1.6s]: events at 0.9, 1.5, 1.6 → 3 events/s.
        assert_eq!(r.rate(SimTime::from_millis(1_600)), 3.0);
    }

    #[test]
    fn rate_estimator_evicts_old_events() {
        let mut r = RateEstimator::new(SimDuration::from_secs(1));
        r.record(SimTime::from_secs(0));
        r.record(SimTime::from_secs(10));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn rate_record_many() {
        let mut r = RateEstimator::new(SimDuration::from_secs(2));
        r.record_many(SimTime::from_secs(1), 10);
        assert_eq!(r.rate(SimTime::from_secs(1)), 5.0);
        assert!(!r.is_empty());
    }

    #[test]
    fn rate_of_empty_estimator_is_zero() {
        let r = RateEstimator::new(SimDuration::from_secs(5));
        assert_eq!(r.rate(SimTime::from_secs(100)), 0.0);
    }
}
