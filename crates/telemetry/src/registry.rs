//! A string-keyed metric registry for experiment export.
//!
//! Experiment runners record named series ("app-0/p99_ms",
//! "cluster/used_cpu") and counters, then dump everything as CSV for the
//! figure scripts. This is the simulated stand-in for a Prometheus server.
//!
//! Hot callers (the per-tick recording loop) intern names once via
//! [`MetricRegistry::key`] and record through the returned
//! [`MetricKey`] — a dense index into a `Vec<TimeSeries>`, so the
//! steady-state path is an array index instead of a string-keyed map
//! lookup. Name-based lookup remains for reads and counters; recording
//! always goes through an interned key.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use evolve_types::SimTime;

use crate::series::TimeSeries;

/// A typed, dense handle to an interned series name.
///
/// Obtained from [`MetricRegistry::key`]; only valid for the registry
/// that produced it. Recording through a key is an array index, no
/// string hashing or comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricKey(u32);

impl MetricKey {
    /// The raw dense index.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Named time series and counters.
///
/// # Examples
///
/// ```
/// use evolve_telemetry::MetricRegistry;
/// use evolve_types::SimTime;
///
/// let mut reg = MetricRegistry::new();
/// reg.incr("svc/requests", 3);
/// assert_eq!(reg.counter("svc/requests"), 3);
///
/// // Intern once, record through the typed key.
/// let key = reg.key("svc/p99_ms");
/// reg.record_key(key, SimTime::from_secs(1), 42.0);
/// reg.record_key(key, SimTime::from_secs(2), 40.0);
/// assert_eq!(reg.series_by_key(key).unwrap().len(), 2);
/// assert_eq!(reg.series("svc/p99_ms").unwrap().len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct MetricRegistry {
    /// Name → dense id; a sorted map so name listings stay ordered.
    ids: BTreeMap<String, u32>,
    /// Dense storage, indexed by [`MetricKey`].
    series: Vec<TimeSeries>,
    counters: BTreeMap<String, u64>,
    series_capacity: usize,
    /// Samples recorded through the dense-key fast path (perf accounting:
    /// each is a string hash/compare + potential allocation avoided).
    fast_records: u64,
    /// Samples that arrived with a key this registry never issued —
    /// skipped and counted instead of panicking.
    dropped_records: u64,
}

impl MetricRegistry {
    /// Creates an empty registry with the default per-series retention
    /// (1 million samples).
    #[must_use]
    pub fn new() -> Self {
        MetricRegistry::with_capacity(1_000_000)
    }

    /// Creates a registry whose series retain at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "series capacity must be positive");
        MetricRegistry {
            ids: BTreeMap::new(),
            series: Vec::new(),
            counters: BTreeMap::new(),
            series_capacity: capacity,
            fast_records: 0,
            dropped_records: 0,
        }
    }

    /// Interns a series name, creating an empty series on first use, and
    /// returns its typed key for [`MetricRegistry::record_key`].
    pub fn key(&mut self, name: &str) -> MetricKey {
        if let Some(id) = self.ids.get(name) {
            return MetricKey(*id);
        }
        let id = u32::try_from(self.series.len()).expect("more than u32::MAX series");
        self.series.push(TimeSeries::new(self.series_capacity));
        self.ids.insert(name.to_owned(), id);
        MetricKey(id)
    }

    /// Appends a sample through an interned key: a bounds-checked array
    /// index, no string lookup. A key this registry never issued is
    /// skipped and counted in [`MetricRegistry::dropped_records`] rather
    /// than panicking.
    pub fn record_key(&mut self, key: MetricKey, at: SimTime, value: f64) {
        match self.series.get_mut(key.0 as usize) {
            Some(series) => {
                self.fast_records += 1;
                series.push(at, value);
            }
            None => self.dropped_records += 1,
        }
    }

    /// Increments the named counter by `by`.
    pub fn incr(&mut self, name: &str, by: u64) {
        if let Some(counter) = self.counters.get_mut(name) {
            *counter += by;
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Reads a counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Looks up a series by name.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.ids.get(name).map(|id| &self.series[*id as usize])
    }

    /// Looks up a series by interned key.
    #[must_use]
    pub fn series_by_key(&self, key: MetricKey) -> Option<&TimeSeries> {
        self.series.get(key.0 as usize)
    }

    /// Number of interned series.
    #[must_use]
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Samples recorded through the dense-key fast path — the number of
    /// string-keyed lookups the interning layer avoided.
    #[must_use]
    pub fn fast_path_records(&self) -> u64 {
        self.fast_records
    }

    /// Samples skipped because their key was not issued by this registry
    /// (the skip-and-count alternative to panicking on a foreign key).
    #[must_use]
    pub fn dropped_records(&self) -> u64 {
        self.dropped_records
    }

    /// All series names in sorted order.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.ids.keys().map(String::as_str)
    }

    /// All counter names in sorted order.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Renders one series as a two-column CSV (`seconds,value`) with a
    /// header row; empty string when the series does not exist.
    #[must_use]
    pub fn series_csv(&self, name: &str) -> String {
        let Some(s) = self.series(name) else {
            return String::new();
        };
        // Buffered `write!` straight into the output string — benches
        // serialize hundreds of series, so no per-row `format!` allocs.
        let mut out = String::with_capacity(16 + s.len() * 24);
        out.push_str("seconds,value\n");
        for sample in s.iter() {
            let _ = writeln!(out, "{:.6},{}", sample.at.as_secs_f64(), sample.value);
        }
        out
    }

    /// Renders several series as a wide CSV keyed by the first series'
    /// timestamps (values matched by position; series produced by the same
    /// scrape loop align exactly).
    #[must_use]
    pub fn wide_csv(&self, names: &[&str]) -> String {
        let mut out = String::from("seconds");
        for n in names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        let Some(first) = names.first().and_then(|n| self.series(n)) else {
            return out;
        };
        let columns: Vec<Option<&TimeSeries>> = names.iter().map(|n| self.series(n)).collect();
        out.reserve(first.len() * (8 + 16 * columns.len()));
        for (i, sample) in first.iter().enumerate() {
            let _ = write!(out, "{:.6}", sample.at.as_secs_f64());
            for col in &columns {
                match col.and_then(|s| s.get(i)) {
                    Some(s) => {
                        let _ = write!(out, ",{}", s.value);
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_lookup() {
        let mut r = MetricRegistry::new();
        let a = r.key("a");
        r.record_key(a, SimTime::from_secs(1), 1.0);
        r.record_key(a, SimTime::from_secs(2), 2.0);
        let b = r.key("b");
        r.record_key(b, SimTime::from_secs(1), 9.0);
        assert_eq!(r.series("a").unwrap().len(), 2);
        assert_eq!(r.series("b").unwrap().len(), 1);
        assert!(r.series("missing").is_none());
        assert_eq!(r.series_names().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn interned_keys_are_stable_and_fast_path_counts() {
        let mut r = MetricRegistry::new();
        let a = r.key("a");
        let b = r.key("b");
        assert_ne!(a, b);
        assert_eq!(r.key("a"), a);
        r.record_key(a, SimTime::from_secs(1), 1.0);
        r.record_key(b, SimTime::from_secs(1), 2.0);
        r.record_key(a, SimTime::from_secs(2), 3.0);
        assert_eq!(r.series("a").unwrap().len(), 2);
        assert_eq!(r.series_by_key(b).unwrap().len(), 1);
        assert_eq!(r.fast_path_records(), 3);
        assert_eq!(r.series_count(), 2);
    }

    #[test]
    fn foreign_key_is_skipped_and_counted() {
        let mut issuing = MetricRegistry::new();
        for i in 0..5 {
            let _ = issuing.key(&format!("s{i}"));
        }
        let foreign = issuing.key("s4");
        let mut r = MetricRegistry::new();
        let own = r.key("only");
        r.record_key(foreign, SimTime::from_secs(1), 1.0);
        r.record_key(own, SimTime::from_secs(1), 2.0);
        assert_eq!(r.dropped_records(), 1);
        assert_eq!(r.fast_path_records(), 1);
        assert_eq!(r.series("only").unwrap().len(), 1);
    }

    #[test]
    fn names_stay_sorted_regardless_of_intern_order() {
        let mut r = MetricRegistry::new();
        let _ = r.key("zeta");
        let _ = r.key("alpha");
        let mid = r.key("mid");
        r.record_key(mid, SimTime::ZERO, 0.0);
        assert_eq!(r.series_names().collect::<Vec<_>>(), vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn counters_accumulate() {
        let mut r = MetricRegistry::new();
        r.incr("x", 2);
        r.incr("x", 3);
        assert_eq!(r.counter("x"), 5);
        assert_eq!(r.counter("y"), 0);
        assert_eq!(r.counter_names().collect::<Vec<_>>(), vec!["x"]);
    }

    #[test]
    fn series_csv_format() {
        let mut r = MetricRegistry::new();
        let m = r.key("m");
        r.record_key(m, SimTime::from_millis(500), 3.5);
        let csv = r.series_csv("m");
        assert!(csv.starts_with("seconds,value\n"));
        assert!(csv.contains("0.500000,3.5"));
        assert_eq!(r.series_csv("none"), "");
    }

    #[test]
    fn wide_csv_aligns_columns() {
        let mut r = MetricRegistry::new();
        let p = r.key("p");
        let q = r.key("q");
        for i in 0..3u64 {
            r.record_key(p, SimTime::from_secs(i), i as f64);
            r.record_key(q, SimTime::from_secs(i), 10.0 * i as f64);
        }
        let csv = r.wide_csv(&["p", "q"]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "seconds,p,q");
        assert_eq!(lines[2], "1.000000,1,10");
    }

    #[test]
    fn wide_csv_with_missing_series_is_header_only() {
        let r = MetricRegistry::new();
        assert_eq!(r.wide_csv(&["nope"]), "seconds,nope\n");
    }
}
