//! A string-keyed metric registry for experiment export.
//!
//! Experiment runners record named series ("app-0/p99_ms",
//! "cluster/used_cpu") and counters, then dump everything as CSV for the
//! figure scripts. This is the simulated stand-in for a Prometheus server.

use std::collections::BTreeMap;

use evolve_types::SimTime;

use crate::series::TimeSeries;

/// Named time series and counters.
///
/// # Examples
///
/// ```
/// use evolve_telemetry::MetricRegistry;
/// use evolve_types::SimTime;
///
/// let mut reg = MetricRegistry::new();
/// reg.record("svc/p99_ms", SimTime::from_secs(1), 42.0);
/// reg.incr("svc/requests", 3);
/// assert_eq!(reg.counter("svc/requests"), 3);
/// assert_eq!(reg.series("svc/p99_ms").unwrap().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct MetricRegistry {
    series: BTreeMap<String, TimeSeries>,
    counters: BTreeMap<String, u64>,
    series_capacity: usize,
}

impl MetricRegistry {
    /// Creates an empty registry with the default per-series retention
    /// (1 million samples).
    #[must_use]
    pub fn new() -> Self {
        MetricRegistry::with_capacity(1_000_000)
    }

    /// Creates a registry whose series retain at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "series capacity must be positive");
        MetricRegistry {
            series: BTreeMap::new(),
            counters: BTreeMap::new(),
            series_capacity: capacity,
        }
    }

    /// Appends a sample to the named series, creating it on first use.
    ///
    /// The steady-state path (series already exists) does not allocate:
    /// the name is only turned into an owned `String` on first use.
    pub fn record(&mut self, name: &str, at: SimTime, value: f64) {
        if let Some(series) = self.series.get_mut(name) {
            series.push(at, value);
        } else {
            let mut series = TimeSeries::new(self.series_capacity);
            series.push(at, value);
            self.series.insert(name.to_owned(), series);
        }
    }

    /// Increments the named counter by `by`.
    pub fn incr(&mut self, name: &str, by: u64) {
        if let Some(counter) = self.counters.get_mut(name) {
            *counter += by;
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Reads a counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Looks up a series by name.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All series names in sorted order.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// All counter names in sorted order.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Renders one series as a two-column CSV (`seconds,value`) with a
    /// header row; empty string when the series does not exist.
    #[must_use]
    pub fn series_csv(&self, name: &str) -> String {
        let Some(s) = self.series.get(name) else {
            return String::new();
        };
        let mut out = String::from("seconds,value\n");
        for (t, v) in s.to_points() {
            out.push_str(&format!("{t:.6},{v}\n"));
        }
        out
    }

    /// Renders several series as a wide CSV keyed by the first series'
    /// timestamps (values matched by position; series produced by the same
    /// scrape loop align exactly).
    #[must_use]
    pub fn wide_csv(&self, names: &[&str]) -> String {
        let mut out = String::from("seconds");
        for n in names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        let Some(first) = names.first().and_then(|n| self.series.get(*n)) else {
            return out;
        };
        let columns: Vec<Vec<(f64, f64)>> = names
            .iter()
            .map(|n| self.series.get(*n).map_or_else(Vec::new, TimeSeries::to_points))
            .collect();
        for (i, (t, _)) in first.to_points().iter().enumerate() {
            out.push_str(&format!("{t:.6}"));
            for col in &columns {
                match col.get(i) {
                    Some((_, v)) => out.push_str(&format!(",{v}")),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_lookup() {
        let mut r = MetricRegistry::new();
        r.record("a", SimTime::from_secs(1), 1.0);
        r.record("a", SimTime::from_secs(2), 2.0);
        r.record("b", SimTime::from_secs(1), 9.0);
        assert_eq!(r.series("a").unwrap().len(), 2);
        assert_eq!(r.series("b").unwrap().len(), 1);
        assert!(r.series("missing").is_none());
        assert_eq!(r.series_names().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn counters_accumulate() {
        let mut r = MetricRegistry::new();
        r.incr("x", 2);
        r.incr("x", 3);
        assert_eq!(r.counter("x"), 5);
        assert_eq!(r.counter("y"), 0);
        assert_eq!(r.counter_names().collect::<Vec<_>>(), vec!["x"]);
    }

    #[test]
    fn series_csv_format() {
        let mut r = MetricRegistry::new();
        r.record("m", SimTime::from_millis(500), 3.5);
        let csv = r.series_csv("m");
        assert!(csv.starts_with("seconds,value\n"));
        assert!(csv.contains("0.500000,3.5"));
        assert_eq!(r.series_csv("none"), "");
    }

    #[test]
    fn wide_csv_aligns_columns() {
        let mut r = MetricRegistry::new();
        for i in 0..3u64 {
            r.record("p", SimTime::from_secs(i), i as f64);
            r.record("q", SimTime::from_secs(i), 10.0 * i as f64);
        }
        let csv = r.wide_csv(&["p", "q"]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "seconds,p,q");
        assert_eq!(lines[2], "1.000000,1,10");
    }

    #[test]
    fn wide_csv_with_missing_series_is_header_only() {
        let r = MetricRegistry::new();
        assert_eq!(r.wide_csv(&["nope"]), "seconds,nope\n");
    }
}
