//! Structured decision-trace subsystem.
//!
//! Aggregate outcomes (CSV series, violation counts) say *what* happened;
//! this module records *why*: every control tick emits a [`ControlTrace`]
//! (PID term breakdown, tuner gains, predictor forecast, degradation-guard
//! state, chosen vs suppressed actuation), every scheduler cycle emits
//! [`SchedTrace`] records (per-plugin scores of the chosen node, filter
//! rejections, gang admit/rollback, preemption victims, requeue-backoff
//! state) and the runner emits [`SpanTrace`] lifecycle spans whose wall
//! timings feed perf accounting.
//!
//! Events land in a bounded [`TraceRing`] — always on, sized by
//! [`TraceConfig::capacity`], oldest-first eviction with a drop counter —
//! and can be dumped as deterministic JSONL. Determinism rules:
//!
//! * fixed key order per record type, floats rendered with Rust's
//!   shortest-roundtrip `{}` formatting (same bits → same text),
//!   non-finite floats rendered as `null`;
//! * wall-clock span durations are kept in memory for perf accounting but
//!   **excluded** from the dump, so two same-seed runs produce
//!   byte-identical JSONL.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::PathBuf;

use evolve_types::{AppId, JobId, NodeId, PodId, ResourceVec, SimTime};

/// Configuration of the decision-trace ring, carried by the runner config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum events retained; older events are evicted (and counted as
    /// dropped) once the ring is full. `0` disables capture entirely.
    pub capacity: usize,
    /// When set, the runner writes the ring as JSONL to this path at the
    /// end of the run.
    pub dump: Option<PathBuf>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: 16_384, dump: None }
    }
}

impl TraceConfig {
    /// A config that captures nothing (capacity 0).
    #[must_use]
    pub fn disabled() -> Self {
        TraceConfig { capacity: 0, dump: None }
    }

    /// Sets the ring capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Requests a JSONL dump of the ring to `path` at the end of the run.
    #[must_use]
    pub fn dump_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.dump = Some(path.into());
        self
    }
}

/// Signal quality of the control window a decision was made on, as seen
/// by the trace (mirrors the core crate's `SignalQuality` without a
/// dependency cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSignal {
    /// A fresh measurement window arrived this tick.
    Fresh,
    /// The last known window was replayed (scrape gap).
    Stale,
    /// No window at all (blackout); the policy ran dark.
    Missing,
}

impl TraceSignal {
    /// Lowercase label used in the JSONL dump.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TraceSignal::Fresh => "fresh",
            TraceSignal::Stale => "stale",
            TraceSignal::Missing => "missing",
        }
    }
}

/// What happened to the policy's decision this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuationOutcome {
    /// The decision was actuated on the cluster.
    Applied,
    /// The decision repeated a recently failed resize and was suppressed
    /// by the retry-backoff.
    Suppressed,
    /// The signal was degraded; the guard held (or floored) the previous
    /// allocation instead of trusting the controller.
    Held,
    /// The policy returned no decision (e.g. static baseline, latch tick).
    NoDecision,
    /// An injected actuation fault silently swallowed the request — the
    /// controller believes it actuated but the cluster never saw it.
    Dropped,
    /// An injected actuation fault deferred the request; it reaches the
    /// cluster after the sampled lag.
    Delayed,
    /// The capacity arbiter shed the app outright: the policy decided, but
    /// nothing was actuated and the app's offered load is rejected at
    /// admission until a later arbitration grants it capacity again.
    Shed,
}

impl ActuationOutcome {
    /// Lowercase label used in the JSONL dump.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ActuationOutcome::Applied => "applied",
            ActuationOutcome::Suppressed => "suppressed",
            ActuationOutcome::Held => "held",
            ActuationOutcome::NoDecision => "no-decision",
            ActuationOutcome::Dropped => "dropped",
            ActuationOutcome::Delayed => "delayed",
            ActuationOutcome::Shed => "shed",
        }
    }
}

/// One PID's term breakdown for the step that produced a decision:
/// the proportional/integral/derivative contributions and the clamped
/// output actually emitted.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PidTermsTrace {
    /// Proportional contribution (`kp * error`).
    pub p: f64,
    /// Integral contribution (`ki * integral`), post conditional
    /// integration.
    pub i: f64,
    /// Derivative contribution (`kd * filtered_derivative`).
    pub d: f64,
    /// Final output after output clamping and slew limiting.
    pub output: f64,
}

/// The controller internals behind one decision — everything the ablation
/// narratives need to explain a scale action.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlExplain {
    /// Per-resource PID term breakdown, indexed like `Resource::ALL`.
    pub pid: [PidTermsTrace; 4],
    /// Per-resource `(kp, ki, kd)` gains after any RLS adaptation.
    pub gains: [(f64, f64, f64); 4],
    /// Error attribution shares used this period (sums to 1).
    pub attribution: ResourceVec,
    /// Controller hit a per-replica ceiling (scale-out signal).
    pub saturated_up: bool,
    /// Every dimension at floor with negative error (scale-in signal).
    pub saturated_down: bool,
    /// Cumulative gain adaptations executed by the tuners.
    pub adaptations: u64,
    /// Consecutive dark (missing-signal) ticks seen by the guard.
    pub dark_ticks: u32,
    /// Whether the degradation watchdog is tripped.
    pub watchdog_tripped: bool,
    /// Margin-inflated load forecast used for predictive scaling.
    pub forecast: f64,
    /// Raw (uninflated) Holt forecast.
    pub raw_forecast: f64,
    /// Current predictor trend estimate (per-second slope).
    pub trend: f64,
    /// Filtered measurement the control error was computed from.
    pub smoothed: f64,
    /// Margin-adjusted control error fed to the PID bank.
    pub error: f64,
}

/// One control-tick decision record for one app.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlTrace {
    /// Control tick index (monotone per run).
    pub tick: u64,
    /// Simulated time of the tick.
    pub at: SimTime,
    /// The app the decision concerns.
    pub app: AppId,
    /// Quality of the measurement window behind the decision.
    pub signal: TraceSignal,
    /// Raw PLO measurement of the window (`None` when nothing measured).
    pub measured: Option<f64>,
    /// Offered load over the window, requests (or work units) per second.
    pub rate_rps: f64,
    /// Replica target of the decision (current replicas when none).
    pub replicas: u32,
    /// Per-replica allocation target of the decision.
    pub per_replica: ResourceVec,
    /// What happened to the decision.
    pub outcome: ActuationOutcome,
    /// Resize failures observed since the last window.
    pub resize_failures: u32,
    /// Controller internals (`None` for policies that expose none).
    /// Boxed: the explain block is ~3× the rest of the record, and most
    /// ring events are spans or baseline decisions without one.
    pub explain: Option<Box<ControlExplain>>,
}

/// Why a pod ended up where it did in one scheduler cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedOutcome {
    /// Bound to a node. `score` is the weighted plugin score of the
    /// chosen node (`None` for gang members and preemption placements,
    /// which are placed by the two-pass/eviction path).
    Bound {
        /// The node the pod was bound to.
        node: NodeId,
        /// Weighted plugin score of the winning node.
        score: Option<f64>,
    },
    /// Deferred by requeue backoff; not attempted this cycle.
    Deferred,
    /// No feasible node (even after considering preemption).
    Unschedulable,
    /// Gang admission failed and partial placements were rolled back.
    GangRollback,
}

impl SchedOutcome {
    /// Lowercase label used in the JSONL dump.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            SchedOutcome::Bound { .. } => "bound",
            SchedOutcome::Deferred => "deferred",
            SchedOutcome::Unschedulable => "unschedulable",
            SchedOutcome::GangRollback => "gang-rollback",
        }
    }
}

/// One per-pod scheduling decision record.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedTrace {
    /// Scheduler cycle counter (monotone per run).
    pub cycle: u64,
    /// Simulated time of the cycle.
    pub at: SimTime,
    /// The pod being scheduled.
    pub pod: PodId,
    /// The app the pod belongs to.
    pub app: AppId,
    /// The gang job, for all-or-nothing units.
    pub gang: Option<JobId>,
    /// The decision.
    pub outcome: SchedOutcome,
    /// Per-plugin `(name, weighted score)` of the chosen node (empty when
    /// nothing was chosen or detail was unavailable).
    pub scores: Vec<(&'static str, f64)>,
    /// Per-filter `(name, nodes rejected)` counts for this attempt.
    pub filtered: Vec<(&'static str, u32)>,
    /// Nodes that passed every filter.
    pub feasible: u32,
    /// Pods evicted to make room (preemption path).
    pub victims: Vec<PodId>,
    /// Consecutive scheduling failures recorded by the requeue backoff.
    pub backoff_failures: u32,
}

/// Which runner phase a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Manager tick: scrape + policy decisions + actuation.
    Control,
    /// Scheduler cycle + binding/preemption application.
    Sched,
    /// Metric series recording.
    Record,
}

impl SpanKind {
    /// Lowercase label used in the JSONL dump.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Control => "control",
            SpanKind::Sched => "sched",
            SpanKind::Record => "record",
        }
    }
}

/// A runner lifecycle span. The wall-clock duration feeds `RunPerf` but
/// is excluded from the JSONL dump (determinism rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanTrace {
    /// Control tick index the span belongs to.
    pub tick: u64,
    /// Simulated time of the tick.
    pub at: SimTime,
    /// Phase covered.
    pub kind: SpanKind,
    /// Wall-clock nanoseconds spent (in-memory only, never dumped).
    pub wall_ns: u64,
}

/// One injected fault, realized for this run. Pushed by the runner at
/// run start (one per realized scheduled/stochastic event) so dump
/// consumers can correlate decisions with the faults around them. Fields
/// are plain labels/numbers: telemetry stays independent of the
/// simulator's fault types.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTrace {
    /// When the fault begins.
    pub at: SimTime,
    /// Stable fault-kind label (e.g. `"node_crash"`, `"actuation_drop"`).
    pub kind: &'static str,
    /// Fault length in seconds (`None` for instantaneous or permanent
    /// faults).
    pub duration_s: Option<f64>,
    /// Affected node, for node-scoped faults.
    pub node: Option<u32>,
    /// Affected app, for app-scoped faults (`None` = cluster-wide).
    pub app: Option<AppId>,
}

/// One capacity-arbitration verdict for one app on one control tick.
/// Pushed by the runner after the cluster-level arbiter has reconciled
/// all per-app requests against ready capacity. Class and decision are
/// plain labels so telemetry stays independent of the control crate's
/// types.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbitrationTrace {
    /// Control tick index (monotone per run).
    pub tick: u64,
    /// Simulated time of the tick.
    pub at: SimTime,
    /// The app the verdict concerns.
    pub app: AppId,
    /// Priority-class label (`"critical"`, `"standard"`, `"preemptible"`).
    pub class: &'static str,
    /// Total allocation the app's controller requested.
    pub requested: ResourceVec,
    /// Total allocation the arbiter granted.
    pub granted: ResourceVec,
    /// Decision label (`"full"`, `"oversubscribed"`, `"slew-limited"`,
    /// `"shed"`).
    pub decision: &'static str,
    /// Fraction of the request granted, in `[0, 1]`.
    pub grant_fraction: f64,
    /// Consecutive arbitrations the app has spent shed or below its
    /// starvation floor.
    pub starvation_age: u32,
    /// Whether the cluster was in a capacity crunch on this tick.
    pub in_crunch: bool,
}

/// One entry in the trace ring.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A control-tick decision.
    Control(ControlTrace),
    /// A scheduler placement decision.
    Sched(SchedTrace),
    /// A runner lifecycle span.
    Span(SpanTrace),
    /// An injected fault realized for this run.
    Fault(FaultTrace),
    /// A capacity-arbitration verdict.
    Arbitration(ArbitrationTrace),
}

/// Bounded ring of trace events: pushes are O(1), memory is capped at
/// `capacity` events, and overflow evicts the oldest event while counting
/// the drop — tracing can stay always-on without unbounded growth.
#[derive(Debug, Default)]
pub struct TraceRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring retaining at most `capacity` events. The buffer
    /// grows on demand (no up-front allocation), so idle rings cost a few
    /// machine words.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceRing { capacity, events: VecDeque::new(), dropped: 0 }
    }

    /// Appends an event, evicting the oldest when full. With capacity 0
    /// every push is counted as dropped and nothing is retained.
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted (or rejected, for capacity 0) since creation.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained control decisions, oldest first.
    pub fn control(&self) -> impl Iterator<Item = &ControlTrace> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Control(c) => Some(c),
            _ => None,
        })
    }

    /// Retained scheduling decisions, oldest first.
    pub fn sched(&self) -> impl Iterator<Item = &SchedTrace> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Sched(s) => Some(s),
            _ => None,
        })
    }

    /// Retained lifecycle spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanTrace> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Span(s) => Some(s),
            _ => None,
        })
    }

    /// Retained injected-fault records, oldest first.
    pub fn faults(&self) -> impl Iterator<Item = &FaultTrace> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Fault(f) => Some(f),
            _ => None,
        })
    }

    /// Retained capacity-arbitration verdicts, oldest first.
    pub fn arbitrations(&self) -> impl Iterator<Item = &ArbitrationTrace> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Arbitration(a) => Some(a),
            _ => None,
        })
    }

    /// Renders the ring as deterministic JSONL: one event per line,
    /// oldest first, fixed key order, shortest-roundtrip float text,
    /// wall-clock fields excluded. Two same-seed runs produce
    /// byte-identical output.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 160);
        for event in &self.events {
            match event {
                TraceEvent::Control(c) => write_control(&mut out, c),
                TraceEvent::Sched(s) => write_sched(&mut out, s),
                TraceEvent::Span(s) => write_span(&mut out, s),
                TraceEvent::Fault(f) => write_fault(&mut out, f),
                TraceEvent::Arbitration(a) => write_arbitration(&mut out, a),
            }
            out.push('\n');
        }
        out
    }
}

/// Writes a float as a JSON value: shortest-roundtrip text for finite
/// values, `null` for NaN/infinities (which are not valid JSON).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

fn push_resource_vec(out: &mut String, v: &ResourceVec) {
    out.push('[');
    for (i, r) in evolve_types::Resource::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, v[*r]);
    }
    out.push(']');
}

fn write_control(out: &mut String, c: &ControlTrace) {
    let _ = write!(out, "{{\"type\":\"control\",\"tick\":{},\"at_s\":", c.tick);
    push_f64(out, c.at.as_secs_f64());
    let _ =
        write!(out, ",\"app\":{},\"signal\":\"{}\",\"measured\":", c.app.raw(), c.signal.as_str());
    push_opt_f64(out, c.measured);
    out.push_str(",\"rate_rps\":");
    push_f64(out, c.rate_rps);
    let _ = write!(out, ",\"replicas\":{},\"per_replica\":", c.replicas);
    push_resource_vec(out, &c.per_replica);
    let _ = write!(
        out,
        ",\"outcome\":\"{}\",\"resize_failures\":{},\"explain\":",
        c.outcome.as_str(),
        c.resize_failures
    );
    match &c.explain {
        Some(e) => write_explain(out, e),
        None => out.push_str("null"),
    }
    out.push('}');
}

fn write_explain(out: &mut String, e: &ControlExplain) {
    out.push_str("{\"error\":");
    push_f64(out, e.error);
    out.push_str(",\"smoothed\":");
    push_f64(out, e.smoothed);
    out.push_str(",\"forecast\":");
    push_f64(out, e.forecast);
    out.push_str(",\"raw_forecast\":");
    push_f64(out, e.raw_forecast);
    out.push_str(",\"trend\":");
    push_f64(out, e.trend);
    let _ = write!(
        out,
        ",\"dark_ticks\":{},\"watchdog\":{},\"saturated_up\":{},\"saturated_down\":{},\"adaptations\":{}",
        e.dark_ticks, e.watchdog_tripped, e.saturated_up, e.saturated_down, e.adaptations
    );
    out.push_str(",\"attribution\":");
    push_resource_vec(out, &e.attribution);
    out.push_str(",\"gains\":[");
    for (i, (kp, ki, kd)) in e.gains.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_f64(out, *kp);
        out.push(',');
        push_f64(out, *ki);
        out.push(',');
        push_f64(out, *kd);
        out.push(']');
    }
    out.push_str("],\"pid\":[");
    for (i, t) in e.pid.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"p\":");
        push_f64(out, t.p);
        out.push_str(",\"i\":");
        push_f64(out, t.i);
        out.push_str(",\"d\":");
        push_f64(out, t.d);
        out.push_str(",\"out\":");
        push_f64(out, t.output);
        out.push('}');
    }
    out.push_str("]}");
}

fn write_sched(out: &mut String, s: &SchedTrace) {
    let _ = write!(out, "{{\"type\":\"sched\",\"cycle\":{},\"at_s\":", s.cycle);
    push_f64(out, s.at.as_secs_f64());
    let _ = write!(out, ",\"pod\":{},\"app\":{},\"gang\":", s.pod.raw(), s.app.raw());
    match s.gang {
        Some(j) => {
            let _ = write!(out, "{}", j.raw());
        }
        None => out.push_str("null"),
    }
    let _ = write!(out, ",\"outcome\":\"{}\",\"node\":", s.outcome.as_str());
    match &s.outcome {
        SchedOutcome::Bound { node, score } => {
            let _ = write!(out, "{}", node.raw());
            out.push_str(",\"score\":");
            push_opt_f64(out, *score);
        }
        _ => out.push_str("null,\"score\":null"),
    }
    out.push_str(",\"scores\":[");
    for (i, (name, score)) in s.scores.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[\"{name}\",");
        push_f64(out, *score);
        out.push(']');
    }
    out.push_str("],\"filtered\":[");
    for (i, (name, count)) in s.filtered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[\"{name}\",{count}]");
    }
    let _ = write!(out, "],\"feasible\":{},\"victims\":[", s.feasible);
    for (i, v) in s.victims.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", v.raw());
    }
    let _ = write!(out, "],\"backoff_failures\":{}}}", s.backoff_failures);
}

fn write_span(out: &mut String, s: &SpanTrace) {
    // `wall_ns` is deliberately not serialized: wall-clock noise would
    // break byte-identical same-seed dumps.
    let _ = write!(out, "{{\"type\":\"span\",\"tick\":{},\"at_s\":", s.tick);
    push_f64(out, s.at.as_secs_f64());
    let _ = write!(out, ",\"kind\":\"{}\"}}", s.kind.as_str());
}

fn write_arbitration(out: &mut String, a: &ArbitrationTrace) {
    let _ = write!(out, "{{\"type\":\"arbitration\",\"tick\":{},\"at_s\":", a.tick);
    push_f64(out, a.at.as_secs_f64());
    let _ = write!(out, ",\"app\":{},\"class\":\"{}\",\"requested\":", a.app.raw(), a.class);
    push_resource_vec(out, &a.requested);
    out.push_str(",\"granted\":");
    push_resource_vec(out, &a.granted);
    let _ = write!(out, ",\"decision\":\"{}\",\"grant_fraction\":", a.decision);
    push_f64(out, a.grant_fraction);
    let _ = write!(out, ",\"starvation_age\":{},\"in_crunch\":{}}}", a.starvation_age, a.in_crunch);
}

fn write_fault(out: &mut String, f: &FaultTrace) {
    let _ = write!(out, "{{\"type\":\"fault\",\"at_s\":");
    push_f64(out, f.at.as_secs_f64());
    let _ = write!(out, ",\"kind\":\"{}\",\"duration_s\":", f.kind);
    push_opt_f64(out, f.duration_s);
    out.push_str(",\"node\":");
    match f.node {
        Some(n) => {
            let _ = write!(out, "{n}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"app\":");
    match f.app {
        Some(a) => {
            let _ = write!(out, "{}", a.raw());
        }
        None => out.push_str("null"),
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(tick: u64) -> TraceEvent {
        TraceEvent::Span(SpanTrace {
            tick,
            at: SimTime::from_secs(tick),
            kind: SpanKind::Control,
            wall_ns: 123,
        })
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ring = TraceRing::new(3);
        for t in 0..5 {
            ring.push(span(t));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let ticks: Vec<u64> = ring.spans().map(|s| s.tick).collect();
        assert_eq!(ticks, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_ring_retains_nothing() {
        let mut ring = TraceRing::new(0);
        for t in 0..10 {
            ring.push(span(t));
        }
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 10);
        assert_eq!(ring.to_jsonl(), "");
    }

    #[test]
    fn span_jsonl_excludes_wall_clock() {
        let mut ring = TraceRing::new(8);
        ring.push(span(7));
        let line = ring.to_jsonl();
        assert_eq!(line, "{\"type\":\"span\",\"tick\":7,\"at_s\":7,\"kind\":\"control\"}\n");
        assert!(!line.contains("123"), "wall_ns leaked into the dump");
    }

    #[test]
    fn fault_jsonl_is_stable_and_null_safe() {
        let mut ring = TraceRing::new(8);
        ring.push(TraceEvent::Fault(FaultTrace {
            at: SimTime::from_millis(12_500),
            kind: "node_crash",
            duration_s: Some(40.0),
            node: Some(2),
            app: None,
        }));
        ring.push(TraceEvent::Fault(FaultTrace {
            at: SimTime::from_secs(60),
            kind: "actuation_drop",
            duration_s: None,
            node: None,
            app: Some(AppId::new(3)),
        }));
        let dump = ring.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"fault\",\"at_s\":12.5,\"kind\":\"node_crash\",\"duration_s\":40,\
             \"node\":2,\"app\":null}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"fault\",\"at_s\":60,\"kind\":\"actuation_drop\",\"duration_s\":null,\
             \"node\":null,\"app\":3}"
        );
        assert_eq!(ring.faults().count(), 2);
    }

    #[test]
    fn control_jsonl_is_stable_and_null_safe() {
        let mut ring = TraceRing::new(8);
        ring.push(TraceEvent::Control(ControlTrace {
            tick: 2,
            at: SimTime::from_millis(2500),
            app: AppId::new(1),
            signal: TraceSignal::Missing,
            measured: None,
            rate_rps: f64::NAN,
            replicas: 3,
            per_replica: ResourceVec::new(500.0, 640.0, 50.0, 50.0),
            outcome: ActuationOutcome::Held,
            resize_failures: 1,
            explain: None,
        }));
        let line = ring.to_jsonl();
        assert_eq!(
            line,
            "{\"type\":\"control\",\"tick\":2,\"at_s\":2.5,\"app\":1,\"signal\":\"missing\",\
             \"measured\":null,\"rate_rps\":null,\"replicas\":3,\
             \"per_replica\":[500,640,50,50],\"outcome\":\"held\",\"resize_failures\":1,\
             \"explain\":null}\n"
        );
    }

    #[test]
    fn sched_jsonl_renders_outcomes() {
        let mut ring = TraceRing::new(8);
        ring.push(TraceEvent::Sched(SchedTrace {
            cycle: 1,
            at: SimTime::from_secs(5),
            pod: PodId::new(9),
            app: AppId::new(0),
            gang: Some(JobId::new(4)),
            outcome: SchedOutcome::Bound { node: NodeId::new(2), score: Some(1.5) },
            scores: vec![("least-allocated", 0.75)],
            filtered: vec![("node-fits", 3)],
            feasible: 5,
            victims: vec![PodId::new(1)],
            backoff_failures: 2,
        }));
        ring.push(TraceEvent::Sched(SchedTrace {
            cycle: 1,
            at: SimTime::from_secs(5),
            pod: PodId::new(10),
            app: AppId::new(0),
            gang: None,
            outcome: SchedOutcome::Deferred,
            scores: Vec::new(),
            filtered: Vec::new(),
            feasible: 0,
            victims: Vec::new(),
            backoff_failures: 1,
        }));
        let dump = ring.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"sched\",\"cycle\":1,\"at_s\":5,\"pod\":9,\"app\":0,\"gang\":4,\
             \"outcome\":\"bound\",\"node\":2,\"score\":1.5,\"scores\":[[\"least-allocated\",0.75]],\
             \"filtered\":[[\"node-fits\",3]],\"feasible\":5,\"victims\":[1],\"backoff_failures\":2}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"sched\",\"cycle\":1,\"at_s\":5,\"pod\":10,\"app\":0,\"gang\":null,\
             \"outcome\":\"deferred\",\"node\":null,\"score\":null,\"scores\":[],\"filtered\":[],\
             \"feasible\":0,\"victims\":[],\"backoff_failures\":1}"
        );
    }

    #[test]
    fn arbitration_jsonl_is_stable() {
        let mut ring = TraceRing::new(8);
        ring.push(TraceEvent::Arbitration(ArbitrationTrace {
            tick: 11,
            at: SimTime::from_millis(55_000),
            app: AppId::new(2),
            class: "standard",
            requested: ResourceVec::new(4000.0, 4096.0, 10.0, 20.0),
            granted: ResourceVec::new(2000.0, 2048.0, 5.0, 10.0),
            decision: "oversubscribed",
            grant_fraction: 0.5,
            starvation_age: 0,
            in_crunch: true,
        }));
        let line = ring.to_jsonl();
        assert_eq!(
            line,
            "{\"type\":\"arbitration\",\"tick\":11,\"at_s\":55,\"app\":2,\"class\":\"standard\",\
             \"requested\":[4000,4096,10,20],\"granted\":[2000,2048,5,10],\
             \"decision\":\"oversubscribed\",\"grant_fraction\":0.5,\"starvation_age\":0,\
             \"in_crunch\":true}\n"
        );
        assert_eq!(ring.arbitrations().count(), 1);
    }

    #[test]
    fn jsonl_is_deterministic_for_identical_rings() {
        let build = || {
            let mut ring = TraceRing::new(16);
            for t in 0..4 {
                ring.push(span(t));
                ring.push(TraceEvent::Control(ControlTrace {
                    tick: t,
                    at: SimTime::from_secs(t * 5),
                    app: AppId::new(0),
                    signal: TraceSignal::Fresh,
                    measured: Some(0.1 + t as f64),
                    rate_rps: 7.25,
                    replicas: 2,
                    per_replica: ResourceVec::splat(100.0),
                    outcome: ActuationOutcome::Applied,
                    resize_failures: 0,
                    explain: Some(Box::new(ControlExplain {
                        pid: [PidTermsTrace { p: 0.1, i: 0.2, d: -0.05, output: 0.25 }; 4],
                        gains: [(0.8, 0.1, 0.05); 4],
                        attribution: ResourceVec::new(0.7, 0.1, 0.1, 0.1),
                        saturated_up: false,
                        saturated_down: false,
                        adaptations: 3,
                        dark_ticks: 0,
                        watchdog_tripped: false,
                        forecast: 8.0,
                        raw_forecast: 7.5,
                        trend: 0.02,
                        smoothed: 0.9,
                        error: 0.12,
                    })),
                }));
            }
            ring
        };
        assert_eq!(build().to_jsonl(), build().to_jsonl());
    }
}
