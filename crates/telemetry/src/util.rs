//! Time-weighted utilization accounting.
//!
//! The headline EVOLVE claim is "≥2× higher utilization than stock
//! Kubernetes at far fewer PLO violations". Utilization must therefore be
//! measured carefully: as *time-weighted* integrals, per resource, at two
//! levels — how much of the cluster's capacity is **allocated** (requests)
//! and how much is actually **used**. Over-provisioning shows up as a high
//! allocated/capacity with low used/allocated ratio.

use evolve_types::{Resource, ResourceVec, SimTime};
use serde::{Deserialize, Serialize};

/// Accumulates time-weighted allocation and usage against a capacity.
///
/// Call [`UtilizationAccount::record`] at every state change (or scrape)
/// with the *current* totals; the account integrates the previous state
/// over the elapsed interval.
///
/// # Examples
///
/// ```
/// use evolve_telemetry::UtilizationAccount;
/// use evolve_types::{Resource, ResourceVec, SimTime};
///
/// let cap = ResourceVec::splat(100.0);
/// let mut acct = UtilizationAccount::new(cap);
/// acct.record(SimTime::from_secs(0), ResourceVec::splat(50.0), ResourceVec::splat(25.0));
/// acct.record(SimTime::from_secs(10), ResourceVec::splat(50.0), ResourceVec::splat(25.0));
/// let s = acct.summary();
/// assert!((s.allocated_share[Resource::Cpu] - 0.5).abs() < 1e-9);
/// assert!((s.used_share[Resource::Cpu] - 0.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationAccount {
    capacity: ResourceVec,
    last_at: Option<SimTime>,
    last_allocated: ResourceVec,
    last_used: ResourceVec,
    /// ∫ allocated dt per resource.
    allocated_integral: ResourceVec,
    /// ∫ used dt per resource.
    used_integral: ResourceVec,
    /// Total integrated seconds.
    elapsed_secs: f64,
}

/// Aggregated utilization shares over the recorded horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSummary {
    /// Time-weighted mean of allocated/capacity per resource.
    pub allocated_share: ResourceVec,
    /// Time-weighted mean of used/capacity per resource.
    pub used_share: ResourceVec,
    /// Time-weighted mean of used/allocated per resource (efficiency of the
    /// reservation; 0 where nothing was allocated).
    pub efficiency: ResourceVec,
    /// Seconds of activity integrated.
    pub elapsed_secs: f64,
}

impl UtilizationSummary {
    /// Mean allocated share across the four resources.
    #[must_use]
    pub fn mean_allocated(&self) -> f64 {
        self.allocated_share.total() / 4.0
    }

    /// Mean used share across the four resources.
    #[must_use]
    pub fn mean_used(&self) -> f64 {
        self.used_share.total() / 4.0
    }
}

impl UtilizationAccount {
    /// Creates an account against a fixed cluster capacity.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` has non-finite or negative components.
    #[must_use]
    pub fn new(capacity: ResourceVec) -> Self {
        assert!(capacity.is_valid(), "capacity must be valid");
        UtilizationAccount {
            capacity,
            last_at: None,
            last_allocated: ResourceVec::ZERO,
            last_used: ResourceVec::ZERO,
            allocated_integral: ResourceVec::ZERO,
            used_integral: ResourceVec::ZERO,
            elapsed_secs: 0.0,
        }
    }

    /// The capacity this account measures against.
    #[must_use]
    pub fn capacity(&self) -> ResourceVec {
        self.capacity
    }

    /// Records the cluster state at `at`: current total allocation
    /// (requests) and current total usage. Integrates the *previous* state
    /// over the interval since the previous record; out-of-order calls are
    /// ignored.
    pub fn record(&mut self, at: SimTime, allocated: ResourceVec, used: ResourceVec) {
        if let Some(prev) = self.last_at {
            if at < prev {
                return;
            }
            let dt = at.saturating_since(prev).as_secs_f64();
            self.allocated_integral += self.last_allocated * dt;
            self.used_integral += self.last_used * dt;
            self.elapsed_secs += dt;
        }
        self.last_at = Some(at);
        self.last_allocated = allocated.sanitized();
        self.last_used = used.sanitized();
    }

    /// Finalizes at `at` (integrating the tail interval) and returns the
    /// summary. Can be called repeatedly; later records continue the
    /// integral.
    pub fn finish(&mut self, at: SimTime) -> UtilizationSummary {
        let (alloc, used) = (self.last_allocated, self.last_used);
        self.record(at, alloc, used);
        self.summary()
    }

    /// The summary over everything integrated so far.
    #[must_use]
    pub fn summary(&self) -> UtilizationSummary {
        let mut allocated_share = ResourceVec::ZERO;
        let mut used_share = ResourceVec::ZERO;
        let mut efficiency = ResourceVec::ZERO;
        if self.elapsed_secs > 0.0 {
            let mean_alloc = self.allocated_integral * (1.0 / self.elapsed_secs);
            let mean_used = self.used_integral * (1.0 / self.elapsed_secs);
            allocated_share = mean_alloc.ratio(&self.capacity);
            used_share = mean_used.ratio(&self.capacity);
            efficiency = mean_used.ratio(&mean_alloc);
            for r in Resource::ALL {
                // Usage can transiently exceed allocation (burst above
                // request); efficiency is capped at 1 for reporting.
                efficiency[r] = efficiency[r].min(1.0);
            }
        }
        UtilizationSummary {
            allocated_share,
            used_share,
            efficiency,
            elapsed_secs: self.elapsed_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn constant_state_integrates_exactly() {
        let mut a = UtilizationAccount::new(ResourceVec::splat(10.0));
        a.record(t(0), ResourceVec::splat(5.0), ResourceVec::splat(2.0));
        a.record(t(100), ResourceVec::splat(5.0), ResourceVec::splat(2.0));
        let s = a.summary();
        assert!((s.mean_allocated() - 0.5).abs() < 1e-9);
        assert!((s.mean_used() - 0.2).abs() < 1e-9);
        assert!((s.efficiency[Resource::Cpu] - 0.4).abs() < 1e-9);
        assert_eq!(s.elapsed_secs, 100.0);
    }

    #[test]
    fn step_change_weighted_by_time() {
        let mut a = UtilizationAccount::new(ResourceVec::splat(10.0));
        a.record(t(0), ResourceVec::splat(0.0), ResourceVec::ZERO);
        a.record(t(50), ResourceVec::splat(10.0), ResourceVec::ZERO);
        a.record(t(100), ResourceVec::splat(10.0), ResourceVec::ZERO);
        // 50s at 0 + 50s at full → mean 0.5.
        let s = a.summary();
        assert!((s.mean_allocated() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn finish_integrates_tail() {
        let mut a = UtilizationAccount::new(ResourceVec::splat(4.0));
        a.record(t(0), ResourceVec::splat(4.0), ResourceVec::splat(4.0));
        let s = a.finish(t(10));
        assert!((s.mean_allocated() - 1.0).abs() < 1e-9);
        assert!((s.mean_used() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_account_is_zero() {
        let a = UtilizationAccount::new(ResourceVec::splat(1.0));
        let s = a.summary();
        assert_eq!(s.mean_allocated(), 0.0);
        assert_eq!(s.elapsed_secs, 0.0);
    }

    #[test]
    fn out_of_order_records_ignored() {
        let mut a = UtilizationAccount::new(ResourceVec::splat(1.0));
        a.record(t(10), ResourceVec::splat(1.0), ResourceVec::splat(1.0));
        a.record(t(5), ResourceVec::splat(0.0), ResourceVec::splat(0.0)); // ignored
        a.record(t(20), ResourceVec::splat(1.0), ResourceVec::splat(1.0));
        let s = a.summary();
        assert!((s.mean_allocated() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_capped_at_one() {
        let mut a = UtilizationAccount::new(ResourceVec::splat(10.0));
        // Usage above allocation (bursting).
        a.record(t(0), ResourceVec::splat(2.0), ResourceVec::splat(4.0));
        a.record(t(10), ResourceVec::splat(2.0), ResourceVec::splat(4.0));
        let s = a.summary();
        assert_eq!(s.efficiency[Resource::Cpu], 1.0);
    }

    #[test]
    fn per_resource_independence() {
        let cap = ResourceVec::new(10.0, 100.0, 10.0, 10.0);
        let mut a = UtilizationAccount::new(cap);
        let alloc = ResourceVec::new(5.0, 10.0, 0.0, 10.0);
        a.record(t(0), alloc, ResourceVec::ZERO);
        a.record(t(1), alloc, ResourceVec::ZERO);
        let s = a.summary();
        assert!((s.allocated_share[Resource::Cpu] - 0.5).abs() < 1e-9);
        assert!((s.allocated_share[Resource::Memory] - 0.1).abs() < 1e-9);
        assert_eq!(s.allocated_share[Resource::DiskIo], 0.0);
        assert!((s.allocated_share[Resource::NetIo] - 1.0).abs() < 1e-9);
    }
}
