//! Bounded time-stamped sample buffers.

use std::collections::VecDeque;

use evolve_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One time-stamped observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// When the observation was made.
    pub at: SimTime,
    /// The observed value.
    pub value: f64,
}

/// A bounded, append-only series of [`Sample`]s.
///
/// The buffer keeps at most `capacity` samples, evicting the oldest; this
/// mirrors the retention window of a scrape-based metrics backend. Samples
/// must be appended in non-decreasing time order.
///
/// # Examples
///
/// ```
/// use evolve_telemetry::TimeSeries;
/// use evolve_types::{SimDuration, SimTime};
///
/// let mut s = TimeSeries::new(100);
/// for i in 0..10 {
///     s.push(SimTime::from_secs(i), i as f64);
/// }
/// assert_eq!(s.last().unwrap().value, 9.0);
/// let recent = s.mean_over(SimDuration::from_secs(3));
/// assert_eq!(recent, Some(7.5)); // samples at t=6,7,8,9
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: VecDeque<Sample>,
    capacity: usize,
}

impl TimeSeries {
    /// Creates a series retaining at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TimeSeries capacity must be positive");
        TimeSeries { samples: VecDeque::with_capacity(capacity.min(4096)), capacity }
    }

    /// Appends a sample, evicting the oldest when full.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `at` precedes the last sample's time.
    pub fn push(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.samples.back().is_none_or(|s| s.at <= at),
            "samples must be time-ordered"
        );
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(Sample { at, value });
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent sample.
    #[must_use]
    pub fn last(&self) -> Option<Sample> {
        self.samples.back().copied()
    }

    /// The `i`-th retained sample, oldest first.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<Sample> {
        self.samples.get(i).copied()
    }

    /// Iterates over retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = Sample> + '_ {
        self.samples.iter().copied()
    }

    /// Samples whose timestamp falls within `window` of the latest sample.
    pub fn window(&self, window: SimDuration) -> impl Iterator<Item = Sample> + '_ {
        let cutoff = self.last().map_or(SimTime::ZERO, |s| s.at - window);
        self.samples.iter().copied().filter(move |s| s.at >= cutoff)
    }

    /// Mean of the samples in the trailing `window`; `None` when empty.
    #[must_use]
    pub fn mean_over(&self, window: SimDuration) -> Option<f64> {
        let mut count = 0usize;
        let mut sum = 0.0;
        for s in self.window(window) {
            count += 1;
            sum += s.value;
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Maximum sample value in the trailing `window`; `None` when empty.
    #[must_use]
    pub fn max_over(&self, window: SimDuration) -> Option<f64> {
        self.window(window).map(|s| s.value).reduce(f64::max)
    }

    /// Mean of all retained samples; `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        self.mean_over(SimDuration::MAX)
    }

    /// Least-squares slope (value units per second) over the trailing
    /// `window`; `None` with fewer than two samples or zero time spread.
    ///
    /// This is the trend signal the load predictor consumes.
    #[must_use]
    pub fn slope_over(&self, window: SimDuration) -> Option<f64> {
        let pts: Vec<Sample> = self.window(window).collect();
        if pts.len() < 2 {
            return None;
        }
        let t0 = pts[0].at;
        let n = pts.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for p in &pts {
            let x = p.at.saturating_since(t0).as_secs_f64();
            sx += x;
            sy += p.value;
            sxx += x * x;
            sxy += x * p.value;
        }
        let denom = n * sxx - sx * sx;
        (denom.abs() > 1e-12).then(|| (n * sxy - sx * sy) / denom)
    }

    /// Exports the series as `(seconds, value)` pairs for CSV emission.
    #[must_use]
    pub fn to_points(&self) -> Vec<(f64, f64)> {
        self.samples.iter().map(|s| (s.at.as_secs_f64(), s.value)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new(10);
        assert!(s.is_empty());
        s.push(SimTime::from_secs(1), 2.0);
        s.push(SimTime::from_secs(2), 4.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last().unwrap().value, 4.0);
        assert_eq!(s.mean(), Some(3.0));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut s = TimeSeries::new(3);
        for i in 0..5u64 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        assert_eq!(s.len(), 3);
        let values: Vec<f64> = s.iter().map(|x| x.value).collect();
        assert_eq!(values, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn window_filters_by_time() {
        let mut s = TimeSeries::new(100);
        for i in 0..10u64 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        // Window of 2s from t=9 keeps t=7,8,9.
        let vals: Vec<f64> = s.window(SimDuration::from_secs(2)).map(|x| x.value).collect();
        assert_eq!(vals, vec![7.0, 8.0, 9.0]);
        assert_eq!(s.max_over(SimDuration::from_secs(2)), Some(9.0));
    }

    #[test]
    fn mean_over_empty_is_none() {
        let s = TimeSeries::new(4);
        assert_eq!(s.mean_over(SimDuration::from_secs(1)), None);
        assert_eq!(s.slope_over(SimDuration::from_secs(1)), None);
        assert_eq!(s.max_over(SimDuration::from_secs(1)), None);
    }

    #[test]
    fn slope_recovers_linear_trend() {
        let mut s = TimeSeries::new(100);
        for i in 0..20u64 {
            // value = 3*t + 1
            s.push(SimTime::from_secs(i), 3.0 * i as f64 + 1.0);
        }
        let slope = s.slope_over(SimDuration::from_secs(100)).unwrap();
        assert!((slope - 3.0).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    fn slope_of_constant_is_zero() {
        let mut s = TimeSeries::new(100);
        for i in 0..5u64 {
            s.push(SimTime::from_secs(i), 7.0);
        }
        assert!(s.slope_over(SimDuration::from_secs(100)).unwrap().abs() < 1e-12);
    }

    #[test]
    fn slope_with_identical_timestamps_is_none() {
        let mut s = TimeSeries::new(10);
        s.push(SimTime::from_secs(1), 1.0);
        s.push(SimTime::from_secs(1), 2.0);
        assert_eq!(s.slope_over(SimDuration::from_secs(10)), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TimeSeries::new(0);
    }

    #[test]
    fn to_points_exports_seconds() {
        let mut s = TimeSeries::new(4);
        s.push(SimTime::from_millis(1_500), 9.0);
        assert_eq!(s.to_points(), vec![(1.5, 9.0)]);
    }
}
