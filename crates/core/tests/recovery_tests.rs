//! Integration tests for controller crash-recovery: checkpoint capture
//! and restore, determinism equivalence (a crash plus restore resumes the
//! exact uninterrupted trajectory), and the safety properties of cold
//! reconstruction (no scale-to-zero, slew-limited re-engagement).

use evolve_control::ArbiterConfig;
use evolve_core::{
    ControllerCheckpoint, ExperimentRunner, ManagerKind, RecoveryStrategy, ResourceManager,
    RunConfig, RunOutcome,
};
use evolve_scheduler::RequeueBackoff;
use evolve_sim::{ClusterConfig, FaultPlan, NodeShape, Simulation, SimulationConfig};
use evolve_types::{SimDuration, SimTime};
use evolve_workload::Scenario;
use proptest::prelude::*;

fn base_config(horizon_secs: u64, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::builder(Scenario::single_diurnal(), ManagerKind::Evolve)
        .nodes(6)
        .seed(seed)
        .build();
    cfg.scenario.horizon = SimDuration::from_secs(horizon_secs);
    cfg
}

fn crashed_config(
    horizon_secs: u64,
    seed: u64,
    crash_at: u64,
    recovery: RecoveryStrategy,
) -> RunConfig {
    let mut cfg = base_config(horizon_secs, seed);
    cfg.faults = FaultPlan::new().with_controller_crash(SimTime::from_secs(crash_at));
    cfg.recovery = recovery;
    cfg
}

/// An overloaded cluster (1.2× the capacity knee) with the capacity
/// arbiter engaged, optionally crashing the controller mid-run.
fn saturated_config(horizon_secs: u64, seed: u64, crash_at: Option<u64>) -> RunConfig {
    let mut cfg = RunConfig::builder(Scenario::overload(1.2), ManagerKind::Evolve)
        .nodes(4)
        .seed(seed)
        .arbiter(ArbiterConfig::default())
        .build();
    cfg.scenario.horizon = SimDuration::from_secs(horizon_secs);
    if let Some(t) = crash_at {
        cfg.faults = FaultPlan::new().with_controller_crash(SimTime::from_secs(t));
        cfg.recovery = RecoveryStrategy::Restore;
    }
    cfg
}

fn run(cfg: RunConfig) -> RunOutcome {
    ExperimentRunner::new(cfg).run()
}

/// Every recorded series of two runs, compared bit-for-bit. The
/// `faults/active` series is excluded: it describes the injected fault
/// plan itself, which by construction differs between a crashed run and
/// its uninterrupted twin.
fn assert_identical_series(a: &RunOutcome, b: &RunOutcome) {
    let mut names_a: Vec<&str> =
        a.registry.series_names().filter(|n| *n != "faults/active").collect();
    let mut names_b: Vec<&str> =
        b.registry.series_names().filter(|n| *n != "faults/active").collect();
    names_a.sort_unstable();
    names_b.sort_unstable();
    assert_eq!(names_a, names_b, "different series sets");
    for name in names_a {
        let pa = a.registry.series(name).unwrap().to_points();
        let pb = b.registry.series(name).unwrap().to_points();
        assert_eq!(pa.len(), pb.len(), "series {name} lengths differ");
        for (i, (x, y)) in pa.iter().zip(pb.iter()).enumerate() {
            assert_eq!(x.0.to_bits(), y.0.to_bits(), "series {name} sample {i} time differs");
            assert_eq!(x.1.to_bits(), y.1.to_bits(), "series {name} sample {i} value differs");
        }
    }
}

/// A live simulation with the manager ticked a few times, for checkpoint
/// capture tests.
fn warmed_manager(ticks: u32) -> (Simulation, ResourceManager) {
    let scenario = Scenario::single_diurnal();
    let mut sim = Simulation::new(
        SimulationConfig::default(),
        ClusterConfig::uniform(6, NodeShape::default()),
        &scenario.mix,
        7,
    );
    // First-fit bind so the service actually runs.
    let pending: Vec<_> = sim.cluster().pending_pods().map(|p| p.id).collect();
    let node = sim.cluster().nodes()[0].id();
    for pod in pending {
        let _ = sim.bind_pod(pod, node);
    }
    let mut manager = ResourceManager::new(ManagerKind::Evolve, &sim);
    for i in 1..=u64::from(ticks) {
        sim.run_until(SimTime::from_secs(5 * i));
        manager.tick(&mut sim, 5.0);
    }
    (sim, manager)
}

#[test]
fn checkpoint_bytes_round_trip_from_live_state() {
    let (sim, manager) = warmed_manager(8);
    let backoff = RequeueBackoff::new();
    let ck = manager.checkpoint(sim.now(), &backoff);
    assert_eq!(ck.app_count(), 1);
    assert_eq!(ck.ticks(), 8);
    let bytes = ck.to_bytes();
    let back = ControllerCheckpoint::from_bytes(&bytes).expect("decode");
    assert_eq!(back, ck);
    // The byte image is deterministic: capturing the same state twice
    // yields identical bytes.
    assert_eq!(manager.checkpoint(sim.now(), &backoff).to_bytes(), bytes);
}

#[test]
fn restore_resumes_the_exact_trajectory() {
    let (mut sim_a, mut live) = warmed_manager(8);
    let ck = live.checkpoint(sim_a.now(), &RequeueBackoff::new());

    // A second, independent simulation replayed to the same point gives
    // the restored manager an identical world to act on.
    let (mut sim_b, _destroyed) = warmed_manager(8);
    let (mut restored, _backoff) =
        ResourceManager::restore(ManagerKind::Evolve, &sim_b, &ck).expect("restore");

    for i in 9..=16u64 {
        sim_a.run_until(SimTime::from_secs(5 * i));
        sim_b.run_until(SimTime::from_secs(5 * i));
        let wa = live.tick(&mut sim_a, 5.0);
        let wb = restored.tick(&mut sim_b, 5.0);
        assert_eq!(wa, wb, "windows diverged at tick {i}");
    }
    // Identical decisions leave identical checkpoints behind.
    assert_eq!(
        live.checkpoint(sim_a.now(), &RequeueBackoff::new()).to_bytes(),
        restored.checkpoint(sim_b.now(), &RequeueBackoff::new()).to_bytes()
    );
}

#[test]
fn corrupt_checkpoint_is_rejected_not_panicking() {
    let (sim, manager) = warmed_manager(4);
    let mut bytes = manager.checkpoint(sim.now(), &RequeueBackoff::new()).to_bytes();
    // Flip a byte somewhere in the middle of the policy state.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    // Either decodes to a different checkpoint or errors — never panics.
    if let Ok(ck) = ControllerCheckpoint::from_bytes(&bytes) {
        let _ = ResourceManager::restore(ManagerKind::Evolve, &sim, &ck);
    }
    // Truncations must error.
    let full = manager.checkpoint(sim.now(), &RequeueBackoff::new()).to_bytes();
    for cut in [0, 1, 4, full.len() / 2, full.len() - 1] {
        assert!(ControllerCheckpoint::from_bytes(&full[..cut]).is_err(), "cut {cut} accepted");
    }
}

#[test]
fn crash_with_restore_is_bit_identical_to_uninterrupted() {
    let uninterrupted = run(base_config(300, 42));
    let crashed = run(crashed_config(300, 42, 150, RecoveryStrategy::Restore));
    assert_eq!(crashed.controller_restarts, 1);
    assert_eq!(uninterrupted.controller_restarts, 0);
    assert_eq!(crashed.total_windows(), uninterrupted.total_windows());
    assert_eq!(crashed.total_violations(), uninterrupted.total_violations());
    assert_eq!(crashed.resize_failures, uninterrupted.resize_failures);
    assert_eq!(crashed.suppressed_actuations, uninterrupted.suppressed_actuations);
    assert_eq!(crashed.preemptions, uninterrupted.preemptions);
    assert_eq!(crashed.bindings, uninterrupted.bindings);
    assert_eq!(crashed.events, uninterrupted.events);
    assert_identical_series(&uninterrupted, &crashed);
}

#[test]
fn cold_reconstruction_recovers_without_collapse() {
    let crash_at = 150u64;
    let outcome = run(crashed_config(360, 42, crash_at, RecoveryStrategy::ColdReconstruct));
    assert_eq!(outcome.controller_restarts, 1);
    assert_eq!(outcome.desynced_apps, 0);

    let replicas = outcome.registry.series("app0/replicas").expect("replicas series").to_points();
    let alloc = outcome.registry.series("app0/alloc_cpu").expect("alloc series").to_points();
    assert_eq!(replicas.len(), alloc.len());

    // Never scale-to-zero after the restart.
    for &(t, r) in &replicas {
        if t >= crash_at as f64 {
            assert!(r >= 1.0, "scaled to zero at t={t}");
        }
    }

    // Bumpless transfer: the first post-restart actuation may move the
    // per-replica allocation only a bounded step from the held value
    // (DegradationGuard slew limit, 25% per tick).
    let per_replica: Vec<(f64, f64)> = replicas
        .iter()
        .zip(alloc.iter())
        .filter(|((_, r), _)| *r > 0.0)
        .map(|(&(t, r), &(_, a))| (t, a / r))
        .collect();
    let crash_idx = per_replica
        .iter()
        .position(|&(t, _)| t > crash_at as f64)
        .expect("samples after the crash");
    if crash_idx > 0 {
        let before = per_replica[crash_idx - 1].1;
        let after = per_replica[crash_idx].1;
        if before > 0.0 {
            let ratio = after / before;
            assert!(
                (0.7..=1.3).contains(&ratio),
                "first post-restart step jumped {before} -> {after} (ratio {ratio:.3})"
            );
        }
    }

    // Hold-last-safe: the first few post-restart ticks keep at least half
    // of the pre-crash per-replica allocation (no collapse to spec
    // minimum while the controller re-learns).
    if crash_idx > 0 {
        let before = per_replica[crash_idx - 1].1;
        for &(t, pr) in per_replica.iter().skip(crash_idx).take(3) {
            assert!(
                pr >= before * 0.5,
                "allocation collapsed to {pr} (pre-crash {before}) at t={t}"
            );
        }
    }
}

#[test]
fn naive_reset_restarts_and_diverges() {
    let crashed = run(crashed_config(300, 42, 150, RecoveryStrategy::NaiveReset));
    assert_eq!(crashed.controller_restarts, 1);
    // The naive reset forgets the latched size; its post-crash trajectory
    // must differ from the uninterrupted one (otherwise the strawman
    // demonstrates nothing).
    let uninterrupted = run(base_config(300, 42));
    let a = uninterrupted.registry.series("app0/alloc_cpu").unwrap().to_points();
    let b = crashed.registry.series("app0/alloc_cpu").unwrap().to_points();
    assert_ne!(a, b, "naive reset unexpectedly matched the uninterrupted run");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    #[test]
    fn restore_equivalence_holds_for_any_crash_time(crash_at in 20u64..160, seed in 0u64..3) {
        let seed = 42 + seed;
        let uninterrupted = run(base_config(180, seed));
        let crashed = run(crashed_config(180, seed, crash_at, RecoveryStrategy::Restore));
        prop_assert_eq!(crashed.controller_restarts, 1);
        prop_assert_eq!(crashed.total_windows(), uninterrupted.total_windows());
        prop_assert_eq!(crashed.total_violations(), uninterrupted.total_violations());
        prop_assert_eq!(crashed.events, uninterrupted.events);
        assert_identical_series(&uninterrupted, &crashed);
    }

    #[test]
    fn restore_equivalence_holds_under_saturation(crash_at in 60u64..200, seed in 0u64..3) {
        // Saturated variant: the crunch flag, per-app grant fractions, and
        // starvation ages all live in the checkpoint, so a crash + restore
        // in the middle of a capacity crunch must resume the exact
        // arbitrated trajectory — same sheds, same clips, same series.
        let seed = 42 + seed;
        let uninterrupted = run(saturated_config(240, seed, None));
        let crashed = run(saturated_config(240, seed, Some(crash_at)));
        prop_assert_eq!(crashed.controller_restarts, 1);
        prop_assert!(uninterrupted.shed_decisions > 0, "overload run never entered a crunch");
        prop_assert_eq!(crashed.shed_decisions, uninterrupted.shed_decisions);
        prop_assert_eq!(crashed.clipped_allocations, uninterrupted.clipped_allocations);
        prop_assert_eq!(crashed.total_windows(), uninterrupted.total_windows());
        prop_assert_eq!(crashed.total_violations(), uninterrupted.total_violations());
        prop_assert_eq!(crashed.events, uninterrupted.events);
        assert_identical_series(&uninterrupted, &crashed);
    }
}
