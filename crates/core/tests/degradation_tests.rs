//! End-to-end graceful-degradation regressions: a scrape blackout must
//! never scale a loaded service to zero or into oscillation (the
//! hold-last-safe path), a control-plane stall must skip ticks without
//! corrupting the run, and a node crash must evict onto surviving nodes
//! and recover.

use evolve_core::{ExperimentRunner, ManagerKind, RunConfig};
use evolve_sim::FaultPlan;
use evolve_types::{NodeId, SimDuration, SimTime};
use evolve_workload::Scenario;

fn faulted_config(horizon_secs: u64, faults: FaultPlan) -> RunConfig {
    let mut config =
        RunConfig::builder(Scenario::single_diurnal(), ManagerKind::Evolve).nodes(4).build();
    config.scenario.horizon = SimDuration::from_secs(horizon_secs);
    config.faults = faults;
    config
}

/// Pinned regression for the hold-last-safe path: during a 60 s scrape
/// blackout in the middle of steady load, the manager must hold replicas
/// and allocation (no scale-to-zero, no idle scale-in) and re-engage
/// without oscillating afterwards.
#[test]
fn blackout_never_scales_to_zero_or_oscillates() {
    let blackout_start = 180u64;
    let blackout_secs = 60u64;
    let faults = FaultPlan::new().with_scrape_blackout(
        SimTime::from_secs(blackout_start),
        SimDuration::from_secs(blackout_secs),
    );
    let outcome = ExperimentRunner::new(faulted_config(480, faults)).run();
    assert_eq!(outcome.end_time, SimTime::ZERO + SimDuration::from_secs(480));

    let replicas = outcome.registry.series("app0/replicas").expect("replicas series");
    let alloc = outcome.registry.series("app0/alloc_cpu").expect("alloc series");
    // Blackout windows are "simply missing": the series must have a gap.
    let in_blackout =
        |t: f64| t >= blackout_start as f64 && t < (blackout_start + blackout_secs) as f64;
    assert!(
        !replicas.to_points().iter().any(|&(t, _)| in_blackout(t)),
        "blackout windows must not be scraped into the series"
    );
    // From blackout start to the end of the run, the service must never
    // be scaled to zero replicas or zero allocation.
    for (t, v) in replicas.to_points() {
        if t >= blackout_start as f64 {
            assert!(v >= 1.0, "scaled to zero replicas at t={t}: {v}");
        }
    }
    for (t, v) in alloc.to_points() {
        if t >= blackout_start as f64 {
            assert!(v > 0.0, "allocation collapsed at t={t}");
        }
    }
    // Replica level entering the blackout must be held through it: the
    // first post-blackout sample equals the last pre-blackout one.
    let points = replicas.to_points();
    let before = points
        .iter()
        .rev()
        .find(|&&(t, _)| t < blackout_start as f64)
        .expect("pre-blackout sample")
        .1;
    let after = points
        .iter()
        .find(|&&(t, _)| t >= (blackout_start + blackout_secs) as f64)
        .expect("post-blackout sample")
        .1;
    assert_eq!(before, after, "blackout must hold the replica level, not scale in");
    // No oscillation on re-engagement: bounded direction changes in the
    // two minutes after the blackout ends.
    let window_end = (blackout_start + blackout_secs + 120) as f64;
    let post: Vec<f64> = points
        .iter()
        .filter(|&&(t, _)| t >= (blackout_start + blackout_secs) as f64 && t <= window_end)
        .map(|&(_, v)| v)
        .collect();
    let mut flips = 0;
    let mut last_dir = 0i32;
    for pair in post.windows(2) {
        let dir = match pair[1].partial_cmp(&pair[0]) {
            Some(std::cmp::Ordering::Greater) => 1,
            Some(std::cmp::Ordering::Less) => -1,
            _ => 0,
        };
        if dir != 0 {
            if last_dir != 0 && dir != last_dir {
                flips += 1;
            }
            last_dir = dir;
        }
    }
    assert!(flips <= 1, "replica oscillation after blackout: {post:?}");
}

/// A control-plane stall skips whole ticks: no windows are harvested
/// during the stall, and the skipped seconds fold into the next live
/// window so lifetime accounting still adds up.
#[test]
fn control_stall_skips_ticks_without_losing_accounting() {
    let stall_start = 120u64;
    let stall_secs = 30u64; // 6 skipped 5 s ticks
    let faults = FaultPlan::new()
        .with_control_stall(SimTime::from_secs(stall_start), SimDuration::from_secs(stall_secs));
    let outcome = ExperimentRunner::new(faulted_config(300, faults)).run();
    assert_eq!(outcome.end_time, SimTime::ZERO + SimDuration::from_secs(300));

    // The cluster series (recorded only on live ticks) must gap the stall.
    let pods = outcome.registry.series("cluster/pods_running").expect("pods series");
    // The stall interval is half-open [start, end): the tick ending
    // exactly at `end` is live again.
    let stalled = |t: f64| t >= stall_start as f64 && t < (stall_start + stall_secs) as f64;
    assert!(
        !pods.to_points().iter().any(|&(t, _)| stalled(t)),
        "stalled ticks must not run the control loop"
    );
    // 300 s at 5 s ticks = 60 windows minus the 6 stalled ones.
    assert_eq!(outcome.apps[0].windows, 54);
    // The service keeps serving through the stall; completions keep
    // accruing because the first live window covers the stalled span.
    let baseline = ExperimentRunner::new(faulted_config(300, FaultPlan::new())).run();
    let lost = baseline.apps[0].completions as f64 - outcome.apps[0].completions as f64;
    assert!(
        lost.abs() / baseline.apps[0].completions as f64 <= 0.02,
        "stall lost completions: {} vs {}",
        outcome.apps[0].completions,
        baseline.apps[0].completions
    );
}

/// A node crash mid-run evicts onto surviving nodes and, after recovery,
/// the cluster returns to full readiness with the service still placed.
#[test]
fn node_crash_evicts_and_recovers() {
    let faults = FaultPlan::new().with_node_crash(
        NodeId::new(0),
        SimTime::from_secs(120),
        Some(SimDuration::from_secs(60)),
    );
    let outcome = ExperimentRunner::new(faulted_config(360, faults)).run();
    let ready = outcome.registry.series("cluster/nodes_ready").expect("nodes_ready series");
    let points = ready.to_points();
    let min = points.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    assert_eq!(min, 3.0, "crash must take exactly one node unready");
    let last = points.last().expect("samples").1;
    assert_eq!(last, 4.0, "node must recover to ready");
    // Replicas never collapse: evicted pods requeue and rebind.
    let replicas = outcome.registry.series("app0/replicas").expect("replicas series");
    let tail: Vec<(f64, f64)> =
        replicas.to_points().into_iter().filter(|&(t, _)| t >= 200.0).collect();
    assert!(!tail.is_empty());
    assert!(tail.iter().all(|&(_, v)| v >= 1.0), "service lost all replicas after crash");
}
